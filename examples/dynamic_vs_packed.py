#!/usr/bin/env python3
"""Packed vs dynamically-built R-trees: the paper's three claims, measured.

The introduction motivates packing with three disadvantages of one-at-a-
time Guttman insertion: (a) high load time, (b) sub-optimal space
utilisation, (c) poor structure -> more nodes touched per query.  This
example measures all three on the same data, then demonstrates the
conclusion's "dynamic R-tree variants based on STR packing" idea: keep
inserting into a packed tree and watch quality decay gracefully.

Run:  python examples/dynamic_vs_packed.py
"""

import time

import numpy as np

from repro import (
    Rect,
    RectArray,
    RTree,
    SortTileRecursive,
    bulk_load,
    measure_dynamic,
    measure_paged,
    paged_from_dynamic,
)
from repro.queries import region_queries


def query_cost(paged_tree, queries) -> float:
    searcher = paged_tree.searcher(buffer_pages=1)  # raw node visits
    for q in queries:
        searcher.search(q)
    return searcher.disk_accesses / len(queries)


def main() -> None:
    rng = np.random.default_rng(0)
    n = 20_000
    points = rng.random((n, 2))
    rects = RectArray.from_points(points)
    queries = region_queries(0.1, 500, seed=1)

    # (a) load time -----------------------------------------------------
    t0 = time.perf_counter()
    packed, report = bulk_load(rects, SortTileRecursive(), capacity=100)
    packed_build = time.perf_counter() - t0

    t0 = time.perf_counter()
    dynamic = RTree(capacity=100)
    for i, p in enumerate(points):
        dynamic.insert(Rect.from_point(tuple(p)), i)
    dynamic_build = time.perf_counter() - t0

    print(f"(a) load time:   packed {packed_build:.2f}s   "
          f"guttman {dynamic_build:.2f}s   "
          f"({dynamic_build / packed_build:.0f}x slower)")

    # (b) space utilisation ----------------------------------------------
    packed_fill = n / (report.leaf_pages * 100)
    print(f"(b) leaf fill:   packed {packed_fill:.0%}   "
          f"guttman {dynamic.space_utilization():.0%}")

    # (c) query structure ------------------------------------------------
    dynamic_paged = paged_from_dynamic(dynamic)
    packed_cost = query_cost(packed, queries)
    dynamic_cost = query_cost(dynamic_paged, queries)
    print(f"(c) node visits per 1% query:   packed {packed_cost:.1f}   "
          f"guttman {dynamic_cost:.1f}")

    pq = measure_paged(packed)
    dq = measure_dynamic(dynamic)
    print(f"    leaf area: packed {pq.leaf_area:.2f}  "
          f"guttman {dq.leaf_area:.2f};  "
          f"leaf perimeter: packed {pq.leaf_perimeter:.0f}  "
          f"guttman {dq.leaf_perimeter:.0f}")

    # Future-work teaser: grow, then repack -------------------------------
    # The paper's conclusion proposes dynamic variants based on STR; the
    # simplest production recipe is grow-then-repack.  Grow the Guttman
    # tree by 25% and compare it with a fresh STR rebuild of the same data.
    print("\ngrowing the dataset by 25%, then repacking with STR:")
    extra = rng.random((n // 4, 2))
    for j, p in enumerate(extra):
        dynamic.insert(Rect.from_point(tuple(p)), n + j)
    grown_cost = query_cost(paged_from_dynamic(dynamic), queries)
    all_rects = RectArray(np.vstack([points, extra]),
                          np.vstack([points, extra]))
    repacked, _ = bulk_load(all_rects, SortTileRecursive(), capacity=100)
    repacked_cost = query_cost(repacked, queries)
    print(f"    node visits per query: grown guttman {grown_cost:.1f}   "
          f"STR repack {repacked_cost:.1f}   "
          f"({grown_cost / repacked_cost:.1f}x improvement from repacking)")


if __name__ == "__main__":
    main()
