#!/usr/bin/env python3
"""Big-data pipeline: the 1997 production deployment, end to end.

The paper's context is bulk-loading indexes for data that lives in files
and is served from disk through a small buffer.  This example plays that
scenario with every storage-facing feature of the library:

1. stream records through the **external-memory STR loader** (bounded RAM,
   spill files, k-way merge) onto a **striped multi-disk page store**;
2. persist the tree header and **reopen it as a new process would**;
3. serve region queries through a small LRU buffer and report the
   declustered parallel I/O cost;
4. absorb live updates on the side with a **dynamic Hilbert R-tree**
   (the Kamel-Faloutsos follow-up the paper cites as [7]).

Run:  python examples/bigdata_pipeline.py
"""

import os
import tempfile

import numpy as np

from repro import HilbertRTree, PagedRTree, Rect
from repro.core.packing.external import external_bulk_load
from repro.queries import region_queries
from repro.storage.page import required_page_size
from repro.storage.store import FilePageStore
from repro.storage.striped import StripedPageStore


def record_stream(count: int, seed: int):
    """Simulates reading (id, rect) records from an ingest file."""
    rng = np.random.default_rng(seed)
    for start in range(0, count, 10_000):
        batch = rng.random((min(10_000, count - start), 2))
        for j, p in enumerate(batch):
            yield (0.0, start + j, tuple(p), tuple(p))


def main() -> None:
    n = 200_000
    capacity = 100
    page_size = required_page_size(capacity, 2)

    with tempfile.TemporaryDirectory(prefix="repro-bigdata-") as workdir:
        # 1. External bulk load onto 4 "disks" ---------------------------
        disks = [
            FilePageStore(os.path.join(workdir, f"disk{i}.pages"),
                          page_size)
            for i in range(4)
        ]
        store = StripedPageStore(disks)
        print(f"bulk-loading {n:,} records with bounded memory "
              "(external STR)...")
        tree, report = external_bulk_load(
            record_stream(n, seed=1), 2, capacity=capacity, store=store,
            chunk_size=50_000,
        )
        print(f"  wrote {report.pages_written} pages "
              f"({report.pages_written * page_size / 1e6:.1f} MB across "
              f"{store.disk_count} disks), height {tree.height}")

        meta_path = os.path.join(workdir, "tree.meta.json")
        tree.save_meta(meta_path)

        # 2. Reopen as a fresh process would -----------------------------
        reopened = PagedRTree.open(store, meta_path)
        print(f"reopened tree: {len(reopened):,} records")

        # 3. Serve queries through a 50-page buffer ----------------------
        store.reset_disk_stats()
        searcher = reopened.searcher(buffer_pages=50)
        workload = region_queries(0.05, 500, seed=2)
        hits = sum(searcher.search(q).size for q in workload)
        print(f"served {len(workload)} map-window queries: "
              f"{hits / len(workload):.0f} hits/query, "
              f"{searcher.disk_accesses / len(workload):.2f} page "
              "reads/query")
        print(f"  declustering: {store.per_disk_reads()} reads per disk "
              f"-> parallel speedup {store.parallel_speedup():.2f}x "
              f"of {store.disk_count} ideal")

        # 4. Live updates land in a dynamic side index -------------------
        side = HilbertRTree(capacity=capacity)
        rng = np.random.default_rng(3)
        updates = rng.random((5_000, 2))
        for i, p in enumerate(updates):
            side.insert(Rect.from_point(tuple(p)), n + i)
        q = Rect((0.48, 0.48), (0.52, 0.52))
        combined = len(searcher.search(q)) + len(side.search(q))
        print(f"after 5,000 live inserts, combined index answers the "
              f"window query with {combined} hits "
              f"(side-index fill {side.space_utilization():.0%})")

        for disk in disks:
            disk.close()


if __name__ == "__main__":
    main()
