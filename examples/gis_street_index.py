#!/usr/bin/env python3
"""GIS scenario: index a street network and choose a packing algorithm.

The paper's motivating GIS workload is the TIGER Long Beach street file.
This example builds that workload (synthetic stand-in), packs it with all
three algorithms, and reports the numbers a GIS engineer would use to pick
one: disk accesses per map-window query at a realistic buffer size, plus
the leaf-MBR plots (the paper's Figures 2-4) as SVG files.

Run:  python examples/gis_street_index.py [output-dir]
"""

import sys

from repro import algorithm_names, bulk_load, make_algorithm, measure_paged
from repro.datasets import long_beach_like
from repro.queries import point_queries, region_queries
from repro.viz import leaf_mbr_svg


def main(out_dir: str | None = None) -> None:
    print("generating street network (53,145 segment MBRs)...")
    streets = long_beach_like(seed=7)

    # A map viewport ~ 1% of the county; geocoding hits are point queries.
    viewport_queries = region_queries(0.1, 500, seed=1)
    geocode_queries = point_queries(500, seed=2)

    print(f"{'algo':>5} {'build-pages':>12} {'viewport-io':>12} "
          f"{'geocode-io':>11} {'leaf-perim':>11}")
    trees = {}
    for name in algorithm_names():  # STR, HS, NX in the paper's order
        tree, report = bulk_load(streets, make_algorithm(name), capacity=100)
        trees[name] = tree

        searcher = tree.searcher(buffer_pages=50)
        for q in viewport_queries:
            searcher.search(q)
        viewport_io = searcher.disk_accesses / len(viewport_queries)

        searcher = tree.searcher(buffer_pages=50)
        for q in geocode_queries:
            searcher.search(q)
        geocode_io = searcher.disk_accesses / len(geocode_queries)

        quality = measure_paged(tree)
        print(f"{name:>5} {report.pages_written:>12} {viewport_io:>12.2f} "
              f"{geocode_io:>11.2f} {quality.leaf_perimeter:>11.1f}")

    print("\n(the paper's conclusion for mildly-skewed GIS data: STR wins "
          "both query types; NX's thin vertical strips are hopeless)")

    if out_dir is not None:
        import os

        os.makedirs(out_dir, exist_ok=True)
        for name, tree in trees.items():
            path = os.path.join(out_dir, f"leaf_mbrs_{name}.svg")
            with open(path, "w") as f:
                f.write(leaf_mbr_svg(tree, title=f"Long Beach leaves, {name}"))
            print(f"wrote {path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
