#!/usr/bin/env python3
"""Quickstart: pack an R-tree with STR and query it through an LRU buffer.

This is the five-minute tour of the library's public API:

1. make some data (a million-entry workload would look the same),
2. bulk-load a paged R-tree with Sort-Tile-Recursive,
3. attach a searcher with a small LRU buffer,
4. run region and point queries, and
5. read off the paper's two metrics: disk accesses and MBR quality.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Rect,
    RectArray,
    SortTileRecursive,
    bulk_load,
    knn,
    measure_paged,
    validate_paged,
)


def main() -> None:
    # 1. Data: 50,000 uniform points in the unit square (points are just
    #    degenerate rectangles; any RectArray works the same way).
    rng = np.random.default_rng(42)
    points = rng.random((50_000, 2))
    rects = RectArray.from_points(points)

    # 2. Bulk-load with STR, 100 entries per node — the paper's setup.
    tree, report = bulk_load(rects, SortTileRecursive(), capacity=100)
    print(f"built a height-{tree.height} tree: "
          f"{report.leaf_pages} leaf pages, "
          f"{report.pages_written} pages total")
    validate_paged(tree)  # invariant check; cheap at this scale

    # 3. A searcher = a cold LRU buffer of 10 pages + query execution.
    searcher = tree.searcher(buffer_pages=10)

    # 4a. A region query: everything intersecting a box.
    box = Rect((0.40, 0.40), (0.60, 0.60))
    ids = searcher.search(box)
    print(f"region {box.lo}-{box.hi}: {ids.size} matches "
          f"(expected ~{0.2 * 0.2 * len(rects):.0f})")

    # 4b. Point queries.
    for _ in range(1_000):
        searcher.point_query(rng.random(2))

    # 4c. Nearest neighbours work on the same tree and the same buffer.
    neighbours = knn(searcher, (0.5, 0.5), k=5)
    print("5 nearest to (0.5, 0.5):",
          [(int(i), round(d, 4)) for i, d in neighbours])

    # 5. The paper's metrics.
    print(f"disk accesses so far: {searcher.disk_accesses} "
          f"({searcher.stats.hit_ratio:.0%} buffer hit ratio)")
    quality = measure_paged(tree)
    print(f"leaf area sum {quality.leaf_area:.3f}, "
          f"leaf perimeter sum {quality.leaf_perimeter:.1f} "
          "(cf. paper Table 4: 0.97 / 88.21 for this workload)")


if __name__ == "__main__":
    main()
