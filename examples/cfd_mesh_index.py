#!/usr/bin/env python3
"""CFD scenario: spatial queries over an unstructured aerodynamics mesh.

The paper's motivating scientific workload: mesh nodes around a wing
cross-section, exponentially concentrated at the surfaces.  A solver
post-processor asks two kinds of questions: "which nodes fall in this
probe window?" (region queries near the wing) and "which mesh node is
closest to this sensor location?" (nearest-neighbour).

This example reproduces the paper's Section 4.4 finding — STR clearly
beats Hilbert Sort for point/small-window queries on this highly skewed
point data, especially with small buffers — and shows kNN on the same
trees.

Run:  python examples/cfd_mesh_index.py
"""

from repro import bulk_load, knn, make_algorithm, measure_paged
from repro.datasets import CFD_QUERY_WINDOW, airfoil_like
from repro.queries import point_queries, region_queries


def main() -> None:
    print("meshing the airfoil (52,510 nodes)...")
    mesh = airfoil_like(seed=3)

    trees = {
        name: bulk_load(mesh, make_algorithm(name), capacity=100)[0]
        for name in ("STR", "HS")
    }

    # Probe windows inside the dense region, as the paper restricts them.
    probes = region_queries(0.01, 1_000, seed=4, window=CFD_QUERY_WINDOW)
    sensors = point_queries(1_000, seed=5, window=CFD_QUERY_WINDOW)

    print(f"\n{'buffer':>7}  {'STR point-io':>12} {'HS point-io':>12} "
          f"{'HS/STR':>7}")
    for buffer_pages in (10, 25, 50, 100):
        means = {}
        for name, tree in trees.items():
            searcher = tree.searcher(buffer_pages=buffer_pages)
            for q in sensors:
                searcher.search(q)
            means[name] = searcher.disk_accesses / len(sensors)
        print(f"{buffer_pages:>7}  {means['STR']:>12.3f} "
              f"{means['HS']:>12.3f} {means['HS'] / means['STR']:>7.2f}")

    print("\nprobe windows (area 0.0001), buffer 25:")
    for name, tree in trees.items():
        searcher = tree.searcher(buffer_pages=25)
        matches = sum(searcher.search(q).size for q in probes)
        print(f"  {name}: {searcher.disk_accesses / len(probes):.3f} "
              f"accesses/query, {matches / len(probes):.1f} nodes/probe")

    # Nearest mesh node to a sensor on the wing surface.
    searcher = trees["STR"].searcher(buffer_pages=25)
    sensor = (0.531, 0.509)  # just above the main element
    nearest = knn(searcher, sensor, k=3)
    print(f"\n3 mesh nodes nearest to sensor {sensor}:")
    for node_id, dist in nearest:
        print(f"  node {int(node_id)} at distance {dist:.5f}")

    print("\nMBR quality (paper Table 10 shape: HS has the smaller "
          "perimeter but much larger area — and still loses point queries):")
    for name, tree in trees.items():
        q = measure_paged(tree)
        print(f"  {name}: leaf area {q.leaf_area:.2f}, "
              f"leaf perimeter {q.leaf_perimeter:.1f}")


if __name__ == "__main__":
    main()
