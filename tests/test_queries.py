"""Unit tests for query workload generation (paper Section 3 / 4.4)."""

import numpy as np
import pytest

from repro.core.geometry import Rect
from repro.datasets.cfd import CFD_QUERY_WINDOW
from repro.queries import (
    PAPER_QUERY_COUNT,
    point_queries,
    region_queries,
    workload_for,
)


class TestPointQueries:
    def test_default_count_is_papers(self):
        assert len(point_queries()) == PAPER_QUERY_COUNT == 2000

    def test_queries_are_points(self):
        w = point_queries(100, seed=1)
        assert (w.rects.areas() == 0).all()

    def test_uniform_in_unit_square(self):
        w = point_queries(5000, seed=1)
        centers = w.rects.centers()
        assert centers.min() >= 0 and centers.max() <= 1
        assert abs(centers.mean() - 0.5) < 0.02

    def test_restricted_window(self):
        w = point_queries(500, seed=1, window=CFD_QUERY_WINDOW)
        for q in w:
            assert CFD_QUERY_WINDOW.contains_rect(q)

    def test_deterministic(self):
        assert point_queries(50, seed=3).rects == point_queries(
            50, seed=3).rects

    def test_kind_label(self):
        assert point_queries(10).kind == "point"

    def test_bad_count(self):
        with pytest.raises(ValueError):
            point_queries(0)


class TestRegionQueries:
    def test_side_exact_away_from_boundary(self):
        w = region_queries(0.1, 5000, seed=2)
        extents = w.rects.extents()
        interior = (w.rects.his < 1.0).all(axis=1)
        assert np.allclose(extents[interior], 0.1)

    def test_clamped_at_boundary(self):
        """Paper: 'If the x- or y-coordinate is larger than 1.0 we set the
        coordinate to 1.0' — so some boundary queries are smaller."""
        w = region_queries(0.3, 5000, seed=2)
        assert (w.rects.his <= 1.0).all()
        clamped = (w.rects.extents() < 0.3 - 1e-12).any(axis=1)
        # With side 0.3, ~30% of corners start within 0.3 of an edge.
        assert 0.2 < clamped.mean() < 0.8

    def test_lower_corner_uniform(self):
        w = region_queries(0.1, 5000, seed=2)
        lows = w.rects.los
        assert abs(lows.mean() - 0.5) < 0.02

    def test_mean_area_below_nominal(self):
        w = region_queries(0.3, 5000, seed=2)
        assert w.window_area < 0.09

    def test_cfd_window_truncation(self):
        w = region_queries(0.03, 2000, seed=2, window=CFD_QUERY_WINDOW)
        assert (w.rects.his <= 0.6 + 1e-12).all()
        assert (w.rects.los >= 0.48 - 1e-12).all()

    def test_custom_kind(self):
        w = region_queries(0.01, 10, kind="region area=0.0001")
        assert w.kind == "region area=0.0001"

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            region_queries(0.0, 10)


class TestWorkloadFor:
    def test_point(self):
        assert workload_for("point", count=10).kind == "point"

    def test_region1_side(self):
        w = workload_for("region1", count=1000, seed=1)
        interior = (w.rects.his < 1.0).all(axis=1)
        assert np.allclose(w.rects.extents()[interior], 0.1)
        assert w.kind == "region 1%"

    def test_region9_side(self):
        w = workload_for("region9", count=1000, seed=1)
        interior = (w.rects.his < 1.0).all(axis=1)
        assert np.allclose(w.rects.extents()[interior], 0.3)

    def test_window_scaling(self):
        small = Rect((0.0, 0.0), (0.5, 0.5))
        w = workload_for("region1", count=1000, seed=1, window=small)
        interior = (w.rects.his < 0.5).all(axis=1)
        assert np.allclose(w.rects.extents()[interior], 0.05)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            workload_for("nearest")


class TestQueryWorkload:
    def test_iter_yields_rects(self):
        w = point_queries(5, seed=1)
        rects = list(w)
        assert len(rects) == 5
        assert all(isinstance(r, Rect) for r in rects)

    def test_len(self):
        assert len(point_queries(17, seed=1)) == 17

    def test_frozen(self):
        w = point_queries(5, seed=1)
        with pytest.raises(AttributeError):
            w.kind = "other"
