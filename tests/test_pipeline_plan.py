"""Unit tests for the pipeline's planning and durability primitives.

Covers the shard plan's STR-alignment invariants, the atomic staging
primitives every pipeline file goes through, and the checkpoint log's
torn-tail semantics — the small pieces whose guarantees the crash tests
in ``test_pipeline_build.py`` compose.
"""

import json
import os

import numpy as np
import pytest

from repro.core.geometry import RectArray
from repro.pipeline import CheckpointError, CheckpointLog, ResumeMismatch
from repro.pipeline.checkpoint import CHECKPOINT_NAME
from repro.pipeline.plan import (
    INPUT_FILES,
    load_plan,
    load_staged_input,
    make_plan,
    stage_input,
    write_plan,
)
from repro.pipeline.staging import (
    StagingDir,
    atomic_write_bytes,
    check_record_crc,
    file_crc32c,
    record_crc,
)


def _rects(rng, n, ndim=2):
    los = rng.uniform(0.0, 100.0, (n, ndim))
    his = los + rng.uniform(0.0, 5.0, (n, ndim))
    return RectArray(los, his)


# -- plan ---------------------------------------------------------------------


def test_plan_shards_are_capacity_aligned_str_slabs(rng):
    rects = _rects(rng, 1234)
    ids = np.arange(1234, dtype=np.int64)
    plan = make_plan(rects, ids, capacity=16, page_size=640)
    assert sum(plan.slab_sizes) == 1234
    # Every slab but the last is a whole number of leaf pages — the
    # property that lets workers encode pages without sharing one.
    for size in plan.slab_sizes[:-1]:
        assert size % 16 == 0
    ranges = plan.shard_ranges()
    assert ranges[0][0] == 0 and ranges[-1][1] == 1234
    for (a, b), size in zip(ranges, plan.slab_sizes):
        assert b - a == size
    assert plan.leaf_pages == sum(-(-s // 16) for s in plan.slab_sizes)


def test_plan_fingerprint_sensitive_to_everything(rng):
    rects = _rects(rng, 64)
    ids = np.arange(64, dtype=np.int64)
    base = make_plan(rects, ids, capacity=8, page_size=512).fingerprint
    moved = RectArray(rects.los + 1e-9, rects.his)
    assert make_plan(moved, ids, capacity=8,
                     page_size=512).fingerprint != base
    assert make_plan(rects, ids + 1, capacity=8,
                     page_size=512).fingerprint != base
    assert make_plan(rects, ids, capacity=9,
                     page_size=512).fingerprint != base
    assert make_plan(rects, ids, capacity=8,
                     page_size=513).fingerprint != base


def test_plan_roundtrip_and_staged_input(tmp_path, rng):
    rects = _rects(rng, 200)
    ids = np.arange(200, dtype=np.int64)
    xorder = np.argsort(rects.centers()[:, 0], kind="stable")
    staging = StagingDir(tmp_path / "st", remove_on_success=False)
    plan = make_plan(rects, ids, capacity=10, page_size=512)
    inputs = stage_input(staging, plan, rects, ids, xorder)
    write_plan(staging, plan, inputs)

    loaded = load_plan(staging)
    assert loaded == plan
    los, his, sids, sxorder = load_staged_input(staging)
    np.testing.assert_array_equal(np.asarray(sxorder), xorder)
    np.testing.assert_array_equal(np.asarray(los), rects.los)
    np.testing.assert_array_equal(np.asarray(sids), ids)


def test_plan_load_rejects_corruption(tmp_path, rng):
    rects = _rects(rng, 50)
    ids = np.arange(50, dtype=np.int64)
    xorder = np.argsort(rects.centers()[:, 0], kind="stable")
    staging = StagingDir(tmp_path / "st", remove_on_success=False)
    plan = make_plan(rects, ids, capacity=10, page_size=512)
    write_plan(staging, plan, stage_input(staging, plan, rects, ids, xorder))

    # Flip a byte in a staged input: the CRC table must catch it.
    target = staging.file(INPUT_FILES[0])
    blob = bytearray(open(target, "rb").read())
    blob[-1] ^= 0xFF
    with open(target, "wb") as f:
        f.write(blob)
    with pytest.raises(ResumeMismatch):
        load_plan(staging)

    # Tamper with the plan record itself.
    record = json.load(open(staging.file("plan.json")))
    record["capacity"] = 99
    with open(staging.file("plan.json"), "w") as f:
        json.dump(record, f)
    with pytest.raises(ResumeMismatch):
        load_plan(staging, verify_inputs=False)


# -- staging primitives -------------------------------------------------------


def test_atomic_write_and_record_crc(tmp_path):
    path = tmp_path / "blob.bin"
    atomic_write_bytes(path, b"hello durability")
    crc, size = file_crc32c(path)
    assert size == 16
    assert not any(".tmp-" in name for name in os.listdir(tmp_path))

    record = {"a": 1, "b": [2, 3]}
    record["crc"] = record_crc(record)
    assert check_record_crc(record)
    record["a"] = 2
    assert not check_record_crc(record)


def test_staging_dir_lifecycle(tmp_path):
    path = tmp_path / "work"
    with StagingDir(path) as staging:
        atomic_write_bytes(staging.file("x"), b"1")
    assert not path.exists()  # removed on clean success

    with pytest.raises(RuntimeError):
        with StagingDir(path) as staging:
            raise RuntimeError("boom")
    assert not path.exists()  # removed on clean exception

    with pytest.raises(RuntimeError):
        with StagingDir(path) as staging:
            staging.keep()
            raise RuntimeError("boom")
    assert path.exists()  # keep() overrides removal

    # sweep_tmp clears only torn tmp litter, not published files.
    staging = StagingDir(path, remove_on_success=False)
    atomic_write_bytes(staging.file("good"), b"ok")
    with open(staging.file("bad.tmp-1234"), "wb") as f:
        f.write(b"torn")
    assert staging.sweep_tmp() == 1
    assert staging.exists("good") and not staging.exists("bad.tmp-1234")


# -- checkpoint log -----------------------------------------------------------


def test_checkpoint_append_reload_and_torn_tail(tmp_path):
    path = tmp_path / CHECKPOINT_NAME
    log = CheckpointLog(path)
    log.append({"shard": 0, "pages": 4})
    log.append({"shard": 2, "pages": 5})
    log.append({"shard": 0, "pages": 4, "attempt": 1})  # idempotent re-append

    reloaded = CheckpointLog(path)
    assert reloaded.completed_shards() == {0, 2}
    assert reloaded.records[0]["attempt"] == 1
    assert not reloaded.torn_tail

    # SIGKILL mid-append: a torn final line is discarded, earlier
    # records survive.
    with open(path, "ab") as f:
        f.write(b'{"shard": 7, "pages":')
    torn = CheckpointLog(path)
    assert torn.completed_shards() == {0, 2}
    assert torn.torn_tail


def test_checkpoint_rejects_mid_file_damage(tmp_path):
    path = tmp_path / CHECKPOINT_NAME
    log = CheckpointLog(path)
    log.append({"shard": 0, "pages": 4})
    log.append({"shard": 1, "pages": 4})
    blob = open(path, "rb").read().splitlines(keepends=True)
    # Corrupt the *first* line: that is at-rest damage, not a torn tail.
    with open(path, "wb") as f:
        f.write(blob[0][:10] + b"X" + blob[0][11:])
        f.write(blob[1])
    with pytest.raises(CheckpointError):
        CheckpointLog(path)
