"""Model-based (hypothesis) tests for the buffer pool.

A naive reference implementation of an LRU cache (ordered dict, no
policy/pinning machinery) is driven with the same random operation
sequence as the real pool; residency and miss counts must agree exactly.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer import BufferPool


class ReferenceLRU:
    """The obviously-correct LRU: an OrderedDict with move-to-end."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.data = OrderedDict()
        self.misses = 0
        self.hits = 0

    def get(self, key):
        if key in self.data:
            self.hits += 1
            self.data.move_to_end(key)
            return self.data[key]
        self.misses += 1
        if len(self.data) >= self.capacity:
            self.data.popitem(last=False)
        self.data[key] = f"page-{key}"
        return self.data[key]


ops = st.lists(st.integers(0, 12), min_size=1, max_size=200)


@given(st.integers(1, 8), ops)
@settings(max_examples=150)
def test_lru_pool_matches_reference(capacity, keys):
    pool = BufferPool(capacity, lambda k: f"page-{k}")
    ref = ReferenceLRU(capacity)
    for key in keys:
        assert pool.get(key) == ref.get(key)
    assert pool.stats.buffer_misses == ref.misses
    assert pool.stats.buffer_hits == ref.hits
    assert set(ref.data) == {
        k for k in range(13) if pool.contains(k)
    }


@given(st.integers(2, 8), ops, st.integers(0, 12))
@settings(max_examples=80)
def test_pinned_key_never_evicted(capacity, keys, pinned):
    pool = BufferPool(capacity, lambda k: f"page-{k}")
    pool.pin(pinned)
    for key in keys:
        pool.get(key)
        assert pool.contains(pinned)


@given(st.integers(1, 6), ops)
@settings(max_examples=80)
def test_residency_never_exceeds_capacity(capacity, keys):
    for policy in ("lru", "fifo", "clock"):
        pool = BufferPool(capacity, lambda k: f"page-{k}", policy=policy)
        for key in keys:
            pool.get(key)
            assert len(pool) <= capacity


@given(st.integers(1, 6), ops)
@settings(max_examples=80)
def test_fifo_and_clock_agree_on_values(capacity, keys):
    """Whatever the policy, get() must always return the right value."""
    for policy in ("fifo", "clock"):
        pool = BufferPool(capacity, lambda k: f"page-{k}", policy=policy)
        for key in keys:
            assert pool.get(key) == f"page-{key}"


@given(st.integers(2, 8), ops)
@settings(max_examples=60)
def test_miss_count_bounds(capacity, keys):
    """Any sane policy misses at least |distinct keys| times and at most
    once per access."""
    for policy in ("lru", "fifo", "clock"):
        pool = BufferPool(capacity, lambda k: f"page-{k}", policy=policy)
        for key in keys:
            pool.get(key)
        assert len(set(keys)) <= pool.stats.buffer_misses <= len(keys)
