"""Unit tests for k-nearest-neighbour search."""

import numpy as np
import pytest

from repro.core.geometry import GeometryError, RectArray
from repro.core.packing import SortTileRecursive
from repro.rtree.bulk import bulk_load
from repro.rtree.knn import knn


def brute_knn(rects: RectArray, point, k):
    """Oracle: point-to-rectangle distances by full scan."""
    p = np.asarray(point)
    below = np.maximum(rects.los - p, 0.0)
    above = np.maximum(p - rects.his, 0.0)
    delta = np.maximum(below, above)
    d = np.sqrt((delta ** 2).sum(axis=1))
    order = np.argsort(d, kind="stable")[:k]
    return d[order]


@pytest.fixture
def searcher(small_rects):
    tree, _ = bulk_load(small_rects, SortTileRecursive(), capacity=10)
    return tree.searcher(buffer_pages=8)


class TestKnn:
    def test_distances_match_brute_force(self, searcher, small_rects, rng):
        for _ in range(20):
            p = rng.random(2)
            got = knn(searcher, p, 5)
            want = brute_knn(small_rects, p, 5)
            assert len(got) == 5
            assert np.allclose([d for _, d in got], want)

    def test_results_sorted_by_distance(self, searcher, rng):
        got = knn(searcher, rng.random(2), 10)
        dists = [d for _, d in got]
        assert dists == sorted(dists)

    def test_k1_is_nearest(self, searcher, small_rects):
        p = (0.5, 0.5)
        (data_id, dist), = knn(searcher, p, 1)
        assert dist == pytest.approx(brute_knn(small_rects, p, 1)[0])

    def test_k_larger_than_data_returns_all(self, searcher, small_rects):
        got = knn(searcher, (0.5, 0.5), len(small_rects) + 50)
        assert len(got) == len(small_rects)

    def test_point_inside_rect_distance_zero(self, searcher, small_rects):
        center = small_rects[0].center
        got = knn(searcher, center, 1)
        assert got[0][1] == 0.0

    def test_k_zero_rejected(self, searcher):
        with pytest.raises(GeometryError):
            knn(searcher, (0.5, 0.5), 0)

    def test_dim_mismatch_rejected(self, searcher):
        with pytest.raises(GeometryError):
            knn(searcher, (0.5,), 3)

    def test_charges_page_accesses(self, searcher):
        before = searcher.disk_accesses
        knn(searcher, (0.5, 0.5), 3)
        assert searcher.disk_accesses > before

    def test_point_data(self, rng):
        pts = rng.random((500, 2))
        tree, _ = bulk_load(RectArray.from_points(pts),
                            SortTileRecursive(), capacity=20)
        s = tree.searcher(buffer_pages=8)
        q = rng.random(2)
        got = knn(s, q, 3)
        want = np.sort(np.linalg.norm(pts - q, axis=1))[:3]
        assert np.allclose(sorted(d for _, d in got), want)

    def test_ids_refer_to_real_rects(self, searcher, small_rects, rng):
        p = rng.random(2)
        for data_id, dist in knn(searcher, p, 5):
            r = small_rects[int(data_id)]
            below = np.maximum(np.asarray(r.lo) - p, 0.0)
            above = np.maximum(p - np.asarray(r.hi), 0.0)
            d = float(np.sqrt((np.maximum(below, above) ** 2).sum()))
            assert d == pytest.approx(dist)
