"""Property-based tests for both R-tree representations.

Strategy: generate random rectangle sets and query boxes; the trees must
always agree with a brute-force scan, and every mutation sequence on the
dynamic tree must preserve the validator's invariants.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.geometry import Rect, RectArray
from repro.core.packing import HilbertSort, NearestX, SortTileRecursive
from repro.rtree.bulk import bulk_load
from repro.rtree.tree import RTree
from repro.rtree.validate import validate_dynamic, validate_paged

_unit = st.floats(0, 1, allow_nan=False, width=32)


@st.composite
def rect_sets(draw, min_size=1, max_size=60):
    n = draw(st.integers(min_size, max_size))
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    lo = rng.random((n, 2))
    extent = rng.random((n, 2)) * 0.2
    return RectArray(lo, np.minimum(lo + extent, 1.0))


@st.composite
def queries(draw):
    a = (draw(_unit), draw(_unit))
    b = (draw(_unit), draw(_unit))
    return Rect.from_corners(a, b)


def brute(rects, query):
    return set(np.flatnonzero(rects.intersects_rect(query)).tolist())


@given(rect_sets(), queries(), st.integers(2, 20),
       st.sampled_from([SortTileRecursive, HilbertSort, NearestX]))
@settings(max_examples=60, deadline=None)
def test_packed_search_equals_brute_force(rects, query, capacity, algo_cls):
    tree, _ = bulk_load(rects, algo_cls(), capacity=capacity)
    searcher = tree.searcher(buffer_pages=4)
    assert set(searcher.search(query).tolist()) == brute(rects, query)


@given(rect_sets(), st.integers(2, 20),
       st.sampled_from([SortTileRecursive, HilbertSort, NearestX]))
@settings(max_examples=40, deadline=None)
def test_packed_tree_always_valid(rects, capacity, algo_cls):
    tree, _ = bulk_load(rects, algo_cls(), capacity=capacity)
    validate_paged(tree, range(len(rects)))


@given(rect_sets(max_size=40), queries(), st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_dynamic_search_equals_brute_force(rects, query, capacity):
    tree = RTree(capacity=capacity)
    for i, r in enumerate(rects):
        tree.insert(r, i)
    assert set(tree.search(query)) == brute(rects, query)


@given(rect_sets(max_size=30), st.integers(0, 2 ** 31), st.integers(2, 6))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_dynamic_insert_delete_interleaved(rects, seed, capacity):
    """Random interleavings of inserts and deletes keep the tree valid and
    consistent with a set-model oracle."""
    rng = np.random.default_rng(seed)
    tree = RTree(capacity=capacity)
    live: dict[int, Rect] = {}
    pending = list(range(len(rects)))
    rng.shuffle(pending)
    for step in range(2 * len(rects)):
        do_insert = pending and (not live or rng.random() < 0.6)
        if do_insert:
            i = pending.pop()
            tree.insert(rects[i], i)
            live[i] = rects[i]
        else:
            i = int(rng.choice(list(live)))
            assert tree.delete(live[i], i)
            del live[i]
        assert len(tree) == len(live)
    validate_dynamic(tree, live.keys())
    everything = Rect((0, 0), (1, 1))
    assert set(tree.search(everything)) == set(live)


@given(rect_sets(), st.integers(2, 16))
@settings(max_examples=30, deadline=None)
def test_three_packings_return_identical_result_sets(rects, capacity):
    """Different packings, same data: query answers must be identical."""
    query = Rect((0.25, 0.25), (0.75, 0.75))
    answers = []
    for algo in (SortTileRecursive(), HilbertSort(), NearestX()):
        tree, _ = bulk_load(rects, algo, capacity=capacity)
        answers.append(
            frozenset(tree.searcher(4).search(query).tolist())
        )
    assert answers[0] == answers[1] == answers[2]


@given(rect_sets(min_size=5), st.integers(2, 10))
@settings(max_examples=30, deadline=None)
def test_str_never_loses_or_duplicates_data(rects, capacity):
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=capacity)
    ids = []
    for _, node in tree.iter_level(0):
        ids.extend(node.children.tolist())
    assert sorted(ids) == list(range(len(rects)))
