"""Unit tests for CRC32C, page trailers, superblocks, and the journal."""

import os

import pytest

from repro.storage.integrity import (
    ChecksumError,
    FLAG_CHECKSUMS,
    FLAG_JOURNAL,
    Superblock,
    SuperblockError,
    TRAILER_SIZE,
    crc32c,
    looks_like_superblock,
    stamp_trailer,
    trailer_info,
    verify_trailer,
)
from repro.storage.journal import JournalError, WriteJournal, journal_path

PAGE = 512


class TestCrc32c:
    def test_known_vectors(self):
        # RFC 3720 check value plus degenerate inputs.
        assert crc32c(b"") == 0
        assert crc32c(b"123456789") == 0xE3069283
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_incremental_equals_one_shot(self):
        data = bytes(range(256)) * 3
        assert crc32c(data[100:], crc32c(data[:100])) == crc32c(data)

    def test_sensitive_to_single_bit(self):
        data = b"x" * 100
        flipped = bytes([data[0] ^ 1]) + data[1:]
        assert crc32c(data) != crc32c(flipped)

    def test_odd_tail_lengths(self):
        # Exercise the non-multiple-of-4 tail loop.
        for n in range(1, 9):
            assert crc32c(b"a" * n) == crc32c(bytearray(b"a" * n))


class TestTrailer:
    def _page(self, fill=b"p"):
        return fill * (PAGE - TRAILER_SIZE) + b"\x00" * TRAILER_SIZE

    def test_roundtrip_returns_original_bytes(self):
        page = self._page()
        stamped = stamp_trailer(page, 7)
        assert len(stamped) == PAGE
        assert verify_trailer(stamped, 7) == page

    def test_trailer_info_fields(self):
        info = trailer_info(stamp_trailer(self._page(), 42))
        assert info["page_id"] == 42
        assert info["version"] == 1

    def test_unstamped_page_is_rejected(self):
        with pytest.raises(ChecksumError, match="no checksum trailer"):
            verify_trailer(self._page(), 0)

    def test_wrong_page_id_is_rejected(self):
        stamped = stamp_trailer(self._page(), 3)
        with pytest.raises(ChecksumError, match="wrong slot"):
            verify_trailer(stamped, 4)

    def test_any_payload_bit_flip_detected(self):
        stamped = bytearray(stamp_trailer(self._page(), 0))
        stamped[17] ^= 0x10
        with pytest.raises(ChecksumError, match="CRC32C mismatch"):
            verify_trailer(bytes(stamped), 0)

    def test_source_named_in_error(self):
        with pytest.raises(ChecksumError, match="page 5 of /x/y"):
            verify_trailer(self._page(), 5, source="/x/y")

    def test_tiny_page_rejected(self):
        with pytest.raises(ChecksumError, match="no room"):
            verify_trailer(b"\x00" * TRAILER_SIZE, 0)


class TestSuperblock:
    def test_roundtrip_without_tree(self):
        sb = Superblock(page_size=PAGE, flags=FLAG_CHECKSUMS, seq=9,
                        page_count=21)
        out = Superblock.decode(sb.encode())
        assert out == sb
        assert out.tree is None

    def test_roundtrip_with_tree(self):
        tree = {"height": 3, "root_page": 20, "ndim": 2,
                "capacity": 100, "size": 12345}
        sb = Superblock(page_size=PAGE, flags=FLAG_JOURNAL, seq=2,
                        page_count=21, tree=tree)
        assert Superblock.decode(sb.encode()).tree == tree

    def test_encode_is_exactly_one_page(self):
        assert len(Superblock(page_size=PAGE).encode()) == PAGE

    def test_shadow_slots_alternate(self):
        assert Superblock(page_size=PAGE, seq=4).slot == 0
        assert Superblock(page_size=PAGE, seq=5).slot == 1

    def test_corrupt_crc_rejected(self):
        data = bytearray(Superblock(page_size=PAGE).encode())
        data[8] ^= 1
        with pytest.raises(SuperblockError, match="CRC32C mismatch"):
            Superblock.decode(bytes(data))

    def test_wrong_magic_rejected(self):
        with pytest.raises(SuperblockError, match="bad magic"):
            Superblock.decode(b"\xff" * PAGE)

    def test_sniff(self):
        assert looks_like_superblock(Superblock(page_size=PAGE).encode())
        assert not looks_like_superblock(b"RTP1....")
        assert not looks_like_superblock(b"RS")


class TestWriteJournal:
    def test_append_scan_roundtrip(self, tmp_path):
        j = WriteJournal(tmp_path / "j", PAGE)
        j.append(3, b"a" * PAGE)
        j.append(9, b"b" * PAGE)
        assert list(j.scan()) == [(3, b"a" * PAGE), (9, b"b" * PAGE)]
        j.close()

    def test_checkpoint_drops_records(self, tmp_path):
        j = WriteJournal(tmp_path / "j", PAGE)
        j.append(0, b"x" * PAGE)
        j.checkpoint()
        assert j.record_bytes == 0
        assert list(j.scan()) == []
        j.close()

    def test_torn_tail_discarded(self, tmp_path):
        path = tmp_path / "j"
        j = WriteJournal(path, PAGE)
        j.append(1, b"a" * PAGE)
        j.append(2, b"b" * PAGE)
        j.close()
        # Tear the second record: cut 10 bytes off the file.
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 10)
        j2 = WriteJournal(path, PAGE)
        assert list(j2.scan()) == [(1, b"a" * PAGE)]
        j2.close()

    def test_corrupt_record_crc_stops_scan(self, tmp_path):
        path = tmp_path / "j"
        j = WriteJournal(path, PAGE)
        j.append(1, b"a" * PAGE)
        j.append(2, b"b" * PAGE)
        j.close()
        # Flip a byte inside the *first* record's image: both records are
        # fully present, but the protocol must stop at the broken one.
        with open(path, "r+b") as f:
            f.seek(12 + 16 + 5)
            f.write(b"\xff")
        j2 = WriteJournal(path, PAGE)
        assert list(j2.scan()) == []
        j2.close()

    def test_wrong_size_record_rejected(self, tmp_path):
        j = WriteJournal(tmp_path / "j", PAGE)
        with pytest.raises(JournalError, match="page size"):
            j.append(0, b"short")
        j.close()

    def test_page_size_mismatch_on_reopen(self, tmp_path):
        WriteJournal(tmp_path / "j", PAGE).close()
        with pytest.raises(JournalError, match="page size"):
            WriteJournal(tmp_path / "j", PAGE * 2)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "j"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(JournalError, match="not a page journal"):
            WriteJournal(path, PAGE)

    def test_journal_path_sidecar(self):
        assert journal_path("/a/b.pages") == "/a/b.pages.journal"
