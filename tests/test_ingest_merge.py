"""Background-merge crash matrix: draining sealed WAL segments into a
new packed generation must be SIGKILL-resumable at every write boundary
— after any kill, the committed pointer names either the old or the new
generation (never anything in between), replay still answers exactly,
and re-running the merge converges on the oracle with no acked op lost
or double-applied."""

import os

import numpy as np
import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.core.geometry import Rect
from repro.ingest.merge import (
    generation_path,
    merge_segments,
    read_pointer,
    resolve_current,
    sweep_drained,
)
from repro.ingest.state import IngestState
from repro.ingest.wal import (
    IngestError, WriteAheadLog, ingest_dir, segment_name,
)
from repro.rtree.paged import PagedRTree
from repro.storage import FilePageStore
from repro.storage.faults import CrashPlan
from repro.storage.integrity import TRAILER_SIZE
from repro.storage.page import required_page_size
from repro.storage.store import SimulatedCrash

CAPACITY = 8
NDIM = 2


def _rect(i: int) -> Rect:
    return Rect((float(i), float(i)), (float(i) + 1.0, float(i) + 1.0))


def _entries(ids):
    return {int(i): (_rect(i).lo, _rect(i).hi) for i in ids}


def _build_base(path, entries):
    ids = np.array(sorted(entries), dtype=np.int64)
    los = np.array([entries[int(i)][0] for i in ids], dtype=np.float64)
    his = np.array([entries[int(i)][1] for i in ids], dtype=np.float64)
    page_size = required_page_size(CAPACITY, NDIM) + TRAILER_SIZE
    store = FilePageStore(path, page_size, checksums=True, journal=True)
    bulk_load(RectArray(los, his), SortTileRecursive(), data_ids=ids,
              capacity=CAPACITY, store=store)
    store.close()


def _read_logical(path):
    """The logical ``{id: (lo, hi)}`` set of a packed file."""
    store = FilePageStore.open_existing(os.fspath(path))
    try:
        tree = PagedRTree.from_store(store)
        out = {}
        for _, node in tree.iter_level(0):
            los, his = node.rects.los, node.rects.his
            for i, data_id in enumerate(node.children):
                out[int(data_id)] = (tuple(los[i]), tuple(his[i]))
        return out
    finally:
        store.close()


def _replayed_logical(tree_path):
    """The logical set as a freshly-opened server would see it: the
    current generation overlaid with the replayed WAL delta."""
    state, base_path = IngestState.open(tree_path, ndim=NDIM)
    try:
        logical = _read_logical(base_path)
        for layer in state.layers():
            for data_id in sorted(layer.overridden):
                rect = layer.get(data_id)
                if rect is None:
                    logical.pop(data_id, None)
                else:
                    logical[data_id] = (rect.lo, rect.hi)
        return logical
    finally:
        state.close()


def _setup(tree_path):
    """Base of ids 0..39 plus one sealed segment: upserts 100..111,
    a same-id re-upsert, and deletes of 0..3.  Returns the oracle."""
    oracle = _entries(range(40))
    _build_base(tree_path, oracle)
    with WriteAheadLog(ingest_dir(tree_path)) as wal:
        for i in range(100, 112):
            wal.append("insert", i, _rect(i))
            oracle[i] = (_rect(i).lo, _rect(i).hi)
        wal.append("insert", 100, _rect(500))
        oracle[100] = (_rect(500).lo, _rect(500).hi)
        for i in range(4):
            wal.append("delete", i, None)
            del oracle[i]
        wal.seal_active()
    return oracle


class TestMergeBasics:
    def test_merge_drains_sealed_segments(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        oracle = _setup(tree_path)
        report = merge_segments(tree_path)
        assert report is not None
        assert report.generation == 2
        assert report.ops_applied == 17
        assert report.segments_merged == 1
        assert report.size == len(oracle)
        assert _read_logical(report.path) == oracle

        current, pointer = resolve_current(tree_path)
        assert current == report.path
        assert pointer is not None
        assert pointer.merged_seq == 1
        assert pointer.merged_lsn == 17
        # The drained segment is physically gone and a re-run merges
        # nothing — idempotence after commit.
        assert not os.path.exists(
            os.path.join(ingest_dir(tree_path), segment_name(1)))
        assert merge_segments(tree_path) is None

    def test_active_segment_is_never_consumed(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        _build_base(tree_path, _entries(range(10)))
        with WriteAheadLog(ingest_dir(tree_path)) as wal:
            wal.append("insert", 100, _rect(100))  # unsealed
        assert merge_segments(tree_path) is None
        assert read_pointer(ingest_dir(tree_path)) is None

    def test_two_sealed_segments_drain_together(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        oracle = _entries(range(10))
        _build_base(tree_path, oracle)
        with WriteAheadLog(ingest_dir(tree_path)) as wal:
            wal.append("insert", 100, _rect(100))
            wal.seal_active()
            wal.append("delete", 0, None)
            wal.seal_active()
        oracle[100] = (_rect(100).lo, _rect(100).hi)
        del oracle[0]
        report = merge_segments(tree_path)
        assert report is not None
        assert report.segments_merged == 2
        assert report.merged_seq == 2
        assert _read_logical(report.path) == oracle

    def test_second_merge_builds_next_generation(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        oracle = _setup(tree_path)
        first = merge_segments(tree_path)
        assert first is not None
        with WriteAheadLog(ingest_dir(tree_path),
                           start_after_seq=first.merged_seq,
                           min_lsn=first.merged_lsn) as wal:
            wal.append("insert", 200, _rect(200))
            wal.seal_active()
        oracle[200] = (_rect(200).lo, _rect(200).hi)
        second = merge_segments(tree_path)
        assert second is not None
        assert second.generation == 3
        assert _read_logical(second.path) == oracle
        # The superseded generation file is swept away.
        assert not os.path.exists(first.path)

    def test_merge_to_empty_tree_is_refused(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        _build_base(tree_path, _entries(range(2)))
        with WriteAheadLog(ingest_dir(tree_path)) as wal:
            wal.append("delete", 0, None)
            wal.append("delete", 1, None)
            wal.seal_active()
        with pytest.raises(IngestError):
            merge_segments(tree_path)
        # Nothing committed: the original file still serves and the
        # sealed segment is still pending.
        current, pointer = resolve_current(tree_path)
        assert current == tree_path and pointer is None
        assert os.path.exists(
            os.path.join(ingest_dir(tree_path), segment_name(1)))


class TestKillResumability:
    def test_kill_at_every_write_boundary(self, tmp_path):
        """Crash the merge at every physical write (store pages,
        journal, and the pointer publication), with rotating tear
        lengths.  Invariants after each kill: replay still answers the
        acked history exactly, and a re-run merge converges."""
        tears = (None, 1, 1 << 20)
        at_write = 0
        while True:
            tree_path = str(tmp_path / f"kill-{at_write}" / "tree.rt")
            os.makedirs(os.path.dirname(tree_path))
            oracle = _setup(tree_path)
            plan = CrashPlan(at_write,
                             tear_bytes=tears[at_write % len(tears)])
            try:
                report = merge_segments(tree_path, crash_plan=plan)
            except SimulatedCrash:
                # 1. No acked op is lost or double-applied: a reopened
                #    server (current generation + WAL replay) answers
                #    the exact logical set.
                assert _replayed_logical(tree_path) == oracle, \
                    f"replay diverged after kill at write {at_write}"
                # 2. The re-run merge completes and matches the oracle.
                resumed = merge_segments(tree_path)
                assert resumed is not None
                assert _read_logical(resumed.path) == oracle, \
                    f"resume diverged after kill at write {at_write}"
                assert _replayed_logical(tree_path) == oracle
                at_write += 1
                continue
            # The plan never fired: every write boundary is covered.
            assert report is not None
            assert plan.writes_seen <= at_write
            assert _read_logical(report.path) == oracle
            break
        assert at_write > 2, "matrix must cover several write boundaries"

    def test_kill_at_pointer_write_leaves_old_generation(self, tmp_path):
        """A kill mid-publication tears only the temporary sibling: the
        committed pointer is untouched, so the old generation serves
        and the segments stay pending — the classic atomic-rename
        commit point."""
        tree_path = str(tmp_path / "tree.rt")
        oracle = _setup(tree_path)
        # Count the merge's writes on a throwaway copy to find the
        # pointer write (always the last one).
        probe_path = str(tmp_path / "probe" / "tree.rt")
        os.makedirs(os.path.dirname(probe_path))
        _setup(probe_path)
        probe = CrashPlan(1 << 30)
        assert merge_segments(probe_path, crash_plan=probe) is not None
        pointer_write = probe.writes_seen - 1

        plan = CrashPlan(pointer_write, tear_bytes=7)
        with pytest.raises(SimulatedCrash):
            merge_segments(tree_path, crash_plan=plan)
        current, pointer = resolve_current(tree_path)
        assert current == tree_path and pointer is None
        torn = [n for n in os.listdir(ingest_dir(tree_path))
                if ".tmp-" in n]
        assert torn, "the torn pointer image lands on a tmp sibling"
        # The sweep clears the debris; the resumed merge commits.
        sweep_drained(tree_path)
        assert not any(".tmp-" in n
                       for n in os.listdir(ingest_dir(tree_path)))
        resumed = merge_segments(tree_path)
        assert resumed is not None
        assert _read_logical(resumed.path) == oracle

    def test_partial_generation_file_is_rebuilt(self, tmp_path):
        """A leftover half-built gen file from a killed attempt must
        not poison the retry."""
        tree_path = str(tmp_path / "tree.rt")
        oracle = _setup(tree_path)
        stale = generation_path(ingest_dir(tree_path), 2)
        with open(stale, "wb") as f:
            f.write(b"\x00" * 100)  # garbage partial build
        report = merge_segments(tree_path)
        assert report is not None and report.path == stale
        assert _read_logical(report.path) == oracle


class TestPointerIntegrity:
    def test_damaged_pointer_is_typed_not_guessed(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        _setup(tree_path)
        assert merge_segments(tree_path) is not None
        pointer_file = os.path.join(ingest_dir(tree_path),
                                    "generation.json")
        data = open(pointer_file, "rb").read()
        with open(pointer_file, "wb") as f:
            f.write(data[:-10])
        with pytest.raises(IngestError):
            resolve_current(tree_path)

    def test_pointer_to_missing_file_is_typed(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        _setup(tree_path)
        report = merge_segments(tree_path)
        assert report is not None
        os.unlink(report.path)
        with pytest.raises(IngestError):
            resolve_current(tree_path)
