"""Property-based tests (hypothesis) for the rectangle algebra.

These pin down the lattice-like structure the R-tree logic relies on:
union is an upper bound and is monotone, intersection is a lower bound,
enlargement is non-negative, and the vectorized RectArray operations agree
with the scalar Rect operations on every input.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Rect, RectArray

_coord = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False, width=64)


@st.composite
def rects(draw, ndim=2):
    a = [draw(_coord) for _ in range(ndim)]
    b = [draw(_coord) for _ in range(ndim)]
    return Rect.from_corners(a, b)


@st.composite
def rect_pairs(draw):
    return draw(rects()), draw(rects())


@given(rect_pairs())
def test_union_commutes(pair):
    a, b = pair
    assert a.union(b) == b.union(a)


@given(rect_pairs())
def test_union_is_upper_bound(pair):
    a, b = pair
    u = a.union(b)
    assert u.contains_rect(a) and u.contains_rect(b)


@given(rects())
def test_union_idempotent(r):
    assert r.union(r) == r


@given(rect_pairs(), rects())
def test_union_associative(pair, c):
    a, b = pair
    assert a.union(b).union(c) == a.union(b.union(c))


@given(rect_pairs())
def test_intersection_symmetric(pair):
    a, b = pair
    assert a.intersection(b) == b.intersection(a)


@given(rect_pairs())
def test_intersection_is_lower_bound(pair):
    a, b = pair
    inter = a.intersection(b)
    if inter is not None:
        assert a.contains_rect(inter) and b.contains_rect(inter)


@given(rect_pairs())
def test_intersection_consistent_with_intersects(pair):
    a, b = pair
    assert (a.intersection(b) is not None) == a.intersects(b)


@given(rect_pairs())
def test_enlargement_non_negative(pair):
    a, b = pair
    assert a.enlargement(b) >= -1e-6 * max(1.0, a.area(), b.area())


@given(rect_pairs())
def test_contained_implies_zero_enlargement(pair):
    a, b = pair
    if a.contains_rect(b):
        assert a.enlargement(b) == 0.0


@given(rect_pairs())
def test_union_area_at_least_each(pair):
    a, b = pair
    u = a.union(b).area()
    assert u >= a.area() * (1 - 1e-12)
    assert u >= b.area() * (1 - 1e-12)


@given(rects())
def test_center_inside(r):
    assert r.contains_point(r.center)


@given(rects())
def test_perimeter_margin_relation(r):
    assert r.perimeter() == 2.0 * r.margin()


@given(st.lists(rects(), min_size=1, max_size=30))
@settings(max_examples=50)
def test_rectarray_matches_scalar_ops(rect_list):
    ra = RectArray.from_rects(rect_list)
    query = rect_list[0]
    mask = ra.intersects_rect(query)
    areas = ra.areas()
    margins = ra.margins()
    for i, r in enumerate(rect_list):
        assert mask[i] == r.intersects(query)
        assert np.isclose(areas[i], r.area(), rtol=1e-12, atol=1e-300)
        assert np.isclose(margins[i], r.margin())


@given(st.lists(rects(), min_size=1, max_size=30))
@settings(max_examples=50)
def test_rectarray_mbr_matches_fold(rect_list):
    ra = RectArray.from_rects(rect_list)
    folded = rect_list[0]
    for r in rect_list[1:]:
        folded = folded.union(r)
    assert ra.mbr() == folded


@given(st.lists(rects(), min_size=2, max_size=40), st.integers(1, 10))
@settings(max_examples=50)
def test_group_mbrs_cover_members(rect_list, group):
    ra = RectArray.from_rects(rect_list)
    sizes = []
    remaining = len(ra)
    while remaining > 0:
        take = min(group, remaining)
        sizes.append(take)
        remaining -= take
    mbrs = ra.group_mbrs(sizes)
    offset = 0
    for mbr, size in zip(mbrs, sizes):
        for i in range(offset, offset + size):
            assert mbr.contains_rect(ra[i])
        offset += size
