"""Deadline propagation: fake-clock expiry, mid-walk cancellation, and the
no-response-after-deadline guarantee at the server layer."""

import asyncio

import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.core.geometry import Rect
from repro.serve import Deadline, DeadlineExceeded, QueryServer, Request
from repro.storage import MemoryPageStore

PAGE = 4096


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestDeadline:
    def test_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock)
        assert deadline.remaining() == pytest.approx(1.0)
        assert not deadline.expired()
        clock.advance(0.999)
        deadline.check()  # still fine
        clock.advance(0.002)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="request deadline"):
            deadline.check()

    def test_check_names_the_phase(self):
        clock = FakeClock()
        deadline = Deadline.after(0.5, clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded, match="tree walk"):
            deadline.check("tree walk")

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


def _build_tree(rng, n=3_000, capacity=25, store=None):
    rects = RectArray.from_points(rng.random((n, 2)))
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=capacity,
                        store=store or MemoryPageStore(PAGE))
    return tree


class TestSearcherCancellation:
    def test_expired_deadline_aborts_the_walk_mid_tree(self, rng):
        tree = _build_tree(rng)
        searcher = tree.searcher(64)
        clock = FakeClock()
        deadline = Deadline.after(0.5, clock)

        visits = []

        def check():
            visits.append(1)
            if len(visits) == 3:
                clock.advance(1.0)  # the deadline passes mid-walk
            deadline.check()

        with pytest.raises(DeadlineExceeded):
            searcher.search_detailed(Rect((0.0, 0.0), (1.0, 1.0)),
                                     check=check)
        # The walk stopped at the expiry point instead of finishing: a
        # full scan of this tree visits far more than 3 nodes.
        assert len(visits) == 3

    def test_fresh_deadline_changes_nothing(self, rng):
        tree = _build_tree(rng)
        query = Rect((0.2, 0.2), (0.6, 0.6))
        plain = tree.searcher(64).search(query)
        deadline = Deadline.after(3600.0, FakeClock())
        checked = tree.searcher(64).search_detailed(query,
                                                    check=deadline.check)
        assert sorted(plain) == sorted(checked.ids)
        assert not checked.partial


class SlowReadStore(MemoryPageStore):
    """A store whose every read advances a fake clock (simulated latency)."""

    def __init__(self, page_size, clock, read_cost_s):
        super().__init__(page_size)
        self.clock = clock
        self.read_cost_s = read_cost_s

    def _read(self, page_id):
        """Serve the page after 'spending' simulated time on it."""
        self.clock.advance(self.read_cost_s)
        return super()._read(page_id)


class TestServerNeverAnswersLate:
    """Acceptance: with a fake clock, no success response lands after its
    deadline — even when the walk itself beats the expiry."""

    def test_slow_store_yields_deadline_exceeded_not_results(self, rng):
        clock = FakeClock()
        store = SlowReadStore(PAGE, clock, read_cost_s=0.05)
        tree = _build_tree(rng, store=store)

        async def scenario():
            server = QueryServer(tree, buffer_pages=8, clock=clock,
                                 default_deadline_s=1.0)
            # Each page read costs 0.05 simulated seconds, so a broad
            # query burns through a 0.2 s budget mid-walk.
            tight = await server.handle_request(Request(
                op="search", id=1, rect=[[0.0, 0.0], [1.0, 1.0]],
                deadline_s=0.2))
            assert tight.ok is False
            assert tight.error == "DeadlineExceeded"
            assert tight.ids is None  # no partial answer smuggled out

            # The same query with a generous budget succeeds...
            roomy = await server.handle_request(Request(
                op="search", id=2, rect=[[0.0, 0.0], [1.0, 1.0]],
                deadline_s=10_000.0))
            assert roomy.ok and not roomy.partial
            # ...and its response respected its own deadline.
            assert roomy.elapsed_s < 10_000.0
            await server.aclose()

        asyncio.run(scenario())

    def test_completed_walk_past_deadline_is_still_an_error(self, rng):
        clock = FakeClock()
        tree = _build_tree(rng)

        async def scenario():
            server = QueryServer(tree, buffer_pages=64, clock=clock)
            # Sabotage: the walk completes but the clock has already
            # passed the deadline when the result surfaces.
            original = server._run_query_blocking

            def late(payload, deadline):
                result = original(payload, deadline)
                clock.advance(5.0)
                return result

            server._run_query_blocking = late
            resp = await server.handle_request(Request(
                op="search", id=1, rect=[[0.4, 0.4], [0.5, 0.5]],
                deadline_s=1.0))
            assert resp.ok is False
            assert resp.error == "DeadlineExceeded"
            await server.aclose()

        asyncio.run(scenario())
