"""Property-based tests for bulk loading across random shapes/capacities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import RectArray
from repro.core.packing import SortTileRecursive, leaf_group_sizes
from repro.core.packing.str_ import str_slab_sizes
from repro.rtree.bulk import bulk_load
from repro.rtree.stats import measure_paged


@st.composite
def datasets(draw):
    n = draw(st.integers(1, 400))
    seed = draw(st.integers(0, 2 ** 31))
    ndim = draw(st.integers(1, 4))
    rng = np.random.default_rng(seed)
    return RectArray.from_points(rng.random((n, ndim)))


@given(datasets(), st.integers(2, 30))
@settings(max_examples=60, deadline=None)
def test_tree_geometry_invariants(rects, capacity):
    tree, report = bulk_load(rects, SortTileRecursive(), capacity=capacity)
    # Leaf count is exactly ceil(n / capacity).
    leaves = sum(1 for _, n in tree.iter_nodes() if n.is_leaf)
    assert leaves == -(-len(rects) // capacity)
    # Height is the minimum possible for this fan-out.
    height = 1
    level_nodes = leaves
    while level_nodes > 1:
        level_nodes = -(-level_nodes // capacity)
        height += 1
    assert tree.height == height
    # Every page written is reachable.
    reachable = {pid for pid, _ in tree.iter_nodes()}
    assert len(reachable) == report.pages_written


@given(datasets(), st.integers(2, 30))
@settings(max_examples=40, deadline=None)
def test_root_mbr_equals_dataset_mbr(rects, capacity):
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=capacity)
    assert tree.mbr() == rects.mbr()


@given(datasets(), st.integers(2, 30))
@settings(max_examples=40, deadline=None)
def test_quality_metrics_are_consistent(rects, capacity):
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=capacity)
    q = measure_paged(tree)
    assert q.leaf_area <= q.total_area + 1e-12
    assert q.leaf_perimeter <= q.total_perimeter + 1e-12
    assert q.node_count == tree.page_count
    # The root MBR alone lower-bounds total area at every level... at
    # least the root's own contribution is included:
    assert q.total_area >= tree.mbr().area() - 1e-12


@given(st.integers(1, 100_000), st.integers(1, 500))
@settings(max_examples=100)
def test_leaf_group_sizes_always_partition(count, capacity):
    sizes = leaf_group_sizes(count, capacity)
    assert sum(sizes) == count
    assert all(0 < s <= capacity for s in sizes)
    assert all(s == capacity for s in sizes[:-1])


@given(st.integers(1, 100_000), st.integers(1, 500), st.integers(1, 5))
@settings(max_examples=100)
def test_str_slab_sizes_always_partition(count, capacity, dims_left):
    sizes = str_slab_sizes(count, capacity, dims_left)
    assert sum(sizes) == count
    assert all(s > 0 for s in sizes)
    if dims_left == 1:
        assert sizes == [count]
    else:
        # All slabs equal except possibly the last.
        assert all(s == sizes[0] for s in sizes[:-1])
        assert sizes[-1] <= sizes[0]
