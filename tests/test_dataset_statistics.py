"""Unit tests for dataset skew statistics — and through them, the
DESIGN.md claims about each synthetic stand-in."""

import numpy as np
import pytest

from repro.core.geometry import GeometryError, RectArray
from repro.datasets import (
    airfoil_like,
    long_beach_like,
    uniform_points,
    uniform_squares,
    vlsi_like,
)
from repro.datasets.statistics import (
    dataset_card,
    morisita_index,
    quadrat_counts,
    size_spread,
    thinness,
)


class TestQuadratCounts:
    def test_shape_and_total(self, unit_points):
        counts = quadrat_counts(unit_points, bins=8)
        assert counts.shape == (8, 8)
        assert counts.sum() == len(unit_points)

    def test_bad_bins(self, unit_points):
        with pytest.raises(GeometryError):
            quadrat_counts(unit_points, bins=1)

    def test_3d_rejected(self, rng):
        with pytest.raises(GeometryError):
            quadrat_counts(RectArray.from_points(rng.random((10, 3))))


class TestMorisita:
    def test_uniform_near_one(self):
        m = morisita_index(uniform_points(20_000, seed=1))
        assert 0.9 < m < 1.1

    def test_single_cluster_far_above_one(self, rng):
        from repro.core.geometry import unit_square

        pts = rng.normal(0.5, 0.01, size=(5_000, 2))
        m = morisita_index(RectArray.from_points(np.clip(pts, 0, 1)),
                           bounds=unit_square())
        # All mass in a handful of quadrats out of 256.
        assert m > 20

    def test_frame_matters_for_tight_clusters(self, rng):
        """Within its own MBR a cluster is uniform; over the unit square
        it is extreme — the docstring's caveat, verified."""
        from repro.core.geometry import unit_square

        pts = np.clip(rng.normal(0.5, 0.01, size=(3_000, 2)), 0, 1)
        ra = RectArray.from_points(pts)
        assert morisita_index(ra) < morisita_index(
            ra, bounds=unit_square())

    def test_regular_grid_below_one(self):
        g = 32
        xs, ys = np.meshgrid(np.linspace(0, 1, g), np.linspace(0, 1, g))
        pts = np.column_stack([xs.ravel(), ys.ravel()])
        m = morisita_index(RectArray.from_points(pts), bins=8)
        assert m < 1.0

    def test_needs_two_points(self):
        one = RectArray.from_points(np.array([[0.5, 0.5]]))
        with pytest.raises(GeometryError):
            morisita_index(one)


class TestSizeSpread:
    def test_uniform_squares_bounded_spread(self):
        ra = uniform_squares(10_000, 1.0, seed=2)
        # Areas are U(0, 2a); excluding exact zeros the spread is large
        # but the robust p99/p1 spread is ~100.
        assert size_spread(ra, quantile=0.01) < 1_000

    def test_points_have_unit_spread(self):
        assert size_spread(uniform_points(100, seed=1)) == 1.0


class TestThinness:
    def test_squares_near_one(self):
        ra = uniform_squares(5_000, 1.0, seed=3)
        assert thinness(ra) > 0.9

    def test_points_reported_as_one(self):
        assert thinness(uniform_points(100, seed=1)) == 1.0


class TestDesignClaims:
    """The DESIGN.md §3 substitution arguments, as executable checks."""

    def test_tiger_standin_mildly_skewed_and_thin(self):
        card = dataset_card(long_beach_like(20_000, seed=0))
        assert 1.0 < card["morisita"] < 8.0          # mild location skew
        assert card["thinness"] < 0.25               # street segments
        assert card["empty_quadrat_fraction"] < 0.2  # no vast deserts

    def test_vlsi_standin_extreme_skew(self):
        card = dataset_card(vlsi_like(50_000, seed=0))
        assert card["morisita"] > 5.0                # heavy clustering
        assert card["max_quadrat_share"] > 0.05      # hotspot regions
        assert card["size_spread"] > 10_000          # the paper's 40,000x
        # "some [regions] covered by no rectangles at all": visible on a
        # finer grid than the default 16x16 (the 4% routing background
        # thinly covers coarse cells).
        fine = quadrat_counts(vlsi_like(50_000, seed=0), bins=48)
        assert (fine == 0).mean() > 0.05

    def test_cfd_standin_extreme_point_clustering(self):
        card = dataset_card(airfoil_like(30_000, seed=0))
        assert card["morisita"] > 20.0               # black-smudge density
        assert card["empty_quadrat_fraction"] > 0.1  # sparse far field
        assert card["max_quadrat_share"] > 0.1       # the dense window

    def test_uniform_baseline(self):
        card = dataset_card(uniform_points(20_000, seed=0))
        assert 0.9 < card["morisita"] < 1.1
        assert card["empty_quadrat_fraction"] == 0.0

    def test_skew_ordering_across_families(self):
        """CFD > VLSI > TIGER > uniform in location skew — the paper's
        four data classes in Section 5, quantified."""
        m_uniform = morisita_index(uniform_points(20_000, seed=1))
        m_tiger = morisita_index(long_beach_like(20_000, seed=1))
        m_vlsi = morisita_index(vlsi_like(20_000, seed=1))
        m_cfd = morisita_index(airfoil_like(20_000, seed=1))
        assert m_uniform < m_tiger < m_vlsi < m_cfd
