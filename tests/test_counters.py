"""Unit tests for IOStats."""

from repro.storage.counters import IOStats


def test_starts_at_zero():
    s = IOStats()
    assert s.disk_reads == s.disk_writes == 0
    assert s.buffer_hits == s.buffer_misses == 0


def test_reset():
    s = IOStats(disk_reads=5, disk_writes=2, buffer_hits=9, buffer_misses=1)
    s.reset()
    assert s.disk_reads == 0 and s.buffer_hits == 0


def test_snapshot_is_independent():
    s = IOStats(disk_reads=3)
    snap = s.snapshot()
    s.disk_reads += 10
    assert snap.disk_reads == 3


def test_checkpoint_appends_history_and_resets():
    s = IOStats(disk_reads=7)
    s.checkpoint()
    assert s.disk_reads == 0
    assert len(s.history) == 1
    assert s.history[0].disk_reads == 7


def test_total_accesses():
    s = IOStats(disk_reads=3, disk_writes=4)
    assert s.total_accesses == 7


def test_hit_ratio():
    s = IOStats(buffer_hits=3, buffer_misses=1)
    assert s.hit_ratio == 0.75


def test_hit_ratio_idle_is_zero():
    assert IOStats().hit_ratio == 0.0


def test_addition():
    a = IOStats(disk_reads=1, buffer_hits=2)
    b = IOStats(disk_reads=3, buffer_misses=4)
    c = a + b
    assert c.disk_reads == 4
    assert c.buffer_hits == 2
    assert c.buffer_misses == 4


def test_addition_wrong_type():
    try:
        IOStats() + 3
        assert False, "expected TypeError"
    except TypeError:
        pass


def test_inplace_addition():
    a = IOStats(disk_reads=1, evictions=2)
    a.checkpoint()          # give `a` some history
    a.disk_reads = 1
    b = IOStats(disk_reads=3, buffer_hits=4)
    before = a
    a += b
    assert a is before      # updates in place, no new object
    assert a.disk_reads == 4
    assert a.buffer_hits == 4
    assert len(a.history) == 1   # history survives +=
    assert b.disk_reads == 3     # right-hand side untouched


def test_inplace_addition_wrong_type():
    a = IOStats()
    try:
        a += "nope"
        assert False, "expected TypeError"
    except TypeError:
        pass


def test_as_dict_has_all_fields():
    s = IOStats(disk_reads=1, disk_writes=2, buffer_hits=3,
                buffer_misses=4, evictions=5)
    assert s.as_dict() == {
        "disk_reads": 1,
        "disk_writes": 2,
        "buffer_hits": 3,
        "buffer_misses": 4,
        "evictions": 5,
    }


def test_snapshot_drops_history():
    s = IOStats(disk_reads=7)
    s.checkpoint()
    s.disk_reads = 2
    snap = s.snapshot()
    assert snap.disk_reads == 2
    assert not snap.history      # documented: counters only, no history


def test_evictions_counted_by_buffer_pool():
    from repro.storage.buffer import BufferPool

    pool = BufferPool(2, fetch=lambda key: key)
    for page_id in range(4):
        pool.get(page_id)
    assert pool.stats.evictions == 2
    assert pool.stats.buffer_misses == 4


def test_equality_compares_counters():
    assert IOStats(disk_reads=1) == IOStats(disk_reads=1)
    assert IOStats(disk_reads=1) != IOStats(disk_reads=2)
