"""Unit tests for IOStats."""

from repro.storage.counters import IOStats


def test_starts_at_zero():
    s = IOStats()
    assert s.disk_reads == s.disk_writes == 0
    assert s.buffer_hits == s.buffer_misses == 0


def test_reset():
    s = IOStats(disk_reads=5, disk_writes=2, buffer_hits=9, buffer_misses=1)
    s.reset()
    assert s.disk_reads == 0 and s.buffer_hits == 0


def test_snapshot_is_independent():
    s = IOStats(disk_reads=3)
    snap = s.snapshot()
    s.disk_reads += 10
    assert snap.disk_reads == 3


def test_checkpoint_appends_history_and_resets():
    s = IOStats(disk_reads=7)
    s.checkpoint()
    assert s.disk_reads == 0
    assert len(s.history) == 1
    assert s.history[0].disk_reads == 7


def test_total_accesses():
    s = IOStats(disk_reads=3, disk_writes=4)
    assert s.total_accesses == 7


def test_hit_ratio():
    s = IOStats(buffer_hits=3, buffer_misses=1)
    assert s.hit_ratio == 0.75


def test_hit_ratio_idle_is_zero():
    assert IOStats().hit_ratio == 0.0


def test_addition():
    a = IOStats(disk_reads=1, buffer_hits=2)
    b = IOStats(disk_reads=3, buffer_misses=4)
    c = a + b
    assert c.disk_reads == 4
    assert c.buffer_hits == 2
    assert c.buffer_misses == 4


def test_addition_wrong_type():
    try:
        IOStats() + 3
        assert False, "expected TypeError"
    except TypeError:
        pass
