"""Edge cases and regression tests across modules."""

import numpy as np
import pytest

from repro import (
    HilbertSort,
    NearestX,
    Rect,
    RectArray,
    RStarTree,
    SortTileRecursive,
    bulk_load,
    validate_paged,
)
from repro.rtree.validate import validate_dynamic


class TestRStarDetachedNodeRegression:
    """Regression: R* forced re-insertion used to let a nested split
    detach a node that the suspended upward walk then re-split as a fake
    root, silently discarding most of the tree (first seen at insert #25,
    capacity 5, seed 0)."""

    def test_exact_historical_sequence(self):
        rng = np.random.default_rng(0)
        pts = rng.random((60, 2))
        tree = RStarTree(capacity=5)
        for i, p in enumerate(pts):
            tree.insert(Rect.from_point(tuple(p)), i)
            validate_dynamic(tree, range(i + 1))

    @pytest.mark.parametrize("seed", range(5))
    def test_small_capacity_fuzz(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((150, 2))
        tree = RStarTree(capacity=4)
        for i, p in enumerate(pts):
            tree.insert(Rect.from_point(tuple(p)), i)
        validate_dynamic(tree, range(150))


class TestOneDimensional:
    """k = 1: 'already handled well by regular B-trees' (Section 2.2), but
    the library must still behave."""

    def test_str_1d_end_to_end(self, rng):
        pts = rng.random((500, 1))
        tree, _ = bulk_load(RectArray.from_points(pts),
                            SortTileRecursive(), capacity=10)
        validate_paged(tree, range(500))
        q = Rect((0.25,), (0.5,))
        got = tree.searcher(4).search(q)
        want = ((pts[:, 0] >= 0.25) & (pts[:, 0] <= 0.5)).sum()
        assert got.size == want

    def test_1d_leaves_are_intervals_in_order(self, rng):
        pts = rng.random((200, 1))
        ra = RectArray.from_points(pts)
        perm = SortTileRecursive().order(ra, 20)
        assert (np.diff(pts[perm, 0]) >= 0).all()

    def test_hilbert_1d(self, rng):
        pts = rng.random((100, 1))
        tree, _ = bulk_load(RectArray.from_points(pts), HilbertSort(),
                            capacity=10)
        validate_paged(tree, range(100))


class TestDeepTrees:
    def test_capacity_two_tree(self, rng):
        """Minimum capacity gives the deepest tree; all paths must work."""
        pts = rng.random((300, 2))
        tree, _ = bulk_load(RectArray.from_points(pts),
                            SortTileRecursive(), capacity=2)
        assert tree.height >= 8
        validate_paged(tree, range(300))
        got = tree.searcher(4).search(Rect((0, 0), (1, 1)))
        assert got.size == 300

    def test_level_summaries_deep(self, rng):
        pts = rng.random((256, 2))
        tree, _ = bulk_load(RectArray.from_points(pts),
                            SortTileRecursive(), capacity=4)
        summaries = tree.level_summaries()
        assert [s.level for s in summaries] == list(
            range(tree.height - 1, -1, -1))
        assert summaries[-1].entry_count == 256
        assert summaries[0].node_count == 1


class TestSearcherPolicies:
    """Replacement policy changes the miss count, never the results."""

    @pytest.mark.parametrize("policy", ["lru", "fifo", "clock"])
    def test_results_identical_across_policies(self, rng, policy):
        pts = rng.random((2_000, 2))
        tree, _ = bulk_load(RectArray.from_points(pts),
                            SortTileRecursive(), capacity=50)
        baseline = tree.searcher(8, policy="lru")
        other = tree.searcher(8, policy=policy)
        for lo in rng.random((50, 2)) * 0.8:
            q = Rect(tuple(lo), tuple(lo + 0.2))
            assert set(other.search(q).tolist()) == set(
                baseline.search(q).tolist())


class TestDataIdVarieties:
    def test_negative_and_duplicate_ids(self, rng):
        pts = rng.random((100, 2))
        ids = np.array([-5] * 50 + list(range(50)), dtype=np.int64)
        tree, _ = bulk_load(RectArray.from_points(pts), NearestX(),
                            data_ids=ids, capacity=10)
        validate_paged(tree, ids)
        got = tree.searcher(4).search(Rect((0, 0), (1, 1)))
        assert sorted(got.tolist()) == sorted(ids.tolist())

    def test_huge_ids_survive_codec(self, rng):
        pts = rng.random((20, 2))
        ids = np.arange(20, dtype=np.int64) + 2 ** 60
        tree, _ = bulk_load(RectArray.from_points(pts),
                            SortTileRecursive(), data_ids=ids, capacity=5)
        got = tree.searcher(4).search(Rect((0, 0), (1, 1)))
        assert sorted(got.tolist()) == ids.tolist()


class TestDegenerateGeometry:
    def test_all_points_identical(self, rng):
        pts = np.full((500, 2), 0.5)
        for algo in (SortTileRecursive(), HilbertSort(), NearestX()):
            tree, _ = bulk_load(RectArray.from_points(pts), algo,
                                capacity=10)
            validate_paged(tree, range(500))
            assert tree.searcher(4).point_query((0.5, 0.5)).size == 500

    def test_collinear_points(self, rng):
        xs = rng.random(300)
        pts = np.column_stack([xs, np.full(300, 0.5)])
        for algo in (SortTileRecursive(), HilbertSort()):
            tree, _ = bulk_load(RectArray.from_points(pts), algo,
                                capacity=10)
            validate_paged(tree, range(300))

    def test_full_space_rectangles(self):
        ra = RectArray(np.zeros((50, 2)), np.ones((50, 2)))
        tree, _ = bulk_load(ra, SortTileRecursive(), capacity=10)
        validate_paged(tree, range(50))
        assert tree.searcher(4).point_query((0.7, 0.7)).size == 50

    def test_tiny_coordinate_scale(self, rng):
        """Everything must survive data far from the unit square."""
        pts = rng.random((200, 2)) * 1e-9 + 1e6
        tree, _ = bulk_load(RectArray.from_points(pts), HilbertSort(),
                            capacity=10)
        validate_paged(tree, range(200))
        got = tree.searcher(4).search(tree.mbr())
        assert got.size == 200
