"""DeltaTree semantics: last-writer-wins upserts, tombstones, the bulk
``insert_many``/``apply_many`` fast paths matching one-op application
exactly, and the ``ingest.*`` metric counters."""

import numpy as np
import pytest

from repro.core.geometry import GeometryError, Rect, RectArray
from repro.ingest.delta import DeltaTree
from repro.ingest.wal import IngestError, WalOp
from repro.obs import runtime as obs

NDIM = 2


def _rect(i: int, size: float = 1.0) -> Rect:
    return Rect((float(i), float(i)),
                (float(i) + size, float(i) + size))


def _random_rects(rng, n):
    lo = rng.random((n, NDIM)) * 0.9
    return RectArray(lo, lo + rng.random((n, NDIM)) * 0.1)


class TestUpsertsAndTombstones:
    def test_insert_get_len(self):
        d = DeltaTree(NDIM)
        d.insert(7, _rect(7))
        assert len(d) == 1
        assert d.get(7) == _rect(7)
        assert d.overridden == {7}
        assert not d.is_tombstoned(7)

    def test_upsert_replaces_and_moves_in_index(self):
        d = DeltaTree(NDIM)
        d.insert(1, _rect(0))
        d.insert(1, _rect(10))
        assert len(d) == 1
        assert d.get(1) == _rect(10)
        assert d.search(_rect(0, 0.5)) == []
        assert d.search(_rect(10, 0.5)) == [1]

    def test_delete_tombstones_even_base_only_ids(self):
        d = DeltaTree(NDIM)
        assert d.delete(42) is False  # not in this layer, still marks
        assert d.is_tombstoned(42)
        assert d.overridden == {42}
        d.insert(1, _rect(1))
        assert d.delete(1) is True
        assert len(d) == 0 and d.tombstone_count == 2
        assert d.search(_rect(1, 0.5)) == []

    def test_reinsert_clears_tombstone(self):
        d = DeltaTree(NDIM)
        d.delete(5)
        d.insert(5, _rect(5))
        assert not d.is_tombstoned(5)
        assert d.get(5) == _rect(5)
        assert d.overridden == {5}  # still shadows the base

    def test_dimension_mismatch_rejected(self):
        d = DeltaTree(2)
        with pytest.raises(GeometryError):
            d.insert(1, Rect((0.0,), (1.0,)))


class TestBulkPaths:
    def test_insert_many_matches_sequential(self, rng):
        rects = _random_rects(rng, 100)
        ids = list(range(100))
        bulk = DeltaTree(NDIM)
        bulk.insert_many(rects, ids)
        slow = DeltaTree(NDIM)
        for i, r in zip(ids, rects):
            slow.insert(i, r)
        assert len(bulk) == len(slow) == 100
        for q in _random_rects(rng, 20):
            assert sorted(bulk.search(q)) == sorted(slow.search(q))

    def test_insert_many_with_duplicates_is_last_writer_wins(self):
        d = DeltaTree(NDIM)
        rects = RectArray.from_rects([_rect(0), _rect(5), _rect(9)])
        d.insert_many(rects, [1, 2, 1])
        assert len(d) == 2
        assert d.get(1) == _rect(9)

    def test_insert_many_over_existing_replaces(self):
        d = DeltaTree(NDIM)
        d.insert(3, _rect(0))
        d.insert_many(RectArray.from_rects([_rect(8)]), [3])
        assert d.get(3) == _rect(8)
        assert d.search(_rect(0, 0.5)) == []

    def test_insert_many_length_mismatch(self):
        d = DeltaTree(NDIM)
        with pytest.raises(IngestError):
            d.insert_many(RectArray.from_rects([_rect(1)]), [1, 2])

    def test_apply_many_equals_one_by_one(self, rng):
        ops = []
        lsn = 0
        for i in range(120):
            lsn += 1
            roll = rng.random()
            data_id = int(rng.integers(0, 40))
            if roll < 0.7:
                ops.append(WalOp(lsn, "insert", data_id, _rect(data_id)))
            else:
                ops.append(WalOp(lsn, "delete", data_id, None))
        batched = DeltaTree(NDIM)
        assert batched.apply_many(ops) == len(ops)
        single = DeltaTree(NDIM)
        for op in ops:
            single.apply(op)
        assert dict(batched.items()) == dict(single.items())
        assert batched.tombstone_count == single.tombstone_count
        assert batched.overridden == single.overridden
        for q in _random_rects(rng, 20):
            assert sorted(batched.search(q)) == sorted(single.search(q))

    def test_apply_rejects_malformed_ops(self):
        d = DeltaTree(NDIM)
        with pytest.raises(IngestError):
            d.apply(WalOp(1, "insert", 1, None))
        with pytest.raises(IngestError):
            d.apply(WalOp(1, "upsert", 1, _rect(1)))


class TestKnnCandidates:
    def test_distances_and_exclusion(self):
        d = DeltaTree(NDIM)
        d.insert(1, Rect((0.0, 0.0), (1.0, 1.0)))
        d.insert(2, Rect((3.0, 0.0), (4.0, 1.0)))
        got = dict(d.knn_candidates((0.5, 0.5)))
        assert got[1] == 0.0         # containing rect is distance 0
        assert got[2] == pytest.approx(2.5)
        only = d.knn_candidates((0.5, 0.5), exclude={1})
        assert [i for i, _ in only] == [2]

    def test_empty_delta(self):
        assert DeltaTree(NDIM).knn_candidates((0.0, 0.0)) == []

    def test_point_dimension_mismatch(self):
        d = DeltaTree(NDIM)
        d.insert(1, _rect(1))
        with pytest.raises(GeometryError):
            d.knn_candidates((0.0, 0.0, 0.0))


class TestMetrics:
    def test_delta_ops_counters(self):
        with obs.telemetry() as (_, registry):
            d = DeltaTree(NDIM)
            d.insert(1, _rect(1))
            d.insert_many(
                RectArray.from_rects([_rect(2), _rect(3)]), [2, 3])
            d.delete(2)
            ins = registry.counter("ingest.delta_ops", op="insert")
            dels = registry.counter("ingest.delta_ops", op="delete")
            assert ins.value == 3
            assert dels.value == 1
