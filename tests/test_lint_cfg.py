"""CFG-builder unit tests: the graph shapes the flow-sensitive rules
stand on.

Each test parses a small function, builds its CFG, and asserts the
structural facts a rule would rely on: which nodes exist, where normal
and exceptional edges lead, which ``with`` regions a node executes
under, and that jumps (`return`/`break`/`continue`) run their cleanup
chains.  Reachability is probed with a trivial dataflow pass rather
than hand-walked edge lists, so the assertions survive node-numbering
changes.
"""

import ast

import pytest

from repro.lint.cfg import (
    build_cfg,
    calls_in,
    functions,
    header_exprs,
    stmt_awaits,
)
from repro.lint.dataflow import run_forward


def cfg_of(source, name=None):
    tree = ast.parse(source)
    funcs = dict(functions(tree))
    func = funcs[name] if name else next(iter(funcs.values()))
    return build_cfg(func)


def reachable_before(cfg):
    """node id -> set of statement texts on some path before it."""
    def text(node):
        return ast.unparse(node.stmt).split("\n")[0] if node.stmt else ""

    sol = run_forward(
        cfg, init=frozenset(),
        transfer=lambda node, s: s | {text(node)} if text(node) else s,
        merge=lambda a, b: a | b)
    return sol


def stmt_nodes(cfg, fragment):
    # match on the first line only: a compound statement's unparse
    # includes its whole body, which would shadow body fragments
    return [n for n in cfg.nodes
            if n.stmt is not None and n.kind == "stmt"
            and fragment in ast.unparse(n.stmt).split("\n")[0]]


# -- basic shapes -------------------------------------------------------------


def test_straight_line_reaches_exit():
    cfg = cfg_of("def f():\n    a = 1\n    b = 2\n")
    sol = reachable_before(cfg)
    assert sol.before[cfg.exit] == {"a = 1", "b = 2"}


def test_branch_joins_at_exit():
    cfg = cfg_of(
        "def f(p):\n"
        "    if p:\n"
        "        a = 1\n"
        "    else:\n"
        "        b = 2\n"
        "    c = 3\n")
    sol = reachable_before(cfg)
    # both arms reach the join; neither dominates it
    assert "c = 3" in sol.before[cfg.exit]
    (c_node,) = stmt_nodes(cfg, "c = 3")
    assert "a = 1" in sol.before[c_node.id]
    assert "b = 2" in sol.before[c_node.id]


def test_if_without_else_keeps_fallthrough_edge():
    cfg = cfg_of("def f(p):\n    if p:\n        a = 1\n    b = 2\n")
    (b_node,) = stmt_nodes(cfg, "b = 2")
    # a path skipping the body exists: dataflow must merge {} in
    sol = run_forward(
        cfg, init=True,
        transfer=lambda node, s: (False if node.stmt is not None
                                  and ast.unparse(node.stmt).startswith("a = 1")
                                  and node.kind == "stmt"
                                  else s),
        merge=lambda a, b: a or b)
    assert sol.before[b_node.id] is True  # the skip path survives


def test_loop_has_back_edge_and_exit():
    cfg = cfg_of(
        "def f(n):\n"
        "    while n:\n"
        "        n -= 1\n"
        "    return n\n")
    (header,) = stmt_nodes(cfg, "while n")
    (body,) = stmt_nodes(cfg, "n -= 1")
    assert any(e.dst == header.id for e in body.edges)  # back edge
    sol = reachable_before(cfg)
    assert "n -= 1" in sol.before[cfg.exit]  # loop body reaches exit


def test_while_true_without_break_never_falls_through():
    cfg = cfg_of(
        "def f():\n"
        "    while True:\n"
        "        pass\n"
        "    unreachable = 1\n")
    (after,) = stmt_nodes(cfg, "unreachable = 1")
    sol = reachable_before(cfg)
    assert sol.before[after.id] is None


def test_break_exits_the_loop():
    cfg = cfg_of(
        "def f(n):\n"
        "    while True:\n"
        "        if n:\n"
        "            break\n"
        "    after = 1\n")
    (after,) = stmt_nodes(cfg, "after = 1")
    sol = reachable_before(cfg)
    assert sol.before[after.id] is not None


def test_continue_returns_to_header():
    cfg = cfg_of(
        "def f(xs):\n"
        "    for x in xs:\n"
        "        if x:\n"
        "            continue\n"
        "        body = 1\n")
    (header,) = stmt_nodes(cfg, "for x in xs")
    cont = [n for n in cfg.nodes
            if isinstance(n.stmt, ast.Continue)][0]
    assert any(e.dst == header.id for e in cont.edges)


# -- exception edges ----------------------------------------------------------


def test_statements_have_exception_edges_to_raise_exit():
    cfg = cfg_of("def f(p):\n    x = g(p)\n")
    (node,) = stmt_nodes(cfg, "x = g(p)")
    assert any(e.dst == cfg.raise_exit and e.exceptional
               for e in node.edges)


def test_try_except_routes_body_exceptions_to_handler():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    except ValueError:\n"
        "        handled = 1\n")
    (risky,) = stmt_nodes(cfg, "risky()")
    handler_entries = [n for n in cfg.nodes if n.kind == "except"]
    assert len(handler_entries) == 1
    assert any(e.dst == handler_entries[0].id and e.exceptional
               for e in risky.edges)
    sol = reachable_before(cfg)
    assert "handled = 1" in sol.before[cfg.exit]


def test_exceptional_edge_carries_in_state():
    # The acquiring statement's own exception edge must NOT carry the
    # acquisition: `x = open(p)` raising inside open() acquired nothing.
    cfg = cfg_of("def f(p):\n    x = acquire(p)\n")
    (node,) = stmt_nodes(cfg, "x = acquire(p)")
    sol = run_forward(
        cfg, init="clean",
        transfer=lambda n, s: ("acquired" if n.stmt is not None
                               and "acquire" in ast.unparse(n.stmt)
                               else s),
        merge=lambda a, b: a if a == b else "merged")
    assert sol.before[cfg.raise_exit] == "clean"
    assert sol.before[cfg.exit] == "acquired"


def test_finally_runs_on_normal_return_and_exception_paths():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        x = risky()\n"
        "        return x\n"
        "    finally:\n"
        "        cleanup()\n")
    sol = reachable_before(cfg)
    # the return path runs the finally copy before reaching exit…
    assert "cleanup()" in sol.before[cfg.exit]
    # …and the exception path runs its own copy before raise-exit
    assert "cleanup()" in sol.before[cfg.raise_exit]


def test_finally_copies_keep_paths_apart():
    # Flow-sensitivity point: the return-path finally copy must not
    # inherit the exception path's state.  Count distinct cleanup()
    # statement nodes: one per path.
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        return risky()\n"
        "    finally:\n"
        "        cleanup()\n")
    copies = stmt_nodes(cfg, "cleanup()")
    assert len(copies) >= 2


def test_except_else_finally_all_reach_exit():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        body()\n"
        "    except OSError:\n"
        "        handled()\n"
        "    else:\n"
        "        succeeded()\n"
        "    finally:\n"
        "        cleanup()\n")
    sol = reachable_before(cfg)
    assert {"handled()", "succeeded()", "cleanup()"} <= sol.before[cfg.exit]


# -- with regions -------------------------------------------------------------


def test_with_body_records_the_region():
    cfg = cfg_of(
        "def f(lock):\n"
        "    before = 1\n"
        "    with lock:\n"
        "        inside = 1\n"
        "    after = 1\n")
    (before,) = stmt_nodes(cfg, "before = 1")
    (inside,) = stmt_nodes(cfg, "inside = 1")
    (after,) = stmt_nodes(cfg, "after = 1")
    assert before.with_stack == ()
    assert after.with_stack == ()
    assert len(inside.with_stack) == 1
    assert inside.with_stack[0].context_names == ("lock",)
    assert inside.with_stack[0].is_async is False


def test_async_with_region_is_marked_async():
    cfg = cfg_of(
        "async def f(self):\n"
        "    async with self._lock:\n"
        "        inside = 1\n")
    (inside,) = stmt_nodes(cfg, "inside = 1")
    assert inside.with_stack[0].is_async is True
    assert inside.with_stack[0].context_names == ("self._lock",)


def test_with_header_is_outside_its_own_region():
    # The lock-acquire await happens before the region exists.
    cfg = cfg_of(
        "async def f(self):\n"
        "    async with self._lock:\n"
        "        inside = 1\n")
    headers = [n for n in cfg.nodes
               if isinstance(n.stmt, ast.AsyncWith) and n.kind == "stmt"]
    assert headers and all(h.with_stack == () for h in headers)


def test_with_exit_nodes_exist_on_both_paths():
    cfg = cfg_of(
        "def f(p):\n"
        "    with open(p) as f:\n"
        "        f.read()\n")
    exits = [n for n in cfg.nodes if n.kind == "with-exit"]
    assert len(exits) == 2  # normal + exceptional
    # the exceptional one forwards to raise-exit NON-exceptionally
    # (__exit__ completed before the exception continued outward)
    forwarding = [n for n in exits
                  if any(e.dst == cfg.raise_exit for e in n.edges)]
    assert forwarding
    assert all(not e.exceptional for n in forwarding for e in n.edges)


def test_return_inside_with_runs_the_with_exit():
    cfg = cfg_of(
        "def f(p):\n"
        "    with open(p) as f:\n"
        "        return f.read()\n")
    ret = [n for n in cfg.nodes if isinstance(n.stmt, ast.Return)][0]
    # the return's successor chain passes a with-exit before exit
    (succ,) = [e.dst for e in ret.edges if not e.exceptional]
    assert cfg.nodes[succ].kind == "with-exit"
    assert any(e.dst == cfg.exit for e in cfg.nodes[succ].edges)


def test_break_inside_with_inside_loop_runs_the_with_exit():
    cfg = cfg_of(
        "def f(xs, lock):\n"
        "    for x in xs:\n"
        "        with lock:\n"
        "            if x:\n"
        "                break\n"
        "    after = 1\n")
    brk = [n for n in cfg.nodes if isinstance(n.stmt, ast.Break)][0]
    (succ,) = [e.dst for e in brk.edges]
    assert cfg.nodes[succ].kind == "with-exit"


# -- helpers ------------------------------------------------------------------


def test_functions_yields_qualnames():
    tree = ast.parse(
        "class A:\n"
        "    def m(self):\n"
        "        def inner():\n"
        "            pass\n"
        "async def top():\n"
        "    pass\n")
    names = [qn for qn, _ in functions(tree)]
    assert names == ["A.m", "A.m.<locals>.inner", "top"]


def test_header_exprs_compound_statements():
    stmt = ast.parse("if a > b:\n    x = 1\n").body[0]
    assert [ast.unparse(e) for e in header_exprs(stmt)] == ["a > b"]
    stmt = ast.parse("for i in range(3):\n    pass\n").body[0]
    assert "range(3)" in [ast.unparse(e) for e in header_exprs(stmt)]
    stmt = ast.parse("with open(p) as f:\n    pass\n").body[0]
    texts = [ast.unparse(e) for e in header_exprs(stmt)]
    assert "open(p)" in texts and "f" in texts


def test_header_exprs_skip_block_bodies():
    stmt = ast.parse("if p:\n    hidden()\n").body[0]
    assert all("hidden" not in ast.unparse(e)
               for e in header_exprs(stmt))


def test_calls_in_evaluation_order_and_scope_opacity():
    stmt = ast.parse("x = outer(inner())\n").body[0]
    names = [ast.unparse(c.func) for c in calls_in(stmt)]
    assert names == ["inner", "outer"]  # args before the call
    stmt = ast.parse("f = lambda: hidden()\n").body[0]
    assert calls_in(stmt) == []


@pytest.mark.parametrize("source, expected", [
    ("await f()\n", True),
    ("x = await f()\n", True),
    ("x = f()\n", False),
    ("async for i in it:\n    pass\n", True),
    ("async with cm:\n    pass\n", True),
])
def test_stmt_awaits(source, expected):
    module = ast.parse(f"async def f():\n"
                       + "".join(f"    {line}\n"
                                 for line in source.splitlines()))
    stmt = module.body[0].body[0]
    assert stmt_awaits(stmt) is expected


def test_stmt_awaits_is_header_only():
    # an await in the body must not make the `if` header a suspension
    module = ast.parse(
        "async def f(p):\n"
        "    if p:\n"
        "        await g()\n")
    if_stmt = module.body[0].body[0]
    assert stmt_awaits(if_stmt) is False
    assert stmt_awaits(if_stmt.body[0]) is True
