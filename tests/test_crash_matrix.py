"""The crash matrix: kill a durable bulk load at *every* physical write.

This is the property test the durability layer exists to pass.  One clean
instrumented run of a 10,000-rectangle bulk load counts the physical file
writes W (journal appends, in-place page writes, superblock slots).  The
matrix then reruns the identical build W times with a
:class:`~repro.storage.faults.CrashPlan` killing the store at write i —
cycling through clean crashes and torn writes of 1 byte, half a page, and
all-but-one byte — and after every kill:

* reopen must succeed or refuse *precisely* (no exception escapes fsck);
* ``fsck`` must come back clean, or report that the build never committed;
* when the tree did commit, region queries against the recovered file must
  return exactly what a clean in-memory rebuild returns.

On failure the offending fsck report is dumped as JSON (to
``$REPRO_FSCK_REPORT_DIR`` when set — CI uploads it as an artifact).
"""

import json
import os

import numpy as np
import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.fsck import fsck
from repro.queries import region_queries
from repro.rtree.paged import PagedRTree
from repro.storage import (
    CrashPlan,
    FilePageStore,
    IntegrityError,
    SimulatedCrash,
    StoreError,
)
from repro.storage.integrity import SUPERBLOCK_SLOTS, TRAILER_SIZE
from repro.storage.page import required_page_size

N_RECTS = 10_000
CAPACITY = 100
PAGE_SIZE = required_page_size(CAPACITY, 2) + TRAILER_SIZE


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(20260806)
    lo = rng.random((N_RECTS, 2)) * 0.99
    return RectArray(lo, lo + rng.random((N_RECTS, 2)) * 0.01)


@pytest.fixture(scope="module")
def oracle(dataset):
    """Query answers from a clean, never-crashed in-memory build."""
    tree, _ = bulk_load(dataset, SortTileRecursive(), capacity=CAPACITY)
    searcher = tree.searcher(50)
    queries = region_queries(0.05, 20, seed=7)
    return queries, [np.sort(searcher.search(q)).tolist() for q in queries]


def _build(path, dataset, crash_plan=None):
    """One durable build; returns the store (caller closes)."""
    store = FilePageStore(path, PAGE_SIZE, checksums=True, journal=True,
                          crash_plan=crash_plan)
    try:
        bulk_load(dataset, SortTileRecursive(), capacity=CAPACITY,
                  store=store)
    except BaseException:
        store.close()
        raise
    return store


def _answers(store, queries):
    searcher = PagedRTree.from_store(store).searcher(50)
    return [np.sort(searcher.search(q)).tolist() for q in queries]


def _dump_report(report, crash_point, tear):
    out_dir = os.environ.get("REPRO_FSCK_REPORT_DIR")
    if not out_dir:
        return ""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"fsck-crash{crash_point}-tear{tear}.json")
    with open(path, "w") as f:
        json.dump(report.as_dict(), f, indent=2)
    return f" (report: {path})"


def test_crash_at_every_write_boundary(tmp_path, dataset, oracle):
    queries, expected = oracle

    # Clean instrumented run: learn W without crashing.
    counter = CrashPlan(at_write=10 ** 9)
    path = tmp_path / "clean.pages"
    store = _build(path, dataset, crash_plan=counter)
    store.close()
    total_writes = counter.writes_seen
    assert total_writes > 2 * (N_RECTS // CAPACITY)  # journal + in-place
    clean_report = fsck(path)
    assert clean_report.clean, clean_report.render()

    tears = [None, 1, PAGE_SIZE // 2, PAGE_SIZE - 1]
    committed = refused = 0
    for crash_point in range(total_writes):
        tear = tears[crash_point % len(tears)]
        path = tmp_path / "crash.pages"
        for sidecar in (path, tmp_path / "crash.pages.journal"):
            if sidecar.exists():
                sidecar.unlink()

        store = None
        with pytest.raises(SimulatedCrash):
            store = _build(path, dataset,
                           CrashPlan(at_write=crash_point, tear_bytes=tear))
            store.close()  # the crash can fire inside the final flush
        if store is not None:
            store.close()  # abandons: a crashed store must not heal itself

        report = fsck(path)
        where = f"crash at write {crash_point}, tear={tear}"
        if report.fatal is not None:
            # Precise refusal — and reattaching must refuse too, never
            # serve a half-written tree.
            refused += 1
            with pytest.raises((StoreError, IntegrityError)):
                PagedRTree.from_store(FilePageStore.open_existing(path))
            continue
        assert report.clean, (
            f"{where}: {report.render()}"
            f"{_dump_report(report, crash_point, tear)}"
        )
        assert report.tree is not None
        committed += 1
        # The recovered tree answers queries exactly like the clean build.
        recovered = FilePageStore.open_existing(path)
        try:
            assert _answers(recovered, queries) == expected, where
        finally:
            recovered.close()

    # Sanity on the matrix itself: both outcomes must actually occur —
    # early crashes refuse, crashes after the commit point recover.
    assert refused > 0
    assert committed > 0


def test_torn_overwrite_of_committed_tree_is_repaired(tmp_path, dataset,
                                                      oracle):
    """Journal *replay* (not just discard): crash between journaling a
    page rewrite and completing the in-place write, scribble over the
    half-written page, and the journaled image must heal it on reopen."""
    queries, expected = oracle
    path = tmp_path / "steady.pages"
    store = _build(path, dataset)
    store.close()

    store = FilePageStore.open_existing(path)
    victim = 0
    image = store.peek_page(victim)
    # Physical writes after reopen: the rewrite appends its journal record
    # (write 0), then the plan kills the in-place write (write 1).
    store._crash_plan = CrashPlan(at_write=1, tear_bytes=None)
    with pytest.raises(SimulatedCrash):
        store.write_page(victim, image)
    store.close()
    # The torn in-place write left garbage where the page starts.
    with open(path, "r+b") as f:
        f.seek((SUPERBLOCK_SLOTS + victim) * PAGE_SIZE)
        f.write(b"\xde\xad\xbe\xef" * 32)

    report = fsck(path)
    assert report.journal_recovered and report.recovered_pages == 1, \
        report.render()
    assert report.clean, report.render()
    recovered = FilePageStore.open_existing(path)
    try:
        assert recovered.recoveries == 0  # fsck already replayed it
        assert _answers(recovered, queries) == expected
    finally:
        recovered.close()
