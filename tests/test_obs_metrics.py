"""Unit tests for the metrics registry."""

import json

import pytest

from repro.obs import MetricsError, MetricsRegistry


class TestCounter:
    def test_inc(self):
        r = MetricsRegistry()
        c = r.counter("io.disk_reads")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(MetricsError):
            c.inc(-1)

    def test_get_or_create_returns_same_object(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a", algo="STR") is r.counter("a", algo="STR")

    def test_labels_distinguish_series(self):
        r = MetricsRegistry()
        r.counter("a", algo="STR").inc(1)
        r.counter("a", algo="HS").inc(2)
        assert r.counter("a", algo="STR").value == 1
        assert r.counter("a", algo="HS").value == 2

    def test_label_order_irrelevant(self):
        r = MetricsRegistry()
        assert r.counter("a", x=1, y=2) is r.counter("a", y=2, x=1)


class TestGauge:
    def test_set(self):
        g = MetricsRegistry().gauge("tree.height")
        assert g.value is None
        g.set(4)
        assert g.value == 4


class TestHistogram:
    def test_observe_and_stats(self):
        h = MetricsRegistry().histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0
        assert h.percentile(50) == 2.5

    def test_empty_percentile_is_nan(self):
        h = MetricsRegistry().histogram("lat")
        assert h.percentile(50) != h.percentile(50)  # NaN
        assert h.snapshot_value() == {"count": 0}

    def test_bad_percentile_rejected(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(1.0)
        with pytest.raises(MetricsError):
            h.percentile(101)

    def test_snapshot_summary(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        snap = h.snapshot_value()
        assert snap["count"] == 100
        assert snap["min"] == 1.0
        assert snap["max"] == 100.0
        assert snap["p50"] == pytest.approx(50.5)
        assert snap["p90"] <= snap["p99"] <= snap["max"]


class TestRegistry:
    def test_type_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(MetricsError):
            r.gauge("x")

    def test_empty_name_rejected(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("")

    def test_names_sorted_distinct(self):
        r = MetricsRegistry()
        r.counter("b", k=1)
        r.counter("b", k=2)
        r.gauge("a")
        assert r.names() == ["a", "b"]

    def test_get_existing_or_none(self):
        r = MetricsRegistry()
        c = r.counter("x", a=1)
        assert r.get("x", a=1) is c
        assert r.get("x", a=2) is None
        assert r.get("y") is None

    def test_reset_zeroes_but_keeps_registration(self):
        r = MetricsRegistry()
        r.counter("c").inc(5)
        r.gauge("g").set(2)
        r.histogram("h").observe(1.0)
        r.reset()
        assert r.counter("c").value == 0
        assert r.gauge("g").value is None
        assert r.histogram("h").count == 0
        assert len(r) == 3

    def test_snapshot_is_jsonable_and_stable(self):
        r = MetricsRegistry()
        r.counter("io.reads", algo="STR").inc(3)
        r.gauge("tree.height").set(2)
        r.histogram("lat").observe(0.5)
        snap = r.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["io.reads"][0]["value"] == 3
        assert snap["io.reads"][0]["kind"] == "counter"
        assert snap["io.reads"][0]["labels"] == {"algo": "STR"}
        assert snap == r.as_dict()


class TestMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.merge(b)
        assert a.counter("c").value == 3

    def test_gauges_last_writer_wins_when_set(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1)
        b.gauge("g")          # registered but never set
        a.merge(b)
        assert a.gauge("g").value == 1
        b.gauge("g").set(9)
        a.merge(b)
        assert a.gauge("g").value == 9

    def test_histograms_concatenate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(2.0)
        a.merge(b)
        assert a.histogram("h").count == 2
        assert a.histogram("h").total == 3.0

    def test_merge_creates_missing_metrics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("only.in.b", shard=1).inc(7)
        a.merge(b)
        assert a.counter("only.in.b", shard=1).value == 7

    def test_merge_type_conflict_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b_g = b.gauge("x")
        b_g.set(1)
        with pytest.raises(MetricsError):
            a.merge(b)

    def test_merge_is_additive_not_aliasing(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(1)
        a.merge(b)
        b.counter("c").inc(10)
        assert a.counter("c").value == 1
