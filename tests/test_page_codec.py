"""Unit tests for the binary node-page codec."""

import numpy as np
import pytest

from repro.core.geometry import RectArray
from repro.storage.page import (
    NodePage,
    PageFormatError,
    decode_node,
    encode_node,
    entry_size,
    required_page_size,
)


def make_node(count=10, ndim=2, level=0, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    lo = rng.random((count, ndim))
    hi = lo + rng.random((count, ndim))
    children = rng.integers(0, 2 ** 62, size=count, dtype=np.int64)
    return NodePage(level=level, children=children, rects=RectArray(lo, hi))


class TestSizing:
    def test_entry_size_2d(self):
        assert entry_size(2) == 8 + 32

    def test_entry_size_scales_with_ndim(self):
        assert entry_size(3) - entry_size(2) == 16

    def test_entry_size_bad_ndim(self):
        with pytest.raises(PageFormatError):
            entry_size(0)

    def test_paper_parameters_give_4k_pages(self):
        # capacity 100, 2-D: the paper's node = one standard 4 KiB page.
        assert required_page_size(100, 2) == 4096

    def test_alignment(self):
        assert required_page_size(3, 2, align=512) == 512

    def test_no_alignment(self):
        assert required_page_size(3, 2, align=0) == 16 + 3 * 40

    def test_bad_capacity(self):
        with pytest.raises(PageFormatError):
            required_page_size(0, 2)


class TestNodePage:
    def test_basic_properties(self):
        node = make_node(count=7, level=2)
        assert node.count == 7
        assert node.level == 2
        assert not node.is_leaf
        assert node.ndim == 2

    def test_leaf_flag(self):
        assert make_node(level=0).is_leaf

    def test_negative_level_rejected(self):
        with pytest.raises(PageFormatError):
            make_node(level=-1)

    def test_count_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        rects = RectArray.from_points(rng.random((5, 2)))
        with pytest.raises(PageFormatError):
            NodePage(level=0, children=np.arange(4), rects=rects)

    def test_empty_node_rejected(self):
        empty = RectArray(np.empty((0, 2)), np.empty((0, 2)))
        with pytest.raises(PageFormatError):
            NodePage(level=0, children=np.empty(0, dtype=np.int64),
                     rects=empty)


class TestRoundTrip:
    @pytest.mark.parametrize("count", [1, 2, 50, 100])
    @pytest.mark.parametrize("ndim", [1, 2, 3, 4])
    def test_roundtrip(self, count, ndim):
        node = make_node(count=count, ndim=ndim, level=3)
        size = required_page_size(100, ndim)
        back = decode_node(encode_node(node, size))
        assert back.level == node.level
        assert np.array_equal(back.children, node.children)
        assert back.rects == node.rects

    def test_roundtrip_preserves_exact_floats(self):
        lo = np.array([[0.1 + 1e-17, -3.7e-300]])
        hi = np.array([[0.1 + 2e-17, 4.2e300]])
        node = NodePage(level=0, children=np.array([9]),
                        rects=RectArray(lo, hi))
        back = decode_node(encode_node(node, 4096))
        assert np.array_equal(back.rects.los, lo)
        assert np.array_equal(back.rects.his, hi)

    def test_roundtrip_preserves_large_ids(self):
        node = NodePage(
            level=1,
            children=np.array([2 ** 62, 0, 1], dtype=np.int64),
            rects=RectArray(np.zeros((3, 2)), np.ones((3, 2))),
        )
        back = decode_node(encode_node(node, 4096))
        assert back.children.tolist() == [2 ** 62, 0, 1]

    def test_encoded_size_is_exactly_page_size(self):
        node = make_node(count=5)
        data = encode_node(node, 4096)
        assert len(data) == 4096

    def test_overflow_rejected(self):
        node = make_node(count=100)
        with pytest.raises(PageFormatError):
            encode_node(node, 512)


class TestDecodeErrors:
    def test_truncated_page(self):
        with pytest.raises(PageFormatError):
            decode_node(b"\x00" * 8)

    def test_bad_magic(self):
        data = bytearray(encode_node(make_node(), 4096))
        data[0] ^= 0xFF
        with pytest.raises(PageFormatError):
            decode_node(bytes(data))

    def test_zeroed_page(self):
        with pytest.raises(PageFormatError):
            decode_node(b"\x00" * 4096)

    def test_corrupt_count(self):
        data = bytearray(encode_node(make_node(count=2), 4096))
        data[8:12] = (10_000).to_bytes(4, "little")  # count beyond payload
        with pytest.raises(PageFormatError):
            decode_node(bytes(data))
