"""Unit tests for Hilbert Sort and Nearest-X packing, and the registry."""

import numpy as np
import pytest

from repro.core.geometry import RectArray
from repro.core.packing import (
    ALGORITHMS,
    HilbertSort,
    NearestX,
    PackingError,
    SortTileRecursive,
    algorithm_names,
    make_algorithm,
)
from repro.hilbert.float_key import float_hilbert_keys


class TestNearestX:
    def test_orders_by_center_x(self, rng):
        lo = rng.random((300, 2))
        ra = RectArray(lo, lo + rng.random((300, 2)) * 0.05)
        perm = NearestX().order(ra, 50)
        cx = ra.centers()[:, 0]
        assert (np.diff(cx[perm]) >= 0).all()

    def test_ignores_y_entirely(self, rng):
        pts = rng.random((200, 2))
        flipped = np.column_stack([pts[:, 0], 1.0 - pts[:, 1]])
        a = NearestX().order(RectArray.from_points(pts), 20)
        b = NearestX().order(RectArray.from_points(flipped), 20)
        assert np.array_equal(a, b)

    def test_alternative_dimension(self, rng):
        pts = rng.random((200, 2))
        perm = NearestX(dimension=1).order(RectArray.from_points(pts), 20)
        assert (np.diff(pts[perm, 1]) >= 0).all()

    def test_dimension_out_of_range(self, unit_points):
        with pytest.raises(ValueError):
            NearestX(dimension=5).order(unit_points, 10)

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            NearestX(dimension=-1)

    def test_stable_for_ties(self):
        pts = np.zeros((10, 2))
        pts[:, 1] = np.arange(10)
        perm = NearestX().order(RectArray.from_points(pts), 5)
        assert perm.tolist() == list(range(10))  # stable sort keeps input order

    def test_name_and_repr(self):
        assert NearestX.name == "NX"
        assert "dimension=0" in repr(NearestX())


class TestHilbertSort:
    def test_orders_by_hilbert_keys(self, unit_points):
        algo = HilbertSort()
        perm = algo.order(unit_points, 100)
        keys = algo.order_keys(unit_points)
        assert (np.diff(keys[perm].astype(np.int64)) >= 0).all()

    def test_matches_manual_keys(self, unit_points):
        algo = HilbertSort(curve_order=12)
        keys = float_hilbert_keys(unit_points.centers(), unit_points.mbr(),
                                  order=12)
        assert np.array_equal(algo.order_keys(unit_points), keys)

    def test_locality_neighbours_in_same_node(self, rng):
        """Points in a tiny cluster should land in few distinct nodes."""
        cluster = 0.5 + rng.random((50, 2)) * 0.001
        background = rng.random((950, 2))
        pts = np.concatenate([cluster, background])
        ra = RectArray.from_points(pts)
        perm = HilbertSort().order(ra, 100)
        position = np.empty(len(pts), dtype=int)
        position[perm] = np.arange(len(pts))
        nodes = set(position[:50] // 100)
        assert len(nodes) <= 3

    def test_3d_supported(self, rng):
        ra = RectArray.from_points(rng.random((500, 3)))
        perm = HilbertSort().order(ra, 20)
        assert sorted(perm.tolist()) == list(range(500))

    def test_order_capped_for_high_dims(self, rng):
        # 7-D at the default 16 bits would overflow uint64; must auto-cap.
        ra = RectArray.from_points(rng.random((100, 7)))
        perm = HilbertSort(curve_order=16).order(ra, 10)
        assert sorted(perm.tolist()) == list(range(100))

    def test_invalid_curve_order(self):
        with pytest.raises(PackingError):
            HilbertSort(curve_order=0)

    def test_deterministic(self, unit_points):
        assert np.array_equal(HilbertSort().order(unit_points, 64),
                              HilbertSort().order(unit_points, 64))

    def test_name_and_repr(self):
        assert HilbertSort.name == "HS"
        assert "curve_order=16" in repr(HilbertSort())


class TestRegistry:
    @pytest.mark.parametrize("alias,cls", [
        ("str", SortTileRecursive), ("STR", SortTileRecursive),
        ("sort-tile-recursive", SortTileRecursive),
        ("hs", HilbertSort), ("hilbert", HilbertSort),
        ("nx", NearestX), ("Nearest-X", NearestX),
    ])
    def test_aliases(self, alias, cls):
        assert isinstance(make_algorithm(alias), cls)

    def test_unknown_rejected(self):
        with pytest.raises(PackingError):
            make_algorithm("rstar")

    def test_fresh_instances(self):
        assert make_algorithm("str") is not make_algorithm("str")

    def test_paper_order(self):
        assert algorithm_names() == ("STR", "HS", "NX")

    def test_registry_complete(self):
        built = {type(make_algorithm(k)) for k in ALGORITHMS}
        assert built == {SortTileRecursive, HilbertSort, NearestX}
