"""Client reconnect-with-backoff: seeded full-jitter redial via
RetryPolicy.delays(), one-shot retransmit for read-only queries, and the
reload cutover that is never auto-retried."""

import asyncio

import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.core.geometry import Rect
from repro.serve import QueryClient, QueryServer, ServeError
from repro.storage import MemoryPageStore
from repro.storage.faults import RetryPolicy

CAPACITY = 25


def _build(rng, n=800):
    rects = RectArray.from_points(rng.random((n, 2)))
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
                        store=MemoryPageStore(4096))
    return tree


def run(coro):
    return asyncio.run(coro)


def _policy():
    # Zero backoff keeps the test instant; the schedule shape is
    # covered separately below.
    return RetryPolicy(attempts=5, backoff_s=0.0, jitter=True, seed=3)


class TestRetryPolicyDelays:
    def test_delays_yields_one_entry_per_permitted_retry(self):
        policy = RetryPolicy(attempts=4, backoff_s=0.01, multiplier=2.0,
                             max_backoff_s=0.04, jitter=False)
        assert list(policy.delays()) == [0.01, 0.02, 0.04]

    def test_jittered_schedule_is_seeded_and_bounded(self):
        def fresh():
            return RetryPolicy(attempts=6, backoff_s=0.01,
                               multiplier=2.0, max_backoff_s=0.05,
                               jitter=True, seed=9)
        first = list(fresh().delays())
        assert first == list(fresh().delays())  # reproducible
        nominal = 0.01
        for delay in first:
            assert 0.0 <= delay <= nominal  # full jitter
            nominal = min(nominal * 2.0, 0.05)

    def test_delays_matches_the_run_schedule(self):
        # run() and delays() must draw the same seeded stream, so a
        # sync caller and an async caller back off identically.
        slept = []
        policy = RetryPolicy(attempts=4, backoff_s=0.01, jitter=True,
                             seed=21, retryable=(KeyError,),
                             sleep=slept.append)
        calls = iter(range(4))

        def flaky():
            if next(calls) < 3:
                raise KeyError("transient")
            return "done"

        assert policy.run(flaky) == "done"
        twin = RetryPolicy(attempts=4, backoff_s=0.01, jitter=True,
                           seed=21)
        assert slept == list(twin.delays())

    def test_single_attempt_policy_has_no_delays(self):
        assert list(RetryPolicy(attempts=1).delays()) == []


class TestReconnect:
    def test_client_survives_a_server_restart(self, rng):
        tree = _build(rng)
        q = Rect((0.1, 0.1), (0.4, 0.4))
        expected = sorted(int(x) for x in tree.searcher(128).search(q))

        async def scenario():
            first = QueryServer(tree, buffer_pages=32)
            host, port = await first.start("127.0.0.1", 0)
            client = await QueryClient.connect(
                host, port, reconnect=_policy())
            assert (await client.search(q)).raise_for_error().ids \
                == expected
            await first.aclose()
            # Same port, new server process-equivalent: the next request
            # finds a dead socket, redials, and retransmits once.
            second = QueryServer(tree, buffer_pages=32)
            await second.start(host, port)
            try:
                resp = (await client.search(q)).raise_for_error()
                assert resp.ids == expected
                assert client.reconnects_total == 1
            finally:
                await client.aclose()
                await second.aclose()

        run(scenario())

    def test_without_reconnect_a_dead_server_is_a_typed_error(self, rng):
        tree = _build(rng, n=300)
        q = Rect((0.1, 0.1), (0.2, 0.2))

        async def scenario():
            server = QueryServer(tree, buffer_pages=32)
            host, port = await server.start("127.0.0.1", 0)
            client = await QueryClient.connect(host, port)
            (await client.search(q)).raise_for_error()
            await server.aclose()
            with pytest.raises(ServeError, match="closed the connection"):
                await client.search(q)
            await client.aclose()

        run(scenario())

    def test_reconnect_gives_up_after_the_schedule(self, rng):
        tree = _build(rng, n=300)

        async def scenario():
            server = QueryServer(tree, buffer_pages=32)
            host, port = await server.start("127.0.0.1", 0)
            client = await QueryClient.connect(
                host, port, reconnect=_policy())
            (await client.search(Rect((0.1, 0.1),
                                      (0.2, 0.2)))).raise_for_error()
            await server.aclose()  # nothing ever comes back on this port
            with pytest.raises(ServeError, match="reconnect .* failed"):
                await client.search(Rect((0.1, 0.1), (0.2, 0.2)))
            await client.aclose()

        run(scenario())

    def test_reload_is_never_auto_retried_across_a_reconnect(
            self, rng, monkeypatch):
        tree = _build(rng, n=300)

        async def scenario():
            server = QueryServer(tree, buffer_pages=32,
                                 allow_reload=True)
            host, port = await server.start("127.0.0.1", 0)
            client = await QueryClient.connect(
                host, port, reconnect=_policy())
            # The connection drops exactly when the reload is sent: the
            # cutover may have committed server-side, so the client must
            # reconnect but refuse to re-send the generation bump.
            real_send = client._send_once
            dropped = []

            async def drop_reloads(req):
                if req.op == "reload" and not dropped:
                    dropped.append(req.id)
                    return b""
                return await real_send(req)

            monkeypatch.setattr(client, "_send_once", drop_reloads)
            with pytest.raises(ServeError,
                               match="not auto-retrying a generation "
                                     "cutover"):
                await client.reload("/nonexistent/gen2.pages")
            assert dropped  # the drop actually happened
            assert client.reconnects_total == 1
            # The connection is healthy again for ordinary queries.
            (await client.search(Rect((0.1, 0.1),
                                      (0.2, 0.2)))).raise_for_error()
            await client.aclose()
            await server.aclose()

        run(scenario())
