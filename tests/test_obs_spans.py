"""Unit tests for the span/tracer layer."""

import json
import time

import pytest

from repro.obs import (
    PHASES,
    Tracer,
    phase_of,
    read_spans_jsonl,
)
from repro.obs import runtime as obs_runtime


class TestSpanBasics:
    def test_records_wall_and_cpu_time(self):
        t = Tracer()
        with t.span("work") as s:
            time.sleep(0.01)
        assert s.finished
        assert s.duration >= 0.01
        assert s.cpu_time >= 0.0
        assert len(t) == 1

    def test_labels_kept(self):
        t = Tracer()
        with t.span("str.sort", dim=1, count=42) as s:
            pass
        assert s.labels == {"dim": 1, "count": 42}

    def test_nesting_depth_and_parent(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("middle"):
                with t.span("inner"):
                    pass
        by_name = {s.name: s for s in t.spans}
        assert by_name["outer"].depth == 0
        assert by_name["outer"].parent is None
        assert by_name["middle"].depth == 1
        assert by_name["middle"].parent == "outer"
        assert by_name["inner"].depth == 2
        assert by_name["inner"].parent == "middle"

    def test_completion_order_inner_first_but_index_start_order(self):
        t = Tracer()
        with t.span("a"):
            with t.span("b"):
                pass
        assert [s.name for s in t.spans] == ["b", "a"]
        assert [s.index for s in sorted(t.spans, key=lambda s: s.index)] \
            == [0, 1]

    def test_span_closed_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        assert t.open_depth == 0
        assert t.spans[0].finished

    def test_parent_timing_covers_child(self):
        t = Tracer()
        with t.span("parent"):
            with t.span("child"):
                time.sleep(0.005)
        by_name = {s.name: s for s in t.spans}
        assert by_name["parent"].duration >= by_name["child"].duration

    def test_timing_monotonic_nonnegative(self):
        t = Tracer()
        for _ in range(20):
            with t.span("tick"):
                pass
        assert all(s.duration >= 0.0 for s in t.spans)
        assert all(s.cpu_time >= 0.0 for s in t.spans)
        starts = [s.start for s in sorted(t.spans, key=lambda s: s.index)]
        assert starts == sorted(starts)


class TestSummaries:
    def test_summary_aggregates_by_name(self):
        t = Tracer()
        for i in range(3):
            with t.span("str.sort", dim=i):
                pass
        with t.span("query.batch"):
            pass
        summary = t.summary()
        assert summary["str.sort"]["count"] == 3
        assert summary["query.batch"]["count"] == 1
        assert summary["str.sort"]["phase"] == "sort"

    def test_self_time_excludes_children(self):
        t = Tracer()
        with t.span("parent"):
            with t.span("child"):
                time.sleep(0.02)
        selfs = t.self_times()
        by_name = {s.name: s for s in t.spans}
        parent_self = selfs[by_name["parent"].index][0]
        child_self = selfs[by_name["child"].index][0]
        assert child_self >= 0.02
        # Parent's self time is its duration minus the child's ~20ms.
        assert parent_self < by_name["parent"].duration - 0.015

    def test_phase_summary_sums_to_total_traced_time(self):
        t = Tracer()
        with t.span("bulk.load"):          # pack
            with t.span("str.sort"):       # sort
                time.sleep(0.005)
            with t.span("bulk.write_level"):   # pack (nested same phase)
                pass
        with t.span("query.batch"):
            pass
        phases = t.phase_summary()
        total_self = sum(p["wall_s"] for p in phases.values())
        top_level = [s for s in t.spans if s.depth == 0]
        total_wall = sum(s.duration for s in top_level)
        assert total_self == pytest.approx(total_wall, rel=1e-6)
        assert set(phases) <= set(PHASES)

    def test_clear(self):
        t = Tracer()
        with t.span("x"):
            pass
        t.clear()
        assert len(t) == 0


class TestPhaseOf:
    @pytest.mark.parametrize("name,phase", [
        ("str.sort", "sort"),
        ("hs.sort", "sort"),
        ("nx.sort", "sort"),
        ("hs.key", "sort"),
        ("extsort.spill", "sort"),
        ("str.tile", "tile"),
        ("bulk.write_level", "pack"),
        ("bulk.load", "pack"),
        ("pack.order", "pack"),
        ("query.search", "query"),
        ("query.batch", "query"),
        ("mystery.thing", "other"),
    ])
    def test_taxonomy(self, name, phase):
        assert phase_of(name) == phase


class TestJsonlExport:
    def test_round_trip(self, tmp_path):
        t = Tracer()
        with t.span("a", k=1):
            with t.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        assert t.to_jsonl(path) == 2
        rows = read_spans_jsonl(path)
        assert len(rows) == 2
        names = {r["name"] for r in rows}
        assert names == {"a", "b"}
        for r in rows:
            assert set(r) >= {"name", "phase", "labels", "start",
                              "duration_s", "cpu_s", "depth", "parent",
                              "index"}
        # Every line is valid standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)


class TestRuntimeSwitch:
    def test_disabled_by_default_is_noop(self):
        assert not obs_runtime.enabled()
        with obs_runtime.span("anything", x=1):
            pass
        obs_runtime.inc("c")
        obs_runtime.observe("h", 1.0)
        obs_runtime.set_gauge("g", 2.0)
        assert obs_runtime.tracer() is None
        assert obs_runtime.registry() is None

    def test_telemetry_context_collects_and_restores(self):
        with obs_runtime.telemetry() as (tracer, registry):
            assert obs_runtime.enabled()
            with obs_runtime.span("x"):
                pass
            obs_runtime.inc("n", 3)
        assert not obs_runtime.enabled()
        assert len(tracer) == 1
        assert registry.counter("n").value == 3

    def test_nested_telemetry_stacks(self):
        with obs_runtime.telemetry() as (outer_tracer, _):
            with obs_runtime.telemetry() as (inner_tracer, _):
                with obs_runtime.span("inner.only"):
                    pass
            with obs_runtime.span("outer.only"):
                pass
        assert [s.name for s in inner_tracer.spans] == ["inner.only"]
        assert [s.name for s in outer_tracer.spans] == ["outer.only"]
