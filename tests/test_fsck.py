"""``repro fsck``: page-level and structural checking, CLI surface."""

import json
import os
import shutil
import struct

import numpy as np
import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.cli import main
from repro.core.geometry import Rect
from repro.fsck import fsck
from repro.ingest.merge import merge_segments
from repro.ingest.wal import WriteAheadLog, ingest_dir, segment_name
from repro.storage import FilePageStore, flip_bit
from repro.storage.integrity import TRAILER_SIZE
from repro.storage.page import required_page_size

CAPACITY = 20
PAGE_SIZE = required_page_size(CAPACITY, 2) + TRAILER_SIZE


@pytest.fixture
def rects(rng):
    return RectArray.from_points(rng.random((500, 2)))


def _durable_tree(tmp_path, rects, name="t.pages"):
    path = tmp_path / name
    store = FilePageStore(path, PAGE_SIZE, checksums=True, journal=True)
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
                        store=store)
    store.close()
    return path


class TestFsckModule:
    def test_clean_durable_tree(self, tmp_path, rects):
        report = fsck(_durable_tree(tmp_path, rects))
        assert report.clean, report.render()
        assert report.checksums and report.journal
        assert report.pages_checked > 0
        assert report.tree["size"] == 500
        assert "clean" in report.render()

    def test_clean_plain_tree_with_sidecar(self, tmp_path, rects):
        path = tmp_path / "plain.pages"
        store = FilePageStore(path, required_page_size(CAPACITY, 2))
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
                            store=store)
        meta = tmp_path / "plain.meta.json"
        tree.save_meta(meta)
        store.close()
        report = fsck(path, meta_path=meta)
        assert report.clean, report.render()
        assert not report.checksums

    def test_dynamic_conversion_commits_a_checkable_durable_file(
            self, tmp_path, rng):
        """``paged_from_dynamic`` into a durable store goes through the
        same atomic superblock commit as ``bulk_load``: the file is
        self-describing, fsck-clean, and reopens with the right
        metadata."""
        from repro import paged_from_dynamic
        from repro.rtree.tree import RTree
        from repro.core.geometry import Rect
        from repro.rtree.paged import PagedRTree

        dyn = RTree(capacity=CAPACITY)
        points = rng.random((300, 2))
        for i, p in enumerate(points):
            dyn.insert(Rect.from_point(tuple(p)), i)
        path = tmp_path / "converted.pages"
        store = FilePageStore(path, PAGE_SIZE, checksums=True,
                              journal=True)
        paged = paged_from_dynamic(dyn, store=store)
        store.close()

        report = fsck(path)
        assert report.clean, report.render()
        assert report.tree["size"] == 300
        assert report.tree["height"] == paged.height
        assert report.tree["root_page"] == paged.root_page

        reopened = PagedRTree.from_store(FilePageStore.open_existing(path))
        assert len(reopened) == 300
        query = Rect.from_point(tuple(points[0]))
        assert 0 in reopened.searcher(16).search(query)
        reopened.store.close()

    def test_missing_file_is_fatal(self, tmp_path):
        report = fsck(tmp_path / "nope.pages")
        assert report.fatal == "file does not exist"
        assert not report.clean

    def test_plain_file_without_sidecar_is_fatal(self, tmp_path):
        path = tmp_path / "p.bin"
        path.write_bytes(b"\x00" * 1024)
        report = fsck(path)
        assert "no superblock" in report.fatal

    def test_bit_flip_reported_per_page(self, tmp_path, rects):
        path = _durable_tree(tmp_path, rects)
        with FilePageStore.open_existing(path) as store:
            for pid in (1, 3):
                store.raw_write(pid, flip_bit(store.raw_read(pid), 777))
        report = fsck(path)
        assert len(report.checksum_errors) == 2
        assert not report.structural_errors  # walk skipped, not crashed
        assert "structural walk skipped" in report.render()

    def test_decode_error_reported(self, tmp_path, rects):
        """A page whose checksum is valid but whose payload is garbage
        (re-stamped, as a buggy writer would) fails decode, not checksum."""
        from repro.storage.integrity import stamp_trailer

        path = _durable_tree(tmp_path, rects)
        with FilePageStore.open_existing(path) as store:
            bad = b"\xff" * (PAGE_SIZE - TRAILER_SIZE) + b"\x00" * TRAILER_SIZE
            store.raw_write(2, stamp_trailer(bad, 2))
        report = fsck(path)
        assert len(report.decode_errors) == 1
        assert "bad magic" in report.decode_errors[0]

    def test_structural_error_reported(self, tmp_path, rects):
        """Corrupt an MBR through the proper write path: checksums stay
        valid, decode succeeds, only the tree invariants break."""
        path = _durable_tree(tmp_path, rects)
        with FilePageStore.open_existing(path) as store:
            meta = store.tree_meta
            root = store.peek_page(meta["root_page"])
            # Nudge the first child rectangle's low-x (offset 16 = header,
            # +8 skips the child pointer) so parent MBR != child MBR.
            doctored = bytearray(root)
            (x,) = struct.unpack_from("<d", doctored, 24)
            struct.pack_into("<d", doctored, 24, x - 0.5)
            store.write_page(meta["root_page"], bytes(doctored[:store.page_size]))
            store.set_tree_meta(meta)
        report = fsck(path)
        assert not report.clean
        assert any("parent entry" in e for e in report.structural_errors)

    def test_never_committed_build_is_fatal(self, tmp_path, rects):
        path = tmp_path / "uncommitted.pages"
        store = FilePageStore(path, PAGE_SIZE, checksums=True)
        # Write pages by hand, never commit tree metadata.
        from repro.storage.page import NodePage, encode_node

        node = NodePage(level=0,
                        children=np.arange(3, dtype=np.int64),
                        rects=rects[:3])
        pid = store.allocate()
        store.write_page(pid, encode_node(node, store.payload_size)
                         + b"\x00" * TRAILER_SIZE)
        store.close()
        report = fsck(path)
        assert "never committed" in report.fatal

    def test_as_dict_is_json_roundtrippable(self, tmp_path, rects):
        report = fsck(_durable_tree(tmp_path, rects))
        out = json.loads(json.dumps(report.as_dict()))
        assert out["clean"] is True
        assert out["tree"]["capacity"] == CAPACITY


class TestFsckCli:
    def test_clean_exit_zero_and_manifest(self, tmp_path, rects, capsys):
        path = _durable_tree(tmp_path, rects)
        run_dir = tmp_path / "runs"
        code = main(["fsck", str(path), "--run-dir", str(run_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out
        manifests = list(run_dir.glob("fsck-*.json"))
        assert len(manifests) == 1
        m = json.load(open(manifests[0]))
        assert m["experiment"] == "fsck"
        assert m["extra"]["fsck"]["clean"] is True
        assert m["extra"]["fsck"]["path"] == str(path)

    def test_corrupt_exit_one(self, tmp_path, rects, capsys):
        path = _durable_tree(tmp_path, rects)
        with FilePageStore.open_existing(path) as store:
            store.raw_write(0, flip_bit(store.raw_read(0), 123))
        code = main(["fsck", str(path), "--no-manifest"])
        assert code == 1
        assert "CRC32C mismatch" in capsys.readouterr().out

    def test_plain_file_with_meta_flag(self, tmp_path, rects, capsys):
        path = tmp_path / "plain.pages"
        store = FilePageStore(path, required_page_size(CAPACITY, 2))
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
                            store=store)
        meta = tmp_path / "m.json"
        tree.save_meta(meta)
        store.close()
        code = main(["fsck", str(path), "--meta", str(meta),
                     "--no-manifest"])
        assert code == 0

    def test_missing_target_is_usage_error(self):
        with pytest.raises(SystemExit):
            main(["fsck"])


class TestFsckIngestSidecar:
    """Phase 4: verification of the streaming-ingest WAL sidecar
    (``<path>.ingest/``, see ``repro.ingest``)."""

    def _sidecar(self, tmp_path, rects):
        """A durable tree plus a WAL sidecar holding one sealed segment
        (4 inserts) and one active segment (1 delete)."""
        path = _durable_tree(tmp_path, rects)
        with WriteAheadLog(ingest_dir(path)) as wal:
            for i in range(4):
                wal.append("insert", 1000 + i,
                           Rect((0.1, 0.1), (0.2, 0.2)))
            wal.seal_active()
            wal.append("delete", 1000, None)
        return path

    def test_clean_sidecar_is_summarised(self, tmp_path, rects):
        path = self._sidecar(tmp_path, rects)
        report = fsck(path)
        assert report.clean, report.render()
        assert not report.wal_errors
        ingest = report.ingest
        assert ingest is not None
        assert [s["state"] for s in ingest["segments"]] == \
            ["sealed", "active"]
        assert [s["ops"] for s in ingest["segments"]] == [4, 1]
        assert ingest["pending_ops"] == 5
        assert ingest["generation"] is None
        assert ingest["merged_seq"] == 0
        assert "ingest: 2 WAL segment(s)" in report.render()
        out = json.loads(json.dumps(report.as_dict()))
        assert out["ingest"]["pending_ops"] == 5

    def test_no_sidecar_leaves_ingest_unset(self, tmp_path, rects):
        report = fsck(_durable_tree(tmp_path, rects))
        assert report.clean
        assert report.ingest is None
        assert "WAL segment" not in report.render()

    def test_torn_active_tail_is_not_an_error(self, tmp_path, rects):
        """A torn tail on the *active* segment is the normal crash
        signature — reported in the summary, never as damage."""
        path = self._sidecar(tmp_path, rects)
        active = os.path.join(ingest_dir(path), segment_name(2))
        with open(active, "ab") as f:
            f.write(b'{"half a rec')
        report = fsck(path)
        assert report.clean, report.render()
        states = [s["state"] for s in report.ingest["segments"]]
        assert states == ["sealed", "active+torn"]
        assert report.ingest["segments"][1]["ops"] == 1

    def test_corrupt_sealed_segment_fails_the_check(self, tmp_path, rects):
        path = self._sidecar(tmp_path, rects)
        sealed = os.path.join(ingest_dir(path), segment_name(1))
        data = bytearray(open(sealed, "rb").read())
        data[5] ^= 0x01  # inside the first record: pre-tail damage
        with open(sealed, "wb") as f:
            f.write(data)
        report = fsck(path)
        assert not report.clean
        assert report.wal_errors
        assert report.ingest["segments"][0]["state"] == "corrupt"
        assert "wal" in report.render()

    def test_unsealed_segment_below_active_is_reported(
            self, tmp_path, rects):
        path = _durable_tree(tmp_path, rects)
        d = ingest_dir(path)
        with WriteAheadLog(d) as wal:
            wal.append("insert", 1, Rect((0.0, 0.0), (1.0, 1.0)))
        # Fake a later segment by copying the unsealed segment-1 file:
        # now an unsealed segment sits below the active one, which the
        # seal protocol never produces.
        shutil.copyfile(os.path.join(d, segment_name(1)),
                        os.path.join(d, segment_name(2)))
        report = fsck(path)
        assert not report.clean
        assert any("unsealed segment below" in e
                   for e in report.wal_errors)

    def test_damaged_pointer_is_reported(self, tmp_path, rects):
        path = self._sidecar(tmp_path, rects)
        pointer = os.path.join(ingest_dir(path), "generation.json")
        with open(pointer, "wb") as f:
            f.write(b'{"truncated')
        report = fsck(path)
        assert not report.clean
        assert any("generation pointer" in e for e in report.wal_errors)

    def test_merged_sidecar_reports_generation(self, tmp_path, rects):
        path = self._sidecar(tmp_path, rects)
        with WriteAheadLog(ingest_dir(path)) as wal:
            wal.seal_active()
        assert merge_segments(path) is not None
        report = fsck(path)
        assert report.clean, report.render()
        assert report.ingest["generation"] == 2
        assert report.ingest["merged_seq"] == 2
        assert report.ingest["pending_ops"] == 0
        assert "generation 2" in report.render()

    def test_pointer_naming_missing_file_is_reported(
            self, tmp_path, rects):
        path = self._sidecar(tmp_path, rects)
        with WriteAheadLog(ingest_dir(path)) as wal:
            wal.seal_active()
        merged = merge_segments(path)
        os.unlink(merged.path)
        report = fsck(path)
        assert not report.clean
        assert any("missing file" in e for e in report.wal_errors)

    def test_cli_exit_one_on_wal_corruption(self, tmp_path, rects,
                                            capsys):
        path = self._sidecar(tmp_path, rects)
        sealed = os.path.join(ingest_dir(path), segment_name(1))
        data = bytearray(open(sealed, "rb").read())
        data[5] ^= 0x01
        with open(sealed, "wb") as f:
            f.write(data)
        code = main(["fsck", str(path), "--no-manifest"])
        assert code == 1
