"""Unit tests for the striped (multi-disk) page store."""

import pytest

from repro.core.geometry import Rect, RectArray
from repro.core.packing import SortTileRecursive
from repro.queries import region_queries
from repro.rtree.bulk import bulk_load
from repro.rtree.validate import validate_paged
from repro.storage.page import required_page_size
from repro.storage.store import FilePageStore, MemoryPageStore, StoreError
from repro.storage.striped import StripedPageStore

PAGE = 512


def make_striped(n_disks=4, page=PAGE):
    return StripedPageStore([MemoryPageStore(page) for _ in range(n_disks)])


class TestPlacement:
    def test_round_robin_allocation(self):
        s = make_striped(3)
        for expected in range(7):
            assert s.allocate() == expected
        assert s.page_count == 7
        # Disk loads: 3, 2, 2.
        assert [d.page_count for d in s._disks] == [3, 2, 2]

    def test_read_write_roundtrip(self):
        s = make_striped(3)
        payloads = {}
        for i in range(9):
            pid = s.allocate()
            payload = bytes([i]) * PAGE
            s.write_page(pid, payload)
            payloads[pid] = payload
        for pid, want in payloads.items():
            assert s.read_page(pid) == want

    def test_neighbouring_pages_on_different_disks(self):
        """The point of declustering: consecutive pages never share a disk
        (for D > 1)."""
        s = make_striped(4)
        for _ in range(8):
            s.allocate()
        for pid in range(7):
            assert pid % 4 != (pid + 1) % 4

    def test_global_and_per_disk_stats(self):
        s = make_striped(2)
        for i in range(4):
            pid = s.allocate()
            s.write_page(pid, b"x" * PAGE)
        s.stats.reset()
        s.reset_disk_stats()
        for pid in (0, 1, 2):
            s.read_page(pid)
        assert s.stats.disk_reads == 3          # global view
        assert s.per_disk_reads() == [2, 1]     # pages 0,2 on disk0; 1 on disk1

    def test_parallel_cost_and_speedup(self):
        s = make_striped(2)
        for i in range(4):
            pid = s.allocate()
            s.write_page(pid, b"x" * PAGE)
        s.reset_disk_stats()
        for pid in (0, 1, 2, 3):
            s.read_page(pid)
        assert s.parallel_cost() == 2
        assert s.parallel_speedup() == pytest.approx(2.0)

    def test_speedup_idle_is_one(self):
        assert make_striped(3).parallel_speedup() == 1.0


class TestValidation:
    def test_no_disks_rejected(self):
        with pytest.raises(StoreError):
            StripedPageStore([])

    def test_page_size_mismatch_rejected(self):
        with pytest.raises(StoreError):
            StripedPageStore([MemoryPageStore(512), MemoryPageStore(1024)])

    def test_inconsistent_existing_stripes_rejected(self):
        a = MemoryPageStore(PAGE)
        b = MemoryPageStore(PAGE)
        for _ in range(3):
            a.allocate()
        with pytest.raises(StoreError):
            StripedPageStore([a, b])

    def test_out_of_range_read(self):
        s = make_striped(2)
        with pytest.raises(StoreError):
            s.read_page(0)


class TestWithRTree:
    def test_bulk_load_onto_stripes(self, rng):
        rects = RectArray.from_points(rng.random((2_000, 2)))
        page_size = required_page_size(20, 2)
        store = StripedPageStore(
            [MemoryPageStore(page_size) for _ in range(4)]
        )
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=20,
                            store=store)
        validate_paged(tree, range(2_000))
        searcher = tree.searcher(buffer_pages=5)
        got = searcher.search(Rect((0.2, 0.2), (0.5, 0.5)))
        want = rects.intersects_rect(Rect((0.2, 0.2), (0.5, 0.5))).sum()
        assert got.size == want

    def test_query_io_declusters_across_disks(self, rng):
        """Region queries touch consecutive STR leaves, so striping should
        spread their fetches almost evenly: measurable parallel speedup."""
        rects = RectArray.from_points(rng.random((20_000, 2)))
        page_size = required_page_size(100, 2)
        n_disks = 4
        store = StripedPageStore(
            [MemoryPageStore(page_size) for _ in range(n_disks)]
        )
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=100,
                            store=store)
        store.reset_disk_stats()
        searcher = tree.searcher(buffer_pages=1)
        for q in region_queries(0.3, 100, seed=2):
            searcher.search(q)
        speedup = store.parallel_speedup()
        assert speedup > 0.6 * n_disks

    def test_file_backed_stripes(self, tmp_path, rng):
        rects = RectArray.from_points(rng.random((500, 2)))
        page_size = required_page_size(20, 2)
        disks = [
            FilePageStore(tmp_path / f"disk{i}.bin", page_size)
            for i in range(3)
        ]
        with StripedPageStore(disks) as store:
            tree, _ = bulk_load(rects, SortTileRecursive(), capacity=20,
                                store=store)
            validate_paged(tree, range(500))
