"""Unit tests for repro.core.geometry.Rect."""


import pytest

from repro.core.geometry import GeometryError, Rect, enclosing_mbr, unit_square


class TestConstruction:
    def test_basic(self):
        r = Rect((0.0, 1.0), (2.0, 3.0))
        assert r.lo == (0.0, 1.0)
        assert r.hi == (2.0, 3.0)

    def test_coerces_ints_to_floats(self):
        r = Rect((0, 1), (2, 3))
        assert r.lo == (0.0, 1.0)
        assert isinstance(r.lo[0], float)

    def test_degenerate_allowed(self):
        r = Rect((0.5, 0.5), (0.5, 0.5))
        assert r.is_degenerate()
        assert r.area() == 0.0

    def test_lo_above_hi_rejected(self):
        with pytest.raises(GeometryError):
            Rect((1.0, 0.0), (0.0, 1.0))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            Rect((0.0,), (1.0, 1.0))

    def test_empty_coords_rejected(self):
        with pytest.raises(GeometryError):
            Rect((), ())

    def test_nan_rejected(self):
        with pytest.raises(GeometryError):
            Rect((float("nan"), 0.0), (1.0, 1.0))

    def test_inf_rejected(self):
        with pytest.raises(GeometryError):
            Rect((0.0, 0.0), (float("inf"), 1.0))

    def test_from_point(self):
        r = Rect.from_point((0.3, 0.7))
        assert r.lo == r.hi == (0.3, 0.7)

    def test_from_center(self):
        r = Rect.from_center((0.5, 0.5), (0.2, 0.4))
        assert r.lo == pytest.approx((0.4, 0.3))
        assert r.hi == pytest.approx((0.6, 0.7))

    def test_from_center_negative_extent_rejected(self):
        with pytest.raises(GeometryError):
            Rect.from_center((0.5, 0.5), (-0.1, 0.1))

    def test_from_center_dim_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            Rect.from_center((0.5,), (0.1, 0.1))

    def test_from_corners_order_insensitive(self):
        a = Rect.from_corners((1.0, 0.0), (0.0, 1.0))
        b = Rect.from_corners((0.0, 1.0), (1.0, 0.0))
        assert a == b == Rect((0.0, 0.0), (1.0, 1.0))

    def test_hashable(self):
        assert len({Rect((0, 0), (1, 1)), Rect((0, 0), (1, 1))}) == 1

    def test_three_dimensional(self):
        r = Rect((0, 0, 0), (1, 2, 3))
        assert r.ndim == 3
        assert r.area() == 6.0


class TestMeasures:
    def test_area(self, sample_rect):
        assert sample_rect.area() == pytest.approx(0.4 * 0.5)

    def test_extents(self, sample_rect):
        assert sample_rect.extents == pytest.approx((0.4, 0.5))

    def test_center(self, sample_rect):
        assert sample_rect.center == pytest.approx((0.4, 0.55))

    def test_margin_is_sum_of_extents(self, sample_rect):
        assert sample_rect.margin() == pytest.approx(0.9)

    def test_perimeter_is_twice_margin_2d(self, sample_rect):
        assert sample_rect.perimeter() == pytest.approx(1.8)

    def test_unit_square_measures(self):
        u = unit_square()
        assert u.area() == 1.0
        assert u.perimeter() == 4.0
        assert u.center == (0.5, 0.5)

    def test_unit_cube(self):
        u = unit_square(3)
        assert u.ndim == 3
        assert u.area() == 1.0

    def test_unit_square_bad_ndim(self):
        with pytest.raises(GeometryError):
            unit_square(0)


class TestPredicates:
    def test_intersects_overlapping(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((1, 1), (3, 3))
        assert a.intersects(b) and b.intersects(a)

    def test_intersects_shared_edge(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((1, 0), (2, 1))
        assert a.intersects(b)  # closed boundaries

    def test_intersects_shared_corner(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((1, 1), (2, 2))
        assert a.intersects(b)

    def test_disjoint(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((1.5, 1.5), (2, 2))
        assert not a.intersects(b)

    def test_disjoint_one_axis_only(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 0), (3, 1))  # overlaps in y, not x
        assert not a.intersects(b)

    def test_intersects_dim_mismatch(self):
        with pytest.raises(GeometryError):
            Rect((0, 0), (1, 1)).intersects(Rect((0,), (1,)))

    def test_contains_point_interior(self, sample_rect):
        assert sample_rect.contains_point((0.4, 0.5))

    def test_contains_point_boundary(self, sample_rect):
        assert sample_rect.contains_point((0.2, 0.3))
        assert sample_rect.contains_point((0.6, 0.8))

    def test_contains_point_outside(self, sample_rect):
        assert not sample_rect.contains_point((0.0, 0.0))

    def test_contains_point_dim_mismatch(self, sample_rect):
        with pytest.raises(GeometryError):
            sample_rect.contains_point((0.5,))

    def test_contains_rect(self):
        outer = Rect((0, 0), (1, 1))
        inner = Rect((0.2, 0.2), (0.8, 0.8))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_contains_rect_self(self, sample_rect):
        assert sample_rect.contains_rect(sample_rect)


class TestCombining:
    def test_union(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        assert a.union(b) == Rect((0, 0), (3, 3))

    def test_union_contains_both(self, sample_rect):
        other = Rect((0.5, 0.1), (0.9, 0.4))
        u = sample_rect.union(other)
        assert u.contains_rect(sample_rect)
        assert u.contains_rect(other)

    def test_intersection_overlap(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((1, 1), (3, 3))
        assert a.intersection(b) == Rect((1, 1), (2, 2))

    def test_intersection_disjoint_is_none(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        assert a.intersection(b) is None

    def test_intersection_edge_is_degenerate(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((1, 0), (2, 1))
        got = a.intersection(b)
        assert got == Rect((1, 0), (1, 1))
        assert got.is_degenerate()

    def test_enlargement_zero_for_contained(self):
        outer = Rect((0, 0), (1, 1))
        inner = Rect((0.2, 0.2), (0.4, 0.4))
        assert outer.enlargement(inner) == 0.0

    def test_enlargement_positive_for_external(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        assert a.enlargement(b) == pytest.approx(9.0 - 1.0)

    def test_clamped(self):
        r = Rect((-1, -1), (0.5, 0.5))
        assert r.clamped(unit_square()) == Rect((0, 0), (0.5, 0.5))

    def test_clamped_disjoint_raises(self):
        r = Rect((2, 2), (3, 3))
        with pytest.raises(GeometryError):
            r.clamped(unit_square())


class TestConversion:
    def test_as_array(self, sample_rect):
        arr = sample_rect.as_array()
        assert arr.shape == (2, 2)
        assert arr[0].tolist() == [0.2, 0.3]

    def test_iter_unpacks(self, sample_rect):
        lo, hi = sample_rect
        assert lo == (0.2, 0.3) and hi == (0.6, 0.8)


class TestEnclosingMbr:
    def test_multiple(self):
        rects = [Rect((0, 0), (1, 1)), Rect((2, -1), (3, 0.5))]
        assert enclosing_mbr(rects) == Rect((0, -1), (3, 1))

    def test_single(self, sample_rect):
        assert enclosing_mbr([sample_rect]) == sample_rect

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            enclosing_mbr([])

    def test_area_never_below_max_input(self, small_rects):
        rects = list(small_rects)[:20]
        mbr = enclosing_mbr(rects)
        assert mbr.area() >= max(r.area() for r in rects) - 1e-15
