"""Unit tests for the dynamic Hilbert R-tree."""

import numpy as np
import pytest

from repro.core.geometry import GeometryError, Rect
from repro.rtree.hilbert_rtree import HilbertRTree
from repro.rtree.node import RTreeError

from tests.conftest import brute_force_search


def build(points, capacity=8, **kw):
    tree = HilbertRTree(capacity=capacity, **kw)
    for i, p in enumerate(points):
        tree.insert(Rect.from_point(tuple(p)), i)
    return tree


class TestConstruction:
    def test_empty(self):
        tree = HilbertRTree()
        assert len(tree) == 0 and tree.height == 1

    def test_capacity_minimum(self):
        with pytest.raises(RTreeError):
            HilbertRTree(capacity=2)

    def test_bounds_mismatch(self):
        with pytest.raises(GeometryError):
            HilbertRTree(ndim=3, bounds=Rect((0, 0), (1, 1)))


class TestInsertSearch:
    def test_matches_brute_force(self, small_rects):
        tree = HilbertRTree(capacity=8)
        for i, r in enumerate(small_rects):
            tree.insert(r, i)
        tree.validate(range(len(small_rects)))
        rng = np.random.default_rng(4)
        for _ in range(30):
            lo = rng.random(2) * 0.7
            q = Rect(tuple(lo), tuple(lo + 0.3))
            assert set(tree.search(q)) == brute_force_search(small_rects, q)

    def test_incremental_validity(self, rng):
        pts = rng.random((150, 2))
        tree = HilbertRTree(capacity=4)
        for i, p in enumerate(pts):
            tree.insert(Rect.from_point(tuple(p)), i)
            tree.validate(range(i + 1))

    def test_point_query(self, rng):
        pts = rng.random((200, 2))
        tree = build(pts)
        assert 57 in tree.point_query(tuple(pts[57]))

    def test_duplicate_keys(self):
        tree = HilbertRTree(capacity=4)
        for i in range(40):
            tree.insert(Rect.from_point((0.3, 0.3)), i)
        tree.validate(range(40))
        assert sorted(tree.point_query((0.3, 0.3))) == list(range(40))

    def test_insertion_order_independent_of_structure_quality(self, rng):
        """Hilbert position dictates placement, so sorted insertion order
        (Guttman's bad case) yields the same leaf quality as random."""
        pts = rng.random((500, 2))
        random_tree = build(pts, capacity=10)
        sorted_tree = HilbertRTree(capacity=10)
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        for i in order:
            sorted_tree.insert(Rect.from_point(tuple(pts[i])), int(i))
        sorted_tree.validate(range(500))

        def leaf_area(tree):
            return sum(n.mbr().area() for n in tree.iter_nodes()
                       if n.is_leaf)

        assert leaf_area(sorted_tree) == pytest.approx(
            leaf_area(random_tree), rel=0.2)


class TestUtilization:
    def test_cooperative_overflow_beats_half_split(self, rng):
        """Sibling rotation keeps utilisation comfortably above 50%."""
        pts = rng.random((2_000, 2))
        tree = build(pts, capacity=10)
        assert tree.space_utilization() > 0.6


class TestDelete:
    def test_delete_roundtrip(self, rng):
        pts = rng.random((120, 2))
        tree = build(pts, capacity=5)
        for i in range(60):
            assert tree.delete(Rect.from_point(tuple(pts[i])), i)
            tree.validate(range(i + 1, 120))
        assert len(tree) == 60
        got = set(tree.search(Rect((0, 0), (1, 1))))
        assert got == set(range(60, 120))

    def test_delete_absent(self, rng):
        tree = build(rng.random((30, 2)))
        assert not tree.delete(Rect.from_point((0.111, 0.222)), 999)

    def test_delete_all_then_reuse(self, rng):
        pts = rng.random((80, 2))
        tree = build(pts, capacity=5)
        order = rng.permutation(80)
        for i in order:
            assert tree.delete(Rect.from_point(tuple(pts[i])), int(i))
        assert tree.is_empty()
        for i, p in enumerate(pts):
            tree.insert(Rect.from_point(tuple(p)), i)
        tree.validate(range(80))


class TestQuality:
    def test_close_to_hs_packed_quality(self, rng):
        """A dynamic Hilbert tree's leaves should be in the same quality
        ballpark as Hilbert-Sort packing (it maintains the same order)."""
        from repro import HilbertSort, RectArray, bulk_load, measure_paged

        pts = rng.random((3_000, 2))
        dyn = build(pts, capacity=50)
        dyn_leaf_area = sum(
            n.mbr().area() for n in dyn.iter_nodes() if n.is_leaf
        )
        packed, _ = bulk_load(RectArray.from_points(pts), HilbertSort(),
                              capacity=50)
        packed_leaf_area = measure_paged(packed).leaf_area
        # Dynamic leaves are ~70% full, so ~1/0.7 more leaves; allow 2.5x.
        assert dyn_leaf_area < 2.5 * packed_leaf_area

    def test_better_utilization_and_smaller_tree_than_guttman(self, rng):
        """The Hilbert R-tree's documented advantage: B-tree-style splits
        with sibling cooperation give much higher node fill than Guttman,
        hence fewer pages for the same data — which is what a buffered
        workload pays for."""
        from repro.rtree.tree import RTree

        pts = rng.random((1_000, 2))
        hil = HilbertRTree(capacity=10)
        gut = RTree(capacity=10)
        for i, p in enumerate(pts):
            r = Rect.from_point(tuple(p))
            hil.insert(r, i)
            gut.insert(r, i)
        assert hil.space_utilization() > gut.space_utilization() + 0.05
        assert hil.node_count() < gut.node_count()
