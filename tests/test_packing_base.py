"""Unit tests for the packing framework helpers."""

import math

import numpy as np
import pytest

from repro.core.packing.base import (
    PackingError,
    ceil_pow_frac,
    ceil_root,
    leaf_group_sizes,
    validate_permutation,
)


class TestLeafGroupSizes:
    def test_exact_multiple(self):
        assert leaf_group_sizes(300, 100) == [100, 100, 100]

    def test_remainder_goes_last(self):
        assert leaf_group_sizes(250, 100) == [100, 100, 50]

    def test_fewer_than_capacity(self):
        assert leaf_group_sizes(7, 100) == [7]

    def test_single(self):
        assert leaf_group_sizes(1, 1) == [1]

    def test_group_count_is_ceil(self):
        for count in (1, 99, 100, 101, 1234):
            sizes = leaf_group_sizes(count, 100)
            assert len(sizes) == math.ceil(count / 100)
            assert sum(sizes) == count

    def test_all_but_last_full(self):
        sizes = leaf_group_sizes(1234, 100)
        assert all(s == 100 for s in sizes[:-1])

    def test_invalid_inputs(self):
        with pytest.raises(PackingError):
            leaf_group_sizes(0, 100)
        with pytest.raises(PackingError):
            leaf_group_sizes(100, 0)


class TestCeilRoot:
    @pytest.mark.parametrize("value,k", [
        (1, 1), (4, 2), (9, 2), (10, 2), (27, 3), (28, 3), (1000, 3),
        (10 ** 12, 4), (2, 10), (7, 1),
    ])
    def test_matches_definition(self, value, k):
        got = ceil_root(value, k)
        assert got ** k >= value
        assert (got - 1) ** k < value or got == 1

    def test_perfect_powers_exact(self):
        # The float-pow pitfall: 27**(1/3) rounds to 3.0000000000000004.
        assert ceil_root(27, 3) == 3
        assert ceil_root(64, 3) == 4
        assert ceil_root(10 ** 9, 3) == 1000

    def test_invalid(self):
        with pytest.raises(PackingError):
            ceil_root(0, 2)
        with pytest.raises(PackingError):
            ceil_root(4, 0)


class TestCeilPowFrac:
    @pytest.mark.parametrize("value,num,den", [
        (10, 1, 2), (10, 2, 3), (27, 2, 3), (100, 3, 4), (5, 0, 3),
        (1, 5, 7), (12345, 2, 3),
    ])
    def test_matches_definition(self, value, num, den):
        got = ceil_pow_frac(value, num, den)
        assert got ** den >= value ** num
        assert got == 1 or (got - 1) ** den < value ** num

    def test_matches_float_where_safe(self):
        assert ceil_pow_frac(10, 1, 2) == math.ceil(10 ** 0.5)
        assert ceil_pow_frac(10, 2, 3) == math.ceil(10 ** (2 / 3))

    def test_perfect_power_exact(self):
        assert ceil_pow_frac(27, 2, 3) == 9

    def test_invalid(self):
        with pytest.raises(PackingError):
            ceil_pow_frac(0, 1, 2)
        with pytest.raises(PackingError):
            ceil_pow_frac(4, 1, 0)


class TestValidatePermutation:
    def test_accepts_identity(self):
        out = validate_permutation(np.arange(5), 5)
        assert out.dtype == np.int64

    def test_accepts_shuffle(self, rng):
        validate_permutation(rng.permutation(100), 100)

    def test_rejects_wrong_length(self):
        with pytest.raises(PackingError):
            validate_permutation(np.arange(4), 5)

    def test_rejects_duplicates(self):
        with pytest.raises(PackingError):
            validate_permutation(np.array([0, 0, 2]), 3)
