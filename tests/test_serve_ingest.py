"""End-to-end streaming ingest over real sockets: fsync-backed write
acks, read-your-writes visibility, typed backpressure, the merge op
with zero-downtime cutover, durability across restarts, a concurrent
writer soak checked against an oracle, and a merge killed mid-re-pack
then resumed with zero lost acked writes."""

import asyncio
import os

import numpy as np
import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.core.geometry import Rect
from repro.ingest import (
    DEFAULT_WAL_LIMIT,
    IngestState,
    merge_segments,
    resolve_current,
)
from repro.rtree.paged import PagedRTree
from repro.serve import QueryClient, QueryServer, Request
from repro.storage import FilePageStore
from repro.storage.faults import CrashPlan
from repro.storage.integrity import TRAILER_SIZE
from repro.storage.page import required_page_size
from repro.storage.store import SimulatedCrash

CAPACITY = 8
NDIM = 2
N_BASE = 300


def run(coro):
    return asyncio.run(coro)


def _rect(i: int, size: float = 0.01) -> Rect:
    lo = ((i % 97) / 100.0, (i % 89) / 100.0)
    return Rect(lo, tuple(c + size for c in lo))


def _build_base(tree_path, n=N_BASE, seed=7):
    """Durable packed base of ids 0..n-1; returns the oracle dict."""
    rng = np.random.default_rng(seed)
    lo = rng.random((n, NDIM)) * 0.9
    rects = RectArray(lo, lo + rng.random((n, NDIM)) * 0.05)
    page_size = required_page_size(CAPACITY, NDIM) + TRAILER_SIZE
    store = FilePageStore(tree_path, page_size, checksums=True,
                          journal=True)
    bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
              store=store)
    store.close()
    return {i: (tuple(rects.los[i]), tuple(rects.his[i]))
            for i in range(n)}


def _open_serving(tree_path, **kwargs):
    """Recover ingest state and open the current generation, exactly
    as ``repro serve --ingest`` does."""
    state, base_path = IngestState.open(tree_path, ndim=NDIM, **kwargs)
    store = FilePageStore.open_existing(base_path)
    tree = PagedRTree.from_store(store)
    return tree, state


def _brute_search(oracle, rect: Rect):
    """Oracle window query over the logical ``{id: (lo, hi)}`` set."""
    out = []
    for data_id, (lo, hi) in oracle.items():
        if all(lo[d] <= rect.hi[d] and hi[d] >= rect.lo[d]
               for d in range(NDIM)):
            out.append(data_id)
    return sorted(out)


QUERIES = [Rect((x, y), (x + 0.3, y + 0.3))
           for x in (0.0, 0.35, 0.65) for y in (0.0, 0.35, 0.65)]


async def _assert_oracle_exact(client, oracle):
    for q in QUERIES:
        resp = (await client.search(q)).raise_for_error()
        assert resp.ids == _brute_search(oracle, q)


class TestWritePath:
    def test_ack_read_your_writes_and_health(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        oracle = _build_base(tree_path)
        tree, state = _open_serving(tree_path)

        async def scenario():
            async with QueryServer(tree, ingest=state) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as c:
                    r = (await c.insert(9000, _rect(9000))
                         ).raise_for_error()
                    assert r.data["lsn"] == 1
                    oracle[9000] = (_rect(9000).lo, _rect(9000).hi)
                    r = (await c.delete(0)).raise_for_error()
                    assert r.data["lsn"] == 2
                    del oracle[0]
                    # Read-your-writes: the very next queries see both.
                    await _assert_oracle_exact(c, oracle)
                    knn = (await c.knn(_rect(9000).lo, 1)
                           ).raise_for_error()
                    assert knn.ids[0] == 9000

                    health = await c.healthz()
                    ing = health["ingest"]
                    assert ing["wal"]["last_lsn"] == 2
                    assert ing["delta"]["live"] == 1
                    assert ing["delta"]["live_tombstones"] == 1
                    assert ing["writes"]["acked"] == 2
                    ready = await c.readyz()
                    assert ready["ingest"]["enabled"] is True
                    assert ready["ingest"]["overloaded"] is False

        run(scenario())

    def test_upsert_is_last_writer_wins(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        oracle = _build_base(tree_path, n=50)
        tree, state = _open_serving(tree_path)

        async def scenario():
            async with QueryServer(tree, ingest=state) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as c:
                    first = Rect((0.0, 0.0), (0.01, 0.01))
                    second = Rect((0.8, 0.8), (0.81, 0.81))
                    (await c.insert(7000, first)).raise_for_error()
                    (await c.insert(7000, second)).raise_for_error()
                    oracle[7000] = (second.lo, second.hi)
                    await _assert_oracle_exact(c, oracle)

        run(scenario())

    def test_writes_rejected_without_ingest(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        _build_base(tree_path, n=50)
        store = FilePageStore.open_existing(tree_path)
        tree = PagedRTree.from_store(store)

        async def scenario():
            async with QueryServer(tree) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as c:
                    resp = await c.insert(1, _rect(1))
                    assert resp.ok is False
                    assert resp.error == "BadRequest"
                    resp = await c.request(Request(op="merge"))
                    assert resp.error == "MergeFailed"

        run(scenario())

    def test_overload_sheds_with_typed_error(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        _build_base(tree_path, n=50)
        tree, state = _open_serving(tree_path, max_wal_bytes=1)

        async def scenario():
            async with QueryServer(tree, ingest=state) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as c:
                    ok = await c.insert(6000, _rect(6000))
                    assert ok.ok is True  # log was empty: admitted
                    shed = await c.insert(6001, _rect(6001))
                    assert shed.ok is False
                    assert shed.error == "IngestOverloaded"
                    # Shedding happened before any append: reads still
                    # serve and nothing durable changed for 6001.
                    q = Rect(_rect(6001).lo, _rect(6001).hi)
                    resp = (await c.search(q)).raise_for_error()
                    assert 6001 not in resp.ids
                    ready = await c.readyz()
                    assert ready["ingest"]["overloaded"] is True
                    health = await c.healthz()
                    assert health["ingest"]["writes"]["shed"] == 1

        run(scenario())
        assert state.wal.last_lsn == 1  # the shed write has no LSN


class TestMergeCutover:
    def test_merge_bumps_generation_answers_unchanged(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        oracle = _build_base(tree_path)
        tree, state = _open_serving(tree_path)

        async def scenario():
            async with QueryServer(tree, ingest=state) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as c:
                    for i in range(40):
                        (await c.insert(8000 + i, _rect(8000 + i))
                         ).raise_for_error()
                        oracle[8000 + i] = (_rect(8000 + i).lo,
                                            _rect(8000 + i).hi)
                    for i in range(5):
                        (await c.delete(i)).raise_for_error()
                        del oracle[i]
                    await _assert_oracle_exact(c, oracle)

                    data = await c.merge()
                    assert data["merged"] is True
                    assert data["generation"] == 2
                    assert data["merge"]["ops_applied"] == 45
                    assert server.generation == 2
                    # Zero-downtime equivalence: identical answers
                    # through the new generation.
                    await _assert_oracle_exact(c, oracle)
                    health = await c.healthz()
                    assert health["ingest"]["merge"]["merges_total"] == 1
                    assert health["ingest"]["delta"]["live"] == 0

                    # Writes keep flowing after cutover, LSNs continue.
                    r = (await c.insert(9999, _rect(9999))
                         ).raise_for_error()
                    assert r.data["lsn"] == 46
                    oracle[9999] = (_rect(9999).lo, _rect(9999).hi)
                    await _assert_oracle_exact(c, oracle)

                    # A second merge drains the post-cutover write.
                    data = await c.merge()
                    assert data["merged"] is True
                    assert data["generation"] == 3
                    await _assert_oracle_exact(c, oracle)

        run(scenario())

    def test_merge_with_nothing_pending_is_a_noop(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        _build_base(tree_path, n=50)
        tree, state = _open_serving(tree_path)

        async def scenario():
            async with QueryServer(tree, ingest=state) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as c:
                    data = await c.merge()
                    assert data["merged"] is False
                    assert state.merging is False

        run(scenario())

    def test_durability_across_restart_and_offline_merge(self, tmp_path):
        tree_path = str(tmp_path / "tree.rt")
        oracle = _build_base(tree_path)
        tree, state = _open_serving(tree_path)

        async def write_phase():
            async with QueryServer(tree, ingest=state) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as c:
                    for i in range(20):
                        (await c.insert(4000 + i, _rect(4000 + i))
                         ).raise_for_error()
                        oracle[4000 + i] = (_rect(4000 + i).lo,
                                            _rect(4000 + i).hi)
                    (await c.delete(10)).raise_for_error()
                    del oracle[10]

        run(write_phase())
        tree.store.close()

        async def read_phase():
            tree2, state2 = _open_serving(tree_path)
            try:
                async with QueryServer(tree2, ingest=state2) as server:
                    host, port = server.address
                    async with await QueryClient.connect(host, port) as c:
                        await _assert_oracle_exact(c, oracle)
            finally:
                tree2.store.close()

        # Every acked write survives the restart, via WAL replay...
        run(read_phase())
        # ...and via a merge between restarts (ops now in the base).
        state3, _ = IngestState.open(tree_path, ndim=NDIM)
        state3.wal.seal_active()
        state3.close()
        report = merge_segments(tree_path)
        assert report is not None and report.ops_applied == 21
        run(read_phase())


class TestWriterSoak:
    def test_concurrent_writers_and_readers_match_oracle(self, tmp_path):
        """4 writers (disjoint id ranges, occasional deletes) race 2
        readers and a mid-soak merge; the final answers must be
        oracle-exact and every ack monotone in LSN."""
        tree_path = str(tmp_path / "tree.rt")
        oracle = _build_base(tree_path)
        tree, state = _open_serving(tree_path)
        per_writer = 30

        async def writer(host, port, lane):
            lsns = []
            async with await QueryClient.connect(host, port) as c:
                base_id = 10_000 + lane * 1000
                for k in range(per_writer):
                    data_id = base_id + k
                    r = (await c.insert(data_id, _rect(data_id))
                         ).raise_for_error()
                    lsns.append(r.data["lsn"])
                    oracle[data_id] = (_rect(data_id).lo,
                                       _rect(data_id).hi)
                    if k % 7 == 3:
                        (await c.delete(data_id)).raise_for_error()
                        del oracle[data_id]
            return lsns

        async def reader(host, port, stop):
            async with await QueryClient.connect(host, port) as c:
                while not stop.is_set():
                    for q in QUERIES[:3]:
                        (await c.search(q)).raise_for_error()
                    await asyncio.sleep(0)

        async def scenario():
            async with QueryServer(tree, ingest=state,
                                   max_inflight=16,
                                   max_queue=64) as server:
                host, port = server.address
                stop = asyncio.Event()
                readers = [asyncio.create_task(reader(host, port, stop))
                           for _ in range(2)]
                lanes = await asyncio.gather(
                    *[writer(host, port, lane) for lane in range(4)])
                stop.set()
                await asyncio.gather(*readers)
                # Acks are globally unique and each lane sees them in
                # strictly increasing order (single-flight WAL).
                flat = [l for lane in lanes for l in lane]
                assert len(set(flat)) == len(flat)
                for lane in lanes:
                    assert lane == sorted(lane)
                async with await QueryClient.connect(host, port) as c:
                    await _assert_oracle_exact(c, oracle)
                    data = await c.merge()
                    assert data["merged"] is True
                    await _assert_oracle_exact(c, oracle)

        run(scenario())


class TestMergeKillResume:
    def test_killed_merge_resumes_with_zero_lost_acked_writes(
            self, tmp_path):
        """Serve + write, kill the re-pack mid-build, restart serving
        (old generation + replay — every ack visible), re-run the
        merge to completion, restart again on the new generation."""
        tree_path = str(tmp_path / "tree.rt")
        oracle = _build_base(tree_path)
        tree, state = _open_serving(tree_path)

        async def write_phase():
            async with QueryServer(tree, ingest=state) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as c:
                    for i in range(25):
                        (await c.insert(3000 + i, _rect(3000 + i))
                         ).raise_for_error()
                        oracle[3000 + i] = (_rect(3000 + i).lo,
                                            _rect(3000 + i).hi)
                    (await c.delete(1)).raise_for_error()
                    del oracle[1]

        run(write_phase())
        tree.store.close()

        # Seal (as begin_merge would) and kill the re-pack mid-build.
        seal_state, _ = IngestState.open(tree_path, ndim=NDIM)
        seal_state.wal.seal_active()
        seal_state.close()
        with pytest.raises(SimulatedCrash):
            merge_segments(tree_path,
                           crash_plan=CrashPlan(5, tear_bytes=3))

        async def serve_and_check():
            tree2, state2 = _open_serving(tree_path)
            try:
                async with QueryServer(tree2, ingest=state2) as server:
                    host, port = server.address
                    async with await QueryClient.connect(host,
                                                         port) as c:
                        await _assert_oracle_exact(c, oracle)
            finally:
                tree2.store.close()
            return state2

        # The kill lost nothing: the old generation still serves and
        # replay covers every acked write.
        current, pointer = resolve_current(tree_path)
        assert current == tree_path and pointer is None
        run(serve_and_check())

        # Resume: the merge is a pure function of the sealed bytes.
        report = merge_segments(tree_path)
        assert report is not None
        current, pointer = resolve_current(tree_path)
        assert current == report.path
        assert pointer is not None and pointer.merged_lsn == 26
        run(serve_and_check())


class TestDefaults:
    def test_default_wal_limit_is_sane(self):
        assert DEFAULT_WAL_LIMIT == 64 << 20
