"""The ``repro bench`` suite: schema, scenarios, runner (``repro.bench``)."""

from dataclasses import replace

import pytest

from repro.bench import (
    BENCH_FORMAT,
    BenchConfig,
    BenchSchemaError,
    SCENARIOS,
    default_bench_name,
    environment_fingerprint,
    host_class,
    load_bench,
    run_bench,
    validate_bench,
    write_bench,
)

#: A deliberately tiny config so the full suite runs in seconds.
MICRO = replace(BenchConfig.quick(), size=800, queries=25, buffer_pages=32,
                knn_queries=8, knn_k=5, serve_queries=8)


@pytest.fixture(scope="module")
def bench_run(tmp_path_factory):
    """One micro-suite run shared by every assertion in this module."""
    td = tmp_path_factory.mktemp("bench")
    doc, written = run_bench(
        MICRO,
        out_path=str(td / "bench.json"),
        run_dir=str(td / "runs"),
        argv=["bench", "--quick"],
    )
    return doc, written, td


class TestSchema:
    def test_host_class_and_default_name(self):
        hc = host_class()
        assert "-" in hc
        assert default_bench_name() == f"BENCH_{hc}.json"

    def test_environment_fingerprint_keys(self):
        env = environment_fingerprint()
        assert set(env) >= {"git_sha", "python", "platform", "machine",
                            "cpu_count"}

    def test_non_dict_rejected(self):
        assert validate_bench([1, 2]) == [
            "document is list, expected object"
        ]

    def test_wrong_format_reported(self):
        errors = validate_bench({"format": "bogus-v0"})
        assert any("bogus-v0" in e for e in errors)

    def test_scenario_violations_reported(self, bench_run):
        doc, _, _ = bench_run
        import copy

        bad = copy.deepcopy(doc)
        sc = bad["scenarios"]["window_1pct"]
        del sc["latency_s"]["p99"]
        sc["ops"] = 0
        sc["io"]["pages_read"] = "many"
        errors = validate_bench(bad)
        assert any("latency_s: missing key 'p99'" in e for e in errors)
        assert any("ops" in e for e in errors)
        assert any("pages_read" in e for e in errors)

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(BenchSchemaError):
            write_bench({"format": BENCH_FORMAT}, tmp_path / "x.json")

    def test_load_validates(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-bench-v1"}')
        with pytest.raises(BenchSchemaError, match="scenarios"):
            load_bench(path)


class TestSuiteRun:
    def test_document_is_schema_valid_and_reloads_identically(
            self, bench_run):
        doc, written, _ = bench_run
        assert validate_bench(doc) == []
        assert load_bench(written["bench"]) == doc

    def test_all_pinned_scenarios_present(self, bench_run):
        doc, _, _ = bench_run
        assert list(doc["scenarios"]) == list(SCENARIOS)
        assert len(doc["scenarios"]) >= 5

    def test_every_scenario_reports_the_headline_numbers(self, bench_run):
        doc, _, _ = bench_run
        for name, sc in doc["scenarios"].items():
            assert sc["queries_per_s"] > 0, name
            assert sc["latency_s"]["p50"] <= sc["latency_s"]["p99"], name
            assert sc["latency_s"]["p99"] <= sc["latency_s"]["max"], name
            assert set(sc["self_time_s"]) == {"read", "decode", "walk",
                                              "other"}
            assert sc["tolerance"]  # bands travel with the baseline

    def test_query_scenarios_attribute_decode_and_walk_time(
            self, bench_run):
        doc, _, _ = bench_run
        cold = doc["scenarios"]["window_1pct"]
        assert cold["self_time_s"]["decode"] > 0
        assert cold["self_time_s"]["walk"] > 0
        assert cold["io"]["pages_read"] > 0
        assert cold["mean_accesses"] == pytest.approx(
            cold["io"]["pages_read"] / cold["ops"])

    def test_warm_run_reads_no_pages(self, bench_run):
        doc, _, _ = bench_run
        warm = doc["scenarios"]["window_1pct_warm"]
        assert warm["io"]["pages_read"] == 0
        assert warm["io"]["buffer_hits"] > 0

    def test_serve_roundtrip_went_over_the_wire(self, bench_run):
        doc, _, _ = bench_run
        serve = doc["scenarios"]["serve_roundtrip"]
        assert serve["ops"] == MICRO.serve_queries
        assert serve["transport"] == "asyncio-ndjson"

    def test_run_artefacts_share_one_stem(self, bench_run):
        _, written, _ = bench_run
        import os

        stems = {os.path.basename(written[k]).split(".")[0]
                 for k in ("manifest", "trace_jsonl", "bench_copy")}
        assert len(stems) == 1

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="no_such"):
            run_bench(MICRO, scenario_names=["no_such"],
                      write_run_files=False)

    def test_scenario_filter_always_includes_build(self, tmp_path):
        doc, _ = run_bench(
            replace(MICRO, queries=10),
            out_path=str(tmp_path / "b.json"),
            scenario_names=["point"],
            write_run_files=False,
        )
        assert list(doc["scenarios"]) == ["build", "point"]


class TestDeterministicIO:
    def test_pages_read_identical_across_runs(self, bench_run, tmp_path):
        """The regression gate's foundation: access counts are exact."""
        doc_a, _, _ = bench_run
        doc_b, _ = run_bench(
            MICRO,
            out_path=str(tmp_path / "b.json"),
            scenario_names=["window_1pct", "point"],
            write_run_files=False,
        )
        for name in ("window_1pct", "point"):
            assert (doc_a["scenarios"][name]["io"]["pages_read"] ==
                    doc_b["scenarios"][name]["io"]["pages_read"]), name
