"""Unit tests for the shared real-data table machinery and CLI --svg."""

import pytest

from repro.core.geometry import RectArray
from repro.experiments.realdata import buffer_sweep_table, quality_table
from repro.experiments.runner import TreeCache
from repro.queries import point_queries


@pytest.fixture
def cache(rng):
    c = TreeCache(capacity=20)
    c.add_dataset("d", RectArray.from_points(rng.random((2_000, 2))))
    return c


class TestBufferSweepTable:
    def test_structure(self, cache):
        sections = (
            ("Point Queries", lambda: point_queries(100, seed=1)),
        )
        t = buffer_sweep_table(cache, "d", (5, 10), sections, title="T")
        assert t.columns == ("Buffer Size", "STR", "HS", "NX",
                             "HS/STR", "NX/STR")
        assert t.column("Buffer Size") == [5, 10]
        assert len(t.rows) == 3  # section + two rows

    def test_ratios_consistent(self, cache):
        sections = (
            ("Point Queries", lambda: point_queries(100, seed=1)),
        )
        t = buffer_sweep_table(cache, "d", (5,), sections, title="T")
        row = t.data_rows()[0]
        assert row[4] == pytest.approx(row[2] / row[1])
        assert row[5] == pytest.approx(row[3] / row[1])

    def test_workload_factory_called_once_per_section(self, cache):
        calls = []

        def factory():
            calls.append(1)
            return point_queries(50, seed=1)

        buffer_sweep_table(cache, "d", (5, 10, 20),
                           (("S", factory),), title="T")
        assert len(calls) == 1

    def test_accesses_fall_with_buffer(self, cache):
        sections = (
            ("Point Queries", lambda: point_queries(300, seed=1)),
        )
        t = buffer_sweep_table(cache, "d", (2, 50), sections, title="T")
        str_col = t.column("STR")
        assert str_col[0] > str_col[1]


class TestQualityTable:
    def test_structure_and_positivity(self, cache):
        t = quality_table(cache, "d", title="Q")
        assert [r[0] for r in t.data_rows()] == [
            "leaf area", "total area", "leaf perimeter", "total perimeter"
        ]
        for row in t.data_rows():
            assert all(v > 0 for v in row[1:])

    def test_matches_measure_paged(self, cache):
        from repro.rtree.stats import measure_paged

        t = quality_table(cache, "d", title="Q")
        direct = measure_paged(cache.tree("d", "STR"))
        rows = {r[0]: r[1] for r in t.data_rows()}  # STR column
        assert rows["leaf area"] == pytest.approx(direct.leaf_area)
        assert rows["total perimeter"] == pytest.approx(
            direct.total_perimeter)


class TestCliSvg:
    def test_svg_flag_writes_chart(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["fig10", "--quick", "--queries", "40",
                     "--svg", "--out-dir", str(tmp_path)])
        assert code == 0
        svg = (tmp_path / "fig10.svg").read_text()
        assert svg.count("<polyline") == 2
