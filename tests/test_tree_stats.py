"""Unit tests for tree quality metrics (area/perimeter sums)."""

import pytest

from repro.core.geometry import Rect, RectArray
from repro.core.packing import NearestX, SortTileRecursive
from repro.rtree.bulk import bulk_load, paged_from_dynamic
from repro.rtree.stats import measure_dynamic, measure_paged
from repro.rtree.tree import RTree


class TestMeasurePaged:
    def test_single_node_tree(self):
        ra = RectArray.from_rects([Rect((0, 0), (1, 2)),
                                   Rect((0.5, 0.5), (2, 1))])
        tree, _ = bulk_load(ra, SortTileRecursive(), capacity=10)
        q = measure_paged(tree)
        # One root leaf whose MBR is (0,0)-(2,2).
        assert q.node_count == 1
        assert q.leaf_area == q.total_area == pytest.approx(4.0)
        assert q.leaf_perimeter == q.total_perimeter == pytest.approx(8.0)

    def test_leaf_subset_of_total(self, unit_points):
        tree, _ = bulk_load(unit_points, SortTileRecursive(), capacity=50)
        q = measure_paged(tree)
        assert q.leaf_area <= q.total_area
        assert q.leaf_perimeter <= q.total_perimeter
        assert q.node_count == tree.page_count
        assert q.height == tree.height

    def test_point_data_leaf_area_below_node_count(self, rng):
        """On uniform point data each STR leaf tile has area ~1/P, so the
        leaf-area sum is around 1 (paper Table 4: 0.97)."""
        ra = RectArray.from_points(rng.random((10_000, 2)))
        tree, _ = bulk_load(ra, SortTileRecursive(), capacity=100)
        q = measure_paged(tree)
        assert 0.7 < q.leaf_area < 1.2

    def test_nx_perimeter_blows_up(self, rng):
        """The paper's core NX observation: order-of-magnitude larger
        perimeter than STR on the same data."""
        ra = RectArray.from_points(rng.random((10_000, 2)))
        str_q = measure_paged(bulk_load(ra, SortTileRecursive(),
                                        capacity=100)[0])
        nx_q = measure_paged(bulk_load(ra, NearestX(), capacity=100)[0])
        assert nx_q.leaf_perimeter > 3 * str_q.leaf_perimeter

    def test_as_row_keys(self, unit_points):
        tree, _ = bulk_load(unit_points, SortTileRecursive(), capacity=50)
        row = measure_paged(tree).as_row()
        assert set(row) == {"leaf area", "total area",
                            "leaf perimeter", "total perimeter"}


class TestMeasureDynamic:
    def test_agrees_with_paged_measurement(self, rng):
        pts = rng.random((300, 2))
        dyn = RTree(capacity=10)
        for i, p in enumerate(pts):
            dyn.insert(Rect.from_point(tuple(p)), i)
        d = measure_dynamic(dyn)
        p = measure_paged(paged_from_dynamic(dyn))
        assert d.leaf_area == pytest.approx(p.leaf_area)
        assert d.total_perimeter == pytest.approx(p.total_perimeter)
        assert d.node_count == p.node_count

    def test_packed_beats_dynamic_on_quality(self, rng):
        """Packing's claim (c): the packed tree has less leaf-level area
        than the insertion-built tree on the same data."""
        pts = rng.random((2000, 2))
        ra = RectArray.from_points(pts)
        packed = measure_paged(
            bulk_load(ra, SortTileRecursive(), capacity=20)[0]
        )
        dyn = RTree(capacity=20)
        for i, p in enumerate(pts):
            dyn.insert(Rect.from_point(tuple(p)), i)
        inserted = measure_dynamic(dyn)
        assert packed.leaf_area < inserted.leaf_area

    def test_empty_tree(self):
        q = measure_dynamic(RTree())
        assert q.node_count == 0
        assert q.leaf_area == 0.0
