"""End-to-end integration tests crossing every subsystem boundary.

Dataset generator -> packing -> page codec -> file store -> buffer pool ->
query execution -> metrics, in one flow, as a downstream user would wire
them together.
"""

import numpy as np

from repro import (
    FilePageStore,
    HilbertSort,
    IOStats,
    Rect,
    RectArray,
    RTree,
    SortTileRecursive,
    bulk_load,
    knn,
    measure_paged,
    paged_from_dynamic,
    validate_paged,
)
from repro.datasets import long_beach_like, save_rects, load_rects
from repro.queries import point_queries, region_queries
from repro.storage.page import required_page_size


def test_full_pipeline_on_file_store(tmp_path):
    """The paper's pipeline with genuine disk I/O end to end."""
    rects = long_beach_like(5_000, seed=0)
    save_rects(tmp_path / "tiger.npz", rects)
    reloaded = load_rects(tmp_path / "tiger.npz")
    assert reloaded == rects

    page_size = required_page_size(50, 2)
    with FilePageStore(tmp_path / "tree.pages", page_size) as store:
        tree, report = bulk_load(reloaded, SortTileRecursive(),
                                 capacity=50, store=store)
        assert report.pages_written == tree.page_count
        validate_paged(tree, range(5_000))

        searcher = tree.searcher(buffer_pages=10)
        total = 0
        for q in region_queries(0.1, 100, seed=1):
            total += searcher.search(q).size
        assert total > 0
        assert searcher.disk_accesses > 0
        quality = measure_paged(tree)
        assert quality.leaf_area > 0


def test_reopened_tree_file_still_queryable(tmp_path):
    rects = RectArray.from_points(np.random.default_rng(0).random((800, 2)))
    page_size = required_page_size(20, 2)
    path = tmp_path / "tree.pages"
    with FilePageStore(path, page_size) as store:
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=20,
                            store=store)
        root, height = tree.root_page, tree.height

    # A new process would reopen the file and reattach.
    from repro import PagedRTree
    with FilePageStore(path, page_size) as store2:
        tree2 = PagedRTree(store2, root, height=height, ndim=2,
                           capacity=20, size=800)
        validate_paged(tree2, range(800))
        hits = tree2.searcher(5).search(Rect((0.4, 0.4), (0.6, 0.6)))
        want = rects.intersects_rect(Rect((0.4, 0.4), (0.6, 0.6))).sum()
        assert hits.size == want


def test_mixed_workload_shared_stats():
    """Range + point + kNN queries through one searcher accumulate into a
    single coherent stats object."""
    rng = np.random.default_rng(7)
    rects = RectArray.from_points(rng.random((3_000, 2)))
    tree, _ = bulk_load(rects, HilbertSort(), capacity=50)
    stats = IOStats()
    searcher = tree.searcher(buffer_pages=10, stats=stats)

    for q in point_queries(50, seed=2):
        searcher.search(q)
    knn(searcher, (0.5, 0.5), 10)
    assert stats.disk_reads == stats.buffer_misses
    assert stats.buffer_hits + stats.buffer_misses >= 51


def test_dynamic_to_paged_to_queries():
    """Insert -> serialise -> paged queries agree with the live tree."""
    rng = np.random.default_rng(3)
    pts = rng.random((600, 2))
    dyn = RTree(capacity=25)
    for i, p in enumerate(pts):
        dyn.insert(Rect.from_point(tuple(p)), i)
    # Mutate a bit: delete a slice, reinsert half of it.
    for i in range(100):
        dyn.delete(Rect.from_point(tuple(pts[i])), i)
    for i in range(50):
        dyn.insert(Rect.from_point(tuple(pts[i])), i)

    paged = paged_from_dynamic(dyn)
    validate_paged(paged)
    searcher = paged.searcher(buffer_pages=8)
    for q in region_queries(0.25, 30, seed=5):
        assert set(searcher.search(q).tolist()) == set(dyn.search(q))


def test_packed_tree_beats_dynamic_on_node_visits():
    """The paper's headline motivation, measured end to end: a packed STR
    tree answers queries touching fewer nodes than a Guttman-built tree."""
    rng = np.random.default_rng(11)
    pts = rng.random((4_000, 2))
    rects = RectArray.from_points(pts)

    packed, _ = bulk_load(rects, SortTileRecursive(), capacity=50)
    dyn = RTree(capacity=50)
    for i, p in enumerate(pts):
        dyn.insert(Rect.from_point(tuple(p)), i)
    paged_dyn = paged_from_dynamic(dyn)

    def accesses(tree):
        s = tree.searcher(buffer_pages=1)  # buffer off: raw node visits
        for q in region_queries(0.1, 200, seed=9):
            s.search(q)
        return s.disk_accesses

    assert accesses(packed) < accesses(paged_dyn)


def test_space_utilization_packed_vs_dynamic():
    """Claim (b): packing reaches ~100% leaf fill, insertion builds don't."""
    rng = np.random.default_rng(13)
    pts = rng.random((3_000, 2))
    rects = RectArray.from_points(pts)
    packed, report = bulk_load(rects, SortTileRecursive(), capacity=50)
    packed_fill = len(packed) / (report.leaf_pages * 50)
    dyn = RTree(capacity=50)
    for i, p in enumerate(pts):
        dyn.insert(Rect.from_point(tuple(p)), i)
    assert packed_fill == 1.0  # 3000 = 60 full leaves
    assert dyn.space_utilization() < 0.9
