"""Telemetry integration: wiring, non-perturbation, CLI surface.

The load-bearing guarantee is the *non-perturbation regression*: a
Table-2-style run reports bit-identical ``mean_accesses`` with telemetry
enabled and disabled, because instrumentation only reads experiment
state (spans time things, counters are copied at batch boundaries).
"""

import json

import numpy as np
import pytest

from repro import RectArray, SortTileRecursive, bulk_load, obs
from repro.cli import main
from repro.experiments import synthetic_tables
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_queries
from repro.queries import point_queries

#: Table 2's exact code path, scaled to test size.
TINY = ExperimentConfig.quick().scaled(sizes=(2_000, 5_000), query_count=60)


@pytest.fixture
def telemetry():
    with obs.telemetry() as (tracer, registry):
        yield tracer, registry


class TestWiring:
    def test_bulk_load_emits_spans_and_metrics(self, telemetry):
        tracer, registry = telemetry
        rects = RectArray.from_points(
            np.random.default_rng(0).random((3_000, 2))
        )
        bulk_load(rects, SortTileRecursive(), capacity=50)
        names = {s.name for s in tracer.spans}
        assert {"bulk.load", "pack.order", "bulk.write_level",
                "str.sort"} <= names
        assert registry.counter("build.io.disk_writes",
                                algorithm="STR").value > 0
        assert registry.gauge("tree.height", algorithm="STR").value >= 2

    def test_run_queries_emits_batch_span_and_histograms(self, telemetry):
        tracer, registry = telemetry
        rects = RectArray.from_points(
            np.random.default_rng(1).random((2_000, 2))
        )
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=50)
        result = run_queries(tree, point_queries(40, seed=2), 10,
                             algorithm="STR")
        names = {s.name for s in tracer.spans}
        assert "query.batch" in names
        assert "query.search" in names
        hist = registry.histogram("query.accesses", algorithm="STR",
                                  workload="point")
        assert hist.count == 40
        # The histogram total is the same number the runner reports.
        assert hist.total == result.total_accesses
        reads = registry.counter("query.io.disk_reads", algorithm="STR",
                                 workload="point")
        assert reads.value == result.total_accesses

    def test_no_spans_when_disabled(self):
        rects = RectArray.from_points(
            np.random.default_rng(2).random((1_000, 2))
        )
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=50)
        run_queries(tree, point_queries(10, seed=3), 10)
        assert not obs.enabled()


class TestNonPerturbation:
    def test_table2_identical_with_and_without_telemetry(self):
        """The acceptance regression: telemetry must not move the metric."""
        plain = synthetic_tables.table2(TINY).to_csv()
        with obs.telemetry() as (tracer, _):
            traced = synthetic_tables.table2(TINY).to_csv()
        assert traced == plain          # bit-identical cells, incl. means
        assert len(tracer) > 0          # ...and telemetry actually ran

    def test_single_run_identical_accesses(self):
        rects = RectArray.from_points(
            np.random.default_rng(5).random((4_000, 2))
        )
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=50)
        workload = point_queries(100, seed=6)
        off = run_queries(tree, workload, 10, algorithm="STR")
        with obs.telemetry():
            on = run_queries(tree, workload, 10, algorithm="STR")
        assert on.total_accesses == off.total_accesses
        assert on.mean_accesses == off.mean_accesses


class TestDurabilityNonPerturbation:
    """The durability layer is opt-in and must never move the paper's
    metric: the same build + workload reports bit-identical access counts
    on a memory store, a plain file store, and a fully durable
    (checksums + journal + retry) file store."""

    def _accesses(self, store):
        rects = RectArray.from_points(
            np.random.default_rng(42).random((3_000, 2))
        )
        tree, report = bulk_load(rects, SortTileRecursive(), capacity=50,
                                 store=store)
        searcher = tree.searcher(10)
        per_query = []
        for q in point_queries(80, seed=9):
            before = searcher.disk_accesses
            searcher.search(q)
            per_query.append(searcher.disk_accesses - before)
        return report.pages_written, per_query

    def test_file_and_durable_stores_match_memory(self, tmp_path):
        from repro.storage import FilePageStore, MemoryPageStore, RetryPolicy
        from repro.storage.integrity import TRAILER_SIZE
        from repro.storage.page import required_page_size

        page = required_page_size(50, 2)
        baseline = self._accesses(MemoryPageStore(page))
        plain = FilePageStore(tmp_path / "plain.pages", page)
        durable = FilePageStore(
            tmp_path / "durable.pages", page + TRAILER_SIZE,
            checksums=True, journal=True,
            retry=RetryPolicy(sleep=lambda s: None),
        )
        try:
            assert self._accesses(plain) == baseline
            assert self._accesses(durable) == baseline
        finally:
            plain.close()
            durable.close()

    def test_durable_store_with_telemetry_still_matches(self, tmp_path):
        from repro.storage import FilePageStore, MemoryPageStore
        from repro.storage.integrity import TRAILER_SIZE
        from repro.storage.page import required_page_size

        page = required_page_size(50, 2)
        baseline = self._accesses(MemoryPageStore(page))
        with obs.telemetry():
            durable = FilePageStore(tmp_path / "d.pages",
                                    page + TRAILER_SIZE, checksums=True,
                                    journal=True)
            try:
                assert self._accesses(durable) == baseline
            finally:
                durable.close()


class TestIOStatsRegistryBacking:
    def test_shared_registry_aggregates(self):
        from repro.storage.counters import IOStats

        reg = obs.MetricsRegistry()
        a = IOStats(registry=reg)
        b = IOStats(registry=reg)
        a.disk_reads += 2
        b.disk_reads += 3
        # Same registry + prefix => same backing counter.
        assert reg.counter("io.disk_reads").value == 5
        assert a.disk_reads == 5

    def test_private_registries_isolated(self):
        from repro.storage.counters import IOStats

        a, b = IOStats(), IOStats()
        a.disk_reads += 2
        assert b.disk_reads == 0


class TestProfileCli:
    def run_cli(self, capsys, *args):
        code = main(list(args))
        return code, capsys.readouterr().out

    def test_profile_prints_breakdown_and_writes_artifacts(
            self, tmp_path, capsys):
        code, out = self.run_cli(
            capsys, "profile", "table1", "--quick", "--queries", "20",
            "--run-dir", str(tmp_path),
        )
        assert code == 0
        assert "Phase timing breakdown: table1" in out
        assert "phases (self time)" in out
        manifests = list(tmp_path.glob("table1-*.json"))
        manifests = [p for p in manifests
                     if not p.name.endswith(".metrics.json")]
        traces = list(tmp_path.glob("table1-*.trace.jsonl"))
        assert len(manifests) == 1
        assert len(traces) == 1
        m = json.load(open(manifests[0]))
        assert m["format"] == "repro-run-manifest-v1"
        assert m["experiment"] == "table1"
        assert m["config"]["query_count"] == 20
        assert m["outputs"]["trace_jsonl"] == str(traces[0])
        assert m["phases"]            # timing made it into the manifest
        # The trace is valid JSONL.
        with open(traces[0]) as f:
            for line in f:
                json.loads(line)

    def test_profile_requires_known_target(self):
        with pytest.raises(SystemExit):
            main(["profile"])
        with pytest.raises(SystemExit):
            main(["profile", "nope"])

    def test_target_rejected_without_profile(self):
        with pytest.raises(SystemExit):
            main(["table1", "table2"])

    def test_trace_out_flag_on_plain_experiment(self, tmp_path, capsys):
        trace = tmp_path / "t.trace.jsonl"
        metrics = tmp_path / "m.json"
        code, out = self.run_cli(
            capsys, "table1", "--quick", "--queries", "20",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
            "--run-dir", str(tmp_path), "--no-manifest",
        )
        assert code == 0
        assert "Phase timing breakdown" not in out   # profile-mode only
        assert trace.exists() and metrics.exists()
        assert not list(tmp_path.glob("table1-*.json"))  # --no-manifest

    def test_plain_experiment_output_unchanged_by_profile(
            self, tmp_path, capsys):
        """`profile X` prints the same experiment table as `X`."""
        code_a, out_a = self.run_cli(capsys, "table1", "--quick",
                                     "--queries", "20")
        code_b, out_b = self.run_cli(
            capsys, "profile", "table1", "--quick", "--queries", "20",
            "--run-dir", str(tmp_path),
        )
        assert code_a == code_b == 0
        table_text = out_a.split("note:")[0]
        assert table_text in out_b


class TestEmptyTraceGuards:
    """Satellite: QueryTrace statistics fail loudly on empty workloads."""

    def _empty_trace(self):
        from repro.experiments.trace import QueryTrace

        return QueryTrace(
            algorithm="STR", workload="point", buffer_pages=10,
            accesses=np.empty(0, dtype=np.int64),
            results=np.empty(0, dtype=np.int64),
        )

    def test_mean_std_raise(self):
        t = self._empty_trace()
        with pytest.raises(ValueError, match="empty workload"):
            t.mean
        with pytest.raises(ValueError, match="empty workload"):
            t.std

    def test_percentile_and_summary_raise(self):
        t = self._empty_trace()
        with pytest.raises(ValueError, match="empty workload"):
            t.percentile(50)
        with pytest.raises(ValueError, match="empty workload"):
            t.summary()

    def test_paired_comparison_rejects_empty(self):
        from repro.experiments.trace import paired_comparison

        a, b = self._empty_trace(), self._empty_trace()
        with pytest.raises(ValueError, match="empty"):
            paired_comparison(a, b)

    def test_nonempty_still_works(self):
        from repro.experiments.trace import QueryTrace

        t = QueryTrace(algorithm="STR", workload="point", buffer_pages=10,
                       accesses=np.array([1, 2, 3], dtype=np.int64),
                       results=np.array([0, 1, 0], dtype=np.int64))
        assert t.mean == 2.0
        assert t.summary()["max"] == 3.0
