"""The supervised worker pool: supervision policy units (fake clock),
pool answers against the oracle over real processes, crash recovery,
flap degradation with in-process fallback, drain/remap, scatter, and the
pool blocks of the health endpoints."""

import asyncio
import os
import signal

import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.queries import region_queries
from repro.rtree.knn import knn
from repro.serve import (
    FlapDetector,
    PoolUnavailable,
    QueryClient,
    QueryServer,
    RestartBackoff,
    TreeSpec,
    WorkerPool,
    WorkerState,
)
from repro.serve.deadline import Deadline
from repro.serve.protocol import rect_to_wire
from repro.storage import FilePageStore, MemoryPageStore
from repro.storage.integrity import TRAILER_SIZE
from repro.storage.page import required_page_size

CAPACITY = 25
NDIM = 2
PAGE_SIZE = required_page_size(CAPACITY, NDIM) + TRAILER_SIZE


def _build(rng, store=None, n=2_000):
    rects = RectArray.from_points(rng.random((n, NDIM)))
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
                        store=store or MemoryPageStore(4096))
    return rects, tree


def _durable_tree(tmp_path, rng, name="tree.pages", n=2_000):
    store = FilePageStore(tmp_path / name, PAGE_SIZE,
                          checksums=True, journal=True)
    _, tree = _build(rng, store=store, n=n)
    return tree


def run(coro):
    return asyncio.run(coro)


class TestRestartBackoff:
    def test_first_death_is_free_then_exponential_capped(self):
        backoff = RestartBackoff(base_s=0.05, multiplier=2.0, max_s=0.4,
                                 seed=3)
        assert backoff.next_delay() == 0.0
        nominal = 0.05
        for _ in range(8):
            delay = backoff.next_delay()
            assert nominal / 2.0 <= delay <= nominal
            nominal = min(nominal * 2.0, 0.4)
        assert backoff.deaths == 9

    def test_seeded_schedule_is_reproducible(self):
        a = [RestartBackoff(seed=11).next_delay() for _ in range(1)]
        schedules = []
        for _ in range(2):
            backoff = RestartBackoff(seed=11)
            schedules.append([backoff.next_delay() for _ in range(6)])
        assert schedules[0] == schedules[1]
        assert a[0] == 0.0

    def test_reset_forgets_the_streak(self):
        backoff = RestartBackoff(base_s=0.1, max_s=1.0, seed=0)
        backoff.next_delay()
        backoff.next_delay()
        assert backoff.deaths == 2
        backoff.reset()
        assert backoff.deaths == 0
        assert backoff.next_delay() == 0.0  # first death again

    def test_rejects_nonsense_parameters(self):
        with pytest.raises(ValueError):
            RestartBackoff(base_s=-1.0)
        with pytest.raises(ValueError):
            RestartBackoff(multiplier=0.5)


class TestFlapDetector:
    def test_trips_at_threshold_within_window(self):
        flap = FlapDetector(threshold=3, window_s=10.0)
        assert flap.record(100.0) is False
        assert flap.record(101.0) is False
        assert flap.record(102.0) is True
        assert flap.tripped

    def test_old_deaths_age_out_of_the_window(self):
        flap = FlapDetector(threshold=3, window_s=10.0)
        flap.record(0.0)
        flap.record(1.0)
        # 11s later the first two are outside the window.
        assert flap.in_window(11.5) == 0
        assert flap.record(11.5) is False
        assert not flap.tripped

    def test_tripped_is_sticky_until_reset(self):
        flap = FlapDetector(threshold=2, window_s=5.0)
        flap.record(0.0)
        assert flap.record(0.1) is True
        # Far in the future, still tripped: rejoining multi-process mode
        # takes an operator action, not quiet oscillation.
        assert flap.record(1000.0) is True
        flap.reset()
        assert not flap.tripped
        assert flap.record(1000.1) is False

    def test_rejects_nonsense_parameters(self):
        with pytest.raises(ValueError):
            FlapDetector(threshold=0)
        with pytest.raises(ValueError):
            FlapDetector(window_s=0.0)


class TestTreeSpec:
    def test_memory_backed_tree_has_no_spec(self, rng):
        _, tree = _build(rng, n=300)
        assert TreeSpec.for_tree(tree, buffer_pages=32,
                                 generation=1) is None

    def test_durable_tree_spec_round_trips(self, tmp_path, rng):
        tree = _durable_tree(tmp_path, rng, n=600)
        spec = TreeSpec.for_tree(tree, buffer_pages=32, generation=7)
        assert spec is not None
        assert spec.paths == (str(tmp_path / "tree.pages"),)
        assert spec.generation == 7
        assert spec.meta["root_page"] == tree.root_page
        assert spec.meta["size"] == len(tree)
        tree.store.close()


def _payload(rect, budget_s=30.0):
    return {"op": "search", "rect": rect_to_wire(rect),
            "degraded": True, "budget_s": budget_s}


class TestWorkerPoolDirect:
    def test_pool_answers_match_the_oracle(self, tmp_path, rng):
        tree = _durable_tree(tmp_path, rng)
        oracle = tree.searcher(256)
        spec = TreeSpec.for_tree(tree, buffer_pages=64, generation=1)
        queries = list(region_queries(0.05, 20, seed=5))

        async def scenario():
            pool = WorkerPool(spec, 2, seed=0)
            assert await pool.start() == 2
            try:
                assert pool.generation == 1
                for q in queries:
                    result = await pool.execute(_payload(q),
                                                Deadline.after(30.0))
                    expected = sorted(int(x) for x in oracle.search(q))
                    assert result["ids"] == expected
                    assert not result["partial"]
            finally:
                await pool.aclose()
            snap = pool.snapshot()
            assert snap["workers_live"] == 0
            assert all(w["state"] == WorkerState.STOPPED
                       for w in snap["workers"])

        run(scenario())
        tree.store.close()

    def test_sigkill_mid_traffic_recovers_to_full_strength(
            self, tmp_path, rng):
        tree = _durable_tree(tmp_path, rng)
        oracle = tree.searcher(256)
        spec = TreeSpec.for_tree(tree, buffer_pages=64, generation=1)
        queries = list(region_queries(0.05, 30, seed=6))

        async def scenario():
            pool = WorkerPool(spec, 2, seed=0)
            await pool.start()
            try:
                victim = pool.snapshot()["workers"][0]["pid"]
                os.kill(victim, signal.SIGKILL)
                # Every in-flight and subsequent query still answers
                # correctly (at-most-once requeue onto the live sibling).
                for q in queries:
                    result = await pool.execute(_payload(q),
                                                Deadline.after(30.0))
                    assert result["ids"] == sorted(
                        int(x) for x in oracle.search(q))
                deadline = Deadline.after(10.0)
                while pool.workers_live < 2 and not deadline.expired():
                    await asyncio.sleep(0.05)
                assert pool.workers_live == 2
                assert pool.restarts_total >= 1
                assert pool.last_restart_reason is not None
            finally:
                await pool.aclose()

        run(scenario())
        tree.store.close()

    def test_flapping_pool_degrades_instead_of_thrashing(
            self, tmp_path, rng):
        tree = _durable_tree(tmp_path, rng, n=600)
        spec = TreeSpec.for_tree(tree, buffer_pages=32, generation=1)

        async def scenario():
            pool = WorkerPool(spec, 2, seed=0, flap_threshold=3,
                              flap_window_s=60.0, backoff_base_s=0.01,
                              backoff_max_s=0.02)
            await pool.start()
            try:
                deadline = Deadline.after(20.0)
                while not pool.degraded and not deadline.expired():
                    for worker in pool.snapshot()["workers"]:
                        if worker["pid"] and worker["state"] == "ready":
                            try:
                                os.kill(worker["pid"], signal.SIGKILL)
                            except ProcessLookupError:
                                pass
                    await asyncio.sleep(0.05)
                assert pool.degraded
                assert not pool.available
                with pytest.raises(PoolUnavailable):
                    await pool.execute(
                        _payload(list(region_queries(0.05, 1, seed=1))[0]),
                        Deadline.after(5.0))
            finally:
                await pool.aclose()

        run(scenario())
        tree.store.close()

    def test_remap_moves_every_worker_to_the_new_generation(
            self, tmp_path, rng):
        import numpy as np
        tree = _durable_tree(tmp_path, rng, n=800)
        tree2 = _durable_tree(tmp_path, np.random.default_rng(99),
                              name="gen2.pages", n=900)
        oracle2 = tree2.searcher(256)
        spec = TreeSpec.for_tree(tree, buffer_pages=32, generation=1)
        spec2 = TreeSpec.for_tree(tree2, buffer_pages=32, generation=2)
        queries = list(region_queries(0.05, 10, seed=8))

        async def scenario():
            pool = WorkerPool(spec, 2, seed=0)
            await pool.start()
            try:
                remapped = await pool.remap(spec2)
                assert remapped == 2
                assert pool.generation == 2
                assert not pool.draining
                snap = pool.snapshot()
                assert all(w["generation"] == 2
                           for w in snap["workers"])
                for q in queries:
                    result = await pool.execute(_payload(q),
                                                Deadline.after(30.0))
                    assert result["ids"] == sorted(
                        int(x) for x in oracle2.search(q))
            finally:
                await pool.aclose()

        run(scenario())
        tree.store.close()
        tree2.store.close()

    def test_execute_while_draining_is_pool_unavailable(
            self, tmp_path, rng):
        tree = _durable_tree(tmp_path, rng, n=600)
        spec = TreeSpec.for_tree(tree, buffer_pages=32, generation=1)

        async def scenario():
            pool = WorkerPool(spec, 1, seed=0)
            await pool.start()
            try:
                pool._draining = True
                with pytest.raises(PoolUnavailable):
                    await pool.execute(
                        _payload(list(region_queries(0.05, 1, seed=1))[0]),
                        Deadline.after(5.0))
            finally:
                pool._draining = False
                await pool.aclose()

        run(scenario())
        tree.store.close()


class TestServerWithPool:
    def test_pooled_server_matches_oracle_including_knn(
            self, tmp_path, rng):
        tree = _durable_tree(tmp_path, rng)
        oracle = tree.searcher(256)
        queries = list(region_queries(0.05, 20, seed=9))

        async def scenario():
            async with QueryServer(tree, buffer_pages=64,
                                   workers=2) as server:
                assert server.pool is not None, server.pool_start_error
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    for q in queries:
                        resp = (await client.search(q)).raise_for_error()
                        assert resp.ids == sorted(
                            int(x) for x in oracle.search(q))
                        assert not resp.partial
                    resp = (await client.knn([0.5, 0.5], 7)
                            ).raise_for_error()
                    expected = knn(oracle, [0.5, 0.5], 7)
                    assert resp.ids == [i for i, _ in expected]
                    assert resp.distances == pytest.approx(
                        [d for _, d in expected])

        run(scenario())
        tree.store.close()

    def test_scatter_mode_matches_oracle(self, tmp_path, rng):
        tree = _durable_tree(tmp_path, rng)
        oracle = tree.searcher(256)
        queries = list(region_queries(0.05, 15, seed=10))

        async def scenario():
            async with QueryServer(tree, buffer_pages=64, workers=3,
                                   scatter=True) as server:
                assert server.pool is not None, server.pool_start_error
                assert len(server._scatter_roots) > 1
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    for q in queries:
                        resp = (await client.search(q)).raise_for_error()
                        assert resp.ids == sorted(
                            int(x) for x in oracle.search(q))
                    resp = (await client.knn([0.3, 0.7], 5)
                            ).raise_for_error()
                    assert resp.ids == [
                        i for i, _ in knn(oracle, [0.3, 0.7], 5)]

        run(scenario())
        tree.store.close()

    def test_memory_tree_falls_back_in_process_with_reason(self, rng):
        _, tree = _build(rng, n=500)
        oracle = tree.searcher(256)
        q = list(region_queries(0.05, 1, seed=2))[0]

        async def scenario():
            async with QueryServer(tree, workers=2) as server:
                assert server.pool is None
                assert "file-backed" in server.pool_start_error
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    resp = (await client.search(q)).raise_for_error()
                    assert resp.ids == sorted(
                        int(x) for x in oracle.search(q))
                    health = await client.healthz()
                    assert health["pool"]["enabled"] is False
                    assert "file-backed" in health["pool"]["reason"]
                    ready = await client.readyz()
                    assert ready["ready"] is True
                    assert ready["pool"]["enabled"] is False

        run(scenario())

    def test_health_payloads_expose_pool_state(self, tmp_path, rng):
        tree = _durable_tree(tmp_path, rng, n=800)

        async def scenario():
            async with QueryServer(tree, buffer_pages=64,
                                   workers=2) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    health = await client.healthz()
                    pool = health["pool"]
                    assert pool["enabled"] is True
                    assert pool["workers_total"] == 2
                    assert pool["workers_live"] == 2
                    assert pool["degraded"] is False
                    assert pool["generation"] == 1
                    assert pool["restarts_total"] == 0
                    assert {w["state"] for w in pool["workers"]} == {
                        WorkerState.READY}
                    ready = await client.readyz()
                    assert ready["ready"] is True
                    assert ready["pool"]["workers_live"] == 2
                    assert ready["pool"]["draining"] is False

        run(scenario())
        tree.store.close()
