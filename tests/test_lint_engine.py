"""Unit tests for the lint engine machinery.

Rule *behaviour* (what each RL00x flags and permits) lives in
``test_lint_rules.py``; this file covers the engine itself — discovery,
suppression comments, baselines, parse errors, report rendering, the
``repro lint`` CLI entry point — plus the repo-level regression test
that ``src/`` stays clean against the committed (empty) baseline.
"""

import ast
import json
import os

import pytest

from repro.cli import main
from repro.lint import (
    BASELINE_FORMAT,
    Baseline,
    DEFAULT_BASELINE,
    FileContext,
    Finding,
    LintEngine,
    Rule,
    all_rules,
    lint_paths,
)
from repro.lint.engine import PARSE_ERROR_RULE, resolve_call_name

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class FlagEveryCall(Rule):
    """Test double: one finding per function call, applies everywhere."""

    id = "RLTEST"
    name = "flag-every-call"
    invariant = "test rule"

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield self.finding(ctx, node, "a call")


def engine_for(tmp_path, **kwargs):
    return LintEngine([FlagEveryCall()], root=tmp_path, **kwargs)


def write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


# -- registry / rule basics ---------------------------------------------------


def test_all_rules_registers_the_eleven_project_rules():
    ids = [r.id for r in all_rules()]
    assert ids == sorted(ids)
    assert {"RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL007", "RL008", "RL009", "RL010", "RL011"} <= set(ids)


def test_every_rule_documents_its_invariant():
    for rule in all_rules():
        assert rule.id and rule.name and rule.invariant


def test_path_fragments_gate_applicability():
    rule = next(r for r in all_rules() if r.id == "RL005")
    assert rule.applies_to("src/repro/serve/server.py")
    assert not rule.applies_to("src/repro/rtree/rtree.py")


# -- alias resolution ---------------------------------------------------------


@pytest.mark.parametrize("source, call, expected", [
    ("import time", "time.time()", "time.time"),
    ("import numpy as np", "np.random.rand(3)", "numpy.random.rand"),
    ("from time import time as now", "now()", "time.time"),
    ("from os import path", "path.join('a')", "os.path.join"),
    ("from . import staging", "staging.publish()", "..staging.publish"),
    ("x = 1", "x.method()", "x.method"),
])
def test_resolve_call_name(source, call, expected):
    ctx = FileContext.parse("m.py", f"{source}\n{call}\n")
    node = ctx.tree.body[-1].value
    assert resolve_call_name(node.func, ctx.aliases) == expected


def test_resolve_call_name_is_none_for_dynamic_targets():
    ctx = FileContext.parse("m.py", "funcs['k']()\n")
    node = ctx.tree.body[0].value
    assert resolve_call_name(node.func, ctx.aliases) is None


# -- discovery ----------------------------------------------------------------


def test_discover_walks_directories_and_skips_pycache(tmp_path):
    write(tmp_path, "pkg/a.py", "x = 1\n")
    write(tmp_path, "pkg/sub/b.py", "y = 2\n")
    write(tmp_path, "pkg/__pycache__/a.cpython-310.pyc", "")
    write(tmp_path, "pkg/notes.txt", "not python")
    files = engine_for(tmp_path).discover(["pkg"])
    assert files == ["pkg/a.py", "pkg/sub/b.py"]


def test_discover_accepts_single_files_and_dedupes(tmp_path):
    write(tmp_path, "a.py", "x = 1\n")
    files = engine_for(tmp_path).discover(["a.py", "a.py", "."])
    assert files == ["a.py"]


# -- suppressions -------------------------------------------------------------


def test_same_line_suppression_counts_and_silences(tmp_path):
    engine = engine_for(tmp_path)
    findings, suppressed = engine.check_source(
        "m.py",
        "print(1)  # repro-lint: disable=RLTEST -- test justification\n"
        "print(2)\n",
    )
    assert suppressed == 1
    assert [f.line for f in findings] == [2]


def test_suppression_only_silences_the_named_rule(tmp_path):
    findings, suppressed = engine_for(tmp_path).check_source(
        "m.py", "print(1)  # repro-lint: disable=RL999\n")
    assert suppressed == 0
    assert len(findings) == 1


def test_disable_all_wildcard(tmp_path):
    findings, suppressed = engine_for(tmp_path).check_source(
        "m.py", "print(1)  # repro-lint: disable=all\n")
    assert suppressed == 1 and not findings


def test_disable_file_directive(tmp_path):
    findings, suppressed = engine_for(tmp_path).check_source(
        "m.py",
        "# repro-lint: disable-file=RLTEST\nprint(1)\nprint(2)\n")
    assert suppressed == 2 and not findings


def test_directive_inside_string_literal_is_ignored(tmp_path):
    findings, suppressed = engine_for(tmp_path).check_source(
        "m.py", 'print("# repro-lint: disable=RLTEST")\n')
    assert suppressed == 0
    assert len(findings) == 1


# -- parse errors -------------------------------------------------------------


def test_unparseable_file_is_a_finding_not_a_crash(tmp_path):
    findings, suppressed = engine_for(tmp_path).check_source(
        "bad.py", "def broken(:\n")
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_RULE
    assert "does not parse" in findings[0].message


# -- baseline -----------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    f = Finding(rule="RLTEST", path="m.py", line=3, col=1, message="a call")
    base = Baseline.from_findings([f, f])
    path = base.write(tmp_path / "base.json")
    data = json.loads((tmp_path / "base.json").read_text())
    assert data["format"] == BASELINE_FORMAT
    assert data["findings"] == {f.key(): 2}
    assert Baseline.load(path).counts == base.counts


def test_baseline_load_rejects_foreign_format(tmp_path):
    (tmp_path / "base.json").write_text('{"format": "something-else"}')
    with pytest.raises(ValueError):
        Baseline.load(tmp_path / "base.json")


def test_baseline_key_survives_line_moves():
    before = Finding(rule="R", path="m.py", line=3, col=1, message="x")
    after = Finding(rule="R", path="m.py", line=30, col=5, message="x")
    assert before.key() == after.key()


def test_baseline_split_fails_extra_occurrences_of_known_key(tmp_path):
    f = Finding(rule="RLTEST", path="m.py", line=1, col=1, message="a call")
    base = Baseline.from_findings([f])  # one occurrence grandfathered
    engine = engine_for(tmp_path, baseline=base)
    write(tmp_path, "m.py", "print(1)\nprint(2)\n")
    report = engine.run(["m.py"])
    assert len(report.baselined) == 1
    assert len(report.findings) == 1  # the second call is *new*
    assert not report.clean


# -- report -------------------------------------------------------------------


def test_report_shapes_text_and_json(tmp_path):
    write(tmp_path, "m.py", "print(1)\n")
    report = engine_for(tmp_path).run(["m.py"])
    text = report.render()
    assert "m.py:1:1: RLTEST a call" in text
    assert "1 finding(s)" in text
    data = json.loads(report.to_json())
    assert data["clean"] is False
    assert data["files_checked"] == 1
    assert data["findings"][0]["rule"] == "RLTEST"


def test_clean_report(tmp_path):
    write(tmp_path, "m.py", "x = 1\n")
    report = engine_for(tmp_path).run(["m.py"])
    assert report.clean
    assert "repro lint: clean" in report.render()


# -- the repo's own source stays clean ---------------------------------------


def test_src_is_clean_against_the_committed_baseline():
    """The acceptance bar: `repro lint` exits 0 on the repo, and the
    committed baseline grandfathers nothing (fix findings, don't
    baseline them)."""
    baseline = Baseline.load(os.path.join(REPO_ROOT, DEFAULT_BASELINE))
    assert baseline.counts == {}
    report = lint_paths(["src"], root=REPO_ROOT, baseline_path="")
    assert report.findings == [], report.render()
    assert report.files_checked > 50


# -- CLI ----------------------------------------------------------------------


def seed_violation(tmp_path):
    """A repro/storage-shaped file with an RL001 violation."""
    return write(tmp_path, "repro/storage/bad.py",
                 "import time\n\n\ndef stamp():\n    return time.time()\n")


def test_cli_lint_clean_tree_exits_zero(tmp_path, monkeypatch, capsys):
    write(tmp_path, "src/repro/storage/ok.py", "x = 1\n")
    monkeypatch.chdir(tmp_path)
    code = main(["lint"])
    out = capsys.readouterr().out
    assert code == 0
    assert "repro lint: clean" in out


def test_cli_lint_seeded_violation_exits_nonzero(tmp_path, monkeypatch,
                                                 capsys):
    seed_violation(tmp_path)
    monkeypatch.chdir(tmp_path)
    code = main(["lint", "repro"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL001" in out and "time.time" in out


def test_cli_lint_json_format(tmp_path, monkeypatch, capsys):
    seed_violation(tmp_path)
    monkeypatch.chdir(tmp_path)
    code = main(["lint", "repro", "--format", "json"])
    data = json.loads(capsys.readouterr().out)
    assert code == 1
    assert data["findings"][0]["rule"] == "RL001"


def test_cli_write_baseline_then_lint_is_clean(tmp_path, monkeypatch,
                                               capsys):
    seed_violation(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "repro", "--write-baseline"]) == 0
    capsys.readouterr()
    code = main(["lint", "repro"])  # picks up lint-baseline.json
    out = capsys.readouterr().out
    assert code == 0
    assert "1 baselined" in out


def test_cli_manifest_records_the_report(tmp_path, monkeypatch, capsys):
    seed_violation(tmp_path)
    monkeypatch.chdir(tmp_path)
    code = main(["lint", "repro", "--manifest",
                 "--run-dir", str(tmp_path / "runs")])
    assert code == 1
    manifests = list((tmp_path / "runs").glob("lint-*.json"))
    assert len(manifests) == 1
    data = json.loads(manifests[0].read_text())
    assert data["experiment"] == "lint"
    assert data["extra"]["lint"]["clean"] is False
    assert data["extra"]["lint"]["findings"][0]["rule"] == "RL001"


# -- stale baseline entries ---------------------------------------------------


def test_baseline_stale_keys_lists_unmatched_entries():
    live = Finding(rule="RLTEST", path="m.py", line=1, col=1,
                   message="a call")
    gone = Finding(rule="RLTEST", path="deleted.py", line=9, col=1,
                   message="a call")
    base = Baseline.from_findings([live, gone])
    assert base.stale_keys([live]) == [gone.key()]
    assert base.stale_keys([live, gone]) == []


def test_run_reports_stale_baseline_and_render_names_the_key(tmp_path):
    gone = Finding(rule="RLTEST", path="deleted.py", line=9, col=1,
                   message="a call")
    engine = engine_for(tmp_path, baseline=Baseline.from_findings([gone]))
    write(tmp_path, "m.py", "x = 1\n")
    report = engine.run(["m.py"])
    assert report.stale_baseline == [gone.key()]
    text = report.render()
    assert "stale baseline entry" in text
    assert gone.key() in text
    assert "1 stale baseline key(s)" in text
    assert json.loads(report.to_json())["stale_baseline"] == [gone.key()]


def test_cli_stale_baseline_exits_nonzero(tmp_path, monkeypatch, capsys):
    write(tmp_path, "src/repro/storage/ok.py", "x = 1\n")
    gone = Finding(rule="RL001", path="deleted.py", line=9, col=1,
                   message="calls time.time")
    Baseline.from_findings([gone]).write(tmp_path / "stale.json")
    monkeypatch.chdir(tmp_path)
    code = main(["lint", "--baseline", "stale.json"])
    out = capsys.readouterr().out
    assert code == 1
    assert "stale baseline entry" in out


def test_cli_write_baseline_prunes_stale_keys(tmp_path, monkeypatch,
                                              capsys):
    seed_violation(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "repro", "--write-baseline"]) == 0
    out = capsys.readouterr().out
    assert "1 finding(s) baselined" in out
    # fix the violation: the rewrite must drop the now-dead key
    write(tmp_path, "repro/storage/bad.py", "x = 1\n")
    assert main(["lint", "repro", "--write-baseline"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s) baselined" in out
    assert "1 stale key(s) pruned" in out
    data = json.loads((tmp_path / DEFAULT_BASELINE).read_text())
    assert data["findings"] == {}


# -- rule selection and timing ------------------------------------------------


def test_cli_rules_filter_runs_only_the_named_rules(tmp_path, monkeypatch,
                                                    capsys):
    seed_violation(tmp_path)  # an RL001 violation
    monkeypatch.chdir(tmp_path)
    code = main(["lint", "repro", "--rules", "RL002"])
    out = capsys.readouterr().out
    assert code == 0  # RL001 never ran
    assert "1 rule(s)" in out
    capsys.readouterr()
    assert main(["lint", "repro", "--rules", "rl001,RL002"]) == 1
    assert "RL001" in capsys.readouterr().out


def test_cli_rules_filter_rejects_unknown_ids(tmp_path, monkeypatch,
                                              capsys):
    write(tmp_path, "src/repro/storage/ok.py", "x = 1\n")
    monkeypatch.chdir(tmp_path)
    code = main(["lint", "--rules", "RL999"])
    err = capsys.readouterr().err
    assert code == 2
    assert "RL999" in err
    assert "RL001" in err  # the known ids are listed


def test_report_records_per_rule_wall_time(tmp_path):
    write(tmp_path, "m.py", "print(1)\n")
    report = engine_for(tmp_path).run(["m.py"])
    assert set(report.rule_seconds) == {"RLTEST"}
    assert report.rule_seconds["RLTEST"] >= 0.0
    data = json.loads(report.to_json())
    assert "RLTEST" in data["rule_seconds"]
