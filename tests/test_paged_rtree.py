"""Unit tests for bulk loading and the paged R-tree."""

import numpy as np
import pytest

from repro.core.geometry import GeometryError, Rect, RectArray
from repro.core.packing import HilbertSort, NearestX, SortTileRecursive
from repro.rtree.bulk import bulk_load, paged_from_dynamic
from repro.rtree.node import RTreeError
from repro.rtree.tree import RTree
from repro.rtree.validate import ValidationError, validate_paged
from repro.storage.store import FilePageStore, MemoryPageStore
from repro.storage.page import required_page_size

from tests.conftest import brute_force_search

ALGOS = [SortTileRecursive, HilbertSort, NearestX]


@pytest.fixture(params=ALGOS, ids=lambda c: c.name)
def algo(request):
    return request.param()


class TestBulkLoad:
    def test_small_tree_structure(self, unit_points, algo):
        tree, report = bulk_load(unit_points, algo, capacity=50)
        assert len(tree) == 1000
        assert tree.height == 2  # 20 leaves + root
        assert report.leaf_pages == 20
        assert report.pages_written == tree.page_count == 21
        validate_paged(tree, range(1000))

    def test_three_levels(self, rng, algo):
        ra = RectArray.from_points(rng.random((1000, 2)))
        tree, _ = bulk_load(ra, algo, capacity=10)
        assert tree.height == 3  # 100 leaves, 10 internal, root
        validate_paged(tree, range(1000))

    def test_single_rect(self, algo):
        ra = RectArray.from_points(np.array([[0.5, 0.5]]))
        tree, report = bulk_load(ra, algo, capacity=10)
        assert tree.height == 1
        assert report.pages_written == 1
        validate_paged(tree, [0])

    def test_exactly_capacity(self, rng, algo):
        ra = RectArray.from_points(rng.random((10, 2)))
        tree, _ = bulk_load(ra, algo, capacity=10)
        assert tree.height == 1  # a single full root leaf
        validate_paged(tree, range(10))

    def test_capacity_plus_one(self, rng, algo):
        ra = RectArray.from_points(rng.random((11, 2)))
        tree, _ = bulk_load(ra, algo, capacity=10)
        assert tree.height == 2
        validate_paged(tree, range(11))

    def test_custom_data_ids(self, rng, algo):
        ra = RectArray.from_points(rng.random((30, 2)))
        ids = np.arange(30) * 7 + 1000
        tree, _ = bulk_load(ra, algo, capacity=10, data_ids=ids)
        validate_paged(tree, ids)

    def test_bad_data_ids_shape(self, unit_points, algo):
        with pytest.raises(RTreeError):
            bulk_load(unit_points, algo, data_ids=np.arange(5))

    def test_empty_rejected(self, algo):
        empty = RectArray(np.empty((0, 2)), np.empty((0, 2)))
        with pytest.raises(GeometryError):
            bulk_load(empty, algo)

    def test_capacity_one_rejected(self, unit_points, algo):
        with pytest.raises(RTreeError):
            bulk_load(unit_points, algo, capacity=1)

    def test_near_full_utilization(self, rng, algo):
        """Packing's claim (b): all leaves full except possibly the last."""
        ra = RectArray.from_points(rng.random((1234, 2)))
        tree, _ = bulk_load(ra, algo, capacity=100)
        counts = sorted(
            node.count for _, node in tree.iter_level(0)
        )
        assert counts[-1] == 100
        assert sum(counts) == 1234
        assert sum(c == 100 for c in counts) >= 12

    def test_undersized_store_rejected(self, unit_points, algo):
        store = MemoryPageStore(512)
        with pytest.raises(RTreeError):
            bulk_load(unit_points, algo, capacity=100, store=store)

    def test_file_store_backend(self, tmp_path, rng, algo):
        ra = RectArray.from_points(rng.random((500, 2)))
        page_size = required_page_size(20, 2)
        with FilePageStore(tmp_path / "tree.pages", page_size) as store:
            tree, _ = bulk_load(ra, algo, capacity=20, store=store)
            validate_paged(tree, range(500))
            searcher = tree.searcher(buffer_pages=5)
            got = set(searcher.search(Rect((0.2, 0.2), (0.4, 0.4))).tolist())
            assert got == brute_force_search(ra, Rect((0.2, 0.2), (0.4, 0.4)))

    def test_reorder_internal_false_still_valid(self, rng, algo):
        ra = RectArray.from_points(rng.random((3000, 2)))
        tree, _ = bulk_load(ra, algo, capacity=10, reorder_internal=False)
        validate_paged(tree, range(3000))

    def test_3d_bulk_load(self, rng, algo):
        ra = RectArray.from_points(rng.random((800, 3)))
        tree, _ = bulk_load(ra, algo, capacity=16)
        validate_paged(tree, range(800))


class TestPagedSearch:
    @pytest.fixture
    def loaded(self, small_rects):
        tree, _ = bulk_load(small_rects, SortTileRecursive(), capacity=10)
        return small_rects, tree

    def test_matches_brute_force_many_queries(self, loaded):
        rects, tree = loaded
        searcher = tree.searcher(buffer_pages=4)
        rng = np.random.default_rng(11)
        for _ in range(50):
            lo = rng.random(2) * 0.8
            q = Rect(tuple(lo), tuple(lo + rng.random(2) * 0.3))
            got = set(searcher.search(q).tolist())
            assert got == brute_force_search(rects, q)

    def test_point_query_matches(self, loaded):
        rects, tree = loaded
        searcher = tree.searcher(buffer_pages=4)
        got = set(searcher.point_query((0.5, 0.5)).tolist())
        assert got == {
            i for i in range(len(rects))
            if rects[i].contains_point((0.5, 0.5))
        }

    def test_no_match_returns_empty_int64(self, loaded):
        _, tree = loaded
        searcher = tree.searcher(buffer_pages=4)
        out = searcher.search(Rect((5, 5), (6, 6)))
        assert out.size == 0
        assert out.dtype == np.int64

    def test_count(self, loaded):
        rects, tree = loaded
        searcher = tree.searcher(buffer_pages=4)
        q = Rect((0.1, 0.1), (0.6, 0.6))
        assert searcher.count(q) == len(brute_force_search(rects, q))

    def test_query_dim_mismatch(self, loaded):
        _, tree = loaded
        with pytest.raises(GeometryError):
            tree.searcher(4).search(Rect((0,), (1,)))

    def test_disk_accesses_counted(self, loaded):
        _, tree = loaded
        searcher = tree.searcher(buffer_pages=1)
        searcher.search(Rect((0, 0), (1, 1)))
        # Everything intersects: at least every leaf + root is fetched.
        assert searcher.disk_accesses >= tree.page_count - 1

    def test_bigger_buffer_never_more_accesses(self, loaded):
        _, tree = loaded
        rng = np.random.default_rng(4)
        queries = [
            Rect(tuple(lo), tuple(lo + 0.2))
            for lo in rng.random((100, 2)) * 0.8
        ]
        small = tree.searcher(buffer_pages=2)
        big = tree.searcher(buffer_pages=tree.page_count)
        for q in queries:
            small.search(q)
            big.search(q)
        assert big.disk_accesses <= small.disk_accesses

    def test_full_buffer_reads_each_page_at_most_once(self, loaded):
        _, tree = loaded
        searcher = tree.searcher(buffer_pages=tree.page_count)
        rng = np.random.default_rng(4)
        for lo in rng.random((200, 2)) * 0.7:
            searcher.search(Rect(tuple(lo), tuple(lo + 0.3)))
        assert searcher.disk_accesses <= tree.page_count

    def test_reset_stats(self, loaded):
        _, tree = loaded
        searcher = tree.searcher(buffer_pages=4)
        searcher.search(Rect((0, 0), (1, 1)))
        searcher.reset_stats()
        assert searcher.disk_accesses == 0

    def test_warm(self, loaded):
        _, tree = loaded
        searcher = tree.searcher(buffer_pages=tree.page_count)
        searcher.warm([Rect((0, 0), (1, 1))])
        searcher.reset_stats()
        searcher.search(Rect((0, 0), (1, 1)))
        assert searcher.disk_accesses == 0  # fully warmed

    def test_pin_levels(self, loaded):
        _, tree = loaded
        searcher = tree.searcher(buffer_pages=tree.page_count)
        searcher.pin_levels(range(1, tree.height))
        assert len(searcher.buffer.pinned_keys) >= 1

    def test_independent_searchers_have_independent_stats(self, loaded):
        _, tree = loaded
        s1 = tree.searcher(buffer_pages=4)
        s2 = tree.searcher(buffer_pages=4)
        s1.search(Rect((0, 0), (1, 1)))
        assert s2.disk_accesses == 0


class TestTreeInspection:
    def test_iter_nodes_covers_all_pages(self, unit_points):
        tree, _ = bulk_load(unit_points, SortTileRecursive(), capacity=50)
        seen = {pid for pid, _ in tree.iter_nodes()}
        assert seen == set(range(tree.page_count))

    def test_level_summaries(self, unit_points):
        tree, _ = bulk_load(unit_points, SortTileRecursive(), capacity=50)
        summaries = tree.level_summaries()
        assert [s.level for s in summaries] == [1, 0]
        leaf = summaries[-1]
        assert leaf.node_count == 20
        assert leaf.entry_count == 1000

    def test_mbr(self, unit_points):
        tree, _ = bulk_load(unit_points, SortTileRecursive(), capacity=50)
        assert tree.mbr() == unit_points.mbr()

    def test_inspection_does_not_touch_counters(self, unit_points):
        tree, _ = bulk_load(unit_points, SortTileRecursive(), capacity=50)
        before = tree.store.stats.disk_reads
        list(tree.iter_nodes())
        tree.level_summaries()
        assert tree.store.stats.disk_reads == before


class TestPagedFromDynamic:
    def test_roundtrip_preserves_search_results(self, rng):
        pts = rng.random((300, 2))
        dyn = RTree(capacity=10)
        for i, p in enumerate(pts):
            dyn.insert(Rect.from_point(tuple(p)), i)
        paged = paged_from_dynamic(dyn)
        validate_paged(paged, range(300))
        searcher = paged.searcher(buffer_pages=8)
        q = Rect((0.2, 0.2), (0.7, 0.7))
        assert set(searcher.search(q).tolist()) == set(dyn.search(q))

    def test_empty_tree_rejected(self):
        with pytest.raises(RTreeError):
            paged_from_dynamic(RTree())

    def test_heights_match(self, rng):
        dyn = RTree(capacity=5)
        for i, p in enumerate(rng.random((100, 2))):
            dyn.insert(Rect.from_point(tuple(p)), i)
        paged = paged_from_dynamic(dyn)
        assert paged.height == dyn.height


class TestValidatorCatchesCorruption:
    def _corrupt_tree(self, rng):
        ra = RectArray.from_points(rng.random((100, 2)))
        return bulk_load(ra, SortTileRecursive(), capacity=10)[0]

    def test_detects_wrong_size(self, rng):
        tree = self._corrupt_tree(rng)
        tree._size = 99
        with pytest.raises(ValidationError):
            validate_paged(tree)

    def test_detects_wrong_ids(self, rng):
        tree = self._corrupt_tree(rng)
        with pytest.raises(ValidationError):
            validate_paged(tree, range(1, 101))

    def test_detects_stale_parent_mbr(self, rng):
        from repro.storage.page import NodePage, encode_node
        tree = self._corrupt_tree(rng)
        root = tree.root_node()
        # Shrink the first child's stored rect in the root.
        los = root.rects.los.copy()
        his = root.rects.his.copy()
        his[0] = los[0]  # collapse
        bad = NodePage(level=root.level, children=root.children,
                       rects=RectArray(los, his))
        tree.store.write_page(tree.root_page,
                              encode_node(bad, tree.store.page_size))
        with pytest.raises(ValidationError):
            validate_paged(tree)
