"""Unit tests for the SVG line-chart renderer."""

import pytest

from repro.experiments.report import Series
from repro.viz.linechart import _nice_ticks, line_chart_svg


def make_series():
    a = Series(label="STR")
    b = Series(label="HS")
    for x, ya, yb in ((10, 1.0, 1.5), (25, 0.8, 1.2), (50, 0.6, 0.9)):
        a.add(x, ya)
        b.add(x, yb)
    return [a, b]


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.0, 97.0)
        assert ticks[0] <= 0.0
        assert ticks[-1] >= 90.0

    def test_round_steps(self):
        ticks = _nice_ticks(0, 10)
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1
        assert steps.pop() in (1, 2, 2.5, 5)

    def test_degenerate_range(self):
        ticks = _nice_ticks(5.0, 5.0)
        assert len(ticks) >= 2

    def test_reasonable_count(self):
        for hi in (1, 7, 33, 1000):
            assert 3 <= len(_nice_ticks(0, hi)) <= 12


class TestLineChart:
    def test_well_formed(self):
        svg = line_chart_svg(make_series(), title="Figure 10")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "Figure 10" in svg

    def test_one_polyline_per_series(self):
        svg = line_chart_svg(make_series())
        assert svg.count("<polyline") == 2

    def test_markers_for_every_point(self):
        svg = line_chart_svg(make_series())
        assert svg.count("<circle") == 6

    def test_legend_labels_present(self):
        svg = line_chart_svg(make_series())
        assert ">STR</text>" in svg
        assert ">HS</text>" in svg

    def test_axis_labels(self):
        svg = line_chart_svg(make_series(), x_label="Buffer Size",
                             y_label="Disk Accesses")
        assert "Buffer Size" in svg
        assert "Disk Accesses" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart_svg([Series(label="empty")])

    def test_single_point_series(self):
        s = Series(label="one")
        s.add(5, 2.0)
        svg = line_chart_svg([s])
        assert svg.count("<circle") == 1

    def test_coordinates_within_canvas(self):
        svg = line_chart_svg(make_series())
        for line in svg.splitlines():
            if "<circle" in line:
                cx = float(line.split('cx="')[1].split('"')[0])
                cy = float(line.split('cy="')[1].split('"')[0])
                assert 0 <= cx <= 760
                assert 0 <= cy <= 520
