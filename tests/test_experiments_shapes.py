"""Integration tests: the experiment harness reproduces the paper's *shapes*.

These run the quick profile (small datasets, 300 queries) and assert the
qualitative findings of the paper's Section 5 — who wins, roughly by how
much, and where the gaps close.  Absolute values are intentionally not
asserted; EXPERIMENTS.md records the paper-vs-measured numbers from the
full-profile runs.
"""

import numpy as np
import pytest

from repro.experiments import cfd_tables, gis_tables, synthetic_tables, vlsi_tables
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.quick()


@pytest.fixture(scope="module")
def syn_cache(config):
    return synthetic_tables.synthetic_cache(config)


@pytest.fixture(scope="module")
def gis_cache(config):
    return gis_tables.gis_cache(config)


@pytest.fixture(scope="module")
def vlsi_cache(config):
    return vlsi_tables.vlsi_cache(config)


@pytest.fixture(scope="module")
def cfd_cache(config):
    return cfd_tables.cfd_cache(config)


class TestTable1:
    def test_page_counts_and_percentages(self, config, syn_cache):
        t = synthetic_tables.table1(config, syn_cache)
        rows = t.data_rows()
        assert rows[0][0] == 10_000
        assert rows[0][1] == 101  # 100 leaves + root, as in the paper
        assert rows[0][2] == "9.90%"
        assert rows[0][3] == "100.00%"


class TestTables23:
    @pytest.fixture(scope="class")
    def t2(self, config, syn_cache):
        return synthetic_tables.table2(config, syn_cache)

    def test_hs_worse_than_str_on_uniform_point_queries(self, t2):
        """Paper: HS needs 31-42% more accesses than STR for point data."""
        ratios = t2.column("HS/STR")
        point_band = ratios[:2]  # the Point Queries section rows
        assert all(r > 1.15 for r in point_band)

    def test_nx_competitive_only_for_point_on_point(self, t2):
        nx_point = t2.column("NX/STR")[:2]
        assert all(0.85 < r < 1.2 for r in nx_point)

    def test_nx_collapses_on_region_queries(self, t2):
        nx_region = t2.column("NX/STR")[2:]
        assert all(r > 1.8 for r in nx_region)

    def test_nx_collapses_for_point_queries_on_region_data(self, t2):
        nx_d5_point = t2.column("NX/STR(d5)")[:2]
        assert all(r > 1.8 for r in nx_d5_point)

    def test_gap_shrinks_with_query_size(self, t2):
        """Paper: 'the difference between STR and HS diminishes as the
        query size increases'."""
        ratios = t2.column("HS/STR")
        point_mean = np.mean(ratios[:2])
        r1_mean = np.mean(ratios[2:4])
        r9_mean = np.mean(ratios[4:6])
        assert point_mean > r1_mean > r9_mean
        assert r9_mean > 0.98  # STR still ahead (or tied) at 9%

    def test_str_always_at_least_competitive(self, t2):
        assert all(r > 0.95 for r in t2.column("HS/STR"))


class TestTable4:
    def test_quality_ordering(self, config, syn_cache):
        t = synthetic_tables.table4(config, syn_cache,
                                    sizes=tuple(config.sizes[:2]))
        rows = {r[0]: r[1:] for r in t.data_rows()[:4]}  # point-data band
        size_tags = [f"{s // 1000}K" for s in config.sizes[:2]]
        cols = [f"{a} {s}" for s in size_tags for a in ("STR", "HS", "NX")]
        leaf_perim = dict(zip(cols, rows["leaf perimeter"]))
        leaf_area = dict(zip(cols, rows["leaf area"]))
        for s in size_tags:
            # NX perimeter explodes; HS area exceeds STR's.
            assert leaf_perim[f"NX {s}"] > 3 * leaf_perim[f"STR {s}"]
            assert leaf_area[f"HS {s}"] > leaf_area[f"STR {s}"]


class TestFigures789:
    def test_figure7_curve_order(self, config, syn_cache):
        series = synthetic_tables.figure7(config, syn_cache)
        by_label = {s.label: s for s in series}
        hs5 = by_label[[k for k in by_label if k.startswith("HS density = 5")][0]]
        str5 = by_label[[k for k in by_label if k.startswith("STR density = 5")][0]]
        hs0 = by_label["HS density = 0"]
        str0 = by_label["STR density = 0"]
        # Paper's legend order top-to-bottom: HS d5, STR d5, HS d0, STR d0.
        for i in range(len(hs5.xs)):
            assert hs5.ys[i] > str5.ys[i]
            assert hs0.ys[i] > str0.ys[i]
            assert hs5.ys[i] > hs0.ys[i]

    def test_accesses_grow_with_data_size(self, config, syn_cache):
        series = synthetic_tables.figure9(config, syn_cache)
        for line in series:
            assert line.ys == sorted(line.ys)


class TestGis:
    def test_str_beats_hs_for_point_queries(self, config, gis_cache):
        t = gis_tables.table5(config, gis_cache)
        point_ratios = t.column("HS/STR")[:len(gis_tables.TABLE5_BUFFERS)]
        assert all(r > 1.05 for r in point_ratios)

    def test_region9_near_tie(self, config, gis_cache):
        t = gis_tables.table5(config, gis_cache)
        r9 = t.column("HS/STR")[-len(gis_tables.TABLE5_BUFFERS):]
        assert all(0.95 < r < 1.25 for r in r9)

    def test_figure10_monotone_and_ordered(self, config, gis_cache):
        hs, strs = gis_tables.figure10(config, gis_cache,
                                       buffers=(10, 25, 50, 100))
        assert hs.ys == sorted(hs.ys, reverse=True)
        assert strs.ys == sorted(strs.ys, reverse=True)
        assert all(h > s for h, s in zip(hs.ys, strs.ys))

    def test_quality_table(self, config, gis_cache):
        t = gis_tables.table6(config, gis_cache)
        rows = {r[0]: r[1:] for r in t.data_rows()}
        str_, hs, nx = rows["leaf perimeter"]
        assert nx > 3 * str_
        assert hs > str_

    def test_figures234_svgs(self, config, gis_cache):
        svgs = gis_tables.figures_2_3_4(config, gis_cache)
        assert set(svgs) == {"NX", "HS", "STR"}
        for svg in svgs.values():
            assert svg.startswith("<svg")


class TestVlsi:
    def test_hs_and_str_roughly_tied(self, config, vlsi_cache):
        t = vlsi_tables.table7(config, vlsi_cache)
        # Exclude huge-buffer rows where the whole tree fits (ratio = 1).
        ratios = [r for r in t.column("HS/STR") if r == r]
        assert all(0.8 < r < 1.25 for r in ratios)

    def test_nx_not_competitive(self, config, vlsi_cache):
        t = vlsi_tables.table7(config, vlsi_cache)
        small_buffer_rows = [
            row for row in t.data_rows() if row[0] in (10, 25, 50)
        ]
        assert all(row[5] > 1.5 for row in small_buffer_rows)  # NX/STR

    def test_quality_table(self, config, vlsi_cache):
        t = vlsi_tables.table8(config, vlsi_cache)
        rows = {r[0]: r[1:] for r in t.data_rows()}
        str_, hs, nx = rows["leaf perimeter"]
        # At quick scale the NX blow-up is smaller than the paper's ~10x
        # (fewer leaves per strip) but must still be clearly worst.
        assert nx > 1.5 * str_
        assert nx > 1.5 * hs


class TestCfd:
    def test_str_beats_hs_point_queries_small_buffers(self, config,
                                                      cfd_cache):
        t = cfd_tables.table9(config, cfd_cache)
        rows = t.data_rows()[:len(cfd_tables.TABLE9_BUFFERS)]
        by_buffer = {row[0]: row for row in rows}
        # Paper: HS needs 11-68% more accesses, worst at buffer 10.
        assert by_buffer[10][4] > 1.2   # HS/STR at buffer 10
        assert by_buffer[10][4] > by_buffer[250][4] - 0.05

    def test_region_queries_near_tie(self, config, cfd_cache):
        t = cfd_tables.table9(config, cfd_cache)
        n = len(cfd_tables.TABLE9_BUFFERS)
        region_ratios = t.column("HS/STR")[n:]
        assert all(0.85 < r < 1.3 for r in region_ratios)

    def test_quality_table_hs_smaller_perimeter_bigger_area(self, config,
                                                            cfd_cache):
        """The paper's Table 10 paradox: HS has the smallest leaf
        perimeter yet loses point queries because its leaf area is much
        larger."""
        t = cfd_tables.table10(config, cfd_cache)
        rows = {r[0]: r[1:] for r in t.data_rows()}
        assert rows["leaf perimeter"][1] < rows["leaf perimeter"][0]
        assert rows["leaf area"][1] > rows["leaf area"][0]

    def test_figure12_hs_above_str_at_small_buffers(self, config, cfd_cache):
        hs, strs = cfd_tables.figure12(config, cfd_cache,
                                       buffers=(10, 15, 20, 25))
        assert all(h > s for h, s in zip(hs.ys, strs.ys))

    def test_figures56_svgs(self):
        svgs = cfd_tables.figures_5_6(seed=0)
        assert svgs["figure5_full"].count("<circle") == 5088
        assert 0 < svgs["figure6_zoom"].count("<circle") < 5088
