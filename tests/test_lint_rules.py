"""Per-rule fixtures: what each RL00x flags, and what it must permit.

Every rule gets true-positive fixtures (the violation it exists to
catch), true-negative fixtures (the sanctioned idioms it must never
flag — injection defaults, seeded RNGs, blessed modules, failure
counters, executor dispatch), and a suppression check.  Fixtures are
checked as in-memory sources with repo-shaped paths, exactly how the
engine sees real files.
"""

import pytest

from repro.lint import LintEngine, all_rules


@pytest.fixture(scope="module")
def engine():
    return LintEngine(all_rules())


def findings_for(engine, path, source, rule=None):
    found, _ = engine.check_source(path, source)
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


# -- RL001 no-wallclock-or-rng ------------------------------------------------

RL001_PATH = "src/repro/rtree/rtree.py"


@pytest.mark.parametrize("source, fragment", [
    ("import time\nt = time.time()\n", "time.time"),
    ("import time\nt = time.time_ns()\n", "time.time_ns"),
    ("from time import time as now\nt = now()\n", "time.time"),
    ("import os\nb = os.urandom(8)\n", "os.urandom"),
    ("import random\nx = random.random()\n", "random.random"),
    ("import random\nrandom.shuffle([1, 2])\n", "random.shuffle"),
    ("import random\nr = random.Random()\n", "random.Random"),
    ("import numpy as np\nx = np.random.rand(3)\n", "numpy.random.rand"),
    ("import numpy as np\nnp.random.seed(0)\n", "numpy.random.seed"),
    ("import numpy as np\nr = np.random.default_rng()\n",
     "numpy.random.default_rng"),
    ("from datetime import datetime\nt = datetime.now()\n",
     "datetime.now"),
    ("import datetime\nt = datetime.datetime.utcnow()\n",
     "datetime.datetime.utcnow"),
])
def test_rl001_flags_ambient_clock_and_rng(engine, source, fragment):
    found = findings_for(engine, RL001_PATH, source, "RL001")
    assert len(found) == 1
    assert fragment in found[0].message


@pytest.mark.parametrize("source", [
    # The injection idiom: banned callables *referenced* as defaults.
    "import time\n\n\ndef f(clock=time.monotonic):\n    return clock()\n",
    "import time\n\n\ndef f(clock=time.time):\n    return clock()\n",
    # Monotonic/CPU clocks are deterministic enough for durations.
    "import time\nt = time.monotonic()\nu = time.perf_counter()\n",
    # Seeded construction.
    "import numpy as np\nr = np.random.default_rng(42)\n",
    "import random\nr = random.Random(42)\n",
    # Methods on an injected generator object are not module-level RNG.
    "def f(rng):\n    return rng.random()\n",
    # Explicit-tz timestamps (manifest metadata).
    "from datetime import datetime, timezone\n"
    "t = datetime.now(timezone.utc)\n",
])
def test_rl001_permits_injection_and_seeded_idioms(engine, source):
    assert findings_for(engine, RL001_PATH, source, "RL001") == []


def test_rl001_only_guards_the_measured_core(engine):
    source = "import time\nt = time.time()\n"
    assert findings_for(engine, "src/repro/obs/spans.py", source, "RL001") \
        == []
    assert findings_for(engine, "src/repro/experiments/runner.py", source,
                        "RL001") == []


def test_rl001_suppression(engine):
    source = ("import time\n"
              "t = time.time()  # repro-lint: disable=RL001 -- calibration\n")
    found, suppressed = engine.check_source(RL001_PATH, source)
    assert suppressed == 1
    assert [f for f in found if f.rule == "RL001"] == []


# -- RL002 atomic-publication -------------------------------------------------


@pytest.mark.parametrize("source, fn", [
    ("import os\nos.rename('a', 'b')\n", "os.rename"),
    ("import os\nos.replace('a', 'b')\n", "os.replace"),
    ("import os\nos.renames('a', 'b')\n", "os.renames"),
    ("import shutil\nshutil.move('a', 'b')\n", "shutil.move"),
    ("from os import replace\nreplace('a', 'b')\n", "os.replace"),
])
def test_rl002_flags_raw_renames_anywhere(engine, source, fn):
    found = findings_for(engine, "src/repro/experiments/runner.py",
                         source, "RL002")
    assert len(found) == 1
    assert fn in found[0].message
    assert "staging" in found[0].message


@pytest.mark.parametrize("blessed", [
    "src/repro/pipeline/staging.py",
    "src/repro/storage/store.py",
    "src/repro/storage/journal.py",
    "src/repro/core/packing/external.py",
])
def test_rl002_blessed_modules_may_rename(engine, blessed):
    source = "import os\nos.replace('a.tmp', 'a')\n"
    assert findings_for(engine, blessed, source, "RL002") == []


def test_rl002_ignores_non_rename_os_calls(engine):
    source = "import os\nos.remove('a')\nos.fsync(3)\n"
    assert findings_for(engine, "src/repro/serve/server.py", source,
                        "RL002") == []


# -- RL003 counter-purity -----------------------------------------------------


@pytest.mark.parametrize("source", [
    "from repro.storage.counters import IOStats\n",
    "import repro.storage.counters\n",
    "from ..storage import counters\n",
    "from ..storage.counters import IOStats\n",
])
def test_rl003_obs_must_not_import_storage(engine, source):
    found = findings_for(engine, "src/repro/obs/metrics.py", source,
                         "RL003")
    assert len(found) == 1
    assert "storage -> obs" in found[0].message


def test_rl003_obs_may_import_its_own_package(engine):
    source = "from .spans import Tracer\nfrom . import metrics\n"
    assert findings_for(engine, "src/repro/obs/runtime.py", source,
                        "RL003") == []


def test_rl003_storage_may_import_obs(engine):
    # The arrow's legal direction (counters.py does exactly this).
    source = "from ..obs.metrics import Counter, MetricsRegistry\n"
    assert findings_for(engine, "src/repro/storage/counters.py", source,
                        "RL003") == []


HANDLER_PATH = "src/repro/storage/buffer.py"


@pytest.mark.parametrize("body", [
    "self.stats.disk_reads += 1",
    "stats.buffer_misses += 1",
    'obs.inc("io.disk_reads")',
    'registry.counter("io.disk_reads").inc()',
    "self.stats.disk_reads.inc()",
])
def test_rl003_flags_access_counters_in_except_handlers(engine, body):
    source = (f"try:\n    x = 1\nexcept OSError:\n    {body}\n"
              f"    raise\n")
    found = findings_for(engine, HANDLER_PATH, source, "RL003")
    assert len(found) == 1
    assert "except handler" in found[0].message


@pytest.mark.parametrize("body", [
    # Failure counters are the explicit exception: that's their job.
    'obs.inc("storage.checksum_failures")',
    'obs.inc("storage.retries")',
    # Access counters *outside* handlers are the normal hot path.
])
def test_rl003_permits_failure_counters_in_handlers(engine, body):
    source = f"try:\n    x = 1\nexcept OSError:\n    {body}\n    raise\n"
    assert findings_for(engine, HANDLER_PATH, source, "RL003") == []


def test_rl003_permits_access_counters_outside_handlers(engine):
    source = 'self.stats.disk_reads += 1\nobs.inc("io.buffer_hits")\n'
    assert findings_for(engine, HANDLER_PATH, source, "RL003") == []


# -- RL004 exception-discipline -----------------------------------------------

RL004_PATH = "src/repro/storage/store.py"


def test_rl004_flags_bare_except(engine):
    source = "try:\n    x = 1\nexcept:\n    raise\n"
    found = findings_for(engine, RL004_PATH, source, "RL004")
    assert len(found) == 1
    assert "bare except" in found[0].message


@pytest.mark.parametrize("caught", ["Exception", "BaseException",
                                    "(OSError, Exception)"])
def test_rl004_flags_swallowed_broad_except(engine, caught):
    source = f"try:\n    x = 1\nexcept {caught}:\n    pass\n"
    found = findings_for(engine, RL004_PATH, source, "RL004")
    assert len(found) == 1
    assert "swallows" in found[0].message


@pytest.mark.parametrize("exc", ["Exception", "BaseException"])
def test_rl004_flags_raising_root_classes(engine, exc):
    source = f"raise {exc}('boom')\n"
    found = findings_for(engine, RL004_PATH, source, "RL004")
    assert len(found) == 1
    assert "typed" in found[0].message


@pytest.mark.parametrize("source", [
    # Narrow type + pass: legal best-effort cleanup, intent documented.
    "try:\n    x = 1\nexcept OSError:\n    pass\n",
    # Broad catch that *does* something (records / re-raises) is fine.
    "try:\n    x = 1\nexcept Exception:\n    log(1)\n    raise\n",
    "try:\n    x = 1\nexcept Exception as exc:\n"
    "    raise StoreError('x') from exc\n",
    # Typed taxonomy raises.
    "raise StoreError('torn page')\n",
])
def test_rl004_permits_disciplined_handling(engine, source):
    assert findings_for(engine, RL004_PATH, source, "RL004") == []


def test_rl004_only_guards_durability_packages(engine):
    source = "try:\n    x = 1\nexcept:\n    pass\n"
    assert findings_for(engine, "src/repro/experiments/report.py", source,
                        "RL004") == []


# -- RL005 async-blocking -----------------------------------------------------

RL005_PATH = "src/repro/serve/server.py"


@pytest.mark.parametrize("call, fragment", [
    ("time.sleep(1)", "time.sleep"),
    ("open('f')", "open"),
    ("os.system('ls')", "os.system"),
    ("subprocess.run(['ls'])", "subprocess.run"),
    ("subprocess.check_output(['ls'])", "subprocess.check_output"),
    ("socket.create_connection(('h', 1))", "socket.create_connection"),
])
def test_rl005_flags_blocking_calls_in_coroutines(engine, call, fragment):
    source = (f"import os, socket, subprocess, time\n\n\n"
              f"async def handle(self):\n    {call}\n")
    found = findings_for(engine, RL005_PATH, source, "RL005")
    assert len(found) == 1
    assert fragment in found[0].message
    assert "'handle'" in found[0].message


@pytest.mark.parametrize("source", [
    # Blocking work in a *sync* helper is the sanctioned executor idiom.
    "import time\n\n\ndef _reload_blocking(self):\n    time.sleep(1)\n",
    # ...including a sync def nested inside the coroutine.
    "import time\n\n\nasync def handle(self):\n"
    "    def work():\n        time.sleep(1)\n"
    "    await loop.run_in_executor(None, work)\n",
    # Async-native equivalents.
    "import asyncio\n\n\nasync def handle(self):\n"
    "    await asyncio.sleep(1)\n",
])
def test_rl005_permits_executor_dispatch_and_sync_helpers(engine, source):
    assert findings_for(engine, RL005_PATH, source, "RL005") == []


def test_rl005_only_guards_serve(engine):
    source = "import time\n\n\nasync def f():\n    time.sleep(1)\n"
    assert findings_for(engine, "src/repro/pipeline/orchestrator.py",
                        source, "RL005") == []


# -- RL006 worker-picklability ------------------------------------------------

RL006_PATH = "src/repro/pipeline/worker.py"


@pytest.mark.parametrize("source, label", [
    ("CACHE = {}\n", "CACHE"),
    ("SEEN = []\n", "SEEN"),
    ("IDS = set()\n", "IDS"),
    ("BUF = bytearray(8)\n", "BUF"),
    ("import collections\nQ = collections.deque()\n", "Q"),
    ("import threading\nSTOP = threading.Event()\n", "STOP"),
    ("PAIRS = [(i, i) for i in range(3)]\n", "PAIRS"),
])
def test_rl006_flags_module_global_mutables(engine, source, label):
    found = findings_for(engine, RL006_PATH, source, "RL006")
    assert len(found) == 1
    assert label in found[0].message
    assert "spawn" in found[0].message


def test_rl006_flags_module_level_lambda(engine):
    found = findings_for(engine, RL006_PATH, "key = lambda s: s.index\n",
                         "RL006")
    assert len(found) == 1
    assert "lambda" in found[0].message


@pytest.mark.parametrize("source", [
    'DONE_FORMAT = "repro-shard-done-v1"\n',
    "RETRIES = 3\n",
    "FIELDS = ('a', 'b')\n",
    "NAMES = frozenset({'a'})\n",
    '__all__ = ["run_shard"]\n',
    # Mutables inside function scope are per-attempt state: legal.
    "def run_shard(spec):\n    cache = {}\n    return cache\n",
    # Lambdas inside functions pickle never travel: legal.
    "def f():\n    return sorted([1], key=lambda x: x)\n",
])
def test_rl006_permits_constants_and_function_scope_state(engine, source):
    assert findings_for(engine, RL006_PATH, source, "RL006") == []


def test_rl006_only_guards_the_worker_module(engine):
    assert findings_for(engine, "src/repro/pipeline/orchestrator.py",
                        "CACHE = {}\n", "RL006") == []


@pytest.mark.parametrize("path", [
    "src/repro/serve/pool.py",
    "src/repro/serve/supervisor.py",
])
def test_rl006_guards_the_serving_pool_modules(engine, path):
    # worker_main and TreeSpec cross the spawn boundary exactly like the
    # build-shard worker, so the same no-module-global-mutables rule
    # applies to the serving pool's modules.
    found = findings_for(engine, path, "CACHE = {}\n", "RL006")
    assert len(found) == 1
    assert "spawn" in found[0].message
    assert findings_for(engine, path, "QUERY_OPS = ('search',)\n",
                        "RL006") == []


def test_rl005_guards_the_serving_pool_module(engine):
    # pool.py's coroutines run on the server's event loop; a blocking
    # call there stalls every session, so RL005's serve/ scope covers it.
    source = "import time\n\n\nasync def execute(self):\n    time.sleep(1)\n"
    found = findings_for(engine, "src/repro/serve/pool.py", source,
                        "RL005")
    assert len(found) == 1
    assert "time.sleep" in found[0].message
