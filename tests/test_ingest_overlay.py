"""The overlay correctness contract: for any interleaving of inserts,
upserts, and deletes, a query through ``packed base ∪ delta layers −
tombstones`` returns exactly what a from-scratch packed rebuild of the
final logical set returns — for window, point, and kNN queries, with
one layer or a frozen+live stack."""

import numpy as np

from repro import RectArray, SortTileRecursive, bulk_load
from repro.core.geometry import Rect
from repro.ingest.delta import DeltaTree
from repro.ingest.overlay import OverlaySearcher
from repro.queries import point_queries, region_queries
from repro.rtree.knn import knn_detailed
from repro.storage import MemoryPageStore

CAPACITY = 8
NDIM = 2


def _pack(entries: dict):
    """From-scratch packed build of a logical ``{id: (lo, hi)}`` set."""
    ids = np.array(sorted(entries), dtype=np.int64)
    los = np.array([entries[int(i)][0] for i in ids], dtype=np.float64)
    his = np.array([entries[int(i)][1] for i in ids], dtype=np.float64)
    tree, _ = bulk_load(RectArray(los, his), SortTileRecursive(),
                        data_ids=ids, capacity=CAPACITY,
                        store=MemoryPageStore(4096))
    return tree


def _random_entries(rng, ids):
    lo = rng.random((len(ids), NDIM)) * 0.9
    hi = lo + rng.random((len(ids), NDIM)) * 0.1
    return {int(i): (tuple(lo[k]), tuple(hi[k]))
            for k, i in enumerate(ids)}


def _apply_random_ops(rng, oracle, deltas, steps, next_id):
    """Mutate the live (last) delta and the oracle dict in lockstep."""
    live = deltas[-1]
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.45 or not oracle:
            data_id = next_id
            next_id += 1
        else:
            keys = sorted(oracle)
            data_id = keys[int(rng.integers(0, len(keys)))]
        if roll < 0.75 or not oracle:
            lo = tuple(rng.random(NDIM) * 0.9)
            hi = tuple(l + e for l, e in
                       zip(lo, rng.random(NDIM) * 0.1))
            live.insert(data_id, Rect(lo, hi))
            oracle[data_id] = (lo, hi)
        else:
            live.delete(data_id)
            oracle.pop(data_id, None)
    return next_id


def _assert_overlay_equals_rebuild(overlay, oracle, rng):
    rebuilt = _pack(oracle)
    oracle_searcher = rebuilt.searcher(64)
    for q in region_queries(0.15, 25, seed=41):
        got = overlay.search_detailed(q)
        assert not got.partial
        assert got.ids == sorted(
            int(x) for x in oracle_searcher.search(q))
    for p in point_queries(25, seed=42):
        got = overlay.point_detailed(p.lo)
        assert got.ids == sorted(
            int(x) for x in oracle_searcher.point_query(p.lo))
    for _ in range(10):
        point = tuple(rng.random(NDIM))
        k = int(rng.integers(1, 12))
        got = overlay.knn_detailed(point, k)
        want = knn_detailed(oracle_searcher, point, k)
        # Both orders are normalised to (distance, id); random float
        # coordinates make cross-boundary distance ties improbable.
        assert (sorted((d, i) for i, d in got.neighbours)
                == sorted((d, i) for i, d in want.neighbours))


class TestSingleLayer:
    def test_randomized_interleaving_matches_rebuild(self, rng):
        oracle = _random_entries(rng, range(300))
        base = _pack(oracle)
        delta = DeltaTree(NDIM, capacity=8)
        _apply_random_ops(rng, oracle, [delta], steps=250,
                          next_id=10_000)
        overlay = OverlaySearcher(base.searcher(64), (delta,))
        _assert_overlay_equals_rebuild(overlay, oracle, rng)

    def test_empty_delta_is_identity(self, rng):
        oracle = _random_entries(rng, range(120))
        base = _pack(oracle)
        overlay = OverlaySearcher(base.searcher(64),
                                  (DeltaTree(NDIM),))
        _assert_overlay_equals_rebuild(overlay, oracle, rng)

    def test_delete_everything_in_region(self, rng):
        oracle = _random_entries(rng, range(100))
        base = _pack(oracle)
        delta = DeltaTree(NDIM)
        victims = [i for i, (lo, hi) in oracle.items() if lo[0] < 0.5]
        for data_id in victims:
            delta.delete(data_id)
            del oracle[data_id]
        assert oracle, "test needs survivors"
        overlay = OverlaySearcher(base.searcher(64), (delta,))
        _assert_overlay_equals_rebuild(overlay, oracle, rng)
        # A query fully inside the purged half-plane finds nothing new.
        got = overlay.search_detailed(Rect((0.0, 0.0), (0.2, 1.0)))
        assert all(i not in victims for i in got.ids)


class TestFrozenPlusLive:
    def test_mid_merge_layer_stack_matches_rebuild(self, rng):
        """Simulate a merge in flight: ops land in a frozen layer, the
        layer is frozen (as begin_merge does), and newer ops — some
        shadowing frozen-layer ids — land in the live layer."""
        oracle = _random_entries(rng, range(200))
        base = _pack(oracle)
        frozen = DeltaTree(NDIM, capacity=8)
        next_id = _apply_random_ops(rng, oracle, [frozen], steps=120,
                                    next_id=10_000)
        live = DeltaTree(NDIM, capacity=8)
        _apply_random_ops(rng, oracle, [frozen, live], steps=120,
                          next_id=next_id)
        overlay = OverlaySearcher(base.searcher(64), (frozen, live))
        _assert_overlay_equals_rebuild(overlay, oracle, rng)

    def test_live_layer_shadows_frozen(self, rng):
        oracle = _random_entries(rng, range(50))
        base = _pack(oracle)
        frozen = DeltaTree(NDIM)
        live = DeltaTree(NDIM)
        # Frozen upserts id 1; live deletes it — the delete wins.
        frozen.insert(1, Rect((0.1, 0.1), (0.2, 0.2)))
        live.delete(1)
        # Frozen deletes id 2; live re-inserts it — the insert wins.
        frozen.delete(2)
        live.insert(2, Rect((0.3, 0.3), (0.4, 0.4)))
        oracle.pop(1, None)
        oracle[2] = ((0.3, 0.3), (0.4, 0.4))
        overlay = OverlaySearcher(base.searcher(64), (frozen, live))
        everything = Rect((0.0, 0.0), (1.0, 1.0))
        got = overlay.search_detailed(everything)
        assert 1 not in got.ids and 2 in got.ids
        _assert_overlay_equals_rebuild(overlay, oracle, rng)
