"""Flow-sensitive rule fixtures: what RL008–RL011 flag, and what they
must permit.

Same shape as ``test_lint_rules.py`` — in-memory sources with
repo-shaped paths — but every fixture here encodes a *path property*:
a branch that skips the fsync, an await between the read and the
write, an exception edge that bypasses the ``close()``, a statement
inside vs. outside a lock's ``with`` region.  The true-negative
fixtures are the sanctioned idioms from the live tree (the staging
helpers' write/flush/fsync/rename dance, the swap-then-close
``aclose``, ``try/finally`` closes, the write-lock executor hop);
none of them may ever flag.
"""

import pytest

from repro.lint import LintEngine, all_rules


@pytest.fixture(scope="module")
def engine():
    return LintEngine(all_rules())


def findings_for(engine, path, source, rule=None):
    found, _ = engine.check_source(path, source)
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


# -- RL008 durability-ordering ------------------------------------------------

RL008_PATH = "src/repro/pipeline/staging.py"
RL008_WAL_PATH = "src/repro/ingest/wal.py"


def test_rl008_flags_rename_without_fsync(engine):
    source = (
        "import os\n"
        "def publish(path, data):\n"
        "    tmp = path + '.tmp'\n"
        "    with open(tmp, 'wb') as f:\n"
        "        f.write(data)\n"
        "        f.flush()\n"
        "    os.replace(tmp, path)\n")
    found = findings_for(engine, RL008_PATH, source, "RL008")
    assert len(found) == 1
    assert "os.replace" in found[0].message
    assert "flushed and fsynced" in found[0].message


def test_rl008_flags_fsync_on_only_one_branch(engine):
    # the pre-fix staging.py shape: a `sync` flag that lets one branch
    # publish unfsynced bytes — the join poisons the rename
    source = (
        "import os\n"
        "def publish(path, data, sync):\n"
        "    tmp = path + '.tmp'\n"
        "    with open(tmp, 'wb') as f:\n"
        "        f.write(data)\n"
        "        f.flush()\n"
        "        if sync:\n"
        "            os.fsync(f.fileno())\n"
        "    os.replace(tmp, path)\n")
    found = findings_for(engine, RL008_PATH, source, "RL008")
    assert len(found) == 1
    assert found[0].line == 9


def test_rl008_flags_rename_of_tmp_with_no_live_handle(engine):
    source = (
        "import os\n"
        "def promote(path):\n"
        "    os.replace(path + '.tmp', path)\n")
    found = findings_for(engine, RL008_PATH, source, "RL008")
    assert len(found) == 1
    assert "no handle" in found[0].message


def test_rl008_permits_the_full_durable_order(engine):
    # exactly the live atomic_write_bytes: write, flush, fsync, rename
    source = (
        "import os\n"
        "def publish(path, data):\n"
        "    tmp = path + '.tmp'\n"
        "    with open(tmp, 'wb') as f:\n"
        "        f.write(data)\n"
        "        f.flush()\n"
        "        os.fsync(f.fileno())\n"
        "    os.replace(tmp, path)\n")
    assert findings_for(engine, RL008_PATH, source, "RL008") == []


def test_rl008_permits_handle_passed_to_writer_then_fsynced(engine):
    # the atomic_save_npy shape: np.save(f, a) dirties via the
    # passed-handle heuristic, and the fsync still cleans it
    source = (
        "import os\n"
        "import numpy as np\n"
        "def save(path, array):\n"
        "    tmp = path + '.tmp'\n"
        "    with open(tmp, 'wb') as f:\n"
        "        np.save(f, array)\n"
        "        f.flush()\n"
        "        os.fsync(f.fileno())\n"
        "    os.replace(tmp, path)\n")
    assert findings_for(engine, RL008_PATH, source, "RL008") == []


def test_rl008_permits_moving_already_durable_files(engine):
    # no writable handle, no temporary in the source expression:
    # segment GC / directory shuffles are RL002's business, not ours
    source = (
        "import os\n"
        "def rotate(old, new):\n"
        "    os.replace(old, new)\n")
    assert findings_for(engine, RL008_PATH, source, "RL008") == []


def test_rl008_flags_ack_without_durability_call(engine):
    source = (
        "class WriteAheadLog:\n"
        "    def append(self, op):\n"
        "        self._pending.append(op)\n"
        "        return op\n")
    found = findings_for(engine, RL008_WAL_PATH, source, "RL008")
    assert len(found) == 1
    assert "ack" in found[0].message


def test_rl008_flags_ack_durable_on_only_one_branch(engine):
    source = (
        "class WriteAheadLog:\n"
        "    def append(self, op):\n"
        "        if self.buffering:\n"
        "            self._pending.append(op)\n"
        "        else:\n"
        "            self._physical_append(self._file, op)\n"
        "        return op\n")
    found = findings_for(engine, RL008_WAL_PATH, source, "RL008")
    assert len(found) == 1


def test_rl008_permits_ack_dominated_by_physical_append(engine):
    source = (
        "class WriteAheadLog:\n"
        "    def append(self, op):\n"
        "        line = self._encode(op)\n"
        "        self._physical_append(self._file, line)\n"
        "        self.records += 1\n"
        "        return op\n")
    assert findings_for(engine, RL008_WAL_PATH, source, "RL008") == []


def test_rl008_ack_protocol_is_keyed_by_qualname(engine):
    # an unrelated append in the same file is not an ack point
    source = (
        "class Buffer:\n"
        "    def append(self, op):\n"
        "        self._items.append(op)\n"
        "        return op\n")
    assert findings_for(engine, RL008_WAL_PATH, source, "RL008") == []


# -- RL009 await-atomicity ----------------------------------------------------

RL009_PATH = "src/repro/serve/server.py"


def test_rl009_flags_read_await_write(engine):
    source = (
        "import asyncio\n"
        "class Server:\n"
        "    async def toggle(self):\n"
        "        pool = self.pool\n"
        "        await asyncio.sleep(0)\n"
        "        self.pool = pool\n")
    found = findings_for(engine, RL009_PATH, source, "RL009")
    assert len(found) == 1
    assert found[0].line == 6
    assert "pool" in found[0].message


def test_rl009_flags_mutator_after_stale_read(engine):
    # check-then-act across the lock acquisition: `merging` was read
    # before the suspension, so the in-flight check is stale inside
    source = (
        "import asyncio\n"
        "class Server:\n"
        "    async def merge(self):\n"
        "        if self.ingest.merging:\n"
        "            raise RuntimeError('busy')\n"
        "        async with self._write_lock:\n"
        "            loop = asyncio.get_running_loop()\n"
        "            await loop.run_in_executor(\n"
        "                None, self._begin_merge_blocking)\n")
    found = findings_for(engine, RL009_PATH, source, "RL009")
    assert len(found) == 1
    assert "ingest" in found[0].message


def test_rl009_flags_augassign_that_awaits_mid_statement(engine):
    source = (
        "class Server:\n"
        "    async def bump(self):\n"
        "        self.generation += await self._next_gen()\n")
    found = findings_for(engine, RL009_PATH, source, "RL009")
    assert len(found) == 1
    assert "augmented" in found[0].message


def test_rl009_permits_recheck_after_the_await(engine):
    source = (
        "import asyncio\n"
        "class Server:\n"
        "    async def merge(self):\n"
        "        async with self._write_lock:\n"
        "            if self.ingest.merging:\n"
        "                raise RuntimeError('busy')\n"
        "            loop = asyncio.get_running_loop()\n"
        "            await loop.run_in_executor(\n"
        "                None, self._begin_merge_blocking)\n")
    assert findings_for(engine, RL009_PATH, source, "RL009") == []


def test_rl009_permits_await_under_the_lock(engine):
    # holding the lock across the suspension is the sanctioned way to
    # make a read-await-write section atomic
    source = (
        "import asyncio\n"
        "class Server:\n"
        "    async def swap(self):\n"
        "        async with self._write_lock:\n"
        "            pool = self.pool\n"
        "            await asyncio.sleep(0)\n"
        "            self.pool = pool\n")
    assert findings_for(engine, RL009_PATH, source, "RL009") == []


def test_rl009_permits_write_without_prior_read(engine):
    source = (
        "import asyncio\n"
        "class Server:\n"
        "    async def install(self, tree):\n"
        "        await asyncio.sleep(0)\n"
        "        self.tree = tree\n")
    assert findings_for(engine, RL009_PATH, source, "RL009") == []


def test_rl009_permits_swap_then_close(engine):
    # the aclose idiom: take the attribute and null it in one
    # statement (atomic — no await between read and write), then await
    # on the local only
    source = (
        "class Server:\n"
        "    async def aclose(self):\n"
        "        pool, self.pool = self.pool, None\n"
        "        if pool is not None:\n"
        "            await pool.aclose()\n")
    assert findings_for(engine, RL009_PATH, source, "RL009") == []


def test_rl009_only_guarded_files_are_checked(engine):
    source = (
        "import asyncio\n"
        "class Client:\n"
        "    async def toggle(self):\n"
        "        pool = self.pool\n"
        "        await asyncio.sleep(0)\n"
        "        self.pool = pool\n")
    assert findings_for(
        engine, "src/repro/serve/client.py", source, "RL009") == []


def test_rl009_suppression_comment(engine):
    source = (
        "import asyncio\n"
        "class Server:\n"
        "    async def toggle(self):\n"
        "        pool = self.pool\n"
        "        await asyncio.sleep(0)\n"
        "        self.pool = pool  "
        "# repro-lint: disable=RL009 -- single-task startup\n")
    assert findings_for(engine, RL009_PATH, source, "RL009") == []


# -- RL010 resource-lifecycle -------------------------------------------------

RL010_PATH = "src/repro/storage/cache.py"


def test_rl010_flags_leak_at_function_exit(engine):
    source = (
        "def read_all(path):\n"
        "    f = open(path, 'rb')\n"
        "    data = f.read()\n"
        "    return len(data)\n")
    found = findings_for(engine, RL010_PATH, source, "RL010")
    assert len(found) == 1
    assert found[0].line == 2
    assert "at function exit" in found[0].message


def test_rl010_flags_leak_on_the_exception_path(engine):
    # the close is there — but f.read(16) raising skips it
    source = (
        "def read_header(path):\n"
        "    f = open(path, 'rb')\n"
        "    magic = f.read(16)\n"
        "    f.close()\n"
        "    return magic\n")
    found = findings_for(engine, RL010_PATH, source, "RL010")
    assert len(found) == 1
    assert "on an exception path" in found[0].message


def test_rl010_flags_leaked_store(engine):
    # passing the open store to a callee is a borrow, not a transfer
    source = (
        "from repro.storage.store import FilePageStore\n"
        "def load(path):\n"
        "    store = FilePageStore(path)\n"
        "    tree = attach(store)\n"
        "    return tree.height\n")
    found = findings_for(engine, RL010_PATH, source, "RL010")
    assert len(found) == 1
    assert "FilePageStore" in found[0].message


def test_rl010_permits_with_block(engine):
    source = (
        "def read_all(path):\n"
        "    with open(path, 'rb') as f:\n"
        "        return f.read()\n")
    assert findings_for(engine, RL010_PATH, source, "RL010") == []


def test_rl010_permits_try_finally_close(engine):
    source = (
        "def read_all(path):\n"
        "    f = open(path, 'rb')\n"
        "    try:\n"
        "        return f.read()\n"
        "    finally:\n"
        "        f.close()\n")
    assert findings_for(engine, RL010_PATH, source, "RL010") == []


def test_rl010_permits_returning_the_resource(engine):
    # ownership transfers to the caller — both `return open(…)` and
    # bind-then-return
    source = (
        "def acquire(path):\n"
        "    return open(path, 'rb')\n"
        "def acquire_named(path):\n"
        "    f = open(path, 'rb')\n"
        "    return f\n")
    assert findings_for(engine, RL010_PATH, source, "RL010") == []


def test_rl010_permits_storing_into_an_attribute(engine):
    source = (
        "class Holder:\n"
        "    def attach(self, path):\n"
        "        self._file = open(path, 'rb')\n")
    assert findings_for(engine, RL010_PATH, source, "RL010") == []


def test_rl010_permits_inline_acquire_in_a_call_argument(engine):
    source = (
        "import contextlib\n"
        "from repro.storage.store import FilePageStore\n"
        "def load(path):\n"
        "    with contextlib.closing(FilePageStore(path)) as store:\n"
        "        return store.height\n")
    assert findings_for(engine, RL010_PATH, source, "RL010") == []


def test_rl010_permits_yielding_the_resource(engine):
    source = (
        "def handles(paths):\n"
        "    for path in paths:\n"
        "        yield open(path, 'rb')\n")
    assert findings_for(engine, RL010_PATH, source, "RL010") == []


def test_rl010_only_durable_packages_are_checked(engine):
    source = (
        "def read_all(path):\n"
        "    f = open(path, 'rb')\n"
        "    return len(f.read())\n")
    assert findings_for(
        engine, "src/repro/obs/report.py", source, "RL010") == []


# -- RL011 lock-discipline ----------------------------------------------------

RL011_PATH = "src/repro/serve/server.py"


def test_rl011_flags_unlocked_write(engine):
    source = (
        "class Server:\n"
        "    def drop(self):\n"
        "        self.searcher = None\n")
    found = findings_for(engine, RL011_PATH, source, "RL011")
    assert len(found) == 1
    assert "searcher" in found[0].message
    assert "_search_lock" in found[0].message


def test_rl011_flags_unlocked_container_mutation(engine):
    source = (
        "class Server:\n"
        "    def poison(self, page_id):\n"
        "        self.quarantine.add(page_id)\n")
    found = findings_for(engine, RL011_PATH, source, "RL011")
    assert len(found) == 1
    assert "quarantine" in found[0].message


def test_rl011_flags_unlocked_mutator_method(engine):
    source = (
        "class Server:\n"
        "    def cutover(self, report):\n"
        "        self.ingest.finish_merge(report)\n")
    found = findings_for(engine, RL011_PATH, source, "RL011")
    assert len(found) == 1
    assert "finish_merge" in found[0].message


def test_rl011_flags_the_wrong_lock(engine):
    source = (
        "class Server:\n"
        "    def drop(self):\n"
        "        with self._write_lock:\n"
        "            self.searcher = None\n")
    found = findings_for(engine, RL011_PATH, source, "RL011")
    assert len(found) == 1


def test_rl011_flags_augmented_assignment(engine):
    source = (
        "class Server:\n"
        "    def note(self):\n"
        "        self.reloads_total += 1\n")
    found = findings_for(engine, RL011_PATH, source, "RL011")
    assert len(found) == 1


def test_rl011_permits_writes_under_the_lock(engine):
    source = (
        "class Server:\n"
        "    def swap(self, searcher, report):\n"
        "        with self._search_lock:\n"
        "            self.searcher = searcher\n"
        "            self.quarantine.clear()\n"
        "            self.ingest.finish_merge(report)\n"
        "            self.reloads_total += 1\n")
    assert findings_for(engine, RL011_PATH, source, "RL011") == []


def test_rl011_permits_reads_without_the_lock(engine):
    source = (
        "class Server:\n"
        "    def snapshot(self):\n"
        "        return self.searcher\n")
    assert findings_for(engine, RL011_PATH, source, "RL011") == []


def test_rl011_permits_unguarded_attributes(engine):
    source = (
        "class Server:\n"
        "    def note(self):\n"
        "        self.last_error = 'boom'\n")
    assert findings_for(engine, RL011_PATH, source, "RL011") == []


def test_rl011_exempts_init(engine):
    source = (
        "class Server:\n"
        "    def __init__(self):\n"
        "        self.searcher = None\n"
        "        self.quarantine = set()\n")
    assert findings_for(engine, RL011_PATH, source, "RL011") == []


def test_rl011_suppression_comment(engine):
    source = (
        "class Server:\n"
        "    def drop(self):\n"
        "        self.searcher = None  "
        "# repro-lint: disable=RL011 -- caller holds the lock\n")
    assert findings_for(engine, RL011_PATH, source, "RL011") == []


def test_rl011_only_guarded_files_are_checked(engine):
    source = (
        "class Worker:\n"
        "    def drop(self):\n"
        "        self.searcher = None\n")
    assert findings_for(
        engine, "src/repro/serve/worker.py", source, "RL011") == []
