"""Unit tests for per-query tracing."""

import pytest

from repro import HilbertSort, SortTileRecursive, bulk_load
from repro.datasets import uniform_points, airfoil_like
from repro.experiments.trace import paired_comparison, trace_queries
from repro.queries import point_queries, region_queries


@pytest.fixture(scope="module")
def tree():
    return bulk_load(uniform_points(10_000, seed=1),
                     SortTileRecursive(), capacity=100)[0]


class TestTraceQueries:
    def test_totals_match_runner(self, tree):
        from repro.experiments.runner import run_queries

        workload = region_queries(0.1, 200, seed=2)
        trace = trace_queries(tree, workload, 10)
        run = run_queries(tree, workload, 10)
        assert trace.accesses.sum() == run.total_accesses
        assert trace.results.sum() == run.total_results

    def test_per_query_shape(self, tree):
        workload = point_queries(150, seed=3)
        trace = trace_queries(tree, workload, 10, algorithm="STR")
        assert trace.accesses.shape == (150,)
        assert (trace.accesses >= 0).all()
        assert trace.algorithm == "STR"

    def test_summary_keys_and_order(self, tree):
        trace = trace_queries(tree, point_queries(100, seed=3), 10)
        s = trace.summary()
        assert s["p50"] <= s["p90"] <= s["p99"] <= s["max"]
        assert s["mean"] == pytest.approx(trace.mean)

    def test_warmup_visible_in_trace(self, tree):
        workload = point_queries(400, seed=4)
        trace = trace_queries(tree, workload, 100)
        cold = trace.accesses[:50].mean()
        warm = trace.accesses[-50:].mean()
        assert cold > warm


class TestPairedComparison:
    def test_fractions_sum_to_one(self, tree):
        workload = point_queries(200, seed=5)
        a = trace_queries(tree, workload, 10)
        b = trace_queries(tree, workload, 25)
        cmp = paired_comparison(a, b)
        assert cmp["a_wins"] + cmp["b_wins"] + cmp["ties"] == pytest.approx(1.0)

    def test_bigger_buffer_wins_paired(self, tree):
        workload = region_queries(0.1, 300, seed=6)
        small = trace_queries(tree, workload, 10)
        big = trace_queries(tree, workload, 200)
        cmp = paired_comparison(small, big)
        assert cmp["mean_delta"] > 0          # small buffer costs more
        assert cmp["b_wins"] > cmp["a_wins"]

    def test_str_beats_hs_paired_on_cfd(self):
        """The paired test sharpens the paper's CFD point-query verdict:
        on the same query stream STR wins far more queries than HS."""
        from repro.datasets.cfd import CFD_QUERY_WINDOW

        mesh = airfoil_like(20_000, seed=2)
        str_tree, _ = bulk_load(mesh, SortTileRecursive(), capacity=100)
        hs_tree, _ = bulk_load(mesh, HilbertSort(), capacity=100)
        workload = point_queries(500, seed=7, window=CFD_QUERY_WINDOW)
        s = trace_queries(str_tree, workload, 10, algorithm="STR")
        h = trace_queries(hs_tree, workload, 10, algorithm="HS")
        cmp = paired_comparison(h, s)  # a=HS, b=STR
        assert cmp["mean_delta"] > 0
        assert cmp["b_wins"] > cmp["a_wins"]

    def test_mismatched_lengths_rejected(self, tree):
        a = trace_queries(tree, point_queries(10, seed=1), 10)
        b = trace_queries(tree, point_queries(20, seed=1), 10)
        with pytest.raises(ValueError):
            paired_comparison(a, b)
