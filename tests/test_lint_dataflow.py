"""Dataflow framework tests: fixpoint convergence, join semantics,
exceptional-edge state, and the divergence guard.

The framework under test (:mod:`repro.lint.dataflow`) is deliberately
small — a forward worklist solver over the CFGs of
:mod:`repro.lint.cfg` — but every flow-sensitive rule leans on the
same four contracts exercised here:

* loops converge to a fixpoint (states merge at the back edge until
  stable) and ``before``/``after`` are consistent with ``transfer``;
* joins use the caller's ``merge``, pointwise for dict states via
  :func:`merge_dicts`;
* exceptional edges carry the *in*-state of the raising node by
  default (the statement never completed), or ``exc_transfer``'s
  output when the rule needs partial effects to survive a raise;
* a transfer that never stabilises trips :class:`DataflowDivergence`
  instead of hanging the lint run.
"""

import ast
import itertools

import pytest

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import (
    DataflowDivergence,
    merge_dicts,
    run_forward,
)


def cfg_of(source):
    func = ast.parse(source).body[0]
    return build_cfg(func)


def node_named(cfg, fragment):
    (node,) = [n for n in cfg.nodes
               if n.stmt is not None and n.kind == "stmt"
               and fragment in ast.unparse(n.stmt).split("\n")[0]]
    return node


# -- fixpoint convergence -----------------------------------------------------


def test_loop_converges_to_the_merged_state():
    # classic reaching-values shape: x is 0 before the loop and 1
    # inside it; at the header both reach, so the merge must hold {0, 1}.
    cfg = cfg_of(
        "def f(n):\n"
        "    x = 0\n"
        "    while n:\n"
        "        x = 1\n"
        "    return x\n")

    def transfer(node, state):
        if node.stmt is None or node.kind != "stmt":
            return state
        text = ast.unparse(node.stmt).split("\n")[0]
        if text == "x = 0":
            return frozenset({0})
        if text == "x = 1":
            return frozenset({1})
        return state

    sol = run_forward(cfg, init=frozenset(), transfer=transfer,
                      merge=lambda a, b: a | b)
    header = node_named(cfg, "while n")
    ret = node_named(cfg, "return x")
    assert sol.before[header.id] == {0, 1}
    assert sol.before[ret.id] == {0, 1}


def test_nested_loops_converge():
    cfg = cfg_of(
        "def f(n):\n"
        "    total = 0\n"
        "    for i in range(n):\n"
        "        for j in range(n):\n"
        "            total += 1\n"
        "    return total\n")
    counter = itertools.count()

    def transfer(node, state):
        next(counter)
        return min(state + 1, 5)  # monotone, bounded: must converge

    sol = run_forward(cfg, init=0, transfer=transfer, merge=max)
    assert sol.before[cfg.exit] == 5
    # the solver stopped: no step-cap explosion on a 2-deep loop nest
    assert next(counter) < 32 * len(cfg.nodes) + 1024


def test_after_is_transfer_of_before():
    cfg = cfg_of("def f():\n    a = 1\n    b = 2\n")

    def transfer(node, state):
        return state + 1 if node.kind == "stmt" else state

    sol = run_forward(cfg, init=0, transfer=transfer, merge=max)
    for node in cfg.nodes:
        if sol.before[node.id] is not None:
            assert sol.after[node.id] == transfer(node, sol.before[node.id])


def test_unreachable_nodes_stay_none():
    cfg = cfg_of(
        "def f():\n"
        "    return 1\n"
        "    dead = 2\n")
    dead = node_named(cfg, "dead = 2")
    sol = run_forward(cfg, init=0, transfer=lambda n, s: s, merge=max)
    assert sol.before[dead.id] is None
    assert sol.after[dead.id] is None


# -- join semantics -----------------------------------------------------------


def test_branches_merge_with_the_given_join():
    cfg = cfg_of(
        "def f(p):\n"
        "    if p:\n"
        "        a = 1\n"
        "    else:\n"
        "        b = 2\n"
        "    c = 3\n")

    def transfer(node, state):
        if node.stmt is None or node.kind != "stmt":
            return state
        text = ast.unparse(node.stmt).split("\n")[0]
        return {**state, text[0]: True} if text[1:2] == " " else state

    sol = run_forward(
        cfg, init={}, transfer=transfer,
        merge=lambda x, y: merge_dicts(x, y, lambda p, q: p and q, False))
    join = node_named(cfg, "c = 3")
    # must-analysis: neither arm's binding survives the pointwise AND
    assert sol.before[join.id] == {"a": False, "b": False}


def test_merge_dicts_is_a_pointwise_union():
    joined = merge_dicts({"x": 1, "y": 5}, {"y": 2, "z": 3}, max, 0)
    assert joined == {"x": 1, "y": 5, "z": 3}
    # default fills the missing side: max(absent=0, 3) == 3
    assert merge_dicts({}, {"z": -1}, max, 0) == {"z": 0}


def test_merge_dicts_does_not_mutate_inputs():
    a, b = {"x": 1}, {"x": 2}
    merge_dicts(a, b, max, 0)
    assert a == {"x": 1} and b == {"x": 2}


# -- exceptional edges --------------------------------------------------------


def test_exceptional_edges_carry_in_state_by_default():
    # `x = acquire()` raising mid-call acquired nothing: the handler
    # must see the state from *before* the statement.
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        x = acquire()\n"
        "        use(x)\n"
        "    except OSError:\n"
        "        handler()\n")

    def transfer(node, state):
        if node.stmt is not None and node.kind == "stmt" \
                and "acquire" in ast.unparse(node.stmt):
            return state | {"open"}
        return state

    sol = run_forward(cfg, init=frozenset(), transfer=transfer,
                      merge=lambda a, b: a | b)
    handler = node_named(cfg, "handler()")
    # the handler merges the acquire stmt's IN (clean) with use(x)'s
    # IN (open) — so "open" is possible but not guaranteed
    assert sol.before[handler.id] == {"open"}
    use = node_named(cfg, "use(x)")
    assert sol.before[use.id] == {"open"}


def test_exc_transfer_overrides_the_exceptional_contribution():
    # RL010's shape: a close() completes its effect even when a later
    # statement raises — exc_transfer lets close-effects survive while
    # open-effects still roll back.
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    except OSError:\n"
        "        handler()\n")

    sol = run_forward(
        cfg, init="in",
        transfer=lambda n, s: ("normal" if n.stmt is not None
                               and "risky" in ast.unparse(n.stmt) else s),
        merge=lambda a, b: a if a == b else f"{a}|{b}",
        exc_transfer=lambda n, s: ("exceptional" if n.stmt is not None
                                   and "risky" in ast.unparse(n.stmt)
                                   else s))
    handler = node_named(cfg, "handler()")
    assert sol.before[handler.id] == "exceptional"
    assert sol.before[cfg.exit] != "exceptional"


# -- divergence guard ---------------------------------------------------------


def test_divergence_raises_instead_of_hanging():
    cfg = cfg_of(
        "def f(n):\n"
        "    while n:\n"
        "        n -= 1\n")
    with pytest.raises(DataflowDivergence):
        # strictly growing state on a loop: no fixpoint exists
        run_forward(cfg, init=0, transfer=lambda n, s: s + 1, merge=max)


def test_max_steps_caps_the_run():
    cfg = cfg_of("def f():\n    a = 1\n")
    with pytest.raises(DataflowDivergence):
        run_forward(cfg, init=0, transfer=lambda n, s: s + 1,
                    merge=max, max_steps=1)


def test_custom_equals_decides_stability():
    cfg = cfg_of(
        "def f(n):\n"
        "    while n:\n"
        "        n -= 1\n")
    # states are floats that keep shrinking; equals-by-epsilon lets
    # the solver declare convergence
    sol = run_forward(
        cfg, init=1.0,
        transfer=lambda n, s: s * 0.5 if n.kind == "stmt" else s,
        merge=max,
        equals=lambda a, b: abs(a - b) < 1e-3)
    assert sol.before[cfg.exit] < 1.0
