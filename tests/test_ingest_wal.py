"""WAL durability contract: round trips, torn-tail discard vs mid-file
corruption, the seal protocol, and a kill-at-every-write matrix — after
a simulated SIGKILL at any write boundary, with any tear length, a
reopen must recover exactly the acked ops (no loss, no invention)."""

import os

import pytest

from repro.core.geometry import Rect
from repro.ingest.wal import (
    IngestError,
    WalCorrupt,
    WalSegment,
    WriteAheadLog,
    _encode_record,
    ingest_dir,
    segment_name,
    segment_seq,
)
from repro.storage.faults import CrashPlan
from repro.storage.store import SimulatedCrash


def _rect(i: int) -> Rect:
    return Rect((float(i), float(i)), (float(i) + 1.0, float(i) + 1.0))


def _ops(wal: WriteAheadLog):
    return [(o.lsn, o.op, o.data_id, o.rect) for o in wal.iter_ops()]


def _as_tuple(op):
    return (op.lsn, op.op, op.data_id, op.rect)


class TestRoundTrip:
    def test_appends_survive_reopen(self, tmp_path):
        d = tmp_path / "t.ingest"
        with WriteAheadLog(d) as wal:
            acked = [wal.append("insert", i, _rect(i)) for i in range(5)]
            acked.append(wal.append("delete", 2, None))
            assert [o.lsn for o in acked] == [1, 2, 3, 4, 5, 6]
            assert wal.last_lsn == 6
        with WriteAheadLog(d) as wal:
            assert _ops(wal) == [_as_tuple(o) for o in acked]
            assert wal.last_lsn == 6
            # New appends continue the LSN sequence.
            assert wal.append("insert", 99, _rect(99)).lsn == 7

    def test_min_lsn_floors_assignment(self, tmp_path):
        with WriteAheadLog(tmp_path / "t.ingest", min_lsn=100) as wal:
            assert wal.append("insert", 1, _rect(1)).lsn == 101

    def test_start_after_seq_skips_drained_segments(self, tmp_path):
        d = tmp_path / "t.ingest"
        with WriteAheadLog(d) as wal:
            wal.append("insert", 1, _rect(1))
            sealed = wal.seal_active()
            assert sealed is not None and sealed.seq == 1
            wal.append("insert", 2, _rect(2))
        with WriteAheadLog(d, start_after_seq=1, min_lsn=1) as wal:
            assert [op[2] for op in _ops(wal)] == [2]

    def test_pending_accounting(self, tmp_path):
        with WriteAheadLog(tmp_path / "t.ingest") as wal:
            assert wal.pending_bytes == 0 and wal.pending_ops == 0
            wal.append("insert", 1, _rect(1))
            wal.append("delete", 1, None)
            assert wal.pending_ops == 2
            assert wal.pending_bytes == os.path.getsize(
                wal.segments[0].path)

    def test_bad_ops_rejected_without_logging(self, tmp_path):
        with WriteAheadLog(tmp_path / "t.ingest") as wal:
            with pytest.raises(IngestError):
                wal.append("upsert", 1, _rect(1))
            with pytest.raises(IngestError):
                wal.append("insert", 1, None)
            assert wal.pending_ops == 0


class TestTornTailVsCorruption:
    def test_torn_tail_is_discarded_and_truncated(self, tmp_path):
        d = tmp_path / "t.ingest"
        with WriteAheadLog(d) as wal:
            acked = [wal.append("insert", i, _rect(i)) for i in range(3)]
            path = wal.segments[0].path
        clean_size = os.path.getsize(path)
        with open(path, "ab") as f:
            f.write(b'{"format": "repro-ingest-wal-v1", "op": "ins')
        with WriteAheadLog(d) as wal:
            assert _ops(wal) == [_as_tuple(o) for o in acked]
            # The torn bytes are physically gone, not just skipped.
            assert os.path.getsize(path) == clean_size
            # And appending again produces a parseable segment.
            wal.append("insert", 9, _rect(9))
        seg = WalSegment.load(path)
        assert [o.data_id for o in seg.ops] == [0, 1, 2, 9]

    def test_mid_file_damage_raises_instead_of_dropping(self, tmp_path):
        d = tmp_path / "t.ingest"
        with WriteAheadLog(d) as wal:
            for i in range(4):
                wal.append("insert", i, _rect(i))
            path = wal.segments[0].path
        data = open(path, "rb").read()
        lines = data.split(b"\n")
        # Corrupt the *first* record: damage before the tail means acked
        # writes may be missing, which must never be silent.
        lines[0] = lines[0][:-1] + (b"0" if lines[0][-1:] != b"0"
                                    else b"1")
        with open(path, "wb") as f:
            f.write(b"\n".join(lines))
        with pytest.raises(WalCorrupt):
            WriteAheadLog(d)

    def test_lsn_regression_is_corruption(self, tmp_path):
        d = tmp_path / "t.ingest"
        d.mkdir()
        path = d / segment_name(1)
        with open(path, "wb") as f:
            f.write(_encode_record({"lsn": 2, "op": "delete", "id": 1}))
            f.write(_encode_record({"lsn": 2, "op": "delete", "id": 2}))
        with pytest.raises(WalCorrupt):
            WalSegment.load(path)


class TestSealProtocol:
    def test_seal_closes_segment_and_rolls(self, tmp_path):
        d = tmp_path / "t.ingest"
        with WriteAheadLog(d) as wal:
            wal.append("insert", 1, _rect(1))
            wal.append("insert", 2, _rect(2))
            sealed = wal.seal_active()
            assert sealed is not None and sealed.sealed
            assert wal.active_segment is None
            wal.append("insert", 3, _rect(3))
            active = wal.active_segment
            assert active is not None and active.seq == 2
        with WriteAheadLog(d) as wal:
            assert [s.sealed for s in wal.segments] == [True, False]
            assert wal.sealed_segments()[0].last_lsn == 2
            assert [op[2] for op in _ops(wal)] == [1, 2, 3]

    def test_seal_with_nothing_pending_is_a_noop(self, tmp_path):
        with WriteAheadLog(tmp_path / "t.ingest") as wal:
            assert wal.seal_active() is None

    def test_record_after_seal_is_corruption(self, tmp_path):
        d = tmp_path / "t.ingest"
        with WriteAheadLog(d) as wal:
            wal.append("insert", 1, _rect(1))
            wal.seal_active()
            path = wal.segments[0].path
        with open(path, "ab") as f:
            f.write(_encode_record({"lsn": 2, "op": "delete", "id": 1}))
        with pytest.raises(WalCorrupt):
            WalSegment.load(path)

    def test_seal_miscount_is_corruption(self, tmp_path):
        d = tmp_path / "t.ingest"
        d.mkdir()
        path = d / segment_name(1)
        with open(path, "wb") as f:
            f.write(_encode_record({"lsn": 1, "op": "delete", "id": 7}))
            f.write(_encode_record({"op": "seal", "count": 2,
                                    "last_lsn": 1}))
        with pytest.raises(WalCorrupt):
            WalSegment.load(path)

    def test_unsealed_segment_below_active_is_corruption(self, tmp_path):
        d = tmp_path / "t.ingest"
        with WriteAheadLog(d) as wal:
            wal.append("insert", 1, _rect(1))
            path = wal.segments[0].path
        # Fabricate a higher segment while seq 1 is still unsealed.
        with open(d / segment_name(2), "wb") as f:
            f.write(open(path, "rb").read())
        with pytest.raises(WalCorrupt):
            WriteAheadLog(d)

    def test_forget_through_deletes_files(self, tmp_path):
        d = tmp_path / "t.ingest"
        with WriteAheadLog(d) as wal:
            wal.append("insert", 1, _rect(1))
            wal.seal_active()
            wal.append("insert", 2, _rect(2))
            first = wal.segments[0].path
            assert wal.forget_through(1) == 1
            assert not os.path.exists(first)
            assert [op[2] for op in _ops(wal)] == [2]
            assert wal.forget_through(1) == 0  # idempotent


class TestNaming:
    def test_segment_name_round_trips(self):
        assert segment_seq(segment_name(7)) == 7
        assert segment_seq("wal-abc.log") is None
        assert segment_seq("notawal") is None
        assert ingest_dir("/x/tree.rt") == "/x/tree.rt.ingest"


class TestKillAtEveryWrite:
    """SIGKILL (via CrashPlan) at every physical write boundary, with
    clean, 1-byte-torn, and fully-landed tears: reopening must recover
    exactly the acked ops, and the log must keep working afterwards."""

    #: The write script: five appends with a seal in the middle, so the
    #: matrix covers crashes inside both segments *and* inside the seal
    #: record itself.  Each step is exactly one physical write.
    SCRIPT = (("insert", 1), ("insert", 2), ("delete", 1), "seal",
              ("insert", 3), ("delete", 4))

    def _run_script(self, wal):
        """Run the script, returning ``(acked, inflight)``: the acked
        ops, plus the op whose write the kill interrupted (``None``
        when the kill hit the seal record instead)."""
        acked = []
        inflight = None
        for step in self.SCRIPT:
            try:
                if step == "seal":
                    wal.seal_active()
                else:
                    op, data_id = step
                    rect = _rect(data_id) if op == "insert" else None
                    acked.append(wal.append(op, data_id, rect))
            except SimulatedCrash:
                if step != "seal":
                    op, data_id = step
                    rect = _rect(data_id) if op == "insert" else None
                    lsn = acked[-1].lsn + 1 if acked else 1
                    inflight = (lsn, op, data_id, rect)
                break
        return acked, inflight

    def test_acked_ops_always_survive(self, tmp_path):
        n_writes = len(self.SCRIPT)
        tears = (None, 1, 1 << 20)
        for at_write in range(n_writes):
            for tear in tears:
                d = tmp_path / f"kill-{at_write}-{tear}"
                wal = WriteAheadLog(
                    d, crash_plan=CrashPlan(at_write,
                                            tear_bytes=tear))
                acked, inflight = self._run_script(wal)
                wal.close()
                # A crashed log refuses further appends until reopened.
                with pytest.raises(IngestError):
                    wal.append("insert", 99, _rect(99))

                recovered = WriteAheadLog(d)
                got = _ops(recovered)
                expected = [_as_tuple(o) for o in acked]
                if got != expected:
                    # The only other legal outcome: the crash write's
                    # bytes *all* landed, so the un-acked in-flight op
                    # is durable — indistinguishable from a crash just
                    # after the ack, and idempotent to keep.
                    assert tear == 1 << 20 and inflight is not None \
                        and got == expected + [inflight], \
                        f"lost/invented ops at write {at_write}, " \
                        f"tear {tear}"
                # The log is fully usable after recovery.
                nxt = recovered.append("insert", 50, _rect(50))
                assert nxt.lsn == (got[-1][0] + 1 if got else 1)
                recovered.close()
                reread = WriteAheadLog(d)
                assert _ops(reread)[-1] == _as_tuple(nxt)
                reread.close()

    def test_fully_landed_crash_write_is_kept(self, tmp_path):
        """A tear longer than the record means the bytes all landed:
        the op is durable even though the writer died before acking —
        keeping it is correct (replay is idempotent) and required (we
        cannot distinguish it from a crash just after the ack)."""
        d = tmp_path / "t.ingest"
        wal = WriteAheadLog(
            d, crash_plan=CrashPlan(1, tear_bytes=1 << 20))
        wal.append("insert", 1, _rect(1))
        with pytest.raises(SimulatedCrash):
            wal.append("insert", 2, _rect(2))
        wal.close()
        recovered = WriteAheadLog(d)
        assert [op[2] for op in _ops(recovered)] == [1, 2]
        recovered.close()
