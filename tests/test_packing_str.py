"""Unit tests for Sort-Tile-Recursive packing."""

import math

import numpy as np
import pytest

from repro.core.geometry import RectArray
from repro.core.packing.base import PackingError
from repro.core.packing.str_ import SortTileRecursive, str_slab_sizes


class TestSlabSizes:
    def test_2d_matches_paper_formula(self):
        # r=10,000, n=100 -> P=100 pages, S=ceil(sqrt(100))=10 slices of
        # S*n = 1000 rectangles each.
        sizes = str_slab_sizes(10_000, 100, dims_left=2)
        assert sizes == [1000] * 10

    def test_2d_ragged_last_slice(self):
        # r=950, n=100 -> P=10, S=4, slab=400: slices 400,400,150.
        sizes = str_slab_sizes(950, 100, dims_left=2)
        assert sizes == [400, 400, 150]
        assert sum(sizes) == 950

    def test_last_dim_is_single_run(self):
        assert str_slab_sizes(12345, 100, dims_left=1) == [12345]

    def test_3d_uses_fractional_power(self):
        # P = ceil(1000/10) = 100; slab = n*ceil(100^(2/3)) = 10*22 = 220.
        sizes = str_slab_sizes(1000, 10, dims_left=3)
        assert sizes[0] == 10 * math.ceil(100 ** (2 / 3))
        assert sum(sizes) == 1000

    def test_small_input_one_slab(self):
        assert str_slab_sizes(5, 100, dims_left=2) == [5]

    def test_invalid(self):
        with pytest.raises(PackingError):
            str_slab_sizes(0, 100, 2)
        with pytest.raises(PackingError):
            str_slab_sizes(100, 0, 2)
        with pytest.raises(PackingError):
            str_slab_sizes(100, 100, 0)


class TestOrdering:
    def test_returns_permutation(self, unit_points):
        perm = SortTileRecursive().order(unit_points, 100)
        assert sorted(perm.tolist()) == list(range(len(unit_points)))

    def test_deterministic(self, unit_points):
        a = SortTileRecursive().order(unit_points, 100)
        b = SortTileRecursive().order(unit_points, 100)
        assert np.array_equal(a, b)

    def test_1d_is_plain_sort(self, rng):
        pts = rng.random((500, 1))
        ra = RectArray.from_points(pts)
        perm = SortTileRecursive().order(ra, 10)
        assert np.array_equal(perm, np.argsort(pts[:, 0], kind="stable"))

    def test_slices_are_x_contiguous(self, rng):
        """Every vertical slice spans an x-range disjoint from later ones."""
        pts = rng.random((10_000, 2))
        ra = RectArray.from_points(pts)
        perm = SortTileRecursive().order(ra, 100)
        xs = pts[perm, 0]
        slab = 1000  # S*n for this input (see TestSlabSizes)
        for s in range(9):
            left = xs[s * slab:(s + 1) * slab]
            right = xs[(s + 1) * slab:]
            assert left.max() <= right.min() + 1e-12

    def test_within_slice_sorted_by_y(self, rng):
        pts = rng.random((10_000, 2))
        ra = RectArray.from_points(pts)
        perm = SortTileRecursive().order(ra, 100)
        ys = pts[perm, 1]
        for s in range(10):
            sl = ys[s * 1000:(s + 1) * 1000]
            assert (np.diff(sl) >= 0).all()

    def test_grid_input_produces_perfect_tiles(self):
        """A 16x16 grid with n=16 gives P=16 pages, S=4 slices: the leaves
        must tile the grid into sixteen 4x4 squares — the canonical STR
        picture."""
        g = 16
        xs, ys = np.meshgrid(np.arange(g), np.arange(g), indexing="ij")
        pts = np.column_stack([xs.ravel(), ys.ravel()]).astype(float)
        ra = RectArray.from_points(pts)
        perm = SortTileRecursive().order(ra, g)
        ordered = ra.take(perm)
        mbrs = ordered.group_mbrs([g] * g)
        expected_tiles = {
            (float(sx * 4), float(sy * 4), float(sx * 4 + 3), float(sy * 4 + 3))
            for sx in range(4) for sy in range(4)
        }
        got_tiles = {
            (m.lo[0], m.lo[1], m.hi[0], m.hi[1]) for m in mbrs
        }
        assert got_tiles == expected_tiles

    def test_leaf_mbrs_disjoint_on_grid(self):
        """On point data STR leaf tiles never overlap (slices are disjoint
        in x; within a slice, runs are disjoint in y)."""
        rng = np.random.default_rng(5)
        pts = rng.random((2500, 2))
        ra = RectArray.from_points(pts)
        perm = SortTileRecursive().order(ra, 25)
        ordered = ra.take(perm)
        mbrs = ordered.group_mbrs([25] * 100)
        # Sum of pairwise overlap areas must be ~zero.
        overlap = 0.0
        for i in range(len(mbrs)):
            inter_lo = np.maximum(mbrs.los[i], mbrs.los[i + 1:])
            inter_hi = np.minimum(mbrs.his[i], mbrs.his[i + 1:])
            sides = np.clip(inter_hi - inter_lo, 0.0, None)
            overlap += float(np.prod(sides, axis=1).sum())
        assert overlap < 1e-9

    def test_3d_order_valid(self, rng):
        pts = rng.random((3000, 3))
        ra = RectArray.from_points(pts)
        perm = SortTileRecursive().order(ra, 10)
        assert sorted(perm.tolist()) == list(range(3000))

    def test_4d_order_valid(self, rng):
        pts = rng.random((2000, 4))
        ra = RectArray.from_points(pts)
        perm = SortTileRecursive().order(ra, 8)
        assert sorted(perm.tolist()) == list(range(2000))

    def test_rectangles_use_centers(self):
        """Ordering must depend on centers, not corners: translating a rect
        symmetrically around its center must not change the order."""
        rng = np.random.default_rng(9)
        centers = rng.random((500, 2))
        small = RectArray(centers - 0.001, centers + 0.001)
        large = RectArray(centers - 0.01, centers + 0.01)
        algo = SortTileRecursive()
        assert np.array_equal(algo.order(small, 20), algo.order(large, 20))

    def test_empty_rejected(self):
        empty = RectArray(np.empty((0, 2)), np.empty((0, 2)))
        with pytest.raises(PackingError):
            SortTileRecursive().order(empty, 10)

    def test_bad_capacity_rejected(self, unit_points):
        with pytest.raises(PackingError):
            SortTileRecursive().order(unit_points, 0)

    def test_name(self):
        assert SortTileRecursive.name == "STR"
