"""``repro report``: list, re-render, diff, export, prune (CLI level)."""

import copy
import json
import os
import time

import pytest

from repro import obs
from repro.bench import write_bench
from repro.bench.report import diff_tables, prune_runs
from repro.cli import main


def run_cli(capsys, *args):
    code = main(list(args))
    captured = capsys.readouterr()
    return code, captured.out


def _write_run(run_dir, experiment="profile-x", spans=True, extra=None,
               created="2026-08-07T10:00:00+00:00"):
    """A synthetic stored run: manifest plus (optionally) a span trace."""
    tracer = obs.Tracer()
    with tracer.span("query.batch"):
        with tracer.span("query.page_decode"):
            time.sleep(0.001)
        with tracer.span("query.node_walk"):
            time.sleep(0.001)
    registry = obs.MetricsRegistry()
    registry.counter("io.disk_reads").inc(42)
    manifest = obs.RunManifest.collect(
        experiment, argv=[experiment], duration_s=0.5,
        tracer=tracer, registry=registry, extra=extra,
    )
    manifest.created_utc = created
    stem = obs.unique_run_stem(manifest, run_dir)
    if spans:
        manifest.outputs["trace_jsonl"] = obs.write_trace_jsonl(
            tracer, os.path.join(run_dir, f"{stem}.trace.jsonl")
        )
    return obs.write_manifest(manifest, run_dir, stem=stem), stem


BENCH_SCENARIO = {
    "description": "synthetic", "ops": 100, "elapsed_s": 1.0,
    "queries_per_s": 100.0, "mean_accesses": 2.0,
    "latency_s": {"mean": 0.01, "p50": 0.01, "p95": 0.02, "p99": 0.03,
                  "max": 0.05},
    "io": {"pages_read": 200, "bytes_read": 819200, "buffer_hits": 300,
           "buffer_misses": 200},
    "self_time_s": {"read": 0.4, "decode": 0.2, "walk": 0.3,
                    "other": 0.1},
    "tolerance": {"queries_per_s_min_ratio": 0.1, "p99_max_ratio": 10.0,
                  "pages_read_rel": 0.01},
}


def _bench_doc(**scenario_overrides):
    scenario = copy.deepcopy(BENCH_SCENARIO)
    for key, value in scenario_overrides.items():
        node = scenario
        *path, leaf = key.split(".")
        for part in path:
            node = node[part]
        node[leaf] = value
    return {
        "format": "repro-bench-v1",
        "created_utc": "2026-08-07T10:00:00+00:00",
        "profile": "quick", "host_class": "linux-x86_64",
        "environment": {"git_sha": None, "python": "3.x"},
        "config": {"profile": "quick", "seed": 0},
        "scenarios": {"window_1pct": scenario},
    }


class TestListAndRender:
    def test_list_shows_stems_and_artefact_kinds(self, tmp_path, capsys):
        run_dir = str(tmp_path)
        _, stem = _write_run(run_dir)
        code, out = run_cli(capsys, "report", "--run-dir", run_dir)
        assert code == 0
        assert stem in out
        assert "trace.jsonl" in out

    def test_render_has_timings_metrics_and_header(self, tmp_path, capsys):
        run_dir = str(tmp_path)
        _, stem = _write_run(run_dir)
        code, out = run_cli(capsys, "report", stem, "--run-dir", run_dir)
        assert code == 0
        assert "experiment:  profile-x" in out
        assert "Phase timing breakdown" in out
        assert "decode" in out and "walk" in out
        assert "io.disk_reads" in out and "42" in out

    def test_render_surfaces_slo_verdicts_from_extras(self, tmp_path,
                                                      capsys):
        run_dir = str(tmp_path)
        _, stem = _write_run(run_dir, extra={
            "serve": {"slo": {"ok": False, "p50": 0.5, "p99": 0.9,
                              "count": 10,
                              "violations": ["p99 0.9s > target 0.1s"]}},
        })
        code, out = run_cli(capsys, "report", stem, "--run-dir", run_dir)
        assert code == 0
        assert "slo [serve]: VIOLATED" in out
        assert "p99 0.9s > target 0.1s" in out

    def test_unknown_stem_is_a_cli_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "nope", "--run-dir", str(tmp_path)])


class TestTraceExports:
    def test_chrome_trace_and_flamegraph_written(self, tmp_path, capsys):
        run_dir = str(tmp_path / "runs")
        os.makedirs(run_dir)
        _, stem = _write_run(run_dir)
        chrome = tmp_path / "out.chrome.json"
        folded = tmp_path / "out.folded"
        code, out = run_cli(capsys, "report", stem, "--run-dir", run_dir,
                            "--chrome-trace", str(chrome),
                            "--flamegraph", str(folded))
        assert code == 0
        doc = json.loads(chrome.read_text())
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == ["query.batch", "query.page_decode",
                         "query.node_walk"]
        lines = folded.read_text().splitlines()
        assert any(line.startswith("query.batch;query.node_walk ")
                   for line in lines)

    def test_export_without_a_trace_is_a_cli_error(self, tmp_path):
        run_dir = str(tmp_path)
        _, stem = _write_run(run_dir, spans=False)
        with pytest.raises(SystemExit):
            main(["report", stem, "--run-dir", run_dir,
                  "--chrome-trace", str(tmp_path / "x.json")])


class TestDiff:
    def test_identical_bench_docs_have_no_crossings(self, tmp_path,
                                                    capsys):
        a = str(tmp_path / "a.json")
        write_bench(_bench_doc(), a)
        code, out = run_cli(capsys, "report", "--diff", a, a)
        assert code == 0
        assert "window_1pct" in out and "pages_read" in out

    def test_pages_read_regression_crosses_the_band(self, tmp_path,
                                                    capsys):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_bench(_bench_doc(), a)
        write_bench(_bench_doc(**{"io.pages_read": 230}), b)
        code, out = run_cli(capsys, "report", "--diff", a, b)
        assert code == 1  # +15% pages_read vs a 1% band

    def test_generous_wallclock_band_tolerates_slow_hosts(self, tmp_path,
                                                          capsys):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_bench(_bench_doc(), a)
        # 5x slower wall clock stays inside the 10x/0.1x bands.
        write_bench(_bench_doc(**{"queries_per_s": 20.0,
                                  "latency_s.p99": 0.15}), b)
        code, out = run_cli(capsys, "report", "--diff", a, b)
        assert code == 0

    def test_qps_collapse_crosses_the_band(self, tmp_path, capsys):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_bench(_bench_doc(), a)
        write_bench(_bench_doc(**{"queries_per_s": 5.0}), b)
        code, out = run_cli(capsys, "report", "--diff", a, b)
        assert code == 1

    def test_profile_mismatch_disables_gating(self, tmp_path, capsys):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_bench(_bench_doc(), a)
        full = _bench_doc(**{"io.pages_read": 9999})
        full["profile"] = "full"
        write_bench(full, b)
        code, out = run_cli(capsys, "report", "--diff", a, b)
        assert code == 0
        assert "informational" in out

    def test_manifest_diff_highlights_large_moves(self, tmp_path, capsys):
        run_dir = str(tmp_path)
        path_a, _ = _write_run(run_dir, experiment="run-a")
        path_b, _ = _write_run(run_dir, experiment="run-b",
                               created="2026-08-07T11:00:00+00:00")
        code, out = run_cli(capsys, "report", "--diff", path_a, path_b)
        assert code == 0  # manifest diffs never gate
        assert "duration_s" in out
        assert "io.disk_reads" in out

    def test_mixed_kinds_rejected(self, tmp_path):
        bench = str(tmp_path / "a.json")
        write_bench(_bench_doc(), bench)
        manifest_path, _ = _write_run(str(tmp_path / "runs"))
        with pytest.raises(Exception, match="cannot diff"):
            diff_tables(bench, manifest_path)


class TestPrune:
    def test_prune_keeps_newest_whole_stems(self, tmp_path, capsys):
        run_dir = str(tmp_path)
        stems = []
        for i in range(4):
            path, stem = _write_run(run_dir, experiment=f"run-{i}")
            stems.append(stem)
            now = time.time() + i  # strictly increasing mtimes
            for name in os.listdir(run_dir):
                if name.startswith(stem):
                    os.utime(os.path.join(run_dir, name), (now, now))
        code, out = run_cli(capsys, "report", "--prune", "--keep", "2",
                            "--run-dir", run_dir)
        assert code == 0
        left = sorted(os.listdir(run_dir))
        assert all(n.startswith((stems[2], stems[3])) for n in left)
        # Both survivors keep manifest AND trace together.
        for stem in (stems[2], stems[3]):
            assert f"{stem}.json" in left
            assert f"{stem}.trace.jsonl" in left

    def test_dry_run_removes_nothing(self, tmp_path):
        run_dir = str(tmp_path)
        _write_run(run_dir)
        before = sorted(os.listdir(run_dir))
        removed = prune_runs(run_dir, keep=0, dry_run=True)
        assert removed and sorted(os.listdir(run_dir)) == before

    def test_negative_keep_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            prune_runs(str(tmp_path), keep=-1)


class TestBenchCli:
    def test_bench_rejects_positional_target(self):
        with pytest.raises(SystemExit):
            main(["bench", "extra-arg"])

    def test_quick_filtered_bench_writes_doc_and_run_files(
            self, tmp_path, capsys, monkeypatch):
        out = str(tmp_path / "bench.json")
        run_dir = str(tmp_path / "runs")
        code, stdout = run_cli(capsys, "bench", "--quick",
                               "--scenario", "point",
                               "--out", out, "--run-dir", run_dir)
        assert code == 0
        assert os.path.isfile(out)
        doc = json.load(open(out))
        assert doc["format"] == "repro-bench-v1"
        assert list(doc["scenarios"]) == ["build", "point"]
        kinds = sorted(n.split(".", 1)[1] for n in os.listdir(run_dir))
        assert kinds == ["bench.json", "json", "trace.jsonl"]
        assert "point" in stdout and "qps" in stdout
