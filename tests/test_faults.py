"""Fault injection: retry policy, deterministic plans, checksum detection.

The acceptance properties live here: transient faults under a retry
policy must complete a full bulk-load + query run with ``storage.retries``
> 0 and *bit-identical* access counts, and an injected single-bit flip
must always surface as a :class:`ChecksumError`, never a decoded node.
"""

import numpy as np
import pytest

from repro import RectArray, SortTileRecursive, bulk_load, obs
from repro.queries import point_queries
from repro.storage import (
    ChecksumError,
    FaultInjectingPageStore,
    FaultPlan,
    FilePageStore,
    MemoryPageStore,
    RetryPolicy,
    SimulatedCrash,
    TransientIOError,
    flip_bit,
)
from repro.storage.faults import corrupt_pages
from repro.storage.page import required_page_size
from repro.storage.integrity import TRAILER_SIZE

PAGE = 512


def _no_sleep_retry(attempts=4):
    return RetryPolicy(attempts=attempts, backoff_s=0.01,
                       sleep=lambda s: None)


class TestRetryPolicy:
    def test_succeeds_after_transient_faults(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientIOError("glitch")
            return "ok"

        assert _no_sleep_retry().run(flaky) == "ok"
        assert len(calls) == 3

    def test_exhausted_attempts_reraise(self):
        def always():
            raise TransientIOError("down")

        with pytest.raises(TransientIOError):
            _no_sleep_retry(attempts=2).run(always)

    def test_non_retryable_passes_through(self):
        def boom():
            raise ValueError("not transient")

        calls = []
        with pytest.raises(ValueError):
            _no_sleep_retry().run(boom, on_retry=calls.append)
        assert calls == []  # no retry was attempted

    def test_on_retry_called_per_retry_with_the_fault(self):
        calls = []

        def flaky():
            if len(calls) < 2:
                raise TransientIOError("glitch")
            return 1

        _no_sleep_retry().run(flaky, on_retry=calls.append)
        assert len(calls) == 2
        assert all(isinstance(exc, TransientIOError) for exc in calls)

    def test_backoff_capped(self):
        delays = []
        policy = RetryPolicy(attempts=6, backoff_s=0.01, multiplier=10.0,
                             max_backoff_s=0.05, sleep=delays.append)

        def always():
            raise TransientIOError("x")

        with pytest.raises(TransientIOError):
            policy.run(always)
        assert delays[0] == pytest.approx(0.01)
        assert max(delays) <= 0.05


class TestFaultPlanDeterminism:
    def _run(self, seed):
        plan = FaultPlan(seed=seed, p_transient_read=0.3)
        outcomes = []
        for i in range(50):
            try:
                plan.on_read(i)
                outcomes.append(0)
            except TransientIOError:
                outcomes.append(1)
        return outcomes

    def test_same_seed_same_schedule(self):
        assert self._run(7) == self._run(7)

    def test_different_seed_different_schedule(self):
        assert self._run(7) != self._run(8)

    def test_consecutive_transients_bounded(self):
        plan = FaultPlan(seed=1, p_transient_read=1.0,
                         max_transient_per_op=2)
        failures = 0
        while True:
            try:
                plan.on_read(0)
                break
            except TransientIOError:
                failures += 1
        assert failures == 2  # a 3-attempt retry policy always gets through


class TestFaultInjectingStore:
    def test_shares_inner_counters(self):
        inner = MemoryPageStore(PAGE)
        store = FaultInjectingPageStore(inner, FaultPlan())
        pid = store.allocate()
        store.write_page(pid, b"x" * PAGE)
        store.read_page(pid)
        assert inner.stats.disk_writes == 1
        assert inner.stats.disk_reads == 1

    def test_transient_faults_retried_to_success(self):
        inner = MemoryPageStore(PAGE)
        store = FaultInjectingPageStore(
            inner, FaultPlan(seed=3, p_transient_read=0.4,
                             p_transient_write=0.4),
            retry=_no_sleep_retry(),
        )
        for i in range(30):
            pid = store.allocate()
            store.write_page(pid, bytes([i]) * PAGE)
        for i in range(30):
            assert store.read_page(i) == bytes([i]) * PAGE
        injected = (store.plan.injected["transient_read"]
                    + store.plan.injected["transient_write"])
        assert injected > 0
        assert store.retry_count == injected

    def test_unretried_transient_fault_escapes(self):
        store = FaultInjectingPageStore(
            MemoryPageStore(PAGE), FaultPlan(seed=0, p_transient_write=1.0)
        )
        pid = store.allocate()
        with pytest.raises(TransientIOError):
            store.write_page(pid, b"x" * PAGE)

    def test_crash_at_write(self):
        store = FaultInjectingPageStore(
            MemoryPageStore(PAGE), FaultPlan(crash_at_write=1)
        )
        a, b = store.allocate(), store.allocate()
        store.write_page(a, b"a" * PAGE)
        with pytest.raises(SimulatedCrash):
            store.write_page(b, b"b" * PAGE)

    def test_retries_never_touch_access_counters(self):
        """The paper's metric is sacred: a retried read counts once."""
        inner = MemoryPageStore(PAGE)
        store = FaultInjectingPageStore(
            inner, FaultPlan(seed=5, p_transient_read=0.5),
            retry=_no_sleep_retry(),
        )
        pid = store.allocate()
        store.write_page(pid, b"x" * PAGE)
        inner.stats.reset()
        for _ in range(40):
            store.read_page(pid)
        assert inner.stats.disk_reads == 40
        assert store.retry_count > 0


def _tree_file_store(tmp_path, name="t.pages", **kw):
    page_size = required_page_size(50, 2) + TRAILER_SIZE
    return FilePageStore(tmp_path / name, page_size, **kw)


class TestBitFlipDetection:
    def test_flips_surface_as_checksum_errors_not_nodes(self, tmp_path, rng):
        """Acceptance: corrupted pages are never decoded as valid nodes."""
        rects = RectArray.from_points(rng.random((600, 2)))
        store = _tree_file_store(tmp_path, checksums=True)
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=50,
                            store=store)
        flip_rng = np.random.default_rng(99)
        for pid in range(store.page_count):
            bit = int(flip_rng.integers(store.page_size * 8))
            corrupt_pages(store, [(pid, bit)])
            with pytest.raises(ChecksumError):
                store.read_page(pid)
            corrupt_pages(store, [(pid, bit)])  # flip back
            store.read_page(pid)  # and the page is whole again
        assert store.checksum_failures == store.page_count
        store.close()

    def test_plan_driven_flips_detected(self, tmp_path, rng):
        rects = RectArray.from_points(rng.random((400, 2)))
        inner = _tree_file_store(tmp_path, checksums=True)
        plan = FaultPlan(seed=11, bit_flip_writes=frozenset({2, 5}))
        store = FaultInjectingPageStore(inner, plan)
        bulk_load(rects, SortTileRecursive(), capacity=50, store=store)
        assert plan.injected["bit_flip"] == 2
        failures = 0
        for pid in range(store.page_count):
            try:
                store.read_page(pid)
            except ChecksumError:
                failures += 1
        assert failures == 2
        store.close()


class TestFaultsDoNotMoveTheMetric:
    def test_bit_identical_accesses_under_transient_faults(self, rng):
        """Acceptance: a faulty-but-retried run reports the same accesses."""
        rects = RectArray.from_points(rng.random((2_000, 2)))
        queries = point_queries(100, seed=4)

        def run(store):
            tree, _ = bulk_load(rects, SortTileRecursive(), capacity=50,
                                store=store)
            searcher = tree.searcher(10)
            results = [np.sort(searcher.search(q)).tolist()
                       for q in queries]
            return searcher.disk_accesses, results

        clean_accesses, clean_results = run(MemoryPageStore(PAGE * 4))
        plan = FaultPlan(seed=21, p_transient_read=0.05,
                         p_transient_write=0.05)
        faulty = FaultInjectingPageStore(MemoryPageStore(PAGE * 4), plan,
                                         retry=_no_sleep_retry())
        faulty_accesses, faulty_results = run(faulty)

        assert (plan.injected["transient_read"]
                + plan.injected["transient_write"]) > 0
        assert faulty.retry_count > 0
        assert faulty_accesses == clean_accesses
        assert faulty_results == clean_results

    def test_retries_metric_surfaces_through_registry(self, rng):
        rects = RectArray.from_points(rng.random((800, 2)))
        with obs.telemetry() as (_, registry):
            plan = FaultPlan(seed=2, p_transient_write=0.2)
            store = FaultInjectingPageStore(MemoryPageStore(PAGE * 4), plan,
                                            retry=_no_sleep_retry())
            bulk_load(rects, SortTileRecursive(), capacity=50, store=store)
        retried = registry.counter("storage.retries",
                                   fault="TransientIOError").value
        assert retried == store.retry_count
        assert store.retry_count > 0

    def test_jittered_backoff_is_seeded_and_bounded(self):
        def delays_for(seed):
            delays = []
            policy = RetryPolicy(attempts=6, backoff_s=0.01, multiplier=2.0,
                                 jitter=True, seed=seed,
                                 sleep=delays.append)

            def always():
                raise TransientIOError("x")

            with pytest.raises(TransientIOError):
                policy.run(always)
            return delays

        first, again, other = delays_for(42), delays_for(42), delays_for(43)
        assert first == again  # same seed -> identical schedule
        assert first != other
        # Full jitter: each delay drawn from [0, exponential backoff].
        caps = [0.01 * 2.0 ** i for i in range(len(first))]
        assert all(0.0 <= d <= cap for d, cap in zip(first, caps))


class TestFlipBit:
    def test_involution(self):
        data = bytes(range(64))
        assert flip_bit(flip_bit(data, 100), 100) == data

    def test_changes_exactly_one_bit(self):
        data = b"\x00" * 8
        out = flip_bit(data, 13)
        assert out[1] == 1 << 5
        assert sum(bin(b).count("1") for b in out) == 1
