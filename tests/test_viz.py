"""Unit tests for SVG rendering."""

import pytest

from repro.core.geometry import RectArray
from repro.core.packing import SortTileRecursive
from repro.rtree.bulk import bulk_load
from repro.viz import leaf_mbr_svg, rects_svg, scatter_svg


class TestRectsSvg:
    def test_well_formed(self, small_rects):
        svg = rects_svg(small_rects, title="demo")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "<title>demo</title>" in svg

    def test_one_element_per_rect(self, small_rects):
        svg = rects_svg(small_rects)
        # frame rect + background + one per data rect
        assert svg.count("<rect") == len(small_rects) + 2

    def test_3d_rejected(self, rng):
        ra = RectArray.from_points(rng.random((5, 3)))
        with pytest.raises(ValueError):
            rects_svg(ra)

    def test_custom_bounds(self, small_rects):
        svg = rects_svg(small_rects, bounds=(0, 0, 2, 2))
        assert "<svg" in svg


class TestScatterSvg:
    def test_one_circle_per_point(self, rng):
        pts = rng.random((50, 2))
        svg = scatter_svg(pts)
        assert svg.count("<circle") == 50

    def test_bad_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            scatter_svg(rng.random(10))

    def test_coordinates_inside_canvas(self, rng):
        pts = rng.random((100, 2))
        svg = scatter_svg(pts)
        for line in svg.splitlines():
            if "<circle" in line:
                cx = float(line.split('cx="')[1].split('"')[0])
                assert 0 <= cx <= 800


class TestLeafMbrSvg:
    def test_draws_every_leaf(self, unit_points):
        tree, _ = bulk_load(unit_points, SortTileRecursive(), capacity=50)
        svg = leaf_mbr_svg(tree, title="leaves")
        assert svg.count("<rect") == 20 + 2

    def test_does_not_touch_io_counters(self, unit_points):
        tree, _ = bulk_load(unit_points, SortTileRecursive(), capacity=50)
        before = tree.store.stats.disk_reads
        leaf_mbr_svg(tree)
        assert tree.store.stats.disk_reads == before
