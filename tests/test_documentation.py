"""Documentation quality gates.

Deliverable (e) requires doc comments on every public item; this test
makes that a checked invariant rather than a hope.  Every module under
``repro`` must have a module docstring, and every public class, function
and method reachable from a module's namespace must carry one too.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MIN_DOC = 10  # characters; filters out "TODO" stubs


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) >= MIN_DOC, (
        f"{module.__name__} lacks a module docstring"
    )


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their source
        yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, obj in _public_members(module):
        if not (inspect.getdoc(obj) or "").strip():
            undocumented.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not callable(member):
                    continue
                # getattr so inspect.getdoc can walk the MRO: overrides of
                # documented abstract methods inherit their contract docs.
                doc = inspect.getdoc(getattr(obj, mname, member))
                if not (doc or "").strip():
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )


def test_public_api_is_exported():
    """Everything in repro.__all__ must resolve."""
    for name in repro.__all__:
        assert hasattr(repro, name), name
