"""Unit tests for the dataset generators."""

import numpy as np
import pytest

from repro.core.geometry import unit_square
from repro.datasets import (
    CFD_QUERY_WINDOW,
    airfoil_like,
    airfoil_points,
    load_rects,
    long_beach_like,
    normalize_points,
    normalize_rects,
    save_rects,
    uniform_points,
    uniform_squares,
    vlsi_like,
)
from repro.core.geometry import GeometryError, RectArray


class TestSyntheticPoints:
    def test_count_and_bounds(self):
        ra = uniform_points(5000, seed=1)
        assert len(ra) == 5000
        assert unit_square().contains_rect(ra.mbr())

    def test_degenerate(self):
        ra = uniform_points(100, seed=1)
        assert (ra.areas() == 0).all()

    def test_deterministic(self):
        assert uniform_points(100, seed=9) == uniform_points(100, seed=9)

    def test_seed_changes_data(self):
        assert uniform_points(100, seed=1) != uniform_points(100, seed=2)

    def test_roughly_uniform(self):
        ra = uniform_points(20_000, seed=3)
        centers = ra.centers()
        # Each quadrant holds about a quarter of the data.
        counts = [
            (((centers[:, 0] > 0.5) == qx)
             & ((centers[:, 1] > 0.5) == qy)).sum()
            for qx in (False, True) for qy in (False, True)
        ]
        assert max(counts) - min(counts) < 0.05 * 20_000

    def test_3d(self):
        assert uniform_points(50, seed=0, ndim=3).ndim == 3

    def test_bad_count(self):
        with pytest.raises(ValueError):
            uniform_points(0)


class TestSyntheticSquares:
    def test_density_zero_is_points(self):
        assert uniform_squares(100, 0.0, seed=5) == uniform_points(
            100, seed=5)

    def test_total_area_tracks_density(self):
        for density in (1.0, 2.5, 5.0):
            ra = uniform_squares(50_000, density, seed=7)
            # Clamping at the boundary loses a little area; allow 15%.
            assert ra.total_area() == pytest.approx(density, rel=0.15)

    def test_bounded_by_unit_square(self):
        ra = uniform_squares(10_000, 5.0, seed=8)
        assert unit_square().contains_rect(ra.mbr())

    def test_shapes_are_squares_away_from_boundary(self):
        ra = uniform_squares(10_000, 1.0, seed=9)
        extents = ra.extents()
        interior = (ra.his < 1.0).all(axis=1)
        assert np.allclose(extents[interior, 0], extents[interior, 1])

    def test_area_spread_is_uniform_0_to_2avg(self):
        count, density = 50_000, 2.0
        ra = uniform_squares(count, density, seed=10)
        interior = (ra.his < 1.0).all(axis=1)
        areas = ra.areas()[interior]
        assert areas.max() <= 2 * density / count * 1.0000001
        assert areas.mean() == pytest.approx(density / count, rel=0.1)

    def test_negative_density_rejected(self):
        with pytest.raises(ValueError):
            uniform_squares(10, -1.0)


class TestLongBeachLike:
    def test_exact_count(self):
        ra = long_beach_like(20_000, seed=4)
        assert len(ra) == 20_000

    def test_default_count_matches_paper(self):
        ra = long_beach_like(seed=0)
        assert len(ra) == 53_145

    def test_normalized_to_unit_square(self):
        ra = long_beach_like(10_000, seed=4)
        mbr = ra.mbr()
        assert unit_square().contains_rect(mbr)
        # Normalisation is tight: the data spans the whole square.
        assert mbr.area() == pytest.approx(1.0, abs=1e-6)

    def test_segments_are_thin(self):
        """TIGER records are street segments: at least one side tiny."""
        ra = long_beach_like(10_000, seed=4)
        min_side = ra.extents().min(axis=1)
        assert np.median(min_side) < 0.01

    def test_segments_are_short(self):
        ra = long_beach_like(10_000, seed=4)
        assert np.median(ra.extents().max(axis=1)) < 0.05

    def test_mildly_skewed_not_extreme(self):
        """A quarter of the space should hold 25-65% of the data — skewed,
        but nothing like the VLSI hotspots."""
        ra = long_beach_like(20_000, seed=4)
        centers = ra.centers()
        denom = len(ra)
        frac = ((centers < 0.5).all(axis=1)).sum() / denom
        assert 0.15 < frac < 0.65

    def test_deterministic(self):
        assert long_beach_like(5_000, seed=3) == long_beach_like(
            5_000, seed=3)


class TestVlsiLike:
    def test_count(self):
        assert len(vlsi_like(30_000, seed=2)) == 30_000

    def test_bounded(self):
        ra = vlsi_like(30_000, seed=2)
        assert unit_square().contains_rect(ra.mbr())

    def test_size_skew_matches_paper(self):
        """Largest rectangle ~40,000x the smallest (paper Section 3)."""
        ra = vlsi_like(100_000, seed=2)
        areas = ra.areas()
        positive = areas[areas > 0]
        ratio = positive.max() / positive.min()
        assert ratio > 1_000

    def test_location_skew_hotspots_and_deserts(self):
        ra = vlsi_like(50_000, seed=2)
        centers = ra.centers()
        grid, _, _ = np.histogram2d(
            centers[:, 0], centers[:, 1], bins=20,
            range=[[0, 1], [0, 1]],
        )
        # Some cells hold thousands, some essentially nothing.
        assert grid.max() > 20 * grid.mean()
        assert (grid < grid.mean() / 10).sum() > 40

    def test_deterministic(self):
        assert vlsi_like(5_000, seed=6) == vlsi_like(5_000, seed=6)

    def test_invalid_size_range(self):
        with pytest.raises(ValueError):
            vlsi_like(100, size_range=0.5)


class TestAirfoilLike:
    def test_count(self):
        assert len(airfoil_like(10_000, seed=1)) == 10_000

    def test_point_data(self):
        ra = airfoil_like(5_000, seed=1)
        assert (ra.areas() == 0).all()

    def test_bounded(self):
        ra = airfoil_like(20_000, seed=1)
        assert unit_square().contains_rect(ra.mbr())

    def test_majority_in_query_window(self):
        """The paper: the black region in the middle holds the majority."""
        pts = airfoil_points(30_000, seed=1)
        w = CFD_QUERY_WINDOW
        inside = (
            (pts >= np.asarray(w.lo)) & (pts <= np.asarray(w.hi))
        ).all(axis=1).mean()
        assert inside > 0.5

    def test_wing_interiors_empty(self):
        from repro.datasets.cfd import _inside_any_element
        pts = airfoil_points(30_000, seed=1)
        assert not _inside_any_element(pts).any()

    def test_density_decays_from_surface(self):
        pts = airfoil_points(30_000, seed=1)
        d = np.linalg.norm(pts - np.array([0.53, 0.5]), axis=1)
        near = ((d > 0.01) & (d < 0.05)).sum()
        far = ((d > 0.30) & (d < 0.34)).sum()
        assert near > 5 * max(far, 1)

    def test_deterministic(self):
        a = airfoil_points(2_000, seed=3)
        b = airfoil_points(2_000, seed=3)
        assert np.array_equal(a, b)


class TestNormalize:
    def test_points_span_unit_cube(self, rng):
        pts = rng.random((100, 2)) * 50 + 10
        norm = normalize_points(pts)
        assert norm.min(axis=0) == pytest.approx([0, 0])
        assert norm.max(axis=0) == pytest.approx([1, 1])

    def test_degenerate_axis(self):
        pts = np.array([[1.0, 5.0], [2.0, 5.0]])
        norm = normalize_points(pts)
        assert (norm[:, 1] == 0).all()

    def test_rects_preserve_relative_geometry(self, small_rects):
        scaled = RectArray(small_rects.los * 7 + 3, small_rects.his * 7 + 3)
        norm = normalize_rects(scaled)
        ratio = norm.areas() / small_rects.areas()
        assert np.allclose(ratio, ratio[0])

    def test_rects_mbr_is_unit(self, small_rects):
        norm = normalize_rects(small_rects)
        assert norm.mbr().area() == pytest.approx(1.0, abs=1e-9)


class TestIo:
    def test_npz_roundtrip(self, tmp_path, small_rects):
        path = tmp_path / "d.npz"
        save_rects(path, small_rects)
        assert load_rects(path) == small_rects

    def test_txt_roundtrip(self, tmp_path, small_rects):
        path = tmp_path / "d.txt"
        save_rects(path, small_rects)
        loaded = load_rects(path)
        assert np.allclose(loaded.los, small_rects.los)
        assert np.allclose(loaded.his, small_rects.his)

    def test_unknown_extension(self, tmp_path, small_rects):
        with pytest.raises(GeometryError):
            save_rects(tmp_path / "d.parquet", small_rects)
        with pytest.raises(GeometryError):
            load_rects(tmp_path / "d.parquet")

    def test_txt_odd_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        np.savetxt(path, np.zeros((3, 3)))
        with pytest.raises(GeometryError):
            load_rects(path)
