"""Unit tests for experiment configuration."""

from repro.datasets.synthetic import PAPER_SIZES
from repro.experiments.config import (
    DEFAULT_CONFIG,
    QUICK_CONFIG,
    ExperimentConfig,
)


def test_default_matches_paper_protocol():
    assert DEFAULT_CONFIG.query_count == 2000
    assert DEFAULT_CONFIG.sizes == PAPER_SIZES
    assert DEFAULT_CONFIG.capacity == 100
    assert DEFAULT_CONFIG.cfd_count == 52_510
    assert DEFAULT_CONFIG.tiger_count == 53_145


def test_quick_is_smaller():
    assert QUICK_CONFIG.query_count < DEFAULT_CONFIG.query_count
    assert max(QUICK_CONFIG.sizes) < max(DEFAULT_CONFIG.sizes)


def test_dataset_seeds_distinct_per_label():
    c = ExperimentConfig()
    assert c.dataset_seed("a") != c.dataset_seed("b")


def test_dataset_and_workload_seeds_disjoint():
    c = ExperimentConfig()
    labels = ["tiger", "vlsi", "cfd", "point-10000"]
    ds = {c.dataset_seed(lb) for lb in labels}
    ws = {c.workload_seed(lb) for lb in labels}
    assert not ds & ws


def test_seed_changes_all_derived_seeds():
    a = ExperimentConfig(seed=0)
    b = ExperimentConfig(seed=1)
    assert a.dataset_seed("x") != b.dataset_seed("x")


def test_scaled_replaces_fields():
    c = DEFAULT_CONFIG.scaled(query_count=10)
    assert c.query_count == 10
    assert c.sizes == DEFAULT_CONFIG.sizes


def test_frozen():
    import pytest

    with pytest.raises(Exception):
        DEFAULT_CONFIG.query_count = 5
