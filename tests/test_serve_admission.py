"""Admission control: bounded in-flight work, FIFO slot handoff, and
typed ``Overloaded`` shedding — unit level and through a live server."""

import asyncio

import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.serve import AdmissionController, Overloaded, QueryClient, QueryServer
from repro.storage import MemoryPageStore


def run(coro):
    """Drive one async test scenario to completion."""
    return asyncio.run(coro)


class TestAdmissionController:
    def test_admits_up_to_max_inflight(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=2, max_queue=4)
            await ctl.acquire()
            await ctl.acquire()
            assert ctl.inflight == 2 and ctl.queued == 0

        run(scenario())

    def test_queues_then_sheds_with_overloaded(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=1, max_queue=1)
            await ctl.acquire()
            waiter = asyncio.ensure_future(ctl.acquire())
            await asyncio.sleep(0)  # let the waiter enqueue
            assert ctl.queued == 1
            with pytest.raises(Overloaded, match="queue limit 1"):
                await ctl.acquire()
            assert ctl.shed_total == 1
            ctl.release()  # hands the slot to the waiter
            await waiter
            assert ctl.inflight == 1 and ctl.queued == 0

        run(scenario())

    def test_handoff_is_fifo(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=1, max_queue=4)
            await ctl.acquire()
            order = []

            async def wait(tag):
                await ctl.acquire()
                order.append(tag)

            tasks = [asyncio.ensure_future(wait(i)) for i in range(3)]
            await asyncio.sleep(0)
            for _ in range(3):
                ctl.release()
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2]

        run(scenario())

    def test_cancelled_waiter_leaves_the_queue(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=1, max_queue=2)
            await ctl.acquire()
            waiter = asyncio.ensure_future(ctl.acquire())
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            assert ctl.queued == 0
            ctl.release()
            assert ctl.inflight == 0  # slot returned, not leaked

        run(scenario())

    def test_unmatched_release_raises(self):
        ctl = AdmissionController()
        with pytest.raises(RuntimeError):
            ctl.release()

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)

    def test_snapshot_counts(self):
        async def scenario():
            ctl = AdmissionController(max_inflight=1, max_queue=0)
            await ctl.acquire()
            with pytest.raises(Overloaded):
                await ctl.acquire()
            snap = ctl.snapshot()
            assert snap["admitted_total"] == 1
            assert snap["shed_total"] == 1
            assert snap["max_queue"] == 0

        run(scenario())


class TestServerSheddingEndToEnd:
    """A saturated server sheds with the typed wire error, then recovers."""

    def test_overload_sheds_and_drains(self, rng):
        rects = RectArray.from_points(rng.random((3_000, 2)))
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=25,
                            store=MemoryPageStore(4096))

        # A search gate so requests genuinely pile up: the first query
        # blocks inside the executor until the test opens the gate.
        import threading
        gate = threading.Event()

        async def scenario():
            server = QueryServer(tree, buffer_pages=64, max_inflight=1,
                                 max_queue=1, default_deadline_s=30.0)
            original = server._run_query_blocking
            first = threading.Event()

            def gated(payload, deadline):
                first.set()
                gate.wait(timeout=10.0)
                return original(payload, deadline)

            server._run_query_blocking = gated
            host, port = await server.start()
            clients = [await QueryClient.connect(host, port)
                       for _ in range(4)]
            try:
                wire = [[0.0, 0.0], [1.0, 1.0]]
                tasks = [asyncio.ensure_future(c.search(wire))
                         for c in clients]
                # 1 runs, 1 queues, the rest shed with a typed error.
                await asyncio.get_running_loop().run_in_executor(
                    None, first.wait, 10.0)
                while server.admission.shed_total < 2:
                    await asyncio.sleep(0.005)
                gate.set()
                responses = await asyncio.gather(*tasks)
                outcomes = sorted(
                    (r.error or "ok") for r in responses)
                assert outcomes.count("ok") == 2
                assert outcomes.count("Overloaded") == 2
                assert server.admission.shed_total == 2

                # After the burst drains, fresh queries are admitted.
                again = await clients[0].search(wire)
                assert again.ok
                health = await clients[0].healthz()
                assert health["admission"]["inflight"] == 0
            finally:
                gate.set()
                for c in clients:
                    await c.aclose()
                await server.aclose()

        run(scenario())
