"""Wire protocol round-trips and validation (``repro.serve.protocol``)."""

import json

import pytest

from repro.core.geometry import Rect
from repro.serve import (
    ERROR_TYPES,
    BadRequest,
    DeadlineExceeded,
    Overloaded,
    Request,
    Response,
    ServeError,
    StoreUnavailable,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    rect_from_wire,
    rect_to_wire,
)


class TestRectWire:
    def test_round_trip(self):
        rect = Rect((0.1, 0.2), (0.3, 0.4))
        assert rect_from_wire(rect_to_wire(rect)) == rect

    @pytest.mark.parametrize("bad", [
        None, 7, [], [[0.0], [1.0], [2.0]], [[0.0, 0.0], [1.0]],
        [[], []], [[0.0], ["x"]], [[1.0], [0.0]],  # inverted interval
    ])
    def test_malformed_rects_are_bad_requests(self, bad):
        with pytest.raises(BadRequest):
            rect_from_wire(bad)


class TestRequestCodec:
    def test_round_trip(self):
        req = Request(op="search", id=9, rect=[[0.0, 0.0], [1.0, 1.0]],
                      deadline_s=0.5)
        out = decode_request(encode_request(req))
        assert out == req

    def test_encoding_is_one_json_line(self):
        line = encode_request(Request(op="ping", id=1))
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        payload = json.loads(line)
        assert "rect" not in payload  # None fields stay off the wire

    @pytest.mark.parametrize("line,fragment", [
        (b"not json\n", "not valid JSON"),
        (b"[1, 2]\n", "JSON object"),
        (b'{"op": "search", "id": "seven"}\n', "id must be an integer"),
        (b'{"op": "search", "id": true}\n', "id must be an integer"),
        (b'{"op": "drop_tables", "id": 1}\n', "unknown op"),
        (b'{"op": "search", "id": 1, "deadline_s": 0}\n', "positive"),
        (b'{"op": "search", "id": 1, "deadline_s": "x"}\n', "positive"),
        (b'{"op": "search", "id": 1, "surprise": 1}\n', "unknown request"),
    ])
    def test_validation(self, line, fragment):
        with pytest.raises(BadRequest, match=fragment):
            decode_request(line)

    def test_bad_request_keeps_parseable_id(self):
        try:
            decode_request(b'{"op": "nope", "id": 42}\n')
        except BadRequest as exc:
            assert exc.request_id == 42
        else:  # pragma: no cover
            pytest.fail("expected BadRequest")


class TestResponseCodec:
    def test_round_trip(self):
        resp = Response(id=3, ok=True, op="search", ids=[1, 2],
                        partial=True, unreachable_subtrees=2,
                        elapsed_s=0.01, count=2)
        out = decode_response(encode_response(resp))
        assert out == resp

    def test_garbage_raises_serve_error(self):
        with pytest.raises(ServeError):
            decode_response(b"ceci n'est pas une response\n")
        with pytest.raises(ServeError):
            decode_response(b'{"id": 1}\n')  # no ok field

    def test_unknown_fields_ignored_for_forward_compat(self):
        resp = decode_response(b'{"id": 1, "ok": true, "op": "ping", '
                               b'"future_field": 9}\n')
        assert resp.ok

    def test_raise_for_error_is_typed(self):
        resp = Response(id=1, ok=False, error="Overloaded", message="shed")
        with pytest.raises(Overloaded, match="shed"):
            resp.raise_for_error()
        ok = Response(id=1, ok=True)
        assert ok.raise_for_error() is ok

    def test_unknown_error_code_falls_back_to_base(self):
        resp = Response(id=1, ok=False, error="FutureCode")
        with pytest.raises(ServeError):
            resp.raise_for_error()


class TestErrorTaxonomy:
    def test_codes_are_wire_names(self):
        for code, exc_type in ERROR_TYPES.items():
            assert exc_type.code == code

    def test_every_typed_error_registered(self):
        for exc_type in (BadRequest, DeadlineExceeded, Overloaded,
                         StoreUnavailable):
            assert ERROR_TYPES[exc_type.code] is exc_type
            assert issubclass(exc_type, ServeError)
