"""Chrome-trace and flamegraph conversion (``repro.obs.traceview``)."""

import json
import time

import pytest

from repro.obs import (
    Tracer,
    chrome_trace_doc,
    chrome_trace_events,
    concat_span_dicts,
    folded_stacks,
    read_spans_jsonl,
    write_chrome_trace,
    write_folded,
    write_trace_jsonl,
)


def _nested_tracer():
    """A tracer with a known a > b > c / a > d shape."""
    tracer = Tracer()
    with tracer.span("a"):
        with tracer.span("b"):
            with tracer.span("c"):
                time.sleep(0.002)
        with tracer.span("d"):
            time.sleep(0.001)
    return tracer


def _dicts(tracer):
    return [s.as_dict() for s in tracer.spans]


class TestChromeTrace:
    def test_complete_events_with_monotonic_timestamps(self):
        events = chrome_trace_events(_dicts(_nested_tracer()))
        assert [e["name"] for e in events] == ["a", "b", "c", "d"]
        assert all(e["ph"] == "X" for e in events)
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert ts[0] == 0  # rebased to the earliest start
        assert all(isinstance(e["ts"], int) and isinstance(e["dur"], int)
                   for e in events)
        assert all(e["dur"] >= 0 for e in events)

    def test_nesting_preserved_as_interval_containment(self):
        events = {e["name"]: e for e in
                  chrome_trace_events(_dicts(_nested_tracer()))}

        def contains(outer, inner):
            return (outer["ts"] <= inner["ts"] and
                    inner["ts"] + inner["dur"] <=
                    outer["ts"] + outer["dur"])

        assert contains(events["a"], events["b"])
        assert contains(events["b"], events["c"])
        assert contains(events["a"], events["d"])
        # Siblings b and d do not overlap.
        assert events["d"]["ts"] >= events["b"]["ts"] + events["b"]["dur"]

    def test_phase_becomes_category_and_labels_become_args(self):
        tracer = Tracer()
        with tracer.span("query.page_decode", page=7):
            pass
        (event,) = chrome_trace_events(_dicts(tracer))
        assert event["cat"] == "decode"
        assert event["args"]["page"] == 7
        assert "cpu_s" in event["args"]

    def test_document_shape_and_empty_input(self):
        doc = chrome_trace_doc([])
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_missing_required_key_is_an_error(self):
        with pytest.raises(ValueError, match="duration_s"):
            chrome_trace_events([{"name": "x", "start": 0.0}])

    def test_written_file_is_valid_trace_json(self, tmp_path):
        path = write_chrome_trace(_dicts(_nested_tracer()),
                                  tmp_path / "t.chrome.json")
        with open(path) as f:
            doc = json.load(f)
        assert len(doc["traceEvents"]) == 4
        assert all(set(e) >= {"name", "cat", "ph", "ts", "dur", "pid",
                              "tid", "args"} for e in doc["traceEvents"])


class TestFoldedStacks:
    def test_paths_reconstruct_the_nesting(self):
        stacks = folded_stacks(_dicts(_nested_tracer()))
        # d is a's child (depth 1), not b's.
        assert set(stacks) == {"a", "a;b", "a;b;c", "a;d"}

    def test_self_times_sum_to_total_wall_time(self):
        tracer = _nested_tracer()
        stacks = folded_stacks(_dicts(tracer))
        total_us = sum(stacks.values())
        (root,) = [s for s in tracer.spans if s.name == "a"]
        assert total_us == pytest.approx(root.duration * 1e6, rel=0.01,
                                         abs=10)

    def test_repeated_paths_accumulate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("loop"):
                time.sleep(0.001)
        stacks = folded_stacks(_dicts(tracer))
        assert set(stacks) == {"loop"}
        assert stacks["loop"] >= 2500  # three ~1ms spans on one line

    def test_written_lines_are_flamegraph_consumable(self, tmp_path):
        path = write_folded(_dicts(_nested_tracer()), tmp_path / "t.folded")
        with open(path) as f:
            lines = f.read().splitlines()
        assert lines
        for line in lines:
            stack_path, value = line.rsplit(" ", 1)
            assert stack_path and value.isdigit()


class TestJsonlRoundTrip:
    def test_written_trace_feeds_both_converters(self, tmp_path):
        tracer = _nested_tracer()
        trace = write_trace_jsonl(tracer, tmp_path / "t.trace.jsonl")
        spans = read_spans_jsonl(trace)
        assert len(spans) == 4
        direct = chrome_trace_events(_dicts(tracer))
        via_file = chrome_trace_events(spans)
        assert via_file == direct
        assert folded_stacks(spans) == folded_stacks(_dicts(tracer))


class TestConcatSpanDicts:
    def test_indices_rebased_across_tracers(self):
        tracers = [_nested_tracer(), _nested_tracer()]
        merged = concat_span_dicts([t.spans for t in tracers])
        indices = [r["index"] for r in merged]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)
        # Stack reconstruction still sees two independent roots.
        stacks = folded_stacks(merged)
        assert "a" in stacks and "a;b;c" in stacks
