"""Striped store under faults and concurrent readers.

Two gaps this file closes (the parallel experiments always ran the
striped store clean and single-threaded): a single faulty disk must
behave like any faulty store — transients retried *at the device* stay
invisible to the stripe's accounting, a breaker on the stripe fails fast
with the typed error — and concurrent readers must see consistent pages
and exact per-disk accounting.
"""

import threading

import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.queries import region_queries
from repro.storage import (
    CircuitBreaker,
    FaultInjectingPageStore,
    FaultPlan,
    MemoryPageStore,
    RetryPolicy,
    StoreUnavailable,
    StripedPageStore,
    TransientIOError,
)

PAGE = 4096
DISKS = 4


def _no_sleep_retry(attempts=4):
    return RetryPolicy(attempts=attempts, backoff_s=0.01, jitter=True,
                       seed=9, sleep=lambda s: None)


def _striped_with_one_faulty_disk(plan, *, retry=None, breaker=None):
    """A 4-disk stripe whose disk 1 (pages 1, 5, 9, ...) injects faults.

    ``retry`` rides on the faulty *device* — retries are a per-disk
    concern, so the stripe's global and per-disk access counts stay
    bit-identical to a clean run.
    """
    disks = [MemoryPageStore(PAGE) for _ in range(DISKS - 1)]
    faulty = FaultInjectingPageStore(MemoryPageStore(PAGE), plan,
                                     retry=retry)
    disks.insert(1, faulty)
    return StripedPageStore(disks, breaker=breaker), faulty


class TestFaultyDisk:
    def test_transients_on_one_disk_retried_to_success(self):
        plan = FaultPlan(seed=4, p_transient_read=0.5)
        store, faulty = _striped_with_one_faulty_disk(
            plan, retry=_no_sleep_retry())
        for i in range(40):
            pid = store.allocate()
            store.write_page(pid, bytes([i]) * PAGE)
        for i in range(40):
            assert store.read_page(i) == bytes([i]) * PAGE
        assert plan.injected["transient_read"] > 0
        assert faulty.retry_count == plan.injected["transient_read"]

    def test_retries_never_move_global_or_per_disk_counts(self):
        plan = FaultPlan(seed=8, p_transient_read=0.6)
        store, faulty = _striped_with_one_faulty_disk(
            plan, retry=_no_sleep_retry())
        for i in range(DISKS * 10):
            pid = store.allocate()
            store.write_page(pid, bytes([i]) * PAGE)
        store.stats.reset()
        store.reset_disk_stats()
        for i in range(DISKS * 10):
            store.read_page(i)
        assert store.stats.disk_reads == DISKS * 10
        # Round-robin: every disk saw exactly its share, retries invisible.
        assert store.per_disk_reads() == [10] * DISKS
        assert faulty.retry_count > 0

    def test_unretried_transient_escapes_typed(self):
        plan = FaultPlan(seed=0, p_transient_read=1.0)
        store, _ = _striped_with_one_faulty_disk(plan)
        for i in range(4):
            pid = store.allocate()
            store.write_page(pid, b"x" * PAGE)
        store.read_page(0)  # healthy disk
        with pytest.raises(TransientIOError):
            store.read_page(1)  # the sick disk

    def test_breaker_trips_on_the_stripe_and_fails_fast(self):
        plan = FaultPlan(seed=0, p_transient_read=1.0,
                         max_transient_per_op=10_000)
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=60.0)
        store, _ = _striped_with_one_faulty_disk(plan, breaker=breaker)
        for i in range(4):
            pid = store.allocate()
            store.write_page(pid, b"x" * PAGE)
        for _ in range(3):
            with pytest.raises(TransientIOError):
                store.read_page(1)
        assert breaker.state == CircuitBreaker.OPEN
        reads_before = store.stats.disk_reads
        with pytest.raises(StoreUnavailable):
            store.read_page(0)  # even healthy disks: the stripe is one store
        assert store.stats.disk_reads == reads_before


class TestConcurrentReaders:
    def test_readers_see_consistent_pages_and_exact_counts(self):
        store = StripedPageStore([MemoryPageStore(PAGE)
                                  for _ in range(DISKS)])
        n_pages = DISKS * 8
        for i in range(n_pages):
            pid = store.allocate()
            store.write_page(pid, bytes([i]) * PAGE)
        store.stats.reset()
        store.reset_disk_stats()

        n_threads, rounds = 8, 25
        errors = []
        barrier = threading.Barrier(n_threads)

        def reader(seed):
            barrier.wait()
            for r in range(rounds):
                pid = (seed * 7 + r * 3) % n_pages
                data = store.read_page(pid)
                if data != bytes([pid]) * PAGE:
                    errors.append((seed, pid))

        threads = [threading.Thread(target=reader, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"torn/mixed reads: {errors[:5]}"
        assert store.stats.disk_reads == n_threads * rounds
        # Per-disk counters partition the global count exactly.
        assert sum(store.per_disk_reads()) == n_threads * rounds

    def test_concurrent_searchers_with_faulty_disk_agree_with_oracle(self,
                                                                     rng):
        rects = RectArray.from_points(rng.random((2_000, 2)))
        plan = FaultPlan(seed=2, p_transient_read=0.25)
        # Concurrent readers interleave their draws from the plan's RNG,
        # so the per-op consecutive-fault bound no longer guarantees any
        # single op's retries see a success; a deep attempt budget makes
        # an escape (0.25^12) practically impossible.
        store, _ = _striped_with_one_faulty_disk(
            plan, retry=_no_sleep_retry(attempts=12))
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=25,
                            store=store)
        oracle_tree, _ = bulk_load(rects, SortTileRecursive(), capacity=25,
                                   store=MemoryPageStore(PAGE))
        oracle = oracle_tree.searcher(256)
        queries = list(region_queries(0.08, 40, seed=6))
        expected = [sorted(int(x) for x in oracle.search(q))
                    for q in queries]

        errors = []

        def worker(offset):
            # Each thread gets its own searcher (buffers are not shared),
            # all over the same faulty striped store.
            searcher = tree.searcher(32)
            for i in range(offset, len(queries), 4):
                got = sorted(int(x) for x in searcher.search(queries[i]))
                if got != expected[i]:
                    errors.append(i)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"queries {errors[:5]} diverged from the oracle"
        assert plan.injected["transient_read"] > 0
