"""Unit tests for paged-tree persistence (save_meta / open)."""

import json

import pytest

from repro.core.geometry import GeometryError, Rect, RectArray
from repro.core.packing import SortTileRecursive
from repro.rtree.bulk import bulk_load
from repro.rtree.paged import PagedRTree
from repro.rtree.validate import validate_paged
from repro.storage.page import required_page_size
from repro.storage.store import FilePageStore


@pytest.fixture
def saved_tree(tmp_path, rng):
    rects = RectArray.from_points(rng.random((1_000, 2)))
    page_size = required_page_size(20, 2)
    store = FilePageStore(tmp_path / "t.pages", page_size)
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=20, store=store)
    tree.save_meta(tmp_path / "t.meta.json")
    store.close()
    return tmp_path, rects


def test_reopen_roundtrip(saved_tree):
    tmp_path, rects = saved_tree
    page_size = required_page_size(20, 2)
    with FilePageStore(tmp_path / "t.pages", page_size) as store:
        tree = PagedRTree.open(store, tmp_path / "t.meta.json")
        assert len(tree) == 1_000
        assert tree.capacity == 20
        validate_paged(tree, range(1_000))
        q = Rect((0.3, 0.3), (0.6, 0.6))
        got = tree.searcher(5).search(q)
        assert got.size == rects.intersects_rect(q).sum()


def test_meta_is_readable_json(saved_tree):
    tmp_path, _ = saved_tree
    meta = json.loads((tmp_path / "t.meta.json").read_text())
    assert meta["format"] == "repro-rtree-meta-v1"
    assert meta["size"] == 1_000
    assert meta["page_size"] == required_page_size(20, 2)


def test_page_size_mismatch_rejected(saved_tree):
    tmp_path, _ = saved_tree
    other = FilePageStore(tmp_path / "other.pages", 512)
    with pytest.raises(GeometryError):
        PagedRTree.open(other, tmp_path / "t.meta.json")
    other.close()


def test_bad_format_rejected(tmp_path):
    (tmp_path / "bad.json").write_text(json.dumps({"format": "nope"}))
    store = FilePageStore(tmp_path / "x.pages",
                          required_page_size(20, 2))
    with pytest.raises(GeometryError):
        PagedRTree.open(store, tmp_path / "bad.json")
    store.close()
