"""Circuit breaker: the three-state machine, store integration (fail fast
with ``StoreUnavailable`` before counting), and breaker-driven degraded
serving with recovery."""

import asyncio

import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.serve import QueryServer, Request
from repro.storage import (
    CircuitBreaker,
    FaultInjectingPageStore,
    FaultPlan,
    MemoryPageStore,
    StoreUnavailable,
    TransientIOError,
)

PAGE = 4096


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestStateMachine:
    def _breaker(self, clock, threshold=3):
        return CircuitBreaker(failure_threshold=threshold,
                              reset_timeout_s=1.0, half_open_successes=2,
                              clock=clock)

    def test_trips_on_consecutive_failures_only(self):
        breaker = self._breaker(FakeClock())
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()  # resets the streak
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1

    def test_open_refuses_then_half_opens_after_timeout(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert breaker.fast_fails == 1
        clock.advance(1.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # probes may pass

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        assert not breaker.allow()  # timer restarted

    def test_enough_probe_successes_close(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        breaker.record_success()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_snapshot_is_jsonable(self):
        snap = self._breaker(FakeClock()).snapshot()
        assert snap["state"] == "closed"
        assert set(snap) >= {"trips", "fast_fails", "failures_total"}

    def test_rejects_bad_parameters(self):
        for kwargs in ({"failure_threshold": 0}, {"reset_timeout_s": 0.0},
                       {"half_open_successes": 0}):
            with pytest.raises(ValueError):
                CircuitBreaker(**kwargs)


class TestStoreIntegration:
    def _faulty_store(self, clock, p_read=1.0, threshold=3):
        breaker = CircuitBreaker(failure_threshold=threshold,
                                 reset_timeout_s=1.0, clock=clock)
        inner = MemoryPageStore(PAGE)
        store = FaultInjectingPageStore(
            inner, FaultPlan(seed=1, p_transient_read=p_read,
                             max_transient_per_op=10_000),
            breaker=breaker,
        )
        pid = store.allocate()
        plan_p = store.plan.p_transient_read
        store.plan.p_transient_read = 0.0  # write cleanly
        store.write_page(pid, b"x" * PAGE)
        store.plan.p_transient_read = plan_p
        return store, breaker, pid

    def test_sustained_failures_trip_and_fail_fast(self):
        clock = FakeClock()
        store, breaker, pid = self._faulty_store(clock)
        for _ in range(3):
            with pytest.raises(TransientIOError):
                store.read_page(pid)
        assert breaker.state == CircuitBreaker.OPEN
        # While open the device is not even touched: the read fails fast
        # with the typed unavailability error and counts nothing.
        reads_before = store.stats.disk_reads
        with pytest.raises(StoreUnavailable, match="circuit breaker"):
            store.read_page(pid)
        assert store.stats.disk_reads == reads_before
        assert breaker.fast_fails == 1

    def test_recovers_through_half_open_probes(self):
        clock = FakeClock()
        store, breaker, pid = self._faulty_store(clock)
        for _ in range(3):
            with pytest.raises(TransientIOError):
                store.read_page(pid)
        clock.advance(1.0)
        store.plan.p_transient_read = 0.0  # the device healed
        assert store.read_page(pid) == b"x" * PAGE  # probe 1
        assert store.read_page(pid) == b"x" * PAGE  # probe 2 -> closed
        assert breaker.state == CircuitBreaker.CLOSED

    def test_successes_keep_breaker_closed(self):
        clock = FakeClock()
        store, breaker, pid = self._faulty_store(clock, p_read=0.0)
        for _ in range(20):
            store.read_page(pid)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.successes_total >= 20


class TestServerDegradesWhileOpen:
    """With the breaker open, the server keeps answering from cache:
    responses are flagged partial (never silently wrong), readyz asks to
    be drained, and recovery closes the loop."""

    def test_degraded_reads_then_recovery(self, rng):
        clock = FakeClock()
        rects = RectArray.from_points(rng.random((3_000, 2)))
        inner = MemoryPageStore(PAGE)
        plan = FaultPlan(seed=0)
        store = FaultInjectingPageStore(inner, plan)
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=25,
                            store=store)
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0,
                                 clock=clock)

        async def scenario():
            server = QueryServer(tree, buffer_pages=256, breaker=breaker,
                                 clock=clock, default_deadline_s=1_000.0)
            wire = [[0.0, 0.0], [1.0, 1.0]]

            async def search(req_id):
                return await server.handle_request(
                    Request(op="search", id=req_id, rect=wire))

            clean = await search(1)
            assert clean.ok and not clean.partial
            oracle = clean.ids

            # The device goes dark: a cold root read fails per query (a
            # failed parent hides its children), so three degraded-but-
            # honest responses accumulate the failures that trip the
            # breaker.
            plan.p_transient_read = 1.0
            plan.max_transient_per_op = 10_000
            server.searcher.buffer.clear()
            for req_id in (2, 3, 4):
                degraded = await search(req_id)
                assert degraded.ok and degraded.partial
                assert degraded.unreachable_subtrees > 0
                assert set(degraded.ids) <= set(oracle)  # never garbage
            assert breaker.state == CircuitBreaker.OPEN

            # While open, reads fail fast -> still partial, still honest.
            fast = await search(5)
            assert fast.ok and fast.partial
            assert breaker.fast_fails > 0
            ready = await server.handle_request(Request(op="readyz", id=6))
            assert ready.data["ready"] is False
            assert "breaker" in ready.data["reason"]

            # The device heals; after the reset timeout, probes succeed,
            # the breaker closes, and answers are exact again.
            plan.p_transient_read = 0.0
            clock.advance(1.0)
            healed = await search(7)
            assert healed.ok and not healed.partial
            assert healed.ids == oracle
            assert breaker.state == CircuitBreaker.CLOSED
            ready = await server.handle_request(Request(op="readyz", id=8))
            assert ready.data["ready"] is True
            await server.aclose()

        asyncio.run(scenario())
