"""End-to-end server tests over real sockets: oracle-exact answers,
degraded reads over corrupted durable files, fsck-quarantine startup, and
the health endpoints."""

import asyncio

import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.core.geometry import Rect
from repro.cli import main as cli_main
from repro.fsck import fsck, read_quarantine, write_quarantine
from repro.queries import point_queries, region_queries
from repro.serve import QueryClient, QueryServer, Request
from repro.storage import FilePageStore, MemoryPageStore
from repro.storage.faults import corrupt_pages
from repro.storage.integrity import TRAILER_SIZE
from repro.storage.page import required_page_size

CAPACITY = 25
NDIM = 2


def _build(rng, n=2_000, store=None, capacity=CAPACITY):
    rects = RectArray.from_points(rng.random((n, NDIM)))
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=capacity,
                        store=store or MemoryPageStore(4096))
    return rects, tree


def _durable_store(tmp_path, name="tree.pages", capacity=CAPACITY):
    page_size = required_page_size(capacity, NDIM) + TRAILER_SIZE
    return FilePageStore(tmp_path / name, page_size,
                         checksums=True, journal=True)


def run(coro):
    """Drive one async test scenario to completion."""
    return asyncio.run(coro)


class TestServedAnswersMatchOracle:
    def test_search_point_count_over_sockets(self, rng):
        rects, tree = _build(rng)
        oracle = tree.searcher(256)
        regions = region_queries(0.05, 40, seed=9)
        points = point_queries(40, seed=10)

        async def scenario():
            async with QueryServer(tree, buffer_pages=64) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    assert (await client.ping())["version"] == 1
                    for q in regions:
                        resp = (await client.search(q)).raise_for_error()
                        expected = sorted(int(x) for x in oracle.search(q))
                        assert resp.ids == expected
                        assert resp.count == len(expected)
                        assert not resp.partial
                        counted = (await client.count(q)).raise_for_error()
                        assert counted.count == len(expected)
                        assert counted.ids is None  # count keeps ids off the wire
                    for q in points:
                        resp = (await client.point(q.lo)).raise_for_error()
                        expected = sorted(int(x)
                                          for x in oracle.point_query(q.lo))
                        assert resp.ids == expected

        run(scenario())

    def test_many_clients_interleave(self, rng):
        rects, tree = _build(rng)
        oracle = tree.searcher(256)
        queries = list(region_queries(0.1, 30, seed=3))

        async def one_client(host, port, my_queries):
            async with await QueryClient.connect(host, port) as client:
                out = []
                for q in my_queries:
                    resp = (await client.search(q)).raise_for_error()
                    out.append((q, resp.ids))
                return out

        async def scenario():
            async with QueryServer(tree, buffer_pages=64) as server:
                host, port = server.address
                results = await asyncio.gather(*[
                    one_client(host, port, queries[i::5]) for i in range(5)
                ])
            for batch in results:
                for q, ids in batch:
                    assert ids == sorted(int(x) for x in oracle.search(q))

        run(scenario())

    def test_malformed_lines_get_typed_errors_and_session_survives(self, rng):
        _, tree = _build(rng, n=500)

        async def scenario():
            async with QueryServer(tree) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                writer.write(b'{"op": "explode", "id": 3}\n')
                writer.write(b'{"op": "search", "id": 4, '
                             b'"rect": [[0.1, 0.1], [0.2, 0.2]]}\n')
                await writer.drain()
                import json
                first = json.loads(await reader.readline())
                second = json.loads(await reader.readline())
                third = json.loads(await reader.readline())
                assert first["ok"] is False
                assert first["error"] == "BadRequest"
                assert second["error"] == "BadRequest"
                assert second["id"] == 3  # parseable id is echoed back
                assert third["ok"] is True and third["id"] == 4
                writer.close()
                await writer.wait_closed()

        run(scenario())


class TestDegradedReadsOverCorruptFile:
    def test_corrupt_leaf_served_partial_and_quarantined(self, tmp_path, rng):
        store = _durable_store(tmp_path)
        rects, tree = _build(rng, store=store)
        leaf = tree.level_pages(0)[0]
        clean = sorted(int(x) for x in
                       tree.searcher(256).search(Rect((0.0,) * 2, (1.0,) * 2)))
        corrupt_pages(store, [(leaf, store.page_size * 4 + 3)])

        async def scenario():
            async with QueryServer(tree, buffer_pages=64) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    wide = [[0.0, 0.0], [1.0, 1.0]]
                    resp = (await client.search(wide)).raise_for_error()
                    assert resp.partial
                    assert resp.unreachable_subtrees == 1
                    assert set(resp.ids) < set(clean)  # strict subset
                    # The checksum failure put the page in the runtime
                    # quarantine: the next query skips it with no new I/O
                    # error, still honestly partial.
                    assert server.quarantine == {leaf}
                    failures = store.checksum_failures
                    again = (await client.search(wide)).raise_for_error()
                    assert again.partial
                    assert again.ids == resp.ids
                    assert store.checksum_failures == failures
                    health = await client.healthz()
                    assert health["quarantine"]["pages"] == 1
                    assert health["quarantine"]["added_at_runtime"] == 1
                    assert health["store"]["checksum_failures"] >= 1
                    # A query that never touches the bad subtree is exact.
                    narrow = (await client.search(
                        [[0.9, 0.9], [0.91, 0.91]])).raise_for_error()
                    assert isinstance(narrow.partial, bool)

        run(scenario())
        store.close()

    def test_strict_server_fails_queries_instead(self, tmp_path, rng):
        store = _durable_store(tmp_path)
        _, tree = _build(rng, store=store)
        leaf = tree.level_pages(0)[0]
        corrupt_pages(store, [(leaf, store.page_size * 4 + 3)])

        async def scenario():
            async with QueryServer(tree, buffer_pages=64,
                                   degraded=False) as server:
                resp = await server.handle_request(Request(
                    op="search", id=1, rect=[[0.0, 0.0], [1.0, 1.0]]))
                assert resp.ok is False
                assert resp.error == "StoreUnavailable"

        run(scenario())
        store.close()


class TestFsckQuarantineFeedsTheServer:
    def test_fsck_writes_quarantine_server_consumes_it(self, tmp_path, rng):
        store = _durable_store(tmp_path)
        rects, tree = _build(rng, store=store)
        leaves = tree.level_pages(0)[:2]
        meta = {"root": tree.root_page, "height": tree.height}
        for leaf in leaves:
            corrupt_pages(store, [(leaf, store.page_size * 4 + 1)])
        store.close()

        tree_path = tmp_path / "tree.pages"
        qpath = tmp_path / "tree.quarantine.json"
        exit_code = cli_main(["fsck", str(tree_path),
                              "--quarantine", str(qpath), "--no-manifest"])
        assert exit_code == 1  # corruption found
        quarantined = read_quarantine(qpath)
        assert quarantined == set(leaves)

        async def scenario():
            reopened = FilePageStore.open_existing(tree_path)
            from repro.rtree.paged import PagedRTree
            served = PagedRTree.from_store(reopened)
            assert served.root_page == meta["root"]
            async with QueryServer(served, buffer_pages=64,
                                   quarantine=quarantined) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    wide = [[0.0, 0.0], [1.0, 1.0]]
                    resp = (await client.search(wide)).raise_for_error()
                    assert resp.partial
                    assert resp.unreachable_subtrees == len(leaves)
                    # Quarantined pages are skipped *without I/O*: no
                    # checksum failures were even provoked.
                    assert reopened.checksum_failures == 0
            reopened.close()

        run(scenario())

    def test_clean_fsck_writes_empty_quarantine(self, tmp_path, rng):
        store = _durable_store(tmp_path)
        _build(rng, n=400, store=store)
        store.close()
        qpath = tmp_path / "clean.quarantine.json"
        exit_code = cli_main(["fsck", str(tmp_path / "tree.pages"),
                              "--quarantine", str(qpath), "--no-manifest"])
        assert exit_code == 0
        assert read_quarantine(qpath) == set()

    def test_read_quarantine_rejects_foreign_files(self, tmp_path):
        bogus = tmp_path / "not-quarantine.json"
        bogus.write_text('{"format": "something-else", "bad_pages": [1]}')
        with pytest.raises(ValueError, match="repro-quarantine-v1"):
            read_quarantine(bogus)
        report_like = tmp_path / "list.json"
        report_like.write_text('[1, 2, 3]')
        with pytest.raises(ValueError):
            read_quarantine(report_like)

    def test_quarantine_round_trip_helpers(self, tmp_path, rng):
        store = _durable_store(tmp_path)
        _build(rng, n=400, store=store)
        pid = 5
        corrupt_pages(store, [(pid, store.page_size * 4 + 2)])
        store.close()
        report = fsck(tmp_path / "tree.pages")
        assert report.bad_pages == [pid]
        assert report.as_dict()["bad_pages"] == [pid]
        path = write_quarantine(report, tmp_path / "q.json")
        assert read_quarantine(path) == {pid}


class TestHealthEndpoints:
    def test_payload_content(self, rng):
        _, tree = _build(rng, n=800)

        async def scenario():
            async with QueryServer(tree, buffer_pages=32) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    for q in region_queries(0.05, 10, seed=1):
                        (await client.search(q)).raise_for_error()
                    health = await client.healthz()
                    assert health["ok"] is True
                    assert health["tree"]["size"] == len(tree)
                    assert health["breaker"]["state"] == "closed"
                    assert health["requests_total"] >= 10
                    assert health["latency_s"]["window"] >= 10
                    assert health["latency_s"]["p99"] >= health["latency_s"]["p50"]
                    assert health["store"]["recoveries"] == 0
                    ready = await client.readyz()
                    assert ready["ready"] is True
                    assert ready["journal"]["recovered"] is False
                    stats = await client.stats()
                    assert stats["ready"] is True
                    assert stats["admission"]["admitted_total"] >= 10
                    # Everything must be JSON-able end-to-end (it just
                    # crossed a socket), and sessions tracked.
                    assert health["sessions"] == 1

        run(scenario())

    def test_slo_target_reported(self, rng):
        from repro.obs import SloTarget
        _, tree = _build(rng, n=500)

        async def scenario():
            server = QueryServer(tree, slo=SloTarget(p99_s=1e-12))
            for i in range(5):
                await server.handle_request(Request(
                    op="search", id=i + 1,
                    rect=[[0.1, 0.1], [0.2, 0.2]]))
            resp = await server.handle_request(Request(op="healthz", id=9))
            slo = resp.data["slo"]
            assert slo["ok"] is False  # nothing beats a picosecond target
            assert slo["violations"]
            await server.aclose()

        run(scenario())


class TestStatsSnapshotAndShutdownManifest:
    def test_snapshot_matches_the_on_wire_stats_payload(self, rng):
        _, tree = _build(rng, n=500)

        async def scenario():
            server = QueryServer(tree)
            for i in range(3):
                await server.handle_request(Request(
                    op="search", id=i + 1,
                    rect=[[0.1, 0.1], [0.2, 0.2]]))
            resp = await server.handle_request(Request(op="stats", id=9))
            snapshot = server.stats_snapshot()
            # The off-protocol snapshot is the same payload shutdown
            # files into the run manifest.
            assert snapshot.keys() == resp.data.keys()
            assert snapshot["requests_total"] >= 3
            assert snapshot["ready"] is True
            await server.aclose()

        run(scenario())

    def test_graceful_serve_shutdown_writes_a_run_manifest(
            self, rng, tmp_path, monkeypatch, capsys):
        import json

        from repro.serve import server as server_mod

        store = _durable_store(tmp_path)
        _build(rng, n=400, store=store)
        store.close()
        run_dir = tmp_path / "runs"

        async def _interrupted(self):
            raise KeyboardInterrupt

        monkeypatch.setattr(server_mod.QueryServer, "serve_forever",
                            _interrupted)
        code = cli_main(["serve", str(tmp_path / "tree.pages"),
                         "--port", "0", "--run-dir", str(run_dir)])
        capsys.readouterr()
        assert code == 0
        (manifest_path,) = run_dir.glob("serve-*.json")
        with open(manifest_path) as f:
            manifest = json.load(f)
        snapshot = manifest["extra"]["serve"]
        assert snapshot["ready"] is True
        assert "admission" in snapshot and "breaker" in snapshot
