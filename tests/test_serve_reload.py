"""Zero-downtime generation cutover: the server's ``reload`` admin op.

The contract under test: a reload either *fully* replaces the serving
generation with an fsck-verified durable file, or is rejected with a
typed ``ReloadRejected`` and the old generation keeps serving untouched.
There is no third outcome, and queries in flight during the swap never
fail or silently mix generations.
"""

import asyncio

import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.core.geometry import Rect
from repro.queries import region_queries
from repro.rtree.paged import PagedRTree
from repro.serve import QueryClient, QueryServer, ReloadRejected, Request
from repro.storage import FilePageStore
from repro.storage.faults import corrupt_pages
from repro.storage.integrity import TRAILER_SIZE
from repro.storage.page import required_page_size

CAPACITY = 25
NDIM = 2


def run(coro):
    return asyncio.run(coro)


def _durable_tree(tmp_path, rng, name, n=1500, offset=0.0):
    """Build a committed durable tree file; returns (rects, tree, path)."""
    rects = RectArray.from_points(rng.random((n, NDIM)) + offset)
    page_size = required_page_size(CAPACITY, NDIM) + TRAILER_SIZE
    path = tmp_path / name
    store = FilePageStore(path, page_size, checksums=True, journal=True)
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
                        store=store)
    return rects, tree, path


def _query_around(point, pad=0.02):
    return Rect(tuple(x - pad for x in point), tuple(x + pad for x in point))


class TestReloadRejections:
    def test_disabled_by_default(self, tmp_path, rng):
        _, tree, path = _durable_tree(tmp_path, rng, "gen1.rt")

        async def scenario():
            async with QueryServer(tree) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    resp = await client.request(
                        Request(op="reload", path=str(path)))
                    assert not resp.ok
                    assert resp.error == "ReloadRejected"
                    assert "disabled" in resp.message
                    assert (await client.healthz())["generation"][
                        "reload_enabled"] is False

        run(scenario())

    def test_missing_path_and_missing_file(self, tmp_path, rng):
        _, tree, _ = _durable_tree(tmp_path, rng, "gen1.rt")

        async def scenario():
            async with QueryServer(tree, allow_reload=True) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    resp = await client.request(Request(op="reload"))
                    assert not resp.ok and resp.error == "BadRequest"
                    with pytest.raises(ReloadRejected):
                        await client.reload(str(tmp_path / "nope.rt"))
                    health = await client.healthz()
                    assert health["generation"]["active"] == 1
                    assert health["generation"]["reloads"] == 0

        run(scenario())

    def test_rejects_non_durable_file(self, tmp_path, rng):
        _, tree, _ = _durable_tree(tmp_path, rng, "gen1.rt")
        plain = tmp_path / "plain.pages"
        store = FilePageStore(plain, required_page_size(CAPACITY, NDIM))
        bulk_load(RectArray.from_points(rng.random((200, NDIM))),
                  SortTileRecursive(), capacity=CAPACITY, store=store)
        store.close()

        async def scenario():
            async with QueryServer(tree, allow_reload=True) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    with pytest.raises(ReloadRejected, match="superblock"):
                        await client.reload(str(plain))
                    assert (await client.healthz())["generation"][
                        "active"] == 1

        run(scenario())

    def test_rejects_corrupt_file_and_keeps_serving(self, tmp_path, rng):
        rects, tree, _ = _durable_tree(tmp_path, rng, "gen1.rt")
        _, tree2, path2 = _durable_tree(tmp_path, rng, "gen2.rt")
        leaf = tree2.level_pages(0)[0]
        tree2.store.close()
        bad = FilePageStore.open_existing(path2)
        corrupt_pages(bad, [(leaf, bad.page_size * 4 + 1)])
        bad.close(flush=False)

        oracle = tree.searcher(256)
        query = _query_around(tuple(rects.los[0]))
        expected = sorted(int(x) for x in oracle.search(query))

        async def scenario():
            async with QueryServer(tree, allow_reload=True) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    with pytest.raises(ReloadRejected, match="bad page"):
                        await client.reload(str(path2))
                    # Old generation untouched and still correct.
                    resp = (await client.search(query)).raise_for_error()
                    assert resp.ids == expected
                    health = await client.healthz()
                    assert health["generation"]["active"] == 1
                    assert health["generation"]["reloads"] == 0

        run(scenario())


class TestReloadCutover:
    def test_swap_changes_answers_and_generation(self, tmp_path, rng):
        rects1, tree, _ = _durable_tree(tmp_path, rng, "gen1.rt")
        rects2, tree2, path2 = _durable_tree(tmp_path, rng, "gen2.rt",
                                             n=900, offset=10.0)
        oracle2 = tree2.searcher(256)
        new_q = _query_around(tuple(rects2.los[0]))
        old_q = _query_around(tuple(rects1.los[0]))
        expected_new = sorted(int(x) for x in oracle2.search(new_q))
        expected_old = sorted(int(x) for x in oracle2.search(old_q))
        tree2.store.close()

        async def scenario():
            async with QueryServer(tree, allow_reload=True,
                                   quarantine=[3]) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    data = await client.reload(str(path2))
                    assert data["generation"] == 2
                    assert data["tree"]["size"] == 900
                    assert data["fsck"]["clean"] is True

                    # The server now answers from the new file ...
                    resp = (await client.search(new_q)).raise_for_error()
                    assert resp.ids == expected_new
                    # ... including for regions only the old data had.
                    old = (await client.search(old_q)).raise_for_error()
                    assert old.ids == expected_old

                    health = await client.healthz()
                    assert health["generation"]["active"] == 2
                    assert health["generation"]["reloads"] == 1
                    assert health["generation"]["path"] == str(path2)
                # The stale generation's quarantine meant page ids in the
                # *old* file; it must not survive the swap.
                assert server.quarantine == set()
                assert server.generation == 2

        run(scenario())

    def test_mid_traffic_reload_loses_no_queries(self, tmp_path, rng):
        """In-flight and follow-on queries all succeed across the swap,
        and every answer matches one of the two generations' oracles."""
        rects, tree, path1 = _durable_tree(tmp_path, rng, "gen1.rt",
                                           n=2000)
        rects2, tree2, path2 = _durable_tree(tmp_path, rng, "gen2.rt",
                                             n=2000, offset=0.25)
        queries = list(region_queries(0.06, 120, seed=41))
        oracle1 = tree.searcher(256)
        oracle2 = tree2.searcher(256)
        expected1 = [frozenset(int(x) for x in oracle1.search(q))
                     for q in queries]
        expected2 = [frozenset(int(x) for x in oracle2.search(q))
                     for q in queries]
        tree2.store.close()
        failures = []
        wrong = []

        async def querier(host, port, index):
            async with await QueryClient.connect(host, port) as client:
                for qi in range(index, len(queries), 4):
                    resp = await client.search(queries[qi])
                    if not resp.ok:
                        failures.append(resp.__dict__)
                        continue
                    got = frozenset(resp.ids)
                    if got not in (expected1[qi], expected2[qi]):
                        wrong.append({"query": qi, "got": sorted(got)})
                    await asyncio.sleep(0)

        async def reloader(host, port):
            async with await QueryClient.connect(host, port) as client:
                # Flip generations repeatedly while traffic flows.
                for target in (path2, path1, path2):
                    await asyncio.sleep(0.01)
                    data = await client.reload(str(target))
                    assert data["fsck"]["clean"] is True

        async def scenario():
            async with QueryServer(tree, allow_reload=True,
                                   max_inflight=8,
                                   default_deadline_s=30.0) as server:
                host, port = server.address
                await asyncio.gather(
                    *[querier(host, port, i) for i in range(4)],
                    reloader(host, port),
                )
                return server

        server = run(scenario())
        assert failures == []
        assert wrong == []
        assert server.generation == 4  # three successful swaps
        assert server.reloads_total == 3

    def test_reload_same_file_is_a_fresh_generation(self, tmp_path, rng):
        _, tree, path = _durable_tree(tmp_path, rng, "gen1.rt")
        tree.store.close()
        serving = PagedRTree.from_store(FilePageStore.open_existing(path))

        async def scenario():
            async with QueryServer(serving, allow_reload=True) as server:
                host, port = server.address
                async with await QueryClient.connect(host, port) as client:
                    data = await client.reload(str(path))
                    assert data["generation"] == 2
                    ping = await client.ping()
                    assert ping["version"] == 1

        run(scenario())
