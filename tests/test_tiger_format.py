"""Unit tests for the TIGER/Line RT1 parser/writer."""

import numpy as np
import pytest

from repro.core.geometry import GeometryError, RectArray
from repro.datasets import long_beach_like
from repro.datasets.tiger import (
    RT1_RECORD_LENGTH,
    TigerFormatError,
    read_rt1,
    write_rt1,
)


@pytest.fixture
def segments(rng):
    """Geographic-looking segments around Long Beach, CA."""
    lo = np.column_stack([
        rng.uniform(-118.25, -118.06, 200),
        rng.uniform(33.75, 33.88, 200),
    ])
    hi = lo + rng.uniform(0.0001, 0.004, (200, 2))
    return RectArray(lo, hi)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path, segments):
        path = tmp_path / "TGR06037.RT1"
        count = write_rt1(path, segments)
        assert count == 200
        back = read_rt1(path)
        assert len(back) == 200
        # Six implied decimals => 1e-6 degree resolution.
        assert np.allclose(back.los, segments.los, atol=1.1e-6)
        assert np.allclose(back.his, segments.his, atol=1.1e-6)

    def test_record_length_exact(self, tmp_path, segments):
        path = tmp_path / "t.rt1"
        write_rt1(path, segments)
        for line in path.read_text(encoding="latin-1").splitlines():
            assert len(line) == RT1_RECORD_LENGTH
            assert line[0] == "1"

    def test_synthetic_long_beach_round_trips(self, tmp_path):
        """The stand-in exports to real RT1 (scaled into degree ranges)."""
        rects = long_beach_like(2_000, seed=1)
        # Map x to Long Beach longitudes, y to its latitudes (the latitude
        # field is only 9 characters, so |lat| must stay < 100).
        shift = np.array([-118.3, 33.7])
        geo = RectArray(rects.los * 0.2 + shift, rects.his * 0.2 + shift)
        path = tmp_path / "synthetic.rt1"
        write_rt1(path, geo)
        back = read_rt1(path)
        assert len(back) == 2_000

    def test_negative_and_positive_coordinates(self, tmp_path):
        ra = RectArray(np.array([[-118.5, 33.7], [0.0001, -0.0002]]),
                       np.array([[-118.4, 33.8], [0.0002, -0.0001]]))
        path = tmp_path / "n.rt1"
        write_rt1(path, ra)
        back = read_rt1(path)
        assert np.allclose(back.los, ra.los, atol=1.1e-6)


class TestReaderRobustness:
    def test_skips_other_record_types(self, tmp_path, segments):
        path = tmp_path / "mixed.rt1"
        write_rt1(path, segments[0:5])
        with open(path, "a", encoding="latin-1") as f:
            f.write("2" + " " * (RT1_RECORD_LENGTH - 1) + "\n")
        assert len(read_rt1(path)) == 5

    def test_short_record_strict(self, tmp_path):
        path = tmp_path / "short.rt1"
        path.write_text("1 too short\n")
        with pytest.raises(TigerFormatError):
            read_rt1(path)

    def test_short_record_lenient(self, tmp_path, segments):
        path = tmp_path / "mixed2.rt1"
        write_rt1(path, segments[0:3])
        with open(path, "a", encoding="latin-1") as f:
            f.write("1 truncated record\n")
        assert len(read_rt1(path, strict=False)) == 3

    def test_blank_coordinates_strict(self, tmp_path, segments):
        path = tmp_path / "blank.rt1"
        write_rt1(path, segments[0:1])
        text = path.read_text(encoding="latin-1")
        corrupted = text[:190] + " " * 10 + text[200:]
        path.write_text(corrupted, encoding="latin-1")
        with pytest.raises(TigerFormatError):
            read_rt1(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.rt1"
        path.write_text("")
        with pytest.raises(TigerFormatError):
            read_rt1(path)


class TestWriterValidation:
    def test_zero_segments_rejected(self, tmp_path):
        empty = RectArray(np.empty((0, 2)), np.empty((0, 2)))
        with pytest.raises(GeometryError):
            write_rt1(tmp_path / "x.rt1", empty)

    def test_3d_rejected(self, tmp_path, rng):
        ra = RectArray.from_points(rng.random((3, 3)))
        with pytest.raises(GeometryError):
            write_rt1(tmp_path / "x.rt1", ra)

    def test_out_of_range_coordinate_rejected(self, tmp_path):
        ra = RectArray(np.array([[1e5, 0.0]]), np.array([[1e5, 1.0]]))
        with pytest.raises(TigerFormatError):
            write_rt1(tmp_path / "x.rt1", ra)


class TestEndToEnd:
    def test_rt1_through_the_paper_pipeline(self, tmp_path, segments):
        """RT1 file -> normalise -> pack -> query, as a user would."""
        from repro import SortTileRecursive, bulk_load, Rect
        from repro.datasets import normalize_rects

        path = tmp_path / "county.rt1"
        write_rt1(path, segments)
        rects = normalize_rects(read_rt1(path))
        tree, _ = bulk_load(rects, SortTileRecursive(), capacity=20)
        hits = tree.searcher(5).search(Rect((0.0, 0.0), (1.0, 1.0)))
        assert hits.size == len(segments)
