"""Unit tests for the CLI."""

import pytest

from repro.cli import EXPERIMENTS, main


def run_cli(capsys, *args):
    code = main(list(args))
    captured = capsys.readouterr()
    return code, captured.out


def test_list(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    for name in ("table1", "table9", "fig12", "fig234"):
        assert name in out


def test_experiment_registry_covers_every_table_and_figure():
    tables = {f"table{i}" for i in range(1, 11)}
    figures = {"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
               "fig234", "fig56"}
    assert tables | figures <= set(EXPERIMENTS)


def test_table1_quick(capsys):
    code, out = run_cli(capsys, "table1", "--quick")
    assert code == 0
    assert "Percent of R-Tree Held By Buffer" in out
    assert "101" in out


def test_table6_quick_csv(capsys):
    code, out = run_cli(capsys, "table6", "--quick", "--queries", "50")
    assert code == 0
    assert "leaf perimeter" in out


def test_csv_mode(capsys):
    code, out = run_cli(capsys, "table1", "--quick", "--csv")
    assert code == 0
    assert out.splitlines()[0].startswith("Data Size,")


def test_figure_rendered_as_series_table(capsys):
    code, out = run_cli(capsys, "fig10", "--quick", "--queries", "50")
    assert code == 0
    assert "series" in out
    assert "STR" in out and "HS" in out


def test_out_dir_writes_files(tmp_path, capsys):
    code, out = run_cli(capsys, "table1", "--quick",
                        "--out-dir", str(tmp_path))
    assert code == 0
    assert (tmp_path / "table1.txt").exists()


def test_svg_bundle_written(tmp_path, capsys):
    code, out = run_cli(capsys, "fig56", "--out-dir", str(tmp_path))
    assert code == 0
    files = list(tmp_path.glob("*.svg"))
    assert len(files) == 2


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_seed_changes_results(capsys):
    _, out_a = run_cli(capsys, "table6", "--quick", "--seed", "1")
    _, out_b = run_cli(capsys, "table6", "--quick", "--seed", "2")
    assert out_a != out_b
