"""Worker-pool chaos soak: random SIGKILLs under live traffic.

The multi-process serving acceptance property, verified end-to-end over
real sockets and real worker processes: with workers SIGKILLed at
seeded-random moments during a ~1000-query soak from 8 concurrent
clients, **every one** of the responses is

* bit-identical to a clean oracle (``ok`` and not ``partial``), or
* explicitly ``partial=true`` with an id set that is a *subset* of the
  oracle's (a shard lost mid-scatter under-reports, never fabricates), or
* a typed error (``WorkerLost`` when a query's worker died twice,
  ``DeadlineExceeded`` / ``Overloaded`` / ``StoreUnavailable``).

Zero silently-wrong results, by exhaustive comparison — and afterwards
the pool must be back at full strength with a bounded restart count.
On failure the violation list and pool state land in
``$REPRO_CHAOS_REPORT_DIR`` (CI uploads them as artifacts).

The ``>1x pooled throughput`` assertion is gated on ``REPRO_PERF_TESTS``:
it measures the host's core count as much as the code, so it runs on CI's
multi-core runners and stays off single-CPU dev containers.
"""

import asyncio
import json
import os
import signal
import time
from random import Random

import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.queries import point_queries, region_queries
from repro.rtree.paged import PagedRTree
from repro.serve import QueryClient, QueryServer, Request
from repro.storage import FilePageStore, MemoryPageStore
from repro.storage.integrity import TRAILER_SIZE
from repro.storage.page import required_page_size

N_RECTS = 3_000
CAPACITY = 25
N_CLIENTS = 8
N_WORKERS = 4
#: 5 kills keeps the default flap circuit (6 deaths / 30 s) closed: the
#: soak exercises crash recovery, not the degrade-and-stay-down path
#: (tests/test_serve_pool.py covers that one).
N_KILLS = 5
ALLOWED_ERRORS = {"WorkerLost", "DeadlineExceeded", "Overloaded",
                  "StoreUnavailable"}


def _workload():
    queries = list(region_queries(0.04, 700, seed=81))
    queries += list(point_queries(300, seed=82))
    return queries


def _dump_artifacts(summary, violations):
    out_dir = os.environ.get("REPRO_CHAOS_REPORT_DIR", "")
    if not out_dir:
        return ""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "pool-chaos-summary.json")
    with open(path, "w") as f:
        json.dump({**summary, "violations": violations[:100]}, f,
                  indent=2, default=str)
    return f" (artifacts: {path})"


def _durable_tree(tmp_path, rects, name):
    page_size = required_page_size(CAPACITY, 2) + TRAILER_SIZE
    store = FilePageStore(tmp_path / name, page_size,
                          checksums=True, journal=True)
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
                        store=store)
    return tree


@pytest.mark.parametrize("scatter", [False, True])
def test_pool_kill_chaos_no_silently_wrong_answers(tmp_path, rng, scatter):
    started = time.time()
    rects = RectArray.from_points(rng.random((N_RECTS, 2)))
    oracle_tree, _ = bulk_load(rects, SortTileRecursive(),
                               capacity=CAPACITY,
                               store=MemoryPageStore(4096))
    oracle = oracle_tree.searcher(512)
    queries = _workload()
    expected = [frozenset(int(x) for x in oracle.search(q))
                for q in queries]
    tree = _durable_tree(tmp_path, rects, "chaos.pages")

    outcomes = {"exact": 0, "partial": 0}
    violations = []
    kills = []
    traffic_done = asyncio.Event()

    async def client_session(host, port, client_index):
        async with await QueryClient.connect(host, port) as client:
            for qi in range(client_index, len(queries), N_CLIENTS):
                resp = await client.search(queries[qi])
                record = {"client": client_index, "query": qi,
                          "response": resp.__dict__}
                if not resp.ok:
                    if resp.error not in ALLOWED_ERRORS:
                        violations.append({**record,
                                           "why": "untyped error"})
                    else:
                        outcomes[resp.error] = outcomes.get(resp.error,
                                                            0) + 1
                    continue
                got = frozenset(resp.ids)
                if resp.partial:
                    if not got <= expected[qi]:
                        violations.append(
                            {**record, "why": "partial ids not a subset"})
                    else:
                        outcomes["partial"] += 1
                elif got != expected[qi]:
                    violations.append(
                        {**record, "why": "non-partial ids != oracle"})
                else:
                    outcomes["exact"] += 1

    async def killer(server, seed=4242):
        chaos = Random(seed)
        while len(kills) < N_KILLS and not traffic_done.is_set():
            await asyncio.sleep(chaos.uniform(0.02, 0.12))
            ready = [w for w in server.pool.snapshot()["workers"]
                     if w["pid"] and w["state"] == "ready"]
            if not ready:
                continue
            victim = chaos.choice(ready)
            try:
                os.kill(victim["pid"], signal.SIGKILL)
            except ProcessLookupError:
                continue
            kills.append(victim["pid"])

    async def scenario():
        async with QueryServer(tree, buffer_pages=64, workers=N_WORKERS,
                               scatter=scatter, max_inflight=16,
                               max_queue=64,
                               default_deadline_s=30.0) as server:
            assert server.pool is not None, server.pool_start_error
            host, port = server.address
            killer_task = asyncio.create_task(killer(server))
            await asyncio.gather(*[
                client_session(host, port, i) for i in range(N_CLIENTS)
            ])
            traffic_done.set()
            await killer_task
            # Supervision must bring the pool back to full strength.
            t_end = time.monotonic() + 15.0
            while (server.pool.workers_live < N_WORKERS
                   and time.monotonic() < t_end):
                await asyncio.sleep(0.05)
            return server, server.pool.snapshot()

    server, pool_state = asyncio.run(scenario())

    total = sum(outcomes.values())
    summary = {
        "duration_s": time.time() - started,
        "scatter": scatter,
        "queries": total,
        "outcomes": outcomes,
        "kills": len(kills),
        "pool": pool_state,
        "fallbacks": server.pool_fallbacks,
        "violations": len(violations),
    }
    note = _dump_artifacts(summary, violations)

    # The soak must have actually exercised the chaos, not dodged it.
    assert total + len(violations) == len(queries)
    assert len(kills) == N_KILLS, f"only {len(kills)} kills fired{note}"
    assert outcomes["exact"] > 0
    # Recovery: full strength, circuit closed, restarts bounded by the
    # kill count (each SIGKILL causes exactly one supervised restart;
    # anything above that would be a crash loop).
    assert pool_state["workers_live"] == N_WORKERS, f"{pool_state}{note}"
    assert pool_state["degraded"] is False
    assert 1 <= pool_state["restarts_total"] <= len(kills), (
        f"{pool_state['restarts_total']} restarts for "
        f"{len(kills)} kills{note}")
    # ... and the one property that matters: nothing silently wrong.
    assert not violations, (
        f"{len(violations)} silently-wrong or mistyped responses, e.g. "
        f"{violations[0]['why']}{note}"
    )
    tree.store.close()


def test_pool_chaos_with_mid_soak_reload(tmp_path, rng):
    """The zero-silent-wrong bar holds while the pool drains and remaps
    to a new generation under traffic *and* loses a worker to SIGKILL.

    Both generations are built from the same records, so one oracle
    covers the whole stream; during the drain the server falls back to
    in-process execution, which must stay invisible apart from latency.
    """
    rects = RectArray.from_points(rng.random((N_RECTS, 2)))
    oracle_tree, _ = bulk_load(rects, SortTileRecursive(),
                               capacity=CAPACITY,
                               store=MemoryPageStore(4096))
    oracle = oracle_tree.searcher(512)
    queries = _workload()[:600]
    expected = [frozenset(int(x) for x in oracle.search(q))
                for q in queries]

    tree_a = _durable_tree(tmp_path, rects, "gen-a.pages")
    tree_b = _durable_tree(tmp_path, rects, "gen-b.pages")
    tree_b.store.close()
    violations = []
    reloads = []

    async def client_session(host, port, client_index):
        async with await QueryClient.connect(host, port) as client:
            for qi in range(client_index, len(queries), N_CLIENTS):
                resp = await client.search(queries[qi])
                if not resp.ok:
                    if resp.error not in ALLOWED_ERRORS:
                        violations.append({"query": qi,
                                           "why": "untyped error",
                                           "error": resp.error})
                elif resp.partial:
                    if not frozenset(resp.ids) <= expected[qi]:
                        violations.append({"query": qi,
                                           "why": "partial not subset"})
                elif frozenset(resp.ids) != expected[qi]:
                    violations.append({"query": qi, "why": "wrong ids"})

    async def chaos_session(server, host, port):
        async with await QueryClient.connect(host, port) as client:
            await asyncio.sleep(0.05)
            victim = server.pool.snapshot()["workers"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            await asyncio.sleep(0.05)
            data = (await client.request(Request(
                op="reload", path=str(tmp_path / "gen-b.pages")
            ))).raise_for_error().data
            reloads.append(data)

    async def scenario():
        async with QueryServer(tree_a, buffer_pages=64, workers=3,
                               allow_reload=True, max_inflight=16,
                               max_queue=64,
                               default_deadline_s=30.0) as server:
            assert server.pool is not None, server.pool_start_error
            host, port = server.address
            await asyncio.gather(
                *[client_session(host, port, i)
                  for i in range(N_CLIENTS)],
                chaos_session(server, host, port),
            )
            t_end = time.monotonic() + 15.0
            while (server.pool.workers_live < 3
                   and time.monotonic() < t_end):
                await asyncio.sleep(0.05)
            return server, server.pool.snapshot()

    server, pool_state = asyncio.run(scenario())
    note = _dump_artifacts(
        {"reloads": reloads, "pool": pool_state,
         "violations": len(violations)}, violations)

    assert len(reloads) == 1
    assert reloads[0]["generation"] == 2
    assert reloads[0]["pool"]["remapped"] >= 1
    assert server.generation == 2
    assert pool_state["generation"] == 2
    assert pool_state["workers_live"] == 3, f"{pool_state}{note}"
    # Every worker — including the one restarted after its SIGKILL —
    # must be serving the new generation.
    assert all(w["generation"] == 2 for w in pool_state["workers"]), (
        f"{pool_state}{note}")
    assert not violations, (
        f"{len(violations)} failed/wrong responses across the reload, "
        f"e.g. {violations[0]}{note}"
    )


@pytest.mark.skipif(not os.environ.get("REPRO_PERF_TESTS"),
                    reason="throughput ratio measures the host's cores; "
                           "set REPRO_PERF_TESTS=1 on multi-core runners")
def test_pooled_throughput_beats_in_process(tmp_path):
    """On a multi-core host, 4 workers must beat one process for the
    concurrent serve workload (the opt-in ``serve_pool`` bench
    scenario's own numbers, so CI gates exactly what ``repro bench
    --workers 4`` reports)."""
    from repro.bench.scenarios import (
        SCENARIOS,
        BenchConfig,
        SuiteContext,
        scenario_serve_pool,
    )

    config = BenchConfig.quick()
    ctx = SuiteContext(config=config, workdir=str(tmp_path),
                       serve_workers=4)
    SCENARIOS["build"](ctx)
    result = scenario_serve_pool(ctx)
    ctx.tree.store.close()
    assert result.extra["workers"] == 4
    assert result.extra["pool_fallbacks"] == 0
    assert result.extra["pool_speedup"] > 1.0, result.extra
