"""Unit tests for the experiment runner and table reporting."""

import pytest

from repro.core.geometry import RectArray
from repro.experiments.report import Series, Table, format_value
from repro.experiments.runner import PAPER_CAPACITY, TreeCache, run_queries
from repro.queries import point_queries, region_queries
from repro.rtree.bulk import bulk_load
from repro.core.packing import SortTileRecursive


@pytest.fixture
def cache(rng):
    c = TreeCache(capacity=20)
    c.add_dataset("pts", RectArray.from_points(rng.random((2000, 2))))
    return c


class TestTreeCache:
    def test_paper_capacity_default(self):
        assert TreeCache().capacity == PAPER_CAPACITY == 100

    def test_builds_once_per_algorithm(self, cache):
        t1 = cache.tree("pts", "str")
        t2 = cache.tree("pts", "STR")
        assert t1 is t2

    def test_different_algorithms_different_trees(self, cache):
        assert cache.tree("pts", "str") is not cache.tree("pts", "hs")

    def test_unknown_dataset(self, cache):
        with pytest.raises(KeyError):
            cache.tree("nope", "str")

    def test_report_available(self, cache):
        report = cache.report("pts", "str")
        assert report.leaf_pages == 100
        assert report.height == cache.tree("pts", "str").height

    def test_quality_available(self, cache):
        q = cache.quality("pts", "str")
        assert q.leaf_area > 0

    def test_run_produces_result(self, cache):
        w = point_queries(100, seed=1)
        r = cache.run("pts", "str", w, buffer_pages=5)
        assert r.algorithm == "STR"
        assert r.workload == "point"
        assert r.query_count == 100
        assert r.mean_accesses > 0


class TestRunQueries:
    def test_cold_buffer_each_run(self, rng):
        ra = RectArray.from_points(rng.random((2000, 2)))
        tree, _ = bulk_load(ra, SortTileRecursive(), capacity=20)
        w = region_queries(0.2, 50, seed=1)
        a = run_queries(tree, w, buffer_pages=10)
        b = run_queries(tree, w, buffer_pages=10)
        assert a.total_accesses == b.total_accesses  # fresh cold buffer

    def test_total_results_counted(self, rng):
        pts = rng.random((1000, 2))
        tree, _ = bulk_load(RectArray.from_points(pts),
                            SortTileRecursive(), capacity=20)
        w = region_queries(0.5, 20, seed=1)
        r = run_queries(tree, w, buffer_pages=10)
        assert r.total_results > 0
        assert r.mean_results == r.total_results / 20

    def test_larger_buffer_fewer_accesses(self, rng):
        ra = RectArray.from_points(rng.random((5000, 2)))
        tree, _ = bulk_load(ra, SortTileRecursive(), capacity=20)
        w = region_queries(0.2, 200, seed=1)
        small = run_queries(tree, w, buffer_pages=5)
        big = run_queries(tree, w, buffer_pages=200)
        assert big.total_accesses < small.total_accesses


class TestTable:
    def test_add_row_and_column(self):
        t = Table(title="T", columns=("a", "b"))
        t.add_row(1, 2.5)
        t.add_row(3, 4.5)
        assert t.column("b") == [2.5, 4.5]

    def test_wrong_arity_rejected(self):
        t = Table(title="T", columns=("a", "b"))
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_sections_excluded_from_columns(self):
        t = Table(title="T", columns=("a", "b"))
        t.add_section("Point Queries")
        t.add_row(1, 2)
        assert t.column("a") == [1]
        assert len(t.data_rows()) == 1

    def test_cell(self):
        t = Table(title="T", columns=("a", "b"))
        t.add_section("s")
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.cell(1, "b") == 4

    def test_render_contains_everything(self):
        t = Table(title="My Table", columns=("x", "y"))
        t.add_section("Band")
        t.add_row(10, 3.14159)
        t.notes.append("a note")
        text = t.render()
        assert "My Table" in text
        assert "Band" in text
        assert "3.14" in text
        assert "note: a note" in text

    def test_csv(self):
        t = Table(title="T", columns=("x", "y"))
        t.add_row(1, 2.0)
        csv = t.to_csv()
        assert csv.splitlines()[0] == "x,y"
        assert csv.splitlines()[1].startswith("1,2")

    def test_format_value(self):
        assert format_value(1.23456) == "1.23"
        assert format_value(1.23456, 4) == "1.2346"
        assert format_value(7) == "7"
        assert format_value("x") == "x"


class TestSeries:
    def test_add_and_rows(self):
        s = Series(label="STR")
        s.add(10, 1.5)
        s.add(25, 2.5)
        assert list(s.as_table_rows()) == [("STR", 10.0, 1.5),
                                           ("STR", 25.0, 2.5)]
