"""Rolling latency windows and SLO targets (``repro.obs.slo``)."""

import math

import pytest

from repro.obs import Histogram, RollingWindow, SloTarget, percentile


class TestPercentileFunction:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_interpolates(self):
        values = [0.0, 10.0]
        assert percentile(values, 50.0) == pytest.approx(5.0)
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 100.0) == 10.0

    def test_matches_histogram(self):
        hist = Histogram("x", {})
        for v in (3.0, 1.0, 2.0, 4.0):
            hist.observe(v)
        assert hist.percentile(50.0) == percentile([1.0, 2.0, 3.0, 4.0], 50.0)


class TestRollingWindow:
    def test_keeps_only_the_most_recent(self):
        window = RollingWindow(maxlen=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            window.observe(v)
        assert window.values() == [2.0, 3.0, 4.0]
        assert len(window) == 3
        assert window.total_observed == 4

    def test_percentile_tracks_the_window_not_history(self):
        window = RollingWindow(maxlen=2)
        window.observe(100.0)  # will be evicted
        window.observe(1.0)
        window.observe(3.0)
        assert window.percentile(50.0) == pytest.approx(2.0)

    def test_summary_shape(self):
        window = RollingWindow(maxlen=8)
        assert window.summary() == {"total_observed": 0, "window": 0}
        for v in range(1, 6):
            window.observe(float(v))
        summary = window.summary()
        assert summary["window"] == 5
        assert summary["p50"] == pytest.approx(3.0)
        assert summary["max"] == 5.0

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            RollingWindow(maxlen=0)


def _reference_percentile(values, q):
    """Straightforward linear-interpolation percentile (numpy's default
    'linear' method), written independently of the implementation."""
    ordered = sorted(values)
    if not ordered:
        return math.nan
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class TestRollingWindowPercentileEdgeCounts:
    """The bench harness leans on these percentiles; pin the edges."""

    QS = (0.0, 1.0, 25.0, 50.0, 75.0, 99.0, 100.0)

    def _window_with(self, values, maxlen=8):
        window = RollingWindow(maxlen=maxlen)
        for v in values:
            window.observe(v)
        return window

    def test_empty_is_nan_at_every_q(self):
        window = self._window_with([])
        for q in self.QS:
            assert math.isnan(window.percentile(q))

    def test_single_sample_is_every_percentile(self):
        window = self._window_with([7.5])
        for q in self.QS:
            assert window.percentile(q) == 7.5

    def test_two_samples_interpolate_linearly(self):
        window = self._window_with([10.0, 20.0])
        for q in self.QS:
            assert window.percentile(q) == pytest.approx(
                _reference_percentile([10.0, 20.0], q))
        assert window.percentile(50.0) == pytest.approx(15.0)

    def test_exactly_full_window_matches_reference(self):
        values = [5.0, 1.0, 4.0, 2.0, 8.0, 3.0, 7.0, 6.0]
        window = self._window_with(values, maxlen=len(values))
        for q in self.QS:
            assert window.percentile(q) == pytest.approx(
                _reference_percentile(values, q))

    def test_overfull_window_matches_reference_on_the_survivors(self):
        maxlen = 4
        values = [float(v) for v in (9, 9, 9, 1, 2, 3, 4)]
        window = self._window_with(values, maxlen=maxlen)
        survivors = values[-maxlen:]
        for q in self.QS:
            assert window.percentile(q) == pytest.approx(
                _reference_percentile(survivors, q))


class TestSloTarget:
    def test_empty_samples_vacuously_ok(self):
        report = SloTarget(p50_s=0.001, p99_s=0.01).evaluate([])
        assert report.ok
        assert report.count == 0
        assert math.isnan(report.p50)

    def test_violations_named(self):
        report = SloTarget(p50_s=0.5, p99_s=0.5).evaluate([1.0, 1.0, 1.0])
        assert not report.ok
        assert len(report.violations) == 2
        assert any("p99" in v for v in report.violations)

    def test_unset_thresholds_never_violate(self):
        assert SloTarget().evaluate([100.0]).ok

    def test_accepts_window_and_histogram_sources(self):
        window = RollingWindow()
        hist = Histogram("query.latency_s", {})
        for v in (0.001, 0.002, 0.003):
            window.observe(v)
            hist.observe(v)
        target = SloTarget(p99_s=1.0)
        assert target.evaluate(window).p50 == target.evaluate(hist).p50
        assert target.evaluate(window).ok

    def test_as_dict_is_jsonable(self):
        report = SloTarget(p99_s=0.5).evaluate([1.0])
        d = report.as_dict()
        assert d["ok"] is False
        assert isinstance(d["violations"], list)
