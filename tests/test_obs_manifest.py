"""Unit tests for run manifests and telemetry file export."""

import json
import os
import re

import pytest

from repro.experiments.config import ExperimentConfig
from repro.obs import (
    MANIFEST_FORMAT,
    MetricsRegistry,
    RunManifest,
    Tracer,
    default_metrics_path,
    default_trace_path,
    git_sha,
    load_manifest,
    write_manifest,
    write_metrics_json,
    write_trace_jsonl,
)


def _sample_manifest() -> RunManifest:
    tracer = Tracer()
    with tracer.span("str.sort", dim=0):
        pass
    registry = MetricsRegistry()
    registry.counter("io.disk_reads", algo="STR").inc(12)
    return RunManifest.collect(
        "table2",
        config=ExperimentConfig.quick(),
        argv=["profile", "table2", "--quick"],
        duration_s=1.25,
        tracer=tracer,
        registry=registry,
        outputs={"trace_jsonl": "x.jsonl"},
        extra={"note": "test"},
    )


class TestGitSha:
    def test_inside_this_repo(self):
        sha = git_sha(os.path.dirname(os.path.dirname(__file__)))
        # The repo under test is a git checkout; elsewhere None is fine.
        if sha is not None:
            assert re.fullmatch(r"[0-9a-f]{40}", sha)

    def test_outside_a_repo(self, tmp_path):
        assert git_sha(tmp_path) is None


class TestRunManifest:
    def test_collect_schema(self):
        m = _sample_manifest()
        d = m.as_dict()
        assert d["format"] == MANIFEST_FORMAT
        assert d["experiment"] == "table2"
        assert d["config"]["query_count"] == 300
        assert d["duration_s"] == 1.25
        assert "str.sort" in d["spans"]
        assert "sort" in d["phases"]
        assert d["metrics"]["io.disk_reads"][0]["value"] == 12
        assert d["argv"] == ["profile", "table2", "--quick"]
        assert d["created_utc"]  # auto-stamped
        json.dumps(d)  # JSON-able end to end

    def test_dict_round_trip(self):
        m = _sample_manifest()
        again = RunManifest.from_dict(m.as_dict())
        assert again.as_dict() == m.as_dict()

    def test_from_dict_rejects_other_formats(self):
        with pytest.raises(ValueError):
            RunManifest.from_dict({"format": "something-else"})

    def test_file_stem_is_filesystem_safe(self):
        m = _sample_manifest()
        stem = m.file_stem()
        assert stem.startswith("table2-")
        assert "/" not in stem and ":" not in stem


class TestWriteLoad:
    def test_write_and_load(self, tmp_path):
        m = _sample_manifest()
        path = write_manifest(m, tmp_path)
        assert os.path.exists(path)
        loaded = load_manifest(path)
        assert loaded.experiment == "table2"
        assert loaded.as_dict() == m.as_dict()

    def test_collision_gets_suffix(self, tmp_path):
        m = _sample_manifest()
        p1 = write_manifest(m, tmp_path)
        p2 = write_manifest(m, tmp_path)
        assert p1 != p2
        assert os.path.exists(p1) and os.path.exists(p2)

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "runs"
        path = write_manifest(_sample_manifest(), target)
        assert os.path.exists(path)


class TestExportHelpers:
    def test_write_trace_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        path = write_trace_jsonl(tracer, tmp_path / "t" / "x.trace.jsonl")
        lines = open(path).read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "a"

    def test_write_metrics_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        path = write_metrics_json(reg, tmp_path / "m.json")
        data = json.load(open(path))
        assert data["c"][0]["value"] == 2

    def test_unique_run_stem_skips_any_existing_artefact(self, tmp_path):
        from repro.obs import unique_run_stem

        m = _sample_manifest()
        base = m.file_stem()
        assert unique_run_stem(m, tmp_path) == base
        # A same-second trace file must push the WHOLE run to a new stem,
        # or the second run would overwrite the first run's trace.
        (tmp_path / f"{base}.trace.jsonl").write_text("")
        assert unique_run_stem(m, tmp_path) == f"{base}-1"
        (tmp_path / f"{base}-1.json").write_text("{}")
        assert unique_run_stem(m, tmp_path) == f"{base}-2"

    def test_write_manifest_honours_reserved_stem(self, tmp_path):
        from repro.obs import write_manifest

        path = write_manifest(_sample_manifest(), tmp_path, stem="custom")
        assert os.path.basename(path) == "custom.json"

    def test_default_paths_share_stem(self, tmp_path):
        m = _sample_manifest()
        t = default_trace_path(m, tmp_path)
        x = default_metrics_path(m, tmp_path)
        assert t.endswith(".trace.jsonl")
        assert x.endswith(".metrics.json")
        assert os.path.basename(t).split(".")[0] \
            == os.path.basename(x).split(".")[0]
