"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Rect, RectArray


@pytest.fixture
def rng():
    """A deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def unit_points(rng):
    """1,000 uniform points in the unit square as degenerate rects."""
    return RectArray.from_points(rng.random((1000, 2)))


@pytest.fixture
def small_rects(rng):
    """200 small random rectangles inside the unit square."""
    lo = rng.random((200, 2)) * 0.9
    extent = rng.random((200, 2)) * 0.1
    return RectArray(lo, lo + extent)


@pytest.fixture
def sample_rect():
    return Rect((0.2, 0.3), (0.6, 0.8))


def brute_force_search(rects: RectArray, query: Rect) -> set[int]:
    """Oracle: ids of rectangles intersecting the query, by full scan."""
    return set(np.flatnonzero(rects.intersects_rect(query)).tolist())
