"""Kill-matrix: SIGKILL real processes mid-build, resume, verify.

These tests drive the actual ``python -m repro build`` CLI in
subprocesses — not in-process fault injection — and deliver real
SIGKILLs to worker processes and to the whole orchestrator process
group.  The bar is the same as everywhere else in this suite: after any
number of kills and resumes the durable output file is **byte-for-byte
identical** (whole-file SHA-256, superblock included) to a build that
was never interrupted, and ``repro fsck`` finds it clean.

The CI kill-matrix job runs this file on every push; locally it takes a
few seconds because builds are throttled to open a kill window.
"""

import hashlib
import json
import os
import shutil
import signal
import subprocess
import sys
import time

import pytest

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="kill matrix reads /proc and uses process groups",
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SIZE = "4000"
CAPACITY = "50"


def _build_argv(target, staging, *extra):
    return [
        sys.executable, "-m", "repro", "build", str(target),
        "--size", SIZE, "--capacity", CAPACITY, "--workers", "2",
        "--staging", str(staging), "--no-manifest", *extra,
    ]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return env


def _run(argv, **kwargs):
    return subprocess.run(argv, env=_env(), cwd=REPO, capture_output=True,
                          text=True, timeout=300, **kwargs)


def _sha256(path):
    return hashlib.sha256(open(path, "rb").read()).hexdigest()


def _child_pids(pid):
    """Direct children of ``pid`` (via /proc stat field 4)."""
    children = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as f:
                stat = f.read()
        except OSError:
            continue
        # PPID is field 4; field 2 is the comm, which may contain spaces
        # but is parenthesised — split after the closing paren.
        fields = stat.rsplit(")", 1)[-1].split()
        if fields and int(fields[1]) == pid:
            children.append(int(entry))
    return children


def _verify_final(name, target, staging, clean_digest):
    """fsck + digest check; on failure dump everything a debugger needs
    (the file, any staging left behind, both digests, the fsck output)
    to ``$REPRO_KILL_REPORT_DIR`` — CI uploads it as an artifact."""
    fsck = _run([sys.executable, "-m", "repro", "fsck", str(target)])
    digest = _sha256(target) if target.exists() else None
    if fsck.returncode != 0 or digest != clean_digest:
        report_dir = os.environ.get("REPRO_KILL_REPORT_DIR")
        if report_dir:
            dest = os.path.join(report_dir, name)
            os.makedirs(dest, exist_ok=True)
            if target.exists():
                shutil.copy(target, os.path.join(dest, target.name))
            if staging.exists():
                shutil.copytree(staging, os.path.join(dest, "staging"),
                                dirs_exist_ok=True)
            with open(os.path.join(dest, "report.json"), "w") as f:
                json.dump({"digest": digest, "clean_digest": clean_digest,
                           "fsck_returncode": fsck.returncode,
                           "fsck_stdout": fsck.stdout,
                           "fsck_stderr": fsck.stderr}, f, indent=2)
    assert fsck.returncode == 0, fsck.stdout + fsck.stderr
    assert digest == clean_digest


@pytest.fixture(scope="module")
def clean_digest(tmp_path_factory):
    """SHA-256 of an uninterrupted build — the oracle for every kill."""
    base = tmp_path_factory.mktemp("clean")
    target = base / "tree.rt"
    proc = _run(_build_argv(target, base / "staging"))
    assert proc.returncode == 0, proc.stderr
    return _sha256(target)


def test_orchestrator_sigkill_then_resume(tmp_path, clean_digest):
    target = tmp_path / "tree.rt"
    staging = tmp_path / "staging"
    # Throttled workers open a multi-second window; kill the whole
    # process group (orchestrator + workers) inside it, like a machine
    # going away.
    proc = subprocess.Popen(
        _build_argv(target, staging, "--throttle-s", "0.4"),
        env=_env(), cwd=REPO, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    time.sleep(1.5)
    killed = proc.poll() is None
    if killed:
        os.killpg(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)

    if staging.exists():  # the kill landed before completion
        resumed = _run(_build_argv(target, staging, "--resume"))
        assert resumed.returncode == 0, resumed.stderr
        assert not staging.exists()  # consumed by the resume
    else:
        assert not killed  # build won the race; nothing to resume

    _verify_final("orchestrator-sigkill", target, staging, clean_digest)


def test_worker_sigkills_are_absorbed_without_resume(tmp_path,
                                                     clean_digest):
    target = tmp_path / "tree.rt"
    staging = tmp_path / "staging"
    proc = subprocess.Popen(
        _build_argv(target, staging, "--throttle-s", "0.3",
                    "--worker-deadline-s", "30", "--max-attempts", "10"),
        env=_env(), cwd=REPO,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    # Shoot the first two distinct workers we can catch; the supervisor
    # must retry them in-flight — no resume step at all.
    shot = set()
    deadline = time.monotonic() + 20.0
    while len(shot) < 2 and time.monotonic() < deadline \
            and proc.poll() is None:
        for pid in _child_pids(proc.pid):
            if pid not in shot:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    continue
                shot.add(pid)
                break
        time.sleep(0.05)
    out, err = proc.communicate(timeout=120)
    assert proc.returncode == 0, err
    if shot:
        assert "retries" in out

    _verify_final("worker-sigkills", target, staging, clean_digest)


def test_double_kill_double_resume(tmp_path, clean_digest):
    """Two orchestrator kills back to back still converge."""
    target = tmp_path / "tree.rt"
    staging = tmp_path / "staging"
    argv = _build_argv(target, staging, "--throttle-s", "0.4")
    for _ in range(2):
        proc = subprocess.Popen(
            argv, env=_env(), cwd=REPO, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        time.sleep(0.9)
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        if not staging.exists():  # finished before the kill landed
            break
        argv = _build_argv(target, staging, "--throttle-s", "0.4",
                           "--resume")
    if staging.exists():
        final = _run(_build_argv(target, staging, "--resume"))
        assert final.returncode == 0, final.stderr
    _verify_final("double-kill", target, staging, clean_digest)
