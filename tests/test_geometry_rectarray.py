"""Unit tests for repro.core.geometry.RectArray."""

import numpy as np
import pytest

from repro.core.geometry import GeometryError, Rect, RectArray


class TestConstruction:
    def test_from_arrays(self):
        ra = RectArray(np.zeros((5, 2)), np.ones((5, 2)))
        assert len(ra) == 5
        assert ra.ndim == 2

    def test_from_points_degenerate(self, rng):
        pts = rng.random((10, 3))
        ra = RectArray.from_points(pts)
        assert (ra.areas() == 0.0).all()
        assert ra.ndim == 3

    def test_from_rects(self):
        ra = RectArray.from_rects([Rect((0, 0), (1, 1)), Rect((2, 2), (3, 4))])
        assert len(ra) == 2
        assert ra[1] == Rect((2, 2), (3, 4))

    def test_from_rects_empty_rejected(self):
        with pytest.raises(GeometryError):
            RectArray.from_rects([])

    def test_from_rects_mixed_dims_rejected(self):
        with pytest.raises(GeometryError):
            RectArray.from_rects([Rect((0,), (1,)), Rect((0, 0), (1, 1))])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            RectArray(np.zeros((5, 2)), np.ones((4, 2)))

    def test_1d_input_rejected(self):
        with pytest.raises(GeometryError):
            RectArray(np.zeros(5), np.ones(5))

    def test_lo_above_hi_rejected(self):
        los = np.zeros((3, 2))
        his = np.ones((3, 2))
        his[1, 0] = -1.0
        with pytest.raises(GeometryError):
            RectArray(los, his)

    def test_nan_rejected(self):
        los = np.zeros((3, 2))
        los[0, 0] = np.nan
        with pytest.raises(GeometryError):
            RectArray(los, np.ones((3, 2)))

    def test_arrays_are_frozen(self, unit_points):
        with pytest.raises(ValueError):
            unit_points.los[0, 0] = 5.0

    def test_copy_isolates_caller_array(self):
        los = np.zeros((3, 2))
        his = np.ones((3, 2))
        ra = RectArray(los, his)
        los[0, 0] = 0.5  # caller's array stays writable
        assert ra.los[0, 0] == 0.0


class TestContainerProtocol:
    def test_getitem_int_returns_rect(self, small_rects):
        r = small_rects[3]
        assert isinstance(r, Rect)

    def test_getitem_slice_returns_rectarray(self, small_rects):
        sub = small_rects[10:20]
        assert isinstance(sub, RectArray)
        assert len(sub) == 10

    def test_getitem_mask(self, small_rects):
        mask = small_rects.areas() > np.median(small_rects.areas())
        sub = small_rects[mask]
        assert len(sub) == int(mask.sum())

    def test_iter_yields_rects(self, small_rects):
        rects = list(small_rects)
        assert len(rects) == len(small_rects)
        assert rects[0] == small_rects[0]

    def test_equality(self, small_rects):
        clone = RectArray(small_rects.los, small_rects.his)
        assert small_rects == clone
        assert small_rects != clone[0:10]

    def test_repr(self, small_rects):
        assert "n=200" in repr(small_rects)


class TestMeasures:
    def test_centers(self):
        ra = RectArray(np.zeros((1, 2)), np.full((1, 2), 2.0))
        assert ra.centers().tolist() == [[1.0, 1.0]]

    def test_areas_match_scalar(self, small_rects):
        areas = small_rects.areas()
        for i in (0, 50, 199):
            assert areas[i] == pytest.approx(small_rects[i].area())

    def test_margins_match_scalar(self, small_rects):
        margins = small_rects.margins()
        for i in (0, 100):
            assert margins[i] == pytest.approx(small_rects[i].margin())

    def test_perimeters_are_double_margins(self, small_rects):
        assert np.allclose(small_rects.perimeters(),
                           2 * small_rects.margins())

    def test_totals(self, small_rects):
        assert small_rects.total_area() == pytest.approx(
            small_rects.areas().sum())
        assert small_rects.total_perimeter() == pytest.approx(
            small_rects.perimeters().sum())


class TestPredicates:
    def test_intersects_rect_matches_scalar(self, small_rects):
        q = Rect((0.3, 0.3), (0.7, 0.7))
        mask = small_rects.intersects_rect(q)
        for i in range(len(small_rects)):
            assert mask[i] == small_rects[i].intersects(q)

    def test_intersects_rect_dim_mismatch(self, small_rects):
        with pytest.raises(GeometryError):
            small_rects.intersects_rect(Rect((0,), (1,)))

    def test_contains_point_matches_scalar(self, small_rects):
        p = (0.5, 0.5)
        mask = small_rects.contains_point(p)
        for i in range(len(small_rects)):
            assert mask[i] == small_rects[i].contains_point(p)

    def test_contained_in(self, small_rects):
        window = Rect((0.0, 0.0), (0.5, 0.5))
        mask = small_rects.contained_in(window)
        for i in range(len(small_rects)):
            assert mask[i] == window.contains_rect(small_rects[i])


class TestAggregation:
    def test_mbr_encloses_all(self, small_rects):
        mbr = small_rects.mbr()
        assert small_rects.contained_in(mbr).all()

    def test_mbr_is_tight(self, small_rects):
        mbr = small_rects.mbr()
        assert mbr.lo[0] == small_rects.los[:, 0].min()
        assert mbr.hi[1] == small_rects.his[:, 1].max()

    def test_group_mbrs_single_group(self, small_rects):
        grouped = small_rects.group_mbrs([len(small_rects)])
        assert len(grouped) == 1
        assert grouped[0] == small_rects.mbr()

    def test_group_mbrs_runs(self, small_rects):
        sizes = [50, 50, 100]
        grouped = small_rects.group_mbrs(sizes)
        assert len(grouped) == 3
        assert grouped[0] == small_rects[0:50].mbr()
        assert grouped[2] == small_rects[100:200].mbr()

    def test_group_mbrs_wrong_total_rejected(self, small_rects):
        with pytest.raises(GeometryError):
            small_rects.group_mbrs([100, 50])

    def test_group_mbrs_zero_size_rejected(self, small_rects):
        with pytest.raises(GeometryError):
            small_rects.group_mbrs([0, 200])

    def test_group_mbrs_empty_rejected(self, small_rects):
        with pytest.raises(GeometryError):
            small_rects.group_mbrs([])

    def test_take_reorders(self, small_rects):
        perm = np.arange(len(small_rects))[::-1]
        taken = small_rects.take(perm)
        assert taken[0] == small_rects[len(small_rects) - 1]
        assert taken[len(taken) - 1] == small_rects[0]
