"""Unit tests for MemoryPageStore and FilePageStore."""

import os

import pytest

from repro.storage.counters import IOStats
from repro.storage.store import FilePageStore, MemoryPageStore, StoreError

PAGE = 512


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryPageStore(PAGE)
    else:
        s = FilePageStore(tmp_path / "pages.bin", PAGE)
        yield s
        s.close()


class TestCommonBehaviour:
    def test_allocate_returns_dense_ids(self, store):
        assert [store.allocate() for _ in range(3)] == [0, 1, 2]
        assert store.page_count == 3

    def test_write_read_roundtrip(self, store):
        pid = store.allocate()
        payload = bytes(range(256)) * 2
        store.write_page(pid, payload)
        assert store.read_page(pid) == payload

    def test_overwrite(self, store):
        pid = store.allocate()
        store.write_page(pid, b"a" * PAGE)
        store.write_page(pid, b"b" * PAGE)
        assert store.read_page(pid) == b"b" * PAGE

    def test_wrong_size_write_rejected(self, store):
        pid = store.allocate()
        with pytest.raises(StoreError):
            store.write_page(pid, b"short")

    def test_read_unallocated_rejected(self, store):
        with pytest.raises(StoreError):
            store.read_page(0)

    def test_negative_id_rejected(self, store):
        with pytest.raises(StoreError):
            store.read_page(-1)

    def test_counters(self, store):
        pid = store.allocate()
        store.write_page(pid, b"x" * PAGE)
        store.read_page(pid)
        store.read_page(pid)
        assert store.stats.disk_writes == 1
        assert store.stats.disk_reads == 2

    def test_read_with_stats_override(self, store):
        pid = store.allocate()
        store.write_page(pid, b"x" * PAGE)
        other = IOStats()
        store.read_page(pid, other)
        assert other.disk_reads == 1
        assert store.stats.disk_reads == 0

    def test_peek_does_not_count(self, store):
        pid = store.allocate()
        store.write_page(pid, b"x" * PAGE)
        store.stats.reset()
        assert store.peek_page(pid) == b"x" * PAGE
        assert store.stats.disk_reads == 0

    def test_page_ids_iterates_all(self, store):
        for _ in range(4):
            store.allocate()
        assert list(store.page_ids()) == [0, 1, 2, 3]

    def test_tiny_page_size_rejected(self):
        with pytest.raises(StoreError):
            MemoryPageStore(8)


class TestMemorySpecific:
    def test_read_allocated_unwritten_rejected(self):
        s = MemoryPageStore(PAGE)
        pid = s.allocate()
        with pytest.raises(StoreError):
            s.read_page(pid)


class TestFileSpecific:
    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "p.bin"
        with FilePageStore(path, PAGE) as s:
            pid = s.allocate()
            s.write_page(pid, b"z" * PAGE)
        with FilePageStore(path, PAGE) as s2:
            assert s2.page_count == 1
            assert s2.read_page(pid) == b"z" * PAGE

    def test_bytes_really_on_disk(self, tmp_path):
        path = tmp_path / "p.bin"
        with FilePageStore(path, PAGE) as s:
            pid = s.allocate()
            s.write_page(pid, b"q" * PAGE)
            s.flush()
            assert os.path.getsize(path) == PAGE
            with open(path, "rb") as f:
                assert f.read() == b"q" * PAGE

    def test_misaligned_existing_file_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"x" * (PAGE + 1))
        with pytest.raises(StoreError):
            FilePageStore(path, PAGE)

    def test_closed_store_rejects_io(self, tmp_path):
        s = FilePageStore(tmp_path / "c.bin", PAGE)
        pid = s.allocate()
        s.write_page(pid, b"x" * PAGE)
        s.close()
        with pytest.raises(StoreError):
            s.read_page(pid)

    def test_double_close_is_safe(self, tmp_path):
        s = FilePageStore(tmp_path / "d.bin", PAGE)
        s.close()
        s.close()

    def test_path_property(self, tmp_path):
        path = tmp_path / "e.bin"
        with FilePageStore(path, PAGE) as s:
            assert s.path == str(path)
