"""Unit tests for MemoryPageStore and FilePageStore."""

import os

import pytest

from repro.storage.counters import IOStats
from repro.storage.integrity import TRAILER_SIZE, ChecksumError
from repro.storage.store import FilePageStore, MemoryPageStore, StoreError

PAGE = 512


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        yield MemoryPageStore(PAGE)
    else:
        s = FilePageStore(tmp_path / "pages.bin", PAGE)
        yield s
        s.close()


class TestCommonBehaviour:
    def test_allocate_returns_dense_ids(self, store):
        assert [store.allocate() for _ in range(3)] == [0, 1, 2]
        assert store.page_count == 3

    def test_write_read_roundtrip(self, store):
        pid = store.allocate()
        payload = bytes(range(256)) * 2
        store.write_page(pid, payload)
        assert store.read_page(pid) == payload

    def test_overwrite(self, store):
        pid = store.allocate()
        store.write_page(pid, b"a" * PAGE)
        store.write_page(pid, b"b" * PAGE)
        assert store.read_page(pid) == b"b" * PAGE

    def test_wrong_size_write_rejected(self, store):
        pid = store.allocate()
        with pytest.raises(StoreError):
            store.write_page(pid, b"short")

    def test_read_unallocated_rejected(self, store):
        with pytest.raises(StoreError):
            store.read_page(0)

    def test_negative_id_rejected(self, store):
        with pytest.raises(StoreError):
            store.read_page(-1)

    def test_counters(self, store):
        pid = store.allocate()
        store.write_page(pid, b"x" * PAGE)
        store.read_page(pid)
        store.read_page(pid)
        assert store.stats.disk_writes == 1
        assert store.stats.disk_reads == 2

    def test_read_with_stats_override(self, store):
        pid = store.allocate()
        store.write_page(pid, b"x" * PAGE)
        other = IOStats()
        store.read_page(pid, other)
        assert other.disk_reads == 1
        assert store.stats.disk_reads == 0

    def test_peek_does_not_count(self, store):
        pid = store.allocate()
        store.write_page(pid, b"x" * PAGE)
        store.stats.reset()
        assert store.peek_page(pid) == b"x" * PAGE
        assert store.stats.disk_reads == 0

    def test_page_ids_iterates_all(self, store):
        for _ in range(4):
            store.allocate()
        assert list(store.page_ids()) == [0, 1, 2, 3]

    def test_tiny_page_size_rejected(self):
        with pytest.raises(StoreError):
            MemoryPageStore(8)


class TestMemorySpecific:
    def test_read_allocated_unwritten_rejected(self):
        s = MemoryPageStore(PAGE)
        pid = s.allocate()
        with pytest.raises(StoreError):
            s.read_page(pid)


class TestFileSpecific:
    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "p.bin"
        with FilePageStore(path, PAGE) as s:
            pid = s.allocate()
            s.write_page(pid, b"z" * PAGE)
        with FilePageStore(path, PAGE) as s2:
            assert s2.page_count == 1
            assert s2.read_page(pid) == b"z" * PAGE

    def test_bytes_really_on_disk(self, tmp_path):
        path = tmp_path / "p.bin"
        with FilePageStore(path, PAGE) as s:
            pid = s.allocate()
            s.write_page(pid, b"q" * PAGE)
            s.flush()
            assert os.path.getsize(path) == PAGE
            with open(path, "rb") as f:
                assert f.read() == b"q" * PAGE

    def test_misaligned_existing_file_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"x" * (PAGE + 1))
        with pytest.raises(StoreError):
            FilePageStore(path, PAGE)

    def test_closed_store_rejects_io(self, tmp_path):
        s = FilePageStore(tmp_path / "c.bin", PAGE)
        pid = s.allocate()
        s.write_page(pid, b"x" * PAGE)
        s.close()
        with pytest.raises(StoreError, match="closed"):
            s.read_page(pid)

    def test_every_operation_rejected_after_close(self, tmp_path):
        s = FilePageStore(tmp_path / "c2.bin", PAGE)
        pid = s.allocate()
        s.write_page(pid, b"x" * PAGE)
        s.close()
        for op in (s.allocate,
                   lambda: s.write_page(pid, b"y" * PAGE),
                   lambda: s.peek_page(pid),
                   lambda: s.raw_read(pid),
                   lambda: s.raw_write(pid, b"y" * PAGE),
                   s.flush):
            with pytest.raises(StoreError, match="closed"):
                op()

    def test_double_close_is_safe(self, tmp_path):
        s = FilePageStore(tmp_path / "d.bin", PAGE)
        s.close()
        s.close()

    def test_path_property(self, tmp_path):
        path = tmp_path / "e.bin"
        with FilePageStore(path, PAGE) as s:
            assert s.path == str(path)

    def test_batched_allocation_trims_back_on_flush(self, tmp_path):
        """allocate() extends the file in doubling truncate batches, but
        flush/close always trim to exactly page_count pages."""
        path = tmp_path / "batch.bin"
        with FilePageStore(path, PAGE) as s:
            for i in range(37):
                pid = s.allocate()
                s.write_page(pid, bytes([i % 251]) * PAGE)
            s.flush()
            assert os.path.getsize(path) == 37 * PAGE
        assert os.path.getsize(path) == 37 * PAGE
        with FilePageStore(path, PAGE) as s2:
            assert s2.page_count == 37
            assert s2.read_page(36) == bytes([36 % 251]) * PAGE

    def test_allocated_unwritten_pages_do_not_linger_on_disk(self, tmp_path):
        path = tmp_path / "over.bin"
        with FilePageStore(path, PAGE) as s:
            s.allocate()
            s.write_page(0, b"a" * PAGE)
            s.allocate()  # extended but never written
        assert os.path.getsize(path) == 2 * PAGE  # exact, not the batch


class TestDurableFile:
    """Checksums + journal + superblock (the opt-in durability layer)."""

    def _durable(self, tmp_path, name="d.pages", **kw):
        kw.setdefault("checksums", True)
        kw.setdefault("journal", True)
        return FilePageStore(tmp_path / name, PAGE, **kw)

    def _payload(self, store, fill=b"v"):
        return fill * store.payload_size + b"\x00" * TRAILER_SIZE

    def test_payload_size_reserves_trailer(self, tmp_path):
        with self._durable(tmp_path) as s:
            assert s.payload_size == PAGE - TRAILER_SIZE

    def test_roundtrip_and_self_describing_reopen(self, tmp_path):
        with self._durable(tmp_path) as s:
            pid = s.allocate()
            s.write_page(pid, self._payload(s))
            path = s.path
        with FilePageStore.open_existing(path) as s2:
            assert s2.checksums and s2.journal_enabled
            assert s2.page_count == 1
            assert s2.read_page(0) == self._payload(s2)

    def test_payload_into_trailer_region_rejected(self, tmp_path):
        with self._durable(tmp_path) as s:
            pid = s.allocate()
            with pytest.raises(StoreError, match="trailer"):
                s.write_page(pid, b"x" * PAGE)

    def test_corruption_detected_on_read(self, tmp_path):
        with self._durable(tmp_path) as s:
            pid = s.allocate()
            s.write_page(pid, self._payload(s))
            raw = bytearray(s.raw_read(pid))
            raw[10] ^= 0x40
            s.raw_write(pid, bytes(raw))
            with pytest.raises(ChecksumError):
                s.read_page(pid)
            assert s.checksum_failures == 1

    def test_flag_mismatch_on_reopen_rejected(self, tmp_path):
        with self._durable(tmp_path, journal=False) as s:
            path = s.path
        with pytest.raises(StoreError, match="flags"):
            FilePageStore(path, PAGE, checksums=True, journal=True)

    def test_plain_open_of_durable_file_rejected(self, tmp_path):
        with self._durable(tmp_path) as s:
            path = s.path
        with pytest.raises(StoreError, match="superblock"):
            FilePageStore(path, PAGE)

    def test_open_existing_on_plain_file_rejected(self, tmp_path):
        path = tmp_path / "plain.bin"
        with FilePageStore(path, PAGE) as s:
            s.allocate()
            s.write_page(0, b"x" * PAGE)
        with pytest.raises(StoreError, match="no superblock"):
            FilePageStore.open_existing(path)

    def test_page_size_mismatch_on_reopen_rejected(self, tmp_path):
        with self._durable(tmp_path) as s:
            path = s.path
        with pytest.raises(StoreError, match="page size"):
            FilePageStore(path, PAGE * 2, checksums=True, journal=True)

    def test_tree_meta_roundtrip(self, tmp_path):
        meta = {"height": 2, "root_page": 4, "ndim": 2,
                "capacity": 10, "size": 33}
        with self._durable(tmp_path) as s:
            assert s.tree_meta is None
            s.set_tree_meta(meta)
            path = s.path
        with FilePageStore.open_existing(path) as s2:
            assert s2.tree_meta == meta

    def test_tree_meta_requires_durability(self, tmp_path):
        with FilePageStore(tmp_path / "p.bin", PAGE) as s:
            assert not s.supports_tree_meta
            with pytest.raises(StoreError, match="superblock"):
                s.set_tree_meta({"height": 1, "root_page": 0, "ndim": 2,
                                 "capacity": 1, "size": 1})

    def test_tree_meta_missing_keys_rejected(self, tmp_path):
        with self._durable(tmp_path) as s:
            with pytest.raises(StoreError, match="missing keys"):
                s.set_tree_meta({"height": 1})

    def test_uncommitted_pages_discarded_on_reopen(self, tmp_path):
        """The superblock's page count is the committed truth: pages
        allocated after the last flush do not exist after reopen."""
        s = self._durable(tmp_path)
        path = s.path
        s.allocate()
        s.write_page(0, self._payload(s))
        s.flush()
        s.allocate()
        s.write_page(1, self._payload(s, b"w"))
        # no flush: simulate losing the process
        s._crashed = True
        s.close()
        with FilePageStore.open_existing(path) as s2:
            assert s2.page_count == 1

    def test_memory_store_has_no_superblock_features(self):
        s = MemoryPageStore(PAGE)
        assert not getattr(s, "supports_tree_meta", False)
