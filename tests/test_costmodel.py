"""Unit tests for the analytical cost model."""

import numpy as np
import pytest

from repro.core.geometry import GeometryError, RectArray
from repro.core.packing import HilbertSort, NearestX, SortTileRecursive
from repro.queries import region_queries
from repro.rtree.bulk import bulk_load
from repro.rtree.costmodel import (
    expected_accesses_by_level,
    expected_accesses_quadratic,
    expected_node_accesses,
)
from repro.rtree.stats import measure_paged


@pytest.fixture(scope="module")
def tree():
    rng = np.random.default_rng(0)
    rects = RectArray.from_points(rng.random((20_000, 2)))
    return bulk_load(rects, SortTileRecursive(), capacity=100)[0]


class TestModelBasics:
    def test_point_query_model_equals_total_area_plus_root(self, tree):
        """At q=0 the visit probability is just each node's area; the model
        must equal the measured area sums."""
        q = measure_paged(tree)
        assert expected_node_accesses(tree, 0.0) == pytest.approx(
            q.total_area)

    def test_by_level_sums_to_total(self, tree):
        by_level = expected_accesses_by_level(tree, 0.1)
        assert sum(by_level.values()) == pytest.approx(
            expected_node_accesses(tree, 0.1))

    def test_monotone_in_query_size(self, tree):
        costs = [expected_node_accesses(tree, q)
                 for q in (0.0, 0.05, 0.1, 0.3)]
        assert costs == sorted(costs)

    def test_capped_by_node_count(self, tree):
        assert expected_node_accesses(tree, 1.0) <= tree.page_count + 1e-9

    def test_rect_query_extents(self, tree):
        iso = expected_node_accesses(tree, 0.1)
        aniso = expected_node_accesses(tree, (0.1, 0.1))
        assert iso == pytest.approx(aniso)

    def test_negative_extent_rejected(self, tree):
        with pytest.raises(GeometryError):
            expected_node_accesses(tree, -0.1)

    def test_wrong_arity_rejected(self, tree):
        with pytest.raises(GeometryError):
            expected_node_accesses(tree, (0.1, 0.1, 0.1))


class TestModelAgainstMeasurement:
    @pytest.mark.parametrize("side", [0.05, 0.1, 0.2])
    def test_predicts_unbuffered_accesses(self, tree, side):
        """On uniform data the model must predict measured un-buffered
        accesses within ~15% (clamping at the boundary explains the
        residual: queries near edges are smaller)."""
        searcher = tree.searcher(buffer_pages=1)
        workload = region_queries(side, 400, seed=3)
        for q in workload:
            searcher.search(q)
        measured = searcher.disk_accesses / len(workload)
        predicted = expected_node_accesses(tree, side)
        assert predicted == pytest.approx(measured, rel=0.15)

    def test_ranks_algorithms_like_measurement(self):
        """The paper's use of area+perimeter: the model must rank STR, HS
        and NX in the same order as measured accesses."""
        rng = np.random.default_rng(5)
        rects = RectArray.from_points(rng.random((10_000, 2)))
        side = 0.1
        predicted = {}
        measured = {}
        for algo in (SortTileRecursive(), HilbertSort(), NearestX()):
            t, _ = bulk_load(rects, algo, capacity=100)
            predicted[algo.name] = expected_node_accesses(t, side)
            searcher = t.searcher(buffer_pages=1)
            for q in region_queries(side, 300, seed=6):
                searcher.search(q)
            measured[algo.name] = searcher.disk_accesses
        rank = lambda d: sorted(d, key=d.get)
        assert rank(predicted) == rank(measured) == ["STR", "HS", "NX"]


class TestQuadraticForm:
    def test_matches_exact_model_for_small_queries(self, tree):
        """Without boundary clipping the 2-D closed form equals the exact
        Minkowski model; check on a query small enough that clipping is
        negligible."""
        q = measure_paged(tree)
        side = 0.01
        closed = expected_accesses_quadratic(
            q.total_area, q.total_perimeter, tree.page_count, side)
        exact = expected_node_accesses(tree, side)
        assert closed == pytest.approx(exact, rel=0.02)

    def test_zero_side_is_area(self, tree):
        q = measure_paged(tree)
        assert expected_accesses_quadratic(
            q.total_area, q.total_perimeter, tree.page_count, 0.0
        ) == q.total_area

    def test_negative_rejected(self):
        with pytest.raises(GeometryError):
            expected_accesses_quadratic(1.0, 1.0, 10, -0.1)
