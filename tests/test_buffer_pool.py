"""Unit tests for the buffer pool and its replacement policies."""

import pytest

from repro.storage.buffer import (
    BufferError,
    BufferPool,
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    make_policy,
)
from repro.storage.counters import IOStats


class CountingFetch:
    """Fetch stub that records which keys were fetched, in order."""

    def __init__(self):
        self.calls = []

    def __call__(self, key):
        self.calls.append(key)
        return f"page-{key}"


@pytest.fixture
def fetch():
    return CountingFetch()


class TestBasics:
    def test_miss_then_hit(self, fetch):
        pool = BufferPool(4, fetch)
        assert pool.get(1) == "page-1"
        assert pool.get(1) == "page-1"
        assert fetch.calls == [1]
        assert pool.stats.buffer_misses == 1
        assert pool.stats.buffer_hits == 1

    def test_capacity_one_works(self, fetch):
        pool = BufferPool(1, fetch)
        pool.get(1)
        pool.get(2)
        pool.get(1)
        assert fetch.calls == [1, 2, 1]

    def test_zero_capacity_rejected(self, fetch):
        with pytest.raises(BufferError):
            BufferPool(0, fetch)

    def test_len_tracks_residency(self, fetch):
        pool = BufferPool(3, fetch)
        for k in range(5):
            pool.get(k)
        assert len(pool) == 3

    def test_contains_has_no_side_effects(self, fetch):
        pool = BufferPool(2, fetch)
        pool.get(1)
        pool.get(2)
        assert pool.contains(1)
        # If contains() refreshed LRU position, 1 would survive instead of 2.
        pool.get(3)
        assert not pool.contains(1) or not pool.contains(2)

    def test_shared_stats_object(self, fetch):
        stats = IOStats()
        pool = BufferPool(2, fetch, stats=stats)
        pool.get(1)
        assert stats.buffer_misses == 1


class TestLRU:
    def test_evicts_least_recently_used(self, fetch):
        pool = BufferPool(2, fetch, policy="lru")
        pool.get(1)
        pool.get(2)
        pool.get(1)       # refresh 1; victim should be 2
        pool.get(3)
        assert pool.contains(1) and pool.contains(3)
        assert not pool.contains(2)

    def test_sequential_scan_thrashes(self, fetch):
        """A scan over capacity+1 pages misses every time under LRU."""
        pool = BufferPool(3, fetch, policy="lru")
        for _ in range(3):
            for k in range(4):
                pool.get(k)
        assert pool.stats.buffer_hits == 0
        assert pool.stats.buffer_misses == 12


class TestFIFO:
    def test_access_does_not_refresh(self, fetch):
        pool = BufferPool(2, fetch, policy="fifo")
        pool.get(1)
        pool.get(2)
        pool.get(1)       # hit, but FIFO ignores it
        pool.get(3)       # evicts 1 (first in)
        assert not pool.contains(1)
        assert pool.contains(2) and pool.contains(3)


class TestClock:
    def test_second_chance(self, fetch):
        pool = BufferPool(2, fetch, policy="clock")
        pool.get(1)
        pool.get(2)
        pool.get(1)       # reference bit of 1 set
        pool.get(3)       # hand skips 1 (clears bit), evicts 2
        assert pool.contains(1)
        assert not pool.contains(2)

    def test_behaves_when_all_referenced(self, fetch):
        pool = BufferPool(2, fetch, policy="clock")
        pool.get(1)
        pool.get(2)
        pool.get(1)
        pool.get(2)
        pool.get(3)       # everything referenced: sweep clears, then evicts
        assert len(pool) == 2
        assert pool.contains(3)


class TestPolicyFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy), ("LRU", LRUPolicy),
        ("fifo", FIFOPolicy), ("clock", ClockPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_policy(self):
        with pytest.raises(BufferError):
            make_policy("magic")

    def test_pool_accepts_instance(self, fetch):
        pool = BufferPool(2, fetch, policy=LRUPolicy())
        pool.get(1)
        assert pool.contains(1)


class TestPinning:
    def test_pinned_page_survives_eviction_pressure(self, fetch):
        pool = BufferPool(2, fetch)
        pool.pin(1)
        for k in range(2, 8):
            pool.get(k)
        assert pool.contains(1)

    def test_pin_fetches_if_absent(self, fetch):
        pool = BufferPool(2, fetch)
        pool.pin(5)
        assert fetch.calls == [5]

    def test_unpin_restores_evictability(self, fetch):
        pool = BufferPool(2, fetch)
        pool.pin(1)
        pool.unpin(1)
        pool.get(2)
        pool.get(3)
        pool.get(4)
        assert not pool.contains(1)

    def test_unpin_unpinned_rejected(self, fetch):
        pool = BufferPool(2, fetch)
        pool.get(1)
        with pytest.raises(BufferError):
            pool.unpin(1)

    def test_nested_pins(self, fetch):
        pool = BufferPool(2, fetch)
        pool.pin(1)
        pool.pin(1)
        pool.unpin(1)
        assert 1 in pool.pinned_keys
        pool.unpin(1)
        assert 1 not in pool.pinned_keys

    def test_everything_pinned_raises_on_eviction(self, fetch):
        pool = BufferPool(2, fetch)
        pool.pin(1)
        pool.pin(2)
        with pytest.raises(BufferError):
            pool.get(3)


class TestWriteback:
    def test_dirty_eviction_writes_back(self, fetch):
        written = []
        pool = BufferPool(
            2, fetch, writeback=lambda k, v: written.append((k, v))
        )
        pool.put(1, "v1", dirty=True)
        pool.get(2)
        pool.get(3)  # evicts 1 (dirty)
        assert written == [(1, "v1")]

    def test_clean_eviction_no_writeback(self, fetch):
        written = []
        pool = BufferPool(
            2, fetch, writeback=lambda k, v: written.append(k)
        )
        pool.get(1)
        pool.get(2)
        pool.get(3)
        assert written == []

    def test_flush_writes_all_dirty(self, fetch):
        written = []
        pool = BufferPool(
            4, fetch, writeback=lambda k, v: written.append(k)
        )
        pool.put(1, "a")
        pool.put(2, "b")
        pool.flush()
        assert sorted(written) == [1, 2]
        pool.flush()  # idempotent
        assert sorted(written) == [1, 2]

    def test_dirty_eviction_without_writeback_raises(self, fetch):
        pool = BufferPool(1, fetch)
        pool.put(1, "a", dirty=True)
        with pytest.raises(BufferError):
            pool.get(2)

    def test_put_overwrites_resident_value(self, fetch):
        pool = BufferPool(2, fetch, writeback=lambda k, v: None)
        pool.get(1)
        pool.put(1, "replacement", dirty=False)
        assert pool.get(1) == "replacement"

    def test_invalidate_drops_without_writeback(self, fetch):
        written = []
        pool = BufferPool(2, fetch,
                          writeback=lambda k, v: written.append(k))
        pool.put(1, "a", dirty=True)
        pool.invalidate(1)
        assert not pool.contains(1)
        assert written == []

    def test_clear_flushes_then_empties(self, fetch):
        written = []
        pool = BufferPool(4, fetch,
                          writeback=lambda k, v: written.append(k))
        pool.put(1, "a")
        pool.get(2)
        pool.clear()
        assert written == [1]
        assert len(pool) == 0
