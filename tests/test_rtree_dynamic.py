"""Unit tests for the dynamic (Guttman) R-tree."""

import numpy as np
import pytest

from repro.core.geometry import GeometryError, Rect
from repro.rtree.node import Entry, Node, RTreeError
from repro.rtree.tree import RTree
from repro.rtree.validate import validate_dynamic

from tests.conftest import brute_force_search


def build_tree(points, capacity=8, split="quadratic"):
    tree = RTree(ndim=2, capacity=capacity, split=split)
    for i, p in enumerate(points):
        tree.insert(Rect.from_point(p), i)
    return tree


class TestConstruction:
    def test_empty(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.is_empty()
        assert tree.height == 1

    def test_bad_capacity(self):
        with pytest.raises(RTreeError):
            RTree(capacity=1)

    def test_bad_min_fill(self):
        with pytest.raises(RTreeError):
            RTree(min_fill=0.9)

    def test_bad_ndim(self):
        with pytest.raises(GeometryError):
            RTree(ndim=0)

    def test_empty_tree_has_no_mbr(self):
        with pytest.raises(RTreeError):
            RTree().mbr()


class TestInsert:
    def test_single(self):
        tree = RTree(capacity=4)
        tree.insert(Rect((0, 0), (1, 1)), 7)
        assert len(tree) == 1
        assert tree.search(Rect((0, 0), (2, 2))) == [7]

    def test_wrong_ndim_rejected(self):
        tree = RTree(ndim=2)
        with pytest.raises(GeometryError):
            tree.insert(Rect((0,), (1,)), 0)

    def test_grows_via_splits(self, rng):
        tree = build_tree(rng.random((100, 2)), capacity=4)
        assert tree.height >= 3
        validate_dynamic(tree, range(100))

    def test_all_data_searchable(self, rng):
        pts = rng.random((200, 2))
        tree = build_tree(pts, capacity=8)
        found = tree.search(Rect((0, 0), (1, 1)))
        assert sorted(found) == list(range(200))

    def test_linear_split_variant(self, rng):
        pts = rng.random((150, 2))
        tree = build_tree(pts, capacity=6, split="linear")
        validate_dynamic(tree, range(150))

    def test_duplicate_ids_allowed(self):
        tree = RTree(capacity=4)
        tree.insert(Rect.from_point((0.1, 0.1)), 1)
        tree.insert(Rect.from_point((0.2, 0.2)), 1)
        assert len(tree) == 2

    def test_extend(self, rng):
        tree = RTree(capacity=8)
        items = [(Rect.from_point(p), i)
                 for i, p in enumerate(rng.random((50, 2)))]
        tree.extend(items)
        assert len(tree) == 50

    def test_from_items(self, rng):
        items = [(Rect.from_point(p), i)
                 for i, p in enumerate(rng.random((60, 2)))]
        tree = RTree.from_items(items, capacity=8)
        validate_dynamic(tree, range(60))

    def test_identical_points_mass_insert(self):
        tree = RTree(capacity=4)
        for i in range(50):
            tree.insert(Rect.from_point((0.5, 0.5)), i)
        validate_dynamic(tree, range(50))
        assert sorted(tree.point_query((0.5, 0.5))) == list(range(50))


class TestSearch:
    def test_matches_brute_force(self, small_rects):
        tree = RTree(capacity=8)
        for i, r in enumerate(small_rects):
            tree.insert(r, i)
        rng = np.random.default_rng(3)
        for _ in range(30):
            lo = rng.random(2) * 0.8
            query = Rect(tuple(lo), tuple(lo + rng.random(2) * 0.2))
            assert set(tree.search(query)) == brute_force_search(
                small_rects, query)

    def test_point_query(self, rng):
        pts = rng.random((100, 2))
        tree = build_tree(pts)
        target = tuple(pts[42])
        assert 42 in tree.point_query(target)

    def test_empty_region(self, rng):
        tree = build_tree(rng.random((50, 2)) * 0.5)
        assert tree.search(Rect((0.9, 0.9), (1.0, 1.0))) == []

    def test_count(self, rng):
        pts = rng.random((80, 2))
        tree = build_tree(pts)
        q = Rect((0.25, 0.25), (0.75, 0.75))
        assert tree.count(q) == len(tree.search(q))

    def test_search_counting_visits_at_least_root(self, rng):
        tree = build_tree(rng.random((50, 2)))
        _, visited = tree.search_counting(Rect((2, 2), (3, 3)))
        assert visited == 1  # only the root is examined

    def test_query_dim_mismatch(self):
        tree = RTree(ndim=2)
        with pytest.raises(GeometryError):
            tree.search(Rect((0,), (1,)))


class TestDelete:
    def test_delete_existing(self, rng):
        pts = rng.random((60, 2))
        tree = build_tree(pts, capacity=6)
        rect = Rect.from_point(tuple(pts[10]))
        assert tree.delete(rect, 10)
        assert len(tree) == 59
        assert 10 not in tree.search(Rect((0, 0), (1, 1)))
        validate_dynamic(tree)

    def test_delete_absent_returns_false(self, rng):
        tree = build_tree(rng.random((20, 2)))
        assert not tree.delete(Rect.from_point((0.123456, 0.654321)), 999)
        assert len(tree) == 20

    def test_delete_wrong_id_same_rect(self, rng):
        pts = rng.random((20, 2))
        tree = build_tree(pts)
        rect = Rect.from_point(tuple(pts[5]))
        assert not tree.delete(rect, 999)

    def test_delete_all(self, rng):
        pts = rng.random((80, 2))
        tree = build_tree(pts, capacity=6)
        order = rng.permutation(80)
        for i in order:
            assert tree.delete(Rect.from_point(tuple(pts[i])), int(i))
            validate_dynamic(tree)
        assert tree.is_empty()
        assert tree.height == 1

    def test_delete_then_reinsert(self, rng):
        pts = rng.random((50, 2))
        tree = build_tree(pts, capacity=5)
        for i in range(25):
            tree.delete(Rect.from_point(tuple(pts[i])), i)
        for i in range(25):
            tree.insert(Rect.from_point(tuple(pts[i])), i)
        validate_dynamic(tree, range(50))

    def test_condense_triggers_reinsertion(self, rng):
        """Deleting most of a cluster forces underfull-node re-insertion."""
        cluster = rng.random((30, 2)) * 0.05
        spread = rng.random((30, 2)) * 0.9 + 0.05
        pts = np.concatenate([cluster, spread])
        tree = build_tree(pts, capacity=5)
        for i in range(28):
            assert tree.delete(Rect.from_point(tuple(pts[i])), i)
        validate_dynamic(tree)
        remaining = set(tree.search(Rect((0, 0), (1, 1))))
        assert remaining == set(range(28, 60))


class TestStructure:
    def test_node_count_and_leaf_count(self, rng):
        tree = build_tree(rng.random((100, 2)), capacity=5)
        leaves = tree.leaf_count()
        assert leaves >= 100 / 5
        assert tree.node_count() > leaves

    def test_iter_level(self, rng):
        tree = build_tree(rng.random((100, 2)), capacity=5)
        level_sizes = [
            sum(1 for _ in tree.iter_level(lv)) for lv in range(tree.height)
        ]
        assert sum(level_sizes) == tree.node_count()
        assert level_sizes[-1] == 1  # root level

    def test_space_utilization_between_bounds(self, rng):
        tree = build_tree(rng.random((200, 2)), capacity=8)
        util = tree.space_utilization()
        assert 0.3 <= util <= 1.0

    def test_space_utilization_empty(self):
        assert RTree().space_utilization() == 0.0

    def test_mbr_covers_data(self, rng):
        pts = rng.random((50, 2))
        tree = build_tree(pts)
        mbr = tree.mbr()
        for p in pts:
            assert mbr.contains_point(tuple(p))


class TestNodeInternals:
    def test_entry_requires_exactly_one_target(self):
        with pytest.raises(RTreeError):
            Entry(rect=Rect((0, 0), (1, 1)))
        with pytest.raises(RTreeError):
            Entry(rect=Rect((0, 0), (1, 1)), child=Node(level=0), data_id=1)

    def test_leaf_rejects_child_entry(self):
        leaf = Node(level=0)
        with pytest.raises(RTreeError):
            leaf.add(Entry(rect=Rect((0, 0), (1, 1)), child=Node(level=0)))

    def test_internal_level_mismatch_rejected(self):
        parent = Node(level=2)
        with pytest.raises(RTreeError):
            parent.add(Entry(rect=Rect((0, 0), (1, 1)), child=Node(level=0)))

    def test_remove_child_unknown_rejected(self):
        parent = Node(level=1)
        with pytest.raises(RTreeError):
            parent.remove_child(Node(level=0))

    def test_empty_node_has_no_mbr(self):
        with pytest.raises(RTreeError):
            Node(level=0).mbr()
