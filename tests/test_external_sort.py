"""Unit tests for external-memory sorting and bulk loading."""

import numpy as np
import pytest

from repro.core.geometry import GeometryError, Rect, RectArray
from repro.core.packing import SortTileRecursive
from repro.core.packing.base import PackingError
from repro.core.packing.external import (
    ExternalRectSorter,
    external_bulk_load,
    external_str_order,
)
from repro.rtree.bulk import bulk_load
from repro.rtree.validate import validate_paged

from tests.conftest import brute_force_search


def point_records(points):
    """(key, id, lo, hi) record stream for a point array."""
    for i, p in enumerate(points):
        yield (0.0, i, tuple(p), tuple(p))


class TestExternalSorter:
    def test_sorts_across_spills(self, rng):
        with ExternalRectSorter(2, chunk_size=64) as sorter:
            keys = rng.random(1000)
            for i, k in enumerate(keys):
                sorter.add(k, i, (0.0, 0.0), (1.0, 1.0))
            assert sorter.run_count >= 15
            out = [r[0] for r in sorter.sorted_records()]
        assert out == sorted(keys.tolist())

    def test_preserves_payload(self, rng):
        with ExternalRectSorter(2, chunk_size=16) as sorter:
            pts = rng.random((100, 2))
            for i, p in enumerate(pts):
                sorter.add(p[0], i, tuple(p), tuple(p + 0.1))
            for record in sorter.sorted_records():
                key, data_id, lx, ly, hx, hy = record
                assert (lx, ly) == tuple(pts[data_id])
                assert hx == pytest.approx(pts[data_id][0] + 0.1)

    def test_empty_sorter(self):
        with ExternalRectSorter(2, chunk_size=16) as sorter:
            assert list(sorter.sorted_records()) == []

    def test_len(self):
        with ExternalRectSorter(2, chunk_size=4) as sorter:
            for i in range(10):
                sorter.add(i, i, (0, 0), (1, 1))
            assert len(sorter) == 10

    def test_stable_within_memory_limits(self, rng):
        """Records with equal keys keep a deterministic (id) order."""
        with ExternalRectSorter(2, chunk_size=8) as sorter:
            for i in range(50):
                sorter.add(1.0, i, (0, 0), (1, 1))
            ids = [r[1] for r in sorter.sorted_records()]
        assert ids == sorted(ids)

    def test_bad_chunk_size(self):
        with pytest.raises(PackingError):
            ExternalRectSorter(2, chunk_size=1)

    def test_bad_ndim(self):
        with pytest.raises(GeometryError):
            ExternalRectSorter(0)

    def test_spill_dir_cleanup(self, tmp_path):
        sorter = ExternalRectSorter(2, chunk_size=4,
                                    spill_dir=str(tmp_path))
        for i in range(20):
            sorter.add(i, i, (0, 0), (1, 1))
        list(sorter.sorted_records())
        assert any(tmp_path.iterdir())
        sorter.close()
        assert not any(tmp_path.iterdir())


class TestExternalStrOrder:
    def test_matches_in_memory_str_leaf_tiles(self, rng):
        """Same data, same capacity: the leaf MBR multiset must match the
        in-memory STR packer exactly."""
        pts = rng.random((5_000, 2))
        capacity = 50

        ordered = list(external_str_order(point_records(pts), 2, capacity,
                                          chunk_size=256))
        ext_pts = np.array([r[2:4] for r in ordered])
        ra = RectArray.from_points(ext_pts)
        sizes = [capacity] * (len(pts) // capacity)
        ext_mbrs = ra.group_mbrs(sizes)

        mem = RectArray.from_points(pts)
        perm = SortTileRecursive().order(mem, capacity)
        mem_mbrs = mem.take(perm).group_mbrs(sizes)

        ext_set = {(m.lo, m.hi) for m in ext_mbrs}
        mem_set = {(m.lo, m.hi) for m in mem_mbrs}
        assert ext_set == mem_set

    def test_every_record_survives(self, rng):
        pts = rng.random((777, 2))
        ordered = list(external_str_order(point_records(pts), 2, 10,
                                          chunk_size=100))
        assert sorted(r[1] for r in ordered) == list(range(777))

    def test_3d(self, rng):
        pts = rng.random((500, 3))
        recs = ((0.0, i, tuple(p), tuple(p)) for i, p in enumerate(pts))
        ordered = list(external_str_order(recs, 3, 8, chunk_size=64))
        assert len(ordered) == 500


class TestExternalBulkLoad:
    def test_tree_valid_and_correct(self, rng):
        pts = rng.random((3_000, 2))
        tree, report = external_bulk_load(point_records(pts), 2,
                                          capacity=20, chunk_size=128)
        validate_paged(tree, range(3_000))
        assert report.leaf_pages == 150
        ra = RectArray.from_points(pts)
        searcher = tree.searcher(buffer_pages=5)
        q = Rect((0.25, 0.25), (0.6, 0.6))
        assert set(searcher.search(q).tolist()) == brute_force_search(ra, q)

    def test_identical_quality_to_memory_loader(self, rng):
        from repro.rtree.stats import measure_paged

        pts = rng.random((2_000, 2))
        ext_tree, _ = external_bulk_load(point_records(pts), 2,
                                         capacity=25, chunk_size=100)
        mem_tree, _ = bulk_load(RectArray.from_points(pts),
                                SortTileRecursive(), capacity=25)
        ext_q = measure_paged(ext_tree)
        mem_q = measure_paged(mem_tree)
        assert ext_q.leaf_area == pytest.approx(mem_q.leaf_area)
        assert ext_q.leaf_perimeter == pytest.approx(mem_q.leaf_perimeter)

    def test_single_leaf(self):
        tree, report = external_bulk_load(
            point_records(np.array([[0.5, 0.5]])), 2, capacity=10
        )
        assert tree.height == 1
        validate_paged(tree, [0])

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            external_bulk_load(iter(()), 2, capacity=10)

    def test_rectangles_not_just_points(self, rng):
        lo = rng.random((400, 2)) * 0.9
        hi = lo + rng.random((400, 2)) * 0.1
        recs = ((0.0, i, tuple(lo[i]), tuple(hi[i])) for i in range(400))
        tree, _ = external_bulk_load(recs, 2, capacity=16)
        validate_paged(tree, range(400))


class TestStagedSpillRuns:
    """Crash-clean staging for spill runs (the resumable-sort satellite
    of the parallel pipeline): atomic publication, context-managed
    cleanup, and adoption of published runs by a resuming sorter."""

    def test_staged_runs_removed_on_clean_exit_and_exception(self, tmp_path):
        staging = tmp_path / "spills"
        with ExternalRectSorter(2, chunk_size=4,
                                staging=staging) as sorter:
            for i in range(10):
                sorter.add(float(i), i, (0.0, 0.0), (1.0, 1.0))
            assert sorter.run_count == 2
            assert staging.exists()
        assert not staging.exists()  # clean exit removes the staging

        with pytest.raises(RuntimeError):
            with ExternalRectSorter(2, chunk_size=4,
                                    staging=staging) as sorter:
                for i in range(10):
                    sorter.add(float(i), i, (0.0, 0.0), (1.0, 1.0))
                raise RuntimeError("boom")
        assert not staging.exists()  # exception removes it too

    def test_reuse_runs_adopts_published_spills(self, tmp_path):
        staging = tmp_path / "spills"
        records = [(float(i), i, (float(i), 0.0), (float(i) + 1.0, 1.0))
                   for i in range(20)]

        # A "killed" sorter: spilled 16 records into 4 published runs,
        # 2 more still in the in-memory buffer (lost with the crash);
        # keep() stands in for SIGKILL here.
        first = ExternalRectSorter(2, chunk_size=4, staging=staging)
        for rec in records[:18]:
            first.add(rec[0], rec[1], rec[2], rec[3])
        first.keep()
        first.close()
        assert staging.exists()

        # The resume adopts every published run and is told how many
        # records it holds, so the caller re-feeds only the rest.
        second = ExternalRectSorter(2, chunk_size=4, staging=staging,
                                    reuse_runs=True)
        assert second.resumed_records == 16
        assert len(second) == 16
        for rec in records[16:]:
            second.add(rec[0], rec[1], rec[2], rec[3])
        merged = list(second.sorted_records())
        assert [r[1] for r in merged] == list(range(20))
        second.close()
        assert not staging.exists()

    def test_reuse_sweeps_torn_tmp_files(self, tmp_path):
        staging = tmp_path / "spills"
        sorter = ExternalRectSorter(2, chunk_size=4, staging=staging)
        for i in range(8):
            sorter.add(float(i), i, (0.0, 0.0), (1.0, 1.0))
        sorter.keep()
        sorter.close()
        # A crash mid-spill leaves pid-suffixed litter, never a torn run.
        (staging / "run-000099.bin.tmp-1234").write_bytes(b"torn")
        resumed = ExternalRectSorter(2, chunk_size=4, staging=staging,
                                     reuse_runs=True)
        assert resumed.resumed_records == 8
        assert not (staging / "run-000099.bin.tmp-1234").exists()
        resumed.close()

    def test_reuse_rejects_damaged_run(self, tmp_path):
        staging = tmp_path / "spills"
        sorter = ExternalRectSorter(2, chunk_size=4, staging=staging)
        for i in range(8):
            sorter.add(float(i), i, (0.0, 0.0), (1.0, 1.0))
        sorter.keep()
        sorter.close()
        run = next(p for p in sorted(staging.iterdir())
                   if p.name.startswith("run-"))
        run.write_bytes(run.read_bytes()[:-3])  # truncate at rest
        with pytest.raises(PackingError, match="whole number"):
            ExternalRectSorter(2, chunk_size=4, staging=staging,
                               reuse_runs=True)

    def test_reuse_without_staging_is_an_error(self):
        with pytest.raises(PackingError, match="staging"):
            ExternalRectSorter(2, reuse_runs=True)

    def test_spill_dir_and_staging_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(PackingError, match="not both"):
            ExternalRectSorter(2, spill_dir=str(tmp_path),
                               staging=tmp_path / "st")
