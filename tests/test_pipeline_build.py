"""Integration tests for the fault-tolerant parallel bulk loader.

The central property, stated once and checked everywhere: for any
worker count, any injected crash/hang, and any resume, the parallel
pipeline's output store is **byte-for-byte identical** to a serial
:func:`repro.rtree.bulk.bulk_load` of the same input — same root page,
same height, same bytes in the same page ids.
"""

import numpy as np
import pytest

from repro.core.geometry import GeometryError, RectArray
from repro.core.packing import SortTileRecursive
from repro.pipeline import (
    PipelineError,
    PoisonShard,
    ResumeMismatch,
    parallel_bulk_load,
)
from repro.rtree.bulk import bulk_load
from repro.storage.page import required_page_size
from repro.storage.store import MemoryPageStore

CAPACITY = 25


def _dataset(rng, n=3000, ndim=2):
    los = rng.uniform(0.0, 1000.0, (n, ndim))
    his = los + rng.uniform(0.0, 10.0, (n, ndim))
    return RectArray(los, his)


def _serial(rects, capacity=CAPACITY):
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=capacity)
    return tree


def assert_same_store(tree_a, tree_b):
    """Byte-identity: same root/height and every page's exact bytes."""
    assert tree_a.root_page == tree_b.root_page
    assert tree_a.height == tree_b.height
    assert tree_a.store.page_count == tree_b.store.page_count
    for pid in range(tree_a.store.page_count):
        assert tree_a.store.raw_read(pid) == tree_b.store.raw_read(pid), \
            f"page {pid} differs"


@pytest.mark.parametrize("workers", [0, 1, 2, 4, 7])
def test_parallel_is_byte_identical_to_serial(tmp_path, rng, workers):
    rects = _dataset(rng)
    serial = _serial(rects)
    tree, report = parallel_bulk_load(
        rects, capacity=CAPACITY, workers=workers,
        staging_path=tmp_path / "staging",
    )
    assert_same_store(tree, serial)
    assert report.retries == {}
    assert report.resumed_shards == ()
    assert report.plan.shard_count > 1
    assert not (tmp_path / "staging").exists()  # cleaned after success


def test_worker_crash_is_retried_and_output_unchanged(tmp_path, rng):
    rects = _dataset(rng)
    tree, report = parallel_bulk_load(
        rects, capacity=CAPACITY, workers=2,
        staging_path=tmp_path / "staging",
        fault={1: ["crash"]},
    )
    assert report.retries == {1: 1}
    assert_same_store(tree, _serial(rects))


def test_hung_worker_is_reaped_and_retried(tmp_path, rng):
    rects = _dataset(rng)
    tree, report = parallel_bulk_load(
        rects, capacity=CAPACITY, workers=2,
        staging_path=tmp_path / "staging",
        fault={0: ["hang"]},
        heartbeat_s=0.1, deadline_s=0.6,
    )
    assert report.retries == {0: 1}
    assert_same_store(tree, _serial(rects))


def test_poison_shard_is_typed_and_resumable(tmp_path, rng):
    rects = _dataset(rng)
    staging = tmp_path / "staging"
    with pytest.raises(PoisonShard) as exc_info:
        parallel_bulk_load(
            rects, capacity=CAPACITY, workers=0,
            staging_path=staging,
            fault={2: ["crash", "crash", "crash"]},
            max_attempts=3,
        )
    poison = exc_info.value
    assert poison.shard == 2
    assert poison.attempts == 3
    # Never silent data loss: staging (with every healthy shard's
    # checkpoint) survives, and the diagnosis is on disk.
    assert staging.exists()
    assert (staging / "poison.json").exists()

    # Fixing the cause (here: no more injected faults) and resuming
    # re-runs only the poisoned shard.
    tree, report = parallel_bulk_load(
        rects, capacity=CAPACITY, workers=0,
        staging_path=staging, resume=True,
    )
    assert len(report.resumed_shards) == report.plan.shard_count - 1
    assert 2 not in report.resumed_shards
    assert_same_store(tree, _serial(rects))
    assert not staging.exists()


def test_resume_without_input_trusts_verified_staging(tmp_path, rng):
    rects = _dataset(rng)
    staging = tmp_path / "staging"
    tree_first, _ = parallel_bulk_load(
        rects, capacity=CAPACITY, workers=2,
        staging_path=staging, keep_staging=True,
    )
    # The orchestrator host may not have the input at resume time: the
    # staged arrays are the CRC-verified source of truth.
    tree_resumed, report = parallel_bulk_load(
        capacity=CAPACITY, workers=2,
        staging_path=staging, resume=True,
    )
    assert len(report.resumed_shards) == report.plan.shard_count
    assert_same_store(tree_resumed, tree_first)


def test_resume_rejects_different_input(tmp_path, rng):
    rects = _dataset(rng)
    staging = tmp_path / "staging"
    parallel_bulk_load(rects, capacity=CAPACITY, workers=0,
                       staging_path=staging, keep_staging=True)
    other = _dataset(rng)  # fresh draw from the same rng: different data
    with pytest.raises(ResumeMismatch):
        parallel_bulk_load(other, capacity=CAPACITY, workers=0,
                           staging_path=staging, resume=True)
    with pytest.raises(ResumeMismatch):
        parallel_bulk_load(rects, capacity=CAPACITY + 1, workers=0,
                           staging_path=staging, resume=True)


def test_fresh_build_refuses_to_trample_existing_staging(tmp_path, rng):
    rects = _dataset(rng)
    staging = tmp_path / "staging"
    parallel_bulk_load(rects, capacity=CAPACITY, workers=0,
                       staging_path=staging, keep_staging=True)
    with pytest.raises(PipelineError, match="resume"):
        parallel_bulk_load(rects, capacity=CAPACITY, workers=0,
                           staging_path=staging)


def test_damaged_run_file_is_detected_and_rerun(tmp_path, rng):
    rects = _dataset(rng)
    staging = tmp_path / "staging"
    parallel_bulk_load(rects, capacity=CAPACITY, workers=0,
                       staging_path=staging, keep_staging=True)
    # Corrupt one published shard run behind the checkpoint's back.
    run = staging / "shard-0001.run.bin"
    blob = bytearray(run.read_bytes())
    blob[100] ^= 0xFF
    run.write_bytes(blob)
    # Resume must notice (CRC mismatch), re-run that shard, and still
    # produce the identical tree.
    tree, report = parallel_bulk_load(
        capacity=CAPACITY, workers=0, staging_path=staging, resume=True)
    assert 1 not in report.resumed_shards
    assert len(report.resumed_shards) == report.plan.shard_count - 1
    assert_same_store(tree, _serial(rects))


def test_worker_metrics_are_merged_into_report(tmp_path, rng):
    rects = _dataset(rng)
    tree, report = parallel_bulk_load(
        rects, capacity=CAPACITY, workers=2,
        staging_path=tmp_path / "staging",
    )
    m = report.metrics
    assert m.counter("pipeline.records").value == len(rects)
    assert m.counter("pipeline.shards_completed").value \
        == report.plan.shard_count
    assert m.counter("pipeline.leaf_pages").value == report.plan.leaf_pages
    assert m.histogram("pipeline.shard.order_s").count \
        == report.plan.shard_count
    assert m.gauge("pipeline.workers").value == 2


def test_explicit_store_and_ids_roundtrip(tmp_path, rng):
    rects = _dataset(rng, n=500)
    ids = rng.permutation(10_000)[: len(rects)].astype(np.int64)
    store = MemoryPageStore(required_page_size(CAPACITY, rects.ndim))
    serial_store = MemoryPageStore(store.page_size)
    serial_tree, _ = bulk_load(rects, SortTileRecursive(),
                               data_ids=ids, capacity=CAPACITY,
                               store=serial_store)
    tree, _ = parallel_bulk_load(
        rects, data_ids=ids, capacity=CAPACITY, workers=2,
        store=store, staging_path=tmp_path / "staging",
    )
    assert_same_store(tree, serial_tree)
    hits = tree.searcher(buffer_pages=8).search(rects[0])
    assert ids[0] in hits


def test_one_dimensional_input_matches_serial(tmp_path, rng):
    los = rng.uniform(0.0, 100.0, (400, 1))
    rects = RectArray(los, los + 0.5)
    tree, _ = parallel_bulk_load(rects, capacity=8, workers=2,
                                 staging_path=tmp_path / "staging")
    assert_same_store(tree, _serial(rects, capacity=8))


def test_bad_arguments_are_typed(tmp_path, rng):
    rects = _dataset(rng, n=10)
    with pytest.raises(PipelineError):
        parallel_bulk_load(rects, workers=-1,
                           staging_path=tmp_path / "s1")
    with pytest.raises(PipelineError):
        parallel_bulk_load(rects, max_attempts=0,
                           staging_path=tmp_path / "s2")
    with pytest.raises(PipelineError):
        parallel_bulk_load(staging_path=tmp_path / "s3")  # fresh, no rects
    with pytest.raises(GeometryError):
        parallel_bulk_load(RectArray.from_points(np.empty((0, 2))),
                           staging_path=tmp_path / "s4")
