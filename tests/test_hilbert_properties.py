"""Property-based tests for the Hilbert curve."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hilbert.curve import hilbert_index, hilbert_point
from repro.hilbert.float_key import float_hilbert_keys, snap_to_grid
from repro.core.geometry import Rect, unit_square


@given(
    st.integers(1, 12),
    st.lists(st.tuples(st.integers(0, 2 ** 12 - 1),
                       st.integers(0, 2 ** 12 - 1)),
             min_size=1, max_size=50),
)
@settings(max_examples=60)
def test_roundtrip_2d(order, pairs):
    limit = 1 << order
    coords = np.array(
        [(x % limit, y % limit) for x, y in pairs], dtype=np.int64
    )
    idx = hilbert_index(coords, order=order)
    back = hilbert_point(idx, order=order, ndim=2)
    assert np.array_equal(back.astype(np.int64), coords)


@given(st.integers(1, 6), st.integers(2, 4))
@settings(max_examples=20, deadline=None)
def test_bijectivity_small_grids(order, ndim):
    if order * ndim > 14:  # keep the exhaustive check small
        order = 14 // ndim
    side = 1 << order
    grids = np.stack(
        np.meshgrid(*[np.arange(side)] * ndim, indexing="ij"), axis=-1
    ).reshape(-1, ndim)
    idx = hilbert_index(grids, order=order)
    assert len(set(idx.tolist())) == side ** ndim


@given(st.integers(2, 10))
def test_consecutive_indices_are_grid_neighbours(order):
    count = min(1 << (2 * order), 2048)
    pts = hilbert_point(
        np.arange(count, dtype=np.uint64), order=order, ndim=2
    ).astype(np.int64)
    steps = np.abs(np.diff(pts, axis=0)).sum(axis=1)
    assert (steps == 1).all()


@given(
    st.lists(
        st.tuples(st.floats(0, 1, allow_nan=False, width=32),
                  st.floats(0, 1, allow_nan=False, width=32)),
        min_size=1, max_size=40,
    )
)
@settings(max_examples=60)
def test_snap_to_grid_in_range(points):
    pts = np.array(points, dtype=np.float64)
    grid = snap_to_grid(pts, unit_square(), order=10)
    assert (grid >= 0).all()
    assert (grid < 1 << 10).all()


@given(st.integers(0, 2 ** 31))
@settings(max_examples=30)
def test_float_keys_deterministic(seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((50, 2))
    k1 = float_hilbert_keys(pts, unit_square())
    k2 = float_hilbert_keys(pts, unit_square())
    assert np.array_equal(k1, k2)


@given(st.integers(0, 2 ** 31))
@settings(max_examples=20)
def test_float_key_order_stable_across_resolutions(seed):
    """Raising the grid order must not reorder well-separated points: the
    paper's bit-refinement comparison is prefix-stable, and our truncation
    at ``order`` bits only merges points closer than one cell."""
    rng = np.random.default_rng(seed)
    # Points at least ~2^-10 apart so both resolutions discriminate them.
    pts = (rng.integers(0, 1 << 9, size=(40, 2)) + 0.5) / float(1 << 9)
    lo = float_hilbert_keys(pts, unit_square(), order=12)
    hi = float_hilbert_keys(pts, unit_square(), order=20)
    assert np.array_equal(np.argsort(lo, kind="stable"),
                          np.argsort(hi, kind="stable"))


@given(st.floats(0.001, 0.999), st.floats(0.001, 0.999))
def test_float_keys_clamp_outside_bounds(x, y):
    bounds = Rect((0.25, 0.25), (0.75, 0.75))
    inside = np.array([[0.5, 0.5]])
    outside = np.array([[x * 0.2, y * 0.2]])  # below bounds
    k_in = float_hilbert_keys(inside, bounds)
    k_out = float_hilbert_keys(outside, bounds)
    assert k_in.dtype == np.uint64 and k_out.dtype == np.uint64
