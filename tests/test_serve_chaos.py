"""Chaos soak: many concurrent clients against a misbehaving store.

The serving acceptance property, verified end-to-end over real sockets:
with transient read faults injected under the retry layer and at-rest
bit flips hiding beneath the checksum layer, **every one** of >= 2000
responses from >= 8 concurrent clients is

* bit-identical to a clean-store oracle (``ok`` and not ``partial``), or
* explicitly ``partial=true`` with an id set that is a *subset* of the
  oracle's (degraded reads under-report, never fabricate), or
* a typed error (``DeadlineExceeded`` / ``Overloaded`` /
  ``StoreUnavailable``).

Zero silently-wrong results, by exhaustive comparison.  On failure the
full violation list, run manifest and server state dump land in
``$REPRO_CHAOS_REPORT_DIR`` (CI uploads them as artifacts).
"""

import asyncio
import json
import os


from repro import RectArray, SortTileRecursive, bulk_load, obs
from repro.queries import point_queries, region_queries
from repro.rtree.paged import PagedRTree
from repro.serve import QueryClient, QueryServer, Request
from repro.storage import (
    FaultInjectingPageStore,
    FaultPlan,
    FilePageStore,
    MemoryPageStore,
    RetryPolicy,
)
from repro.storage.faults import corrupt_pages
from repro.storage.integrity import TRAILER_SIZE
from repro.storage.page import required_page_size

N_RECTS = 3_000
CAPACITY = 25
N_CLIENTS = 8
QUERIES_PER_CLIENT = 250  # 8 x 250 = 2000 total
ALLOWED_ERRORS = {"DeadlineExceeded", "Overloaded", "StoreUnavailable"}
#: Every 40th request carries a nanosecond deadline: a guaranteed, typed
#: DeadlineExceeded mixed into the stream.
DOOMED_STRIDE = 40


def _workload():
    queries = list(region_queries(0.04, 1_200, seed=71))
    queries += list(point_queries(800, seed=72))
    return queries


def _report_dir():
    return os.environ.get("REPRO_CHAOS_REPORT_DIR", "")


def _dump_artifacts(summary, violations, server_state):
    out_dir = _report_dir()
    if not out_dir:
        return ""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    manifest = obs.RunManifest.collect(
        "serve-chaos", duration_s=summary["duration_s"],
        extra={"chaos": summary},
    )
    paths.append(obs.write_manifest(manifest, out_dir))
    state_path = os.path.join(out_dir, "chaos-server-state.json")
    with open(state_path, "w") as f:
        json.dump(server_state, f, indent=2, default=str)
    paths.append(state_path)
    if violations:
        vpath = os.path.join(out_dir, "chaos-violations.json")
        with open(vpath, "w") as f:
            json.dump(violations[:100], f, indent=2, default=str)
        paths.append(vpath)
    return f" (artifacts: {', '.join(paths)})"


def test_chaos_soak_no_silently_wrong_answers(tmp_path, rng):
    import time
    started = time.time()
    rects = RectArray.from_points(rng.random((N_RECTS, 2)))

    # Clean oracle: same deterministic STR build, pristine memory store.
    oracle_tree, _ = bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
                               store=MemoryPageStore(4096))
    oracle = oracle_tree.searcher(512)
    queries = _workload()
    expected = [frozenset(int(x) for x in oracle.search(q)) for q in queries]

    # Durable on-disk build, then sabotage: three leaf pages take at-rest
    # bit flips beneath the checksum layer.
    page_size = required_page_size(CAPACITY, 2) + TRAILER_SIZE
    path = tmp_path / "chaos.pages"
    store = FilePageStore(path, page_size, checksums=True, journal=True)
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
                        store=store)
    leaves = tree.level_pages(0)
    corrupt = {leaves[0], leaves[len(leaves) // 2], leaves[-1]}
    store.close()

    reopened = FilePageStore.open_existing(path)
    for pid in sorted(corrupt):
        corrupt_pages(reopened, [(pid, reopened.page_size * 4 + 1)])

    # Transient read faults under a jittered (zero-wall-clock) retry: the
    # plan injects at most 2 consecutive faults, the policy retries 4
    # times, so transients are always absorbed invisibly.
    plan = FaultPlan(seed=123, p_transient_read=0.08,
                     max_transient_per_op=2)
    faulty = FaultInjectingPageStore(
        reopened, plan,
        retry=RetryPolicy(attempts=4, backoff_s=0.001, jitter=True, seed=5,
                          sleep=lambda s: None),
    )
    served_tree = PagedRTree.from_store(faulty)

    outcomes = {"exact": 0, "partial": 0}
    violations = []

    async def client_session(host, port, client_index):
        indices = list(range(client_index, len(queries), N_CLIENTS))
        async with await QueryClient.connect(host, port) as client:
            for n, qi in enumerate(indices):
                doomed = n % DOOMED_STRIDE == 7
                resp = await client.search(
                    queries[qi], deadline_s=1e-9 if doomed else None)
                record = {"client": client_index, "query": qi,
                          "response": resp.__dict__}
                if not resp.ok:
                    if resp.error not in ALLOWED_ERRORS:
                        violations.append({**record,
                                           "why": "untyped error"})
                    elif resp.ids is not None:
                        violations.append({**record,
                                           "why": "error carries ids"})
                    else:
                        outcomes[resp.error] = outcomes.get(resp.error,
                                                            0) + 1
                    continue
                if doomed:
                    violations.append({**record,
                                       "why": "success past a 1ns deadline"})
                    continue
                got = frozenset(resp.ids)
                if resp.partial:
                    if not got <= expected[qi]:
                        violations.append({**record,
                                           "why": "partial ids not a subset"})
                    else:
                        outcomes["partial"] += 1
                elif got != expected[qi]:
                    violations.append({**record,
                                       "why": "non-partial ids != oracle"})
                else:
                    outcomes["exact"] += 1

    async def scenario():
        async with QueryServer(served_tree, buffer_pages=48,
                               max_inflight=4, max_queue=16,
                               default_deadline_s=30.0) as server:
            host, port = server.address
            await asyncio.gather(*[
                client_session(host, port, i) for i in range(N_CLIENTS)
            ])
            return server

    server = asyncio.run(scenario())

    total = sum(outcomes.values())
    summary = {
        "duration_s": time.time() - started,
        "clients": N_CLIENTS,
        "queries": total,
        "outcomes": outcomes,
        "violations": len(violations),
        "injected": dict(plan.injected),
        "retries": faulty.retry_count,
        "corrupt_pages": sorted(corrupt),
        "quarantined_at_runtime": sorted(server.quarantine),
    }
    server_state = {
        "breaker": server.breaker.snapshot(),
        "admission": server.admission.snapshot(),
        "error_counts": dict(server.error_counts),
        "latency": server.latency.summary(),
        "degraded_reads": server.degraded_reads,
    }
    note = _dump_artifacts(summary, violations, server_state)

    # The soak must have actually exercised the chaos, not dodged it.
    assert total + len(violations) == N_CLIENTS * QUERIES_PER_CLIENT
    assert plan.injected["transient_read"] > 0, "no transient faults fired"
    assert faulty.retry_count > 0
    assert outcomes["partial"] > 0, "no degraded responses produced"
    assert outcomes["exact"] > 0
    assert outcomes.get("DeadlineExceeded", 0) > 0
    assert server.quarantine == corrupt  # every bad page was caught
    # ... and the one property that matters: nothing silently wrong.
    assert not violations, (
        f"{len(violations)} silently-wrong or mistyped responses, e.g. "
        f"{violations[0]['why']}{note}"
    )


def test_chaos_soak_with_mid_traffic_reloads(tmp_path, rng):
    """The soak's zero-silent-wrong bar holds while the serving
    generation is swapped underneath the traffic.

    Two durable files are built from the *same* records (byte-identical
    trees), and a reload client flips the server between them while the
    query clients run.  Because both generations answer identically, one
    oracle covers the whole stream: every response must be exact and ok
    — a failed or wrong query during any of the cutovers fails the test.
    """
    import time
    started = time.time()
    rects = RectArray.from_points(rng.random((N_RECTS, 2)))
    oracle_tree, _ = bulk_load(rects, SortTileRecursive(),
                               capacity=CAPACITY,
                               store=MemoryPageStore(4096))
    oracle = oracle_tree.searcher(512)
    queries = _workload()[:1_200]
    expected = [frozenset(int(x) for x in oracle.search(q))
                for q in queries]

    page_size = required_page_size(CAPACITY, 2) + TRAILER_SIZE
    paths = []
    for name in ("gen-a.pages", "gen-b.pages"):
        path = tmp_path / name
        store = FilePageStore(path, page_size, checksums=True,
                              journal=True)
        bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
                  store=store)
        store.close()
        paths.append(path)

    served = PagedRTree.from_store(FilePageStore.open_existing(paths[0]))
    violations = []
    reload_count = 0

    async def client_session(host, port, client_index):
        async with await QueryClient.connect(host, port) as client:
            for qi in range(client_index, len(queries), N_CLIENTS):
                resp = await client.search(queries[qi])
                if not resp.ok:
                    violations.append({"query": qi, "why": "failed",
                                       "error": resp.error})
                elif resp.partial:
                    violations.append({"query": qi, "why": "partial"})
                elif frozenset(resp.ids) != expected[qi]:
                    violations.append({"query": qi, "why": "wrong ids"})

    async def reload_session(host, port):
        nonlocal reload_count
        async with await QueryClient.connect(host, port) as client:
            flips = [paths[1], paths[0], paths[1], paths[0]]
            for target in flips:
                await asyncio.sleep(0.02)
                (await client.request(
                    Request(op="reload", path=str(target))
                )).raise_for_error()
                reload_count += 1

    async def scenario():
        async with QueryServer(served, buffer_pages=48,
                               allow_reload=True, max_inflight=8,
                               default_deadline_s=30.0) as server:
            host, port = server.address
            await asyncio.gather(
                *[client_session(host, port, i)
                  for i in range(N_CLIENTS)],
                reload_session(host, port),
            )
            return server

    server = asyncio.run(scenario())

    summary = {
        "duration_s": time.time() - started,
        "clients": N_CLIENTS,
        "queries": len(queries),
        "reloads": reload_count,
        "violations": len(violations),
        "final_generation": server.generation,
    }
    note = _dump_artifacts(summary, violations,
                           {"error_counts": dict(server.error_counts)})
    assert reload_count == 4
    assert server.generation == 5
    assert not violations, (
        f"{len(violations)} failed/wrong responses across reloads, e.g. "
        f"{violations[0]}{note}"
    )
