"""MmapPageStore: byte-parity with FilePageStore, first-touch CRC
verification, read-only enforcement, journal refusal, fault-injection
compatibility, and real multi-process shared readers."""

import hashlib
import multiprocessing
import os

import pytest

from repro import RectArray, SortTileRecursive, bulk_load
from repro.rtree.paged import PagedRTree
from repro.storage import FilePageStore, MmapPageStore
from repro.storage.faults import (
    FaultInjectingPageStore,
    FaultPlan,
    RetryPolicy,
    corrupt_pages,
)
from repro.storage.integrity import TRAILER_SIZE, ChecksumError
from repro.storage.journal import WriteJournal, journal_path
from repro.storage.page import required_page_size
from repro.storage.store import StoreError

CAPACITY = 25
NDIM = 2
PAGE_SIZE = required_page_size(CAPACITY, NDIM) + TRAILER_SIZE


def _build(rng, path, *, n=1_500, checksums=True, journal=True):
    store = FilePageStore(path, PAGE_SIZE, checksums=checksums,
                          journal=journal)
    rects = RectArray.from_points(rng.random((n, NDIM)))
    tree, _ = bulk_load(rects, SortTileRecursive(), capacity=CAPACITY,
                        store=store)
    return store, tree


class TestByteParity:
    @pytest.mark.parametrize("checksums,journal", [
        (True, True), (True, False), (False, False),
    ])
    def test_every_page_byte_identical(self, tmp_path, rng,
                                       checksums, journal):
        path = tmp_path / "tree.pages"
        store, tree = _build(rng, path, checksums=checksums,
                             journal=journal)
        # A plain (flagless) file has no superblock, so the mmap opener
        # needs the page size spelled out; durable files self-describe.
        kwargs = {} if checksums or journal else {"page_size": PAGE_SIZE}
        mapped = MmapPageStore(path, **kwargs)
        assert mapped.page_count == store.page_count
        assert mapped.payload_size == store.payload_size
        for pid in range(store.page_count):
            assert mapped.read_page(pid) == store.read_page(pid), pid
            assert mapped.raw_read(pid) == store.raw_read(pid), pid
        mapped.close()
        store.close()

    def test_interchangeable_under_a_searcher(self, tmp_path, rng):
        store, tree = _build(rng, tmp_path / "tree.pages")
        queries = [((0.1, 0.1), (0.4, 0.4)), ((0.0, 0.5), (0.9, 0.9))]
        oracle = tree.searcher(128)
        mapped = MmapPageStore(tmp_path / "tree.pages")
        served = PagedRTree.from_store(mapped)
        assert len(served) == len(tree)
        searcher = served.searcher(128)
        from repro.core.geometry import Rect
        for lo, hi in queries:
            q = Rect(lo, hi)
            assert sorted(searcher.search(q)) == sorted(oracle.search(q))
        mapped.close()
        store.close()

    def test_plain_file_requires_page_size(self, tmp_path, rng):
        path = tmp_path / "plain.pages"
        store, _ = _build(rng, path, checksums=False, journal=False)
        store.close()
        with pytest.raises(StoreError, match="page_size"):
            MmapPageStore(path)

    def test_page_size_mismatch_refused(self, tmp_path, rng):
        store, _ = _build(rng, tmp_path / "tree.pages")
        store.close()
        with pytest.raises(StoreError, match="page size"):
            MmapPageStore(tmp_path / "tree.pages",
                          page_size=PAGE_SIZE * 2)


class TestFirstTouchVerification:
    def test_corrupt_page_fails_loud_on_first_read(self, tmp_path, rng):
        store, tree = _build(rng, tmp_path / "tree.pages")
        victim = tree.level_pages(0)[0]
        corrupt_pages(store, [(victim, PAGE_SIZE * 4 + 3)])
        store.close()
        mapped = MmapPageStore(tmp_path / "tree.pages")
        with pytest.raises(ChecksumError):
            mapped.read_page(victim)
        assert mapped.checksum_failures == 1
        # Healthy pages still serve.
        other = [p for p in range(mapped.page_count) if p != victim][0]
        mapped.read_page(other)
        mapped.close()

    def test_verification_is_cached_per_page(self, tmp_path, rng):
        store, _ = _build(rng, tmp_path / "tree.pages")
        store.close()
        mapped = MmapPageStore(tmp_path / "tree.pages")
        first = mapped.read_page(0)
        assert mapped.verified_pages == 1
        assert mapped.read_page(0) == first  # zeroed-trailer fast path
        assert mapped.verified_pages == 1
        mapped.read_page(1)
        assert mapped.verified_pages == 2
        mapped.close()

    def test_verify_false_trusts_the_file(self, tmp_path, rng):
        store, tree = _build(rng, tmp_path / "tree.pages")
        victim = tree.level_pages(0)[0]
        corrupt_pages(store, [(victim, PAGE_SIZE * 4 + 3)])
        store.close()
        mapped = MmapPageStore(tmp_path / "tree.pages", verify=False)
        mapped.read_page(victim)  # no raise: caller already fsck'd
        assert mapped.verified_pages == 0
        assert mapped.checksum_failures == 0
        mapped.close()


class TestReadOnlyByConstruction:
    def test_allocate_and_write_raise(self, tmp_path, rng):
        store, _ = _build(rng, tmp_path / "tree.pages")
        store.close()
        mapped = MmapPageStore(tmp_path / "tree.pages")
        with pytest.raises(StoreError, match="read-only"):
            mapped.allocate()
        with pytest.raises(StoreError, match="read-only"):
            mapped.write_page(0, b"x" * mapped.page_size)
        mapped.close()

    def test_closed_store_refuses_reads(self, tmp_path, rng):
        store, _ = _build(rng, tmp_path / "tree.pages")
        store.close()
        mapped = MmapPageStore(tmp_path / "tree.pages")
        mapped.close()
        mapped.close()  # idempotent
        with pytest.raises(StoreError, match="closed"):
            mapped.read_page(0)


class TestJournalRefusal:
    def test_pending_journal_records_refused(self, tmp_path, rng):
        path = tmp_path / "tree.pages"
        store, _ = _build(rng, path)
        image = store.raw_read(0)
        store.close()
        # Simulate a crash that left an unreplayed double-write record
        # (the page's own image, so the write side's replay is a no-op):
        # read-only serving must hand the file back to the write side.
        journal = WriteJournal(journal_path(path), PAGE_SIZE)
        journal.append(0, image)
        journal.close()
        with pytest.raises(StoreError, match="unreplayed"):
            MmapPageStore(path)
        # The write-side opener recovers it; after that mmap works.
        recovered = FilePageStore.open_existing(path)
        recovered.close()
        mapped = MmapPageStore(path)
        mapped.read_page(0)
        mapped.close()

    def test_checkpointed_journal_is_fine(self, tmp_path, rng):
        path = tmp_path / "tree.pages"
        store, _ = _build(rng, path)
        store.close()  # clean close checkpoints the journal
        mapped = MmapPageStore(path)
        assert mapped.page_count > 0
        mapped.close()


class TestFaultInjectionCompatibility:
    def test_transient_read_faults_retry_through(self, tmp_path, rng):
        store, tree = _build(rng, tmp_path / "tree.pages")
        store.close()
        mapped = MmapPageStore(tmp_path / "tree.pages")
        plan = FaultPlan(seed=7, p_transient_read=0.3,
                         max_transient_per_op=2)
        flaky = FaultInjectingPageStore(
            mapped, plan, retry=RetryPolicy(attempts=4, seed=7))
        for pid in range(flaky.page_count):
            assert flaky.read_page(pid) == mapped.read_page(pid)
        assert plan.injected["transient_read"] > 0
        mapped.close()


def _digest_worker(path, out_queue):
    mapped = MmapPageStore(path)
    digest = hashlib.sha256()
    for pid in range(mapped.page_count):
        digest.update(mapped.read_page(pid))
    out_queue.put((os.getpid(), digest.hexdigest()))
    mapped.close()


class TestConcurrentProcessReaders:
    def test_real_processes_share_one_file(self, tmp_path, rng):
        store, _ = _build(rng, tmp_path / "tree.pages")
        expected = hashlib.sha256()
        for pid in range(store.page_count):
            expected.update(store.read_page(pid))
        store.close()

        mp = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        out = mp.Queue()
        procs = [mp.Process(target=_digest_worker,
                            args=(str(tmp_path / "tree.pages"), out))
                 for _ in range(3)]
        for p in procs:
            p.start()
        results = [out.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        pids = {pid for pid, _ in results}
        assert len(pids) == len(procs)  # genuinely separate processes
        assert {d for _, d in results} == {expected.hexdigest()}
