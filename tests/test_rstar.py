"""Unit tests for the R*-tree extension."""

import numpy as np
import pytest

from repro.core.geometry import Rect
from repro.rtree.node import Entry
from repro.rtree.rstar import REINSERT_FRACTION, RStarSplit, RStarTree
from repro.rtree.stats import measure_dynamic
from repro.rtree.tree import RTree
from repro.rtree.validate import validate_dynamic

from tests.conftest import brute_force_search


def build(points, capacity=8, **kw):
    tree = RStarTree(capacity=capacity, **kw)
    for i, p in enumerate(points):
        tree.insert(Rect.from_point(tuple(p)), i)
    return tree


class TestRStarSplit:
    def test_partition_complete_disjoint(self, rng):
        entries = [Entry(rect=Rect.from_point(p), data_id=i)
                   for i, p in enumerate(rng.random((15, 2)))]
        a, b = RStarSplit().split(entries, min_fill=4)
        ids = sorted(e.data_id for e in a) + sorted(e.data_id for e in b)
        assert sorted(ids) == list(range(15))
        assert len(a) >= 4 and len(b) >= 4

    def test_zero_overlap_when_separable(self, rng):
        left = rng.random((6, 2)) * np.array([0.3, 1.0])
        right = rng.random((6, 2)) * np.array([0.3, 1.0]) + np.array([0.7, 0])
        entries = [Entry(rect=Rect.from_point(p), data_id=i)
                   for i, p in enumerate(np.vstack([left, right]))]
        a, b = RStarSplit().split(entries, min_fill=3)

        def mbr(group):
            m = group[0].rect
            for e in group[1:]:
                m = m.union(e.rect)
            return m

        assert mbr(a).intersection(mbr(b)) is None

    def test_degenerate_identical_points(self):
        entries = [Entry(rect=Rect.from_point((0.5, 0.5)), data_id=i)
                   for i in range(10)]
        a, b = RStarSplit().split(entries, min_fill=3)
        assert len(a) + len(b) == 10


class TestRStarTree:
    def test_insert_search_delete_roundtrip(self, rng):
        pts = rng.random((300, 2))
        tree = build(pts, capacity=8)
        validate_dynamic(tree, range(300))
        q = Rect((0.1, 0.1), (0.6, 0.6))
        got = set(tree.search(q))
        mask = ((pts >= (0.1, 0.1)) & (pts <= (0.6, 0.6))).all(axis=1)
        assert got == set(np.flatnonzero(mask).tolist())
        for i in range(150):
            assert tree.delete(Rect.from_point(tuple(pts[i])), i)
        validate_dynamic(tree, range(150, 300))

    def test_matches_brute_force_on_rects(self, small_rects):
        tree = RStarTree(capacity=8)
        for i, r in enumerate(small_rects):
            tree.insert(r, i)
        validate_dynamic(tree, range(len(small_rects)))
        rng = np.random.default_rng(2)
        for _ in range(20):
            lo = rng.random(2) * 0.7
            q = Rect(tuple(lo), tuple(lo + 0.3))
            assert set(tree.search(q)) == brute_force_search(small_rects, q)

    def test_quality_beats_guttman(self, rng):
        """The reason R* exists: tighter leaves than Guttman insertion."""
        pts = rng.random((1500, 2))
        rstar = build(pts, capacity=16)
        guttman = RTree(capacity=16)
        for i, p in enumerate(pts):
            guttman.insert(Rect.from_point(tuple(p)), i)
        qr = measure_dynamic(rstar)
        qg = measure_dynamic(guttman)
        assert qr.leaf_area < qg.leaf_area
        assert qr.leaf_perimeter < qg.leaf_perimeter

    def test_reinsert_disabled(self, rng):
        tree = RStarTree(capacity=8, reinsert_fraction=0.0)
        for i, p in enumerate(rng.random((200, 2))):
            tree.insert(Rect.from_point(tuple(p)), i)
        validate_dynamic(tree, range(200))

    def test_bad_reinsert_fraction(self):
        with pytest.raises(ValueError):
            RStarTree(reinsert_fraction=0.6)

    def test_default_reinsert_count(self):
        tree = RStarTree(capacity=100)
        assert tree.reinsert_count == int(100 * REINSERT_FRACTION)

    def test_clustered_insertion_order(self, rng):
        """Sorted/clustered insertion orders are R*'s hard case; the tree
        must stay valid and complete."""
        pts = rng.random((400, 2))
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        tree = RStarTree(capacity=6)
        for i in order:
            tree.insert(Rect.from_point(tuple(pts[i])), int(i))
        validate_dynamic(tree, range(400))

    def test_duplicate_points_heavy(self):
        tree = RStarTree(capacity=5)
        for i in range(80):
            tree.insert(Rect.from_point((0.25, 0.75)), i)
        validate_dynamic(tree, range(80))
        assert sorted(tree.point_query((0.25, 0.75))) == list(range(80))

    def test_paged_conversion(self, rng):
        from repro.rtree.bulk import paged_from_dynamic
        from repro.rtree.validate import validate_paged

        pts = rng.random((250, 2))
        tree = build(pts, capacity=10)
        paged = paged_from_dynamic(tree)
        validate_paged(paged, range(250))
