"""Unit tests for the Hilbert curve implementation."""

import numpy as np
import pytest

from repro.hilbert.curve import (
    HilbertError,
    d2xy,
    hilbert_index,
    hilbert_point,
    xy2d,
)


class TestScalarReference:
    """The classic 2-D formulation is itself checked from first principles."""

    def test_order1_is_a_permutation_of_4_cells(self):
        ds = sorted(xy2d(1, x, y) for x in range(2) for y in range(2))
        assert ds == [0, 1, 2, 3]

    def test_roundtrip_order3(self):
        for d in range(64):
            x, y = d2xy(3, d)
            assert xy2d(3, x, y) == d

    def test_adjacency_order4(self):
        """Consecutive curve positions are grid neighbours (the defining
        Hilbert property)."""
        prev = d2xy(4, 0)
        for d in range(1, 256):
            cur = d2xy(4, d)
            manhattan = abs(cur[0] - prev[0]) + abs(cur[1] - prev[1])
            assert manhattan == 1, f"jump at d={d}"
            prev = cur

    def test_out_of_range_coord(self):
        with pytest.raises(HilbertError):
            xy2d(2, 4, 0)

    def test_out_of_range_index(self):
        with pytest.raises(HilbertError):
            d2xy(2, 16)

    def test_bad_order(self):
        with pytest.raises(HilbertError):
            xy2d(0, 0, 0)


class TestVectorized:
    def test_bijective_order2_2d(self):
        coords = np.array([[x, y] for x in range(4) for y in range(4)])
        idx = hilbert_index(coords, order=2)
        assert sorted(idx.tolist()) == list(range(16))

    def test_bijective_order2_3d(self):
        coords = np.array(
            [[x, y, z] for x in range(4) for y in range(4) for z in range(4)]
        )
        idx = hilbert_index(coords, order=2)
        assert sorted(idx.tolist()) == list(range(64))

    def test_adjacency_2d(self):
        pts = hilbert_point(np.arange(64, dtype=np.uint64), order=3, ndim=2)
        steps = np.abs(np.diff(pts.astype(np.int64), axis=0)).sum(axis=1)
        assert (steps == 1).all()

    def test_adjacency_3d(self):
        pts = hilbert_point(np.arange(512, dtype=np.uint64), order=3, ndim=3)
        steps = np.abs(np.diff(pts.astype(np.int64), axis=0)).sum(axis=1)
        assert (steps == 1).all()

    def test_roundtrip_random(self, rng):
        coords = rng.integers(0, 2 ** 10, size=(500, 2)).astype(np.int64)
        idx = hilbert_index(coords, order=10)
        back = hilbert_point(idx, order=10, ndim=2)
        assert np.array_equal(back.astype(np.int64), coords)

    def test_roundtrip_4d(self, rng):
        coords = rng.integers(0, 2 ** 5, size=(200, 4)).astype(np.int64)
        idx = hilbert_index(coords, order=5)
        back = hilbert_point(idx, order=5, ndim=4)
        assert np.array_equal(back.astype(np.int64), coords)

    def test_single_point_1d_input(self):
        idx = hilbert_index(np.array([1, 2]), order=4)
        assert idx.shape == (1,)

    def test_scalar_decode(self):
        pt = hilbert_point(np.uint64(5), order=3, ndim=2)
        assert pt.shape == (2,)

    def test_origin_maps_to_zero(self):
        assert hilbert_index(np.array([[0, 0]]), order=8)[0] == 0

    def test_matches_scalar_reference_as_valid_curve(self):
        """Both implementations must be genuine Hilbert curves on the same
        grid (equal up to symmetry); verify via the shared invariants of
        bijectivity + unit steps + locality rather than bit equality."""
        n = 16
        idx = hilbert_index(
            np.array([[x, y] for x in range(n) for y in range(n)]), order=4
        )
        assert sorted(idx.tolist()) == list(range(n * n))

    def test_order_too_large_rejected(self):
        with pytest.raises(HilbertError):
            hilbert_index(np.array([[0, 0]]), order=40)

    def test_coords_out_of_range_rejected(self):
        with pytest.raises(HilbertError):
            hilbert_index(np.array([[4, 0]]), order=2)

    def test_negative_coords_rejected(self):
        with pytest.raises(HilbertError):
            hilbert_index(np.array([[-1, 0]]), order=2)

    def test_float_coords_rejected(self):
        with pytest.raises(HilbertError):
            hilbert_index(np.array([[0.5, 0.5]]), order=2)

    def test_bad_ndim_rejected(self):
        with pytest.raises(HilbertError):
            hilbert_index(np.array([[0, 0]]), order=2, ndim=3)

    def test_index_out_of_range_decode_rejected(self):
        with pytest.raises(HilbertError):
            hilbert_point(np.array([16], dtype=np.uint64), order=2, ndim=2)


class TestLocality:
    def test_locality_beats_row_major(self, rng):
        """Mean curve-distance between grid neighbours must be far smaller
        for Hilbert than for row-major order — that locality is the whole
        reason HS packs well."""
        order = 6
        n = 1 << order
        xs = rng.integers(0, n - 1, size=300)
        ys = rng.integers(0, n, size=300)
        a = np.column_stack([xs, ys])
        b = np.column_stack([xs + 1, ys])  # horizontal neighbours
        ha = hilbert_index(a, order=order).astype(np.int64)
        hb = hilbert_index(b, order=order).astype(np.int64)
        # The *typical* neighbour is nearby on the Hilbert curve (a few
        # cells), while row-major puts every horizontal neighbour exactly n
        # positions away; rare quadrant-boundary jumps blow up the mean, so
        # compare medians.
        hilbert_gap = np.median(np.abs(ha - hb))
        row_major_gap = np.median(np.abs(
            (a[:, 0] * n + a[:, 1]) - (b[:, 0] * n + b[:, 1])
        ))
        assert hilbert_gap <= row_major_gap / 4
