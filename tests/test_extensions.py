"""Unit tests for the extension experiment runners."""

import pytest

from repro import SortTileRecursive, bulk_load
from repro.datasets import uniform_points
from repro.experiments import extensions
from repro.queries import point_queries


@pytest.fixture(scope="module")
def points():
    return uniform_points(10_000, seed=1)


class TestWarmupCurve:
    def test_shape(self, points):
        tree, _ = bulk_load(points, SortTileRecursive(), capacity=100)
        series = extensions.warmup_curve(
            tree, point_queries(500, seed=2), buffer_pages=50, bucket=50
        )
        assert len(series.xs) == 10
        assert series.xs == [50 * (i + 1) for i in range(10)]
        assert all(y >= 0 for y in series.ys)

    def test_cold_start_above_steady_state(self, points):
        tree, _ = bulk_load(points, SortTileRecursive(), capacity=100)
        series = extensions.warmup_curve(
            tree, point_queries(1_000, seed=2), buffer_pages=80, bucket=100
        )
        assert series.ys[0] > series.ys[-1]


class TestParallelSpeedup:
    def test_table_shape_and_monotonicity(self, points):
        table = extensions.parallel_speedup_table(
            points, disk_counts=(1, 2, 4), query_count=100
        )
        assert table.column("disks") == [1, 2, 4]
        speedups = table.column("speedup")
        assert speedups[0] == pytest.approx(1.0)
        assert speedups == sorted(speedups)

    def test_total_reads_independent_of_disks(self, points):
        table = extensions.parallel_speedup_table(
            points, disk_counts=(1, 4), query_count=100
        )
        totals = table.column("total reads")
        assert totals[0] == totals[1]


class TestPackedVsDynamic:
    def test_claims_hold(self):
        pts = uniform_points(2_000, seed=3).centers()
        table = extensions.packed_vs_dynamic_table(
            pts, capacity=20, query_count=100
        )
        rows = {r[0]: r for r in table.data_rows()}
        assert set(rows) == {"STR packed", "Guttman", "R*"}
        assert rows["STR packed"][1] < rows["Guttman"][1]
        assert rows["STR packed"][2] > rows["Guttman"][2]
        assert rows["STR packed"][3] < rows["Guttman"][3]


class TestCostModelTable:
    def test_ratio_near_one_on_uniform(self, points):
        table = extensions.cost_model_table(points, query_count=150)
        for ratio in table.column("pred/meas"):
            assert 0.75 < ratio < 1.3
