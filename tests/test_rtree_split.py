"""Unit tests for Guttman's split algorithms."""

import numpy as np
import pytest

from repro.core.geometry import Rect
from repro.rtree.node import Entry, RTreeError
from repro.rtree.split import LinearSplit, QuadraticSplit, make_split


def entries_from_points(points):
    return [
        Entry(rect=Rect.from_point(p), data_id=i)
        for i, p in enumerate(points)
    ]


@pytest.fixture(params=[QuadraticSplit, LinearSplit])
def splitter(request):
    return request.param()


class TestCommonContract:
    def test_partition_is_complete_and_disjoint(self, splitter, rng):
        entries = entries_from_points(rng.random((20, 2)))
        a, b = splitter.split(entries, min_fill=4)
        ids_a = {e.data_id for e in a}
        ids_b = {e.data_id for e in b}
        assert ids_a | ids_b == set(range(20))
        assert not (ids_a & ids_b)

    def test_min_fill_respected(self, splitter, rng):
        for seed in range(10):
            local = np.random.default_rng(seed)
            entries = entries_from_points(local.random((11, 2)))
            a, b = splitter.split(entries, min_fill=4)
            assert len(a) >= 4 and len(b) >= 4

    def test_two_entries(self, splitter):
        entries = entries_from_points([(0.0, 0.0), (1.0, 1.0)])
        a, b = splitter.split(entries, min_fill=1)
        assert len(a) == len(b) == 1

    def test_single_entry_rejected(self, splitter):
        with pytest.raises(RTreeError):
            splitter.split(entries_from_points([(0.0, 0.0)]), 1)

    def test_infeasible_min_fill_rejected(self, splitter):
        entries = entries_from_points([(0, 0), (1, 1), (2, 2)])
        with pytest.raises(RTreeError):
            splitter.split(entries, min_fill=2)

    def test_identical_points_handled(self, splitter):
        entries = entries_from_points([(0.5, 0.5)] * 10)
        a, b = splitter.split(entries, min_fill=3)
        assert len(a) + len(b) == 10
        assert min(len(a), len(b)) >= 3

    def test_separates_two_obvious_clusters(self, splitter, rng):
        left = rng.random((5, 2)) * 0.1
        right = rng.random((5, 2)) * 0.1 + 0.9
        entries = entries_from_points(np.concatenate([left, right]))
        a, b = splitter.split(entries, min_fill=2)
        centers_a = np.array([e.rect.center for e in a])
        centers_b = np.array([e.rect.center for e in b])
        # Each group must be pure: one cluster per side.
        assert (centers_a[:, 0] < 0.5).all() or (centers_a[:, 0] > 0.5).all()
        assert (centers_b[:, 0] < 0.5).all() or (centers_b[:, 0] > 0.5).all()


class TestQuadraticSeeds:
    def test_picks_most_wasteful_pair(self):
        entries = entries_from_points(
            [(0.0, 0.0), (0.1, 0.1), (1.0, 1.0)]
        )
        i, j = QuadraticSplit._pick_seeds(entries)
        assert {entries[i].rect.center, entries[j].rect.center} == {
            (0.0, 0.0), (1.0, 1.0)
        }


class TestLinearSeeds:
    def test_picks_extreme_separation(self):
        entries = entries_from_points(
            [(0.0, 0.5), (1.0, 0.5), (0.5, 0.45), (0.5, 0.55)]
        )
        i, j = LinearSplit._pick_seeds(entries)
        xs = {entries[i].rect.center[0], entries[j].rect.center[0]}
        assert xs == {0.0, 1.0}


class TestFactory:
    def test_names(self):
        assert isinstance(make_split("quadratic"), QuadraticSplit)
        assert isinstance(make_split("LINEAR"), LinearSplit)

    def test_unknown(self):
        with pytest.raises(RTreeError):
            make_split("angular")
