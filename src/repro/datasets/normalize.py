"""Normalisation of datasets to the unit square.

Section 3: "To provide a uniform experiment space we normalize all data
sets to the unit square."  Normalisation is affine and per-dimension: the
dataset MBR is mapped onto ``[0, 1]^k``.  Degenerate dimensions (all data
on a hyperplane) map to 0.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import RectArray

__all__ = ["normalize_rects", "normalize_points"]


def normalize_points(points: np.ndarray) -> np.ndarray:
    """Affinely map a point cloud so its bounding box is the unit cube."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[0] < 1:
        raise ValueError("points must be a non-empty (n, k) array")
    lo = pts.min(axis=0)
    span = pts.max(axis=0) - lo
    safe = np.where(span > 0.0, span, 1.0)
    return (pts - lo) / safe


def normalize_rects(rects: RectArray) -> RectArray:
    """Affinely map a rectangle set so its MBR is the unit cube.

    The same transform is applied to lower and upper corners, so shapes,
    relative sizes and the packing order are all preserved.
    """
    mbr = rects.mbr()
    lo = np.asarray(mbr.lo)
    span = np.asarray(mbr.extents, dtype=np.float64)
    safe = np.where(span > 0.0, span, 1.0)
    los = (rects.los - lo) / safe
    his = (rects.his - lo) / safe
    # Guard against float drift pushing a corner infinitesimally past 1.
    return RectArray(np.clip(los, 0.0, 1.0), np.clip(his, 0.0, 1.0))
