"""Dataset persistence.

Generated datasets (and any user-provided ones, e.g. a real TIGER extract)
round-trip through two formats:

* ``.npz`` — compact binary via numpy, the default;
* ``.txt`` — one rectangle per line, ``lo... hi...`` whitespace-separated,
  matching the simple ASCII layout the paper's archive distributed
  (``RectNode.normal.ascii`` in Figure 5's caption).
"""

from __future__ import annotations

import os

import numpy as np

from ..core.geometry import GeometryError, RectArray

__all__ = ["save_rects", "load_rects"]


def save_rects(path: str | os.PathLike, rects: RectArray) -> None:
    """Write a rectangle set; format chosen by extension (.npz or .txt)."""
    path = os.fspath(path)
    if path.endswith(".npz"):
        np.savez_compressed(path, los=rects.los, his=rects.his)
    elif path.endswith(".txt"):
        table = np.hstack([rects.los, rects.his])
        header = f"ndim={rects.ndim} count={len(rects)} columns=lo...hi..."
        np.savetxt(path, table, header=header)
    else:
        raise GeometryError(f"unknown dataset extension: {path}")


def load_rects(path: str | os.PathLike) -> RectArray:
    """Read a rectangle set written by :func:`save_rects`."""
    path = os.fspath(path)
    if path.endswith(".npz"):
        with np.load(path) as data:
            return RectArray(data["los"], data["his"])
    if path.endswith(".txt"):
        table = np.loadtxt(path, ndmin=2)
        if table.shape[1] % 2:
            raise GeometryError(
                f"{path}: {table.shape[1]} columns is not an even lo/hi split"
            )
        k = table.shape[1] // 2
        return RectArray(table[:, :k], table[:, k:])
    raise GeometryError(f"unknown dataset extension: {path}")
