"""Synthetic data exactly as Section 3 (item 4) of the paper specifies.

Uniform square data with a *density* parameter ``d``: density is the sum of
all square areas, so the average square area is ``d / r``.  For each square
the lower-left corner is uniform over the unit square, the actual area is
uniform in ``[0, 2 d / r]``, and the upper-right corner is clamped to 1.0
where it would leave the unit square.  Density 0 degenerates to point data.

The paper presents results for densities 0 and 5.0 (2.5 and 1.0 were run
but not shown); the generators take density as a parameter so all four are
reproducible.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import RectArray

__all__ = ["uniform_points", "uniform_squares", "PAPER_SIZES", "PAPER_DENSITIES"]

#: Data sizes used in the paper's synthetic experiments (Figures 7-9, Tables 1-4).
PAPER_SIZES = (10_000, 25_000, 50_000, 100_000, 300_000)

#: Densities the paper generated (results shown for 0 and 5.0).
PAPER_DENSITIES = (0.0, 1.0, 2.5, 5.0)


def uniform_points(count: int, *, seed: int = 0, ndim: int = 2) -> RectArray:
    """``count`` uniform points in the unit hyper-cube (density-0 data)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = np.random.default_rng(seed)
    return RectArray.from_points(rng.random((count, ndim)))


def uniform_squares(count: int, density: float, *, seed: int = 0) -> RectArray:
    """``count`` axis-aligned squares with total expected area ``density``.

    Follows the paper to the letter: lower-left corner uniform in the unit
    square; area uniform in ``[0, 2 * density / count]``; the upper-right
    corner exceeding the unit square is clamped coordinate-wise to 1.0
    (after clamping the shape may no longer be square, as in the paper).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if density < 0:
        raise ValueError("density must be >= 0")
    if density == 0:
        return uniform_points(count, seed=seed)
    rng = np.random.default_rng(seed)
    lower = rng.random((count, 2))
    avg_area = density / count
    areas = rng.uniform(0.0, 2.0 * avg_area, size=count)
    sides = np.sqrt(areas)
    upper = np.minimum(lower + sides[:, None], 1.0)
    return RectArray(lower, upper)
