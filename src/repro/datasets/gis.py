"""TIGER-like GIS data: a synthetic Long Beach street network.

The paper's GIS workload is the Long Beach county subset of the U.S.
Census TIGER files — 53,145 street-line segments.  The original file is not
shipped here, so this module synthesises a street network with the same
properties the packing comparison is sensitive to:

* **thin rectangles** — each record is the MBR of a short street segment,
  so one side is typically much longer than the other;
* **mild spatial skew** — a denser "downtown" core with density falling off
  toward the county edges, plus a few long arterials, but nothing like the
  VLSI/CFD extremes;
* **small extents** — segments are short relative to the data space
  (blocks of a city grid), giving leaf MBRs whose size is dominated by
  tile geometry rather than object size.

Construction: sample north-south and east-west street center lines whose
positions mix a uniform component with a Gaussian downtown cluster; cut
every street at its crossings with the perpendicular streets; each block
edge becomes one segment record with a small positional jitter (streets
are not perfectly straight).  A few long diagonal arterials are added, then
the collection is trimmed/padded to the requested count and normalised to
the unit square.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import RectArray
from .normalize import normalize_rects

__all__ = ["long_beach_like", "LONG_BEACH_SEGMENT_COUNT"]

#: Segment count of the real Long Beach TIGER extract the paper uses.
LONG_BEACH_SEGMENT_COUNT = 53_145


def _street_positions(rng: np.random.Generator, count: int,
                      downtown: float, spread: float) -> np.ndarray:
    """Street coordinates: 55% uniform grid-ish, 45% downtown cluster."""
    n_cluster = int(count * 0.45)
    uniform = rng.random(count - n_cluster)
    cluster = rng.normal(downtown, spread, size=n_cluster)
    pos = np.concatenate([uniform, cluster])
    return np.sort(np.clip(pos, 0.0, 1.0))


def _grid_segments(rng: np.random.Generator, xs: np.ndarray, ys: np.ndarray,
                   jitter: float) -> tuple[np.ndarray, np.ndarray]:
    """Block edges of the street grid as (lo, hi) arrays."""
    los: list[np.ndarray] = []
    his: list[np.ndarray] = []

    # Vertical streets: at each x, segments between consecutive y crossings.
    for x in xs:
        # Streets do not all run the full county: clip to a random extent.
        y0, y1 = np.sort(rng.random(2))
        if y1 - y0 < 0.05:
            continue
        crossings = ys[(ys >= y0) & (ys <= y1)]
        if len(crossings) < 2:
            continue
        a = crossings[:-1]
        b = crossings[1:]
        jx = rng.normal(0.0, jitter, size=len(a))
        width = np.abs(rng.normal(0.0, jitter, size=len(a))) + 1e-5
        lo = np.column_stack([x + jx - width / 2, a])
        hi = np.column_stack([x + jx + width / 2, b])
        los.append(lo)
        his.append(hi)

    # Horizontal streets, symmetric construction.
    for y in ys:
        x0, x1 = np.sort(rng.random(2))
        if x1 - x0 < 0.05:
            continue
        crossings = xs[(xs >= x0) & (xs <= x1)]
        if len(crossings) < 2:
            continue
        a = crossings[:-1]
        b = crossings[1:]
        jy = rng.normal(0.0, jitter, size=len(a))
        height = np.abs(rng.normal(0.0, jitter, size=len(a))) + 1e-5
        lo = np.column_stack([a, y + jy - height / 2])
        hi = np.column_stack([b, y + jy + height / 2])
        los.append(lo)
        his.append(hi)

    return np.concatenate(los), np.concatenate(his)


def _arterial_segments(rng: np.random.Generator, count: int
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Diagonal arterial roads chopped into short segments."""
    los = np.empty((count, 2))
    his = np.empty((count, 2))
    pos = 0
    while pos < count:
        start = rng.random(2)
        angle = rng.uniform(0, 2 * np.pi)
        direction = np.array([np.cos(angle), np.sin(angle)])
        n_seg = min(int(rng.integers(20, 120)), count - pos)
        seg_len = rng.uniform(0.002, 0.006)
        points = start + np.arange(n_seg + 1)[:, None] * direction * seg_len
        points = np.clip(points, 0.0, 1.0)
        a, b = points[:-1], points[1:]
        los[pos:pos + n_seg] = np.minimum(a, b)
        his[pos:pos + n_seg] = np.maximum(a, b)
        pos += n_seg
    return los, his


def long_beach_like(count: int = LONG_BEACH_SEGMENT_COUNT, *,
                    seed: int = 0) -> RectArray:
    """A synthetic stand-in for the paper's Long Beach TIGER data.

    Returns exactly ``count`` thin segment MBRs normalised to the unit
    square.  Deterministic in ``seed``.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = np.random.default_rng(seed)

    # Street counts scale with the square root of the target so the mean
    # segment length stays block-sized at any count.
    n_streets = max(8, int(np.sqrt(count / 2.2)))
    xs = _street_positions(rng, n_streets, downtown=0.35, spread=0.13)
    ys = _street_positions(rng, n_streets, downtown=0.45, spread=0.16)
    los, his = _grid_segments(rng, xs, ys, jitter=0.0008)

    n_arterial = max(1, count // 25)
    alos, ahis = _arterial_segments(rng, n_arterial)
    los = np.concatenate([los, alos])
    his = np.concatenate([his, ahis])

    if len(los) < count:
        # Top up with extra arterials (rare; depends on grid randomness).
        extra_lo, extra_hi = _arterial_segments(rng, count - len(los))
        los = np.concatenate([los, extra_lo])
        his = np.concatenate([his, extra_hi])
    perm = rng.permutation(len(los))[:count]
    rects = RectArray(los[perm], his[perm])
    return normalize_rects(rects)
