"""VLSI-like data: highly skewed rectangles in location *and* size.

The paper's VLSI workload is a Bell Labs CIF chip design with 453,994
rectangles whose sizes span a factor of ~40,000 in area and whose locations
are extremely clustered ("regions of the chip covered by several thousand
rectangles and some covered by no rectangles at all").  That file is
proprietary, so this generator reproduces the two skews that drive the
paper's VLSI findings (HS ≈ STR, HS slightly ahead on point queries):

* **location skew** — rectangles concentrate in a hierarchy of "macro
  blocks": a few dozen block regions of wildly different densities, with
  sub-clusters inside blocks and a thin uniform background of global
  routing.  Substantial parts of the die stay empty.
* **size skew** — side lengths are log-uniform over a ~200x range, giving
  an area range of ~40,000x as the paper reports, and widths/heights are
  drawn independently so long thin wires coexist with square cells.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import RectArray

__all__ = ["vlsi_like", "VLSI_RECT_COUNT"]

#: Rectangle count of the Bell Labs design used in the paper.
VLSI_RECT_COUNT = 453_994


def _macro_blocks(rng: np.random.Generator, n_blocks: int
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Block centers, extents, and (unnormalised) density weights."""
    centers = rng.random((n_blocks, 2)) * 0.9 + 0.05
    extents = rng.uniform(0.02, 0.22, size=(n_blocks, 2))
    # Zipf-ish weights: a handful of blocks hold thousands of rects each.
    weights = 1.0 / np.arange(1, n_blocks + 1) ** 1.1
    return centers, extents, rng.permutation(weights)


def vlsi_like(count: int = 100_000, *, seed: int = 0,
              size_range: float = 200.0) -> RectArray:
    """A synthetic stand-in for the paper's VLSI CIF data.

    Parameters
    ----------
    count:
        Number of rectangles.  The paper's file has 453,994
        (:data:`VLSI_RECT_COUNT`); experiments default to 100,000 for
        pure-Python time budgets — the skew statistics are count-invariant.
    seed:
        RNG seed; the dataset is deterministic in it.
    size_range:
        Ratio of largest to smallest side length (area spans its square,
        40,000x at the default, matching the paper's description).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if size_range <= 1.0:
        raise ValueError("size_range must be > 1")
    rng = np.random.default_rng(seed)

    n_blocks = 40
    centers, extents, weights = _macro_blocks(rng, n_blocks)
    probs = weights / weights.sum()

    n_background = max(1, int(count * 0.04))
    n_clustered = count - n_background

    block_of = rng.choice(n_blocks, size=n_clustered, p=probs)
    # Position inside a block: a Gaussian sub-cluster blend makes hotspots
    # within hotspots, as standard-cell rows do.
    local = rng.beta(2.0, 2.0, size=(n_clustered, 2))
    sub = rng.normal(0.5, 0.18, size=(n_clustered, 2))
    mix = rng.random(n_clustered) < 0.5
    local[mix] = np.clip(sub[mix], 0.0, 1.0)
    pos = centers[block_of] + (local - 0.5) * extents[block_of]

    background = rng.random((n_background, 2))
    pos = np.clip(np.concatenate([pos, background]), 0.0, 1.0)

    # Log-range side lengths; squaring the uniform exponent skews mass
    # toward the small end so tiny cells dominate, as in real designs,
    # while the largest shapes still reach the full ``size_range`` ratio.
    s_min = 0.2 / np.sqrt(count)  # keeps density plausible at any count
    log_span = np.log(size_range)
    widths = s_min * np.exp(log_span * rng.random(count) ** 2.5)
    heights = s_min * np.exp(log_span * rng.random(count) ** 2.5)

    los = pos - np.column_stack([widths, heights]) / 2.0
    his = pos + np.column_stack([widths, heights]) / 2.0
    los = np.clip(los, 0.0, 1.0)
    his = np.clip(his, 0.0, 1.0)
    # Clamping can zero an extent; restore a hair of width so MBRs stay
    # genuine rectangles (the CIF data has no zero-area shapes).
    his = np.maximum(his, np.minimum(los + 1e-9, 1.0))
    perm = rng.permutation(count)
    return RectArray(los[perm], his[perm])
