"""TIGER/Line Record Type 1 parsing.

The paper's GIS dataset is the Long Beach county extract of the U.S.
Census Bureau's TIGER/Line files — which are *public*; only the specific
1990s extract is unavailable offline.  This module reads the classic
fixed-width **Record Type 1** ("complete chain basic data record") format
so users with any real TIGER/Line county file (1992-2006 vintages share
the RT1 coordinate layout) can reproduce the paper's GIS experiments on
authentic data:

    rects = read_rt1("TGR06037.RT1")
    rects = normalize_rects(rects)        # the paper's unit-square step
    tree, _ = bulk_load(rects, SortTileRecursive())

Only the fields the experiments need are extracted: the from/to node
longitudes and latitudes, stored in the file as signed fixed-width
integers with six implied decimal places.  Each complete chain becomes
the MBR of its endpoints — exactly how line segments enter an R-tree.

A writer (:func:`write_rt1`) emits the same subset of RT1, so the
synthetic Long Beach stand-in can round-trip through the real format;
the test-suite uses that to validate the parser without shipping Census
data.
"""

from __future__ import annotations

import os
from typing import Iterable

import numpy as np

from ..core.geometry import GeometryError, RectArray

__all__ = ["TigerFormatError", "read_rt1", "write_rt1"]

#: RT1 records are 228 bytes + newline in every published vintage.
RT1_RECORD_LENGTH = 228

# 0-based [start, end) column spans of the coordinate fields (from the
# TIGER/Line technical documentation; identical across 1992-2006).
_FRLONG = slice(190, 200)
_FRLAT = slice(200, 209)
_TOLONG = slice(209, 219)
_TOLAT = slice(219, 228)

#: Coordinates carry six implied decimal places.
_SCALE = 1e-6


class TigerFormatError(ValueError):
    """Raised for malformed RT1 records."""


def _parse_coord(field: str, *, record_no: int, name: str) -> float:
    text = field.strip()
    if not text or text in ("+", "-"):
        raise TigerFormatError(
            f"record {record_no}: empty {name} coordinate field"
        )
    try:
        return int(text) * _SCALE
    except ValueError:
        raise TigerFormatError(
            f"record {record_no}: bad {name} coordinate {field!r}"
        ) from None


def read_rt1(path: str | os.PathLike, *, strict: bool = True) -> RectArray:
    """Read a TIGER/Line RT1 file into segment MBRs.

    Each record contributes one rectangle: the bounding box of the
    chain's from/to endpoints, in (longitude, latitude) order.  With
    ``strict=False`` malformed records are skipped instead of raising.
    """
    los: list[tuple[float, float]] = []
    his: list[tuple[float, float]] = []
    with open(os.fspath(path), "r", encoding="latin-1") as f:
        for record_no, line in enumerate(f, start=1):
            line = line.rstrip("\r\n")
            if not line:
                continue
            if len(line) < RT1_RECORD_LENGTH:
                if strict:
                    raise TigerFormatError(
                        f"record {record_no}: {len(line)} chars, RT1 "
                        f"needs {RT1_RECORD_LENGTH}"
                    )
                continue
            if line[0] != "1":
                continue  # other record types may share a file
            try:
                fr = (_parse_coord(line[_FRLONG], record_no=record_no,
                                   name="from-longitude"),
                      _parse_coord(line[_FRLAT], record_no=record_no,
                                   name="from-latitude"))
                to = (_parse_coord(line[_TOLONG], record_no=record_no,
                                   name="to-longitude"),
                      _parse_coord(line[_TOLAT], record_no=record_no,
                                   name="to-latitude"))
            except TigerFormatError:
                if strict:
                    raise
                continue
            los.append((min(fr[0], to[0]), min(fr[1], to[1])))
            his.append((max(fr[0], to[0]), max(fr[1], to[1])))
    if not los:
        raise TigerFormatError(f"{path}: no RT1 records found")
    return RectArray(np.array(los), np.array(his))


def _format_coord(value: float, width: int) -> str:
    scaled = int(round(value / _SCALE))
    sign = "-" if scaled < 0 else "+"
    body = str(abs(scaled)).rjust(width - 1, "0")
    if len(body) != width - 1:
        raise TigerFormatError(
            f"coordinate {value} does not fit in a {width}-char field"
        )
    return sign + body


def write_rt1(path: str | os.PathLike, segments: RectArray | Iterable,
              *, version: str = "0000") -> int:
    """Write segment rectangles as minimal RT1 records.

    Each rectangle's diagonal corners become the chain endpoints.  All
    non-coordinate fields are blank-padded (real consumers of those
    fields should use Census files; this writer exists for format
    round-trip testing and for exporting synthetic data to RT1-aware
    tools).  Returns the record count.
    """
    if isinstance(segments, RectArray):
        rect_list = list(segments)
    else:
        rect_list = list(segments)
    if not rect_list:
        raise GeometryError("cannot write zero segments")
    with open(os.fspath(path), "w", encoding="latin-1") as f:
        for rect in rect_list:
            if rect.ndim != 2:
                raise GeometryError("RT1 is strictly 2-D")
            record = [" "] * RT1_RECORD_LENGTH
            record[0] = "1"
            record[1:5] = version.ljust(4)[:4]
            record[_FRLONG] = _format_coord(rect.lo[0], 10)
            record[_FRLAT] = _format_coord(rect.lo[1], 9)
            record[_TOLONG] = _format_coord(rect.hi[0], 10)
            record[_TOLAT] = _format_coord(rect.hi[1], 9)
            f.write("".join(record) + "\n")
    return len(rect_list)
