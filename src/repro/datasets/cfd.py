"""CFD-like data: mesh nodes around a multi-element airfoil.

The paper's scientific workload is a Delaunay mesh for a Boeing 737 wing
cross-section with flaps deployed (Mavriplis 1995): 52,510 point nodes,
*dense where the solution changes rapidly* — i.e. exponentially
concentrated around the wing surfaces — and nearly empty elsewhere.  The
plotted data (the paper's Figures 5 and 6) is a black smudge around the
centroid with blank ovals where the wing elements sit.

The original meshes are not distributed here, so this generator builds a
point cloud with the same structure:

* three elliptical elements (main airfoil, slat, flap) around (0.53, 0.5);
* points sampled on rings around each element with surface-normal offsets
  drawn from an exponential whose scale grows with distance (advancing-
  front meshes coarsen geometrically away from walls);
* element interiors are kept empty, reproducing the blank ovals;
* a sparse geometric far-field fills the rest of the unit square.

The paper restricts CFD queries to the box (0.48, 0.48)-(0.6, 0.6);
:data:`CFD_QUERY_WINDOW` records it for the experiment harness.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import Rect, RectArray

__all__ = [
    "airfoil_like",
    "airfoil_points",
    "CFD_NODE_COUNT",
    "CFD_SMALL_NODE_COUNT",
    "CFD_QUERY_WINDOW",
]

#: Node count of the paper's main CFD experiment data set.
CFD_NODE_COUNT = 52_510

#: Node count of the smaller mesh the paper plots in Figure 5.
CFD_SMALL_NODE_COUNT = 5_088

#: Query window used in Section 4.4.
CFD_QUERY_WINDOW = Rect((0.48, 0.48), (0.6, 0.6))

# (center, semi-axes, rotation, weight) of the wing elements, placed so the
# dense smudge sits just right of the domain center like the paper's plots.
_ELEMENTS = (
    ((0.530, 0.500), (0.040, 0.0085), -0.10, 0.62),  # main element
    ((0.487, 0.507), (0.012, 0.0040), -0.45, 0.16),  # leading-edge slat
    ((0.578, 0.491), (0.018, 0.0050), -0.30, 0.22),  # trailing-edge flap
)


def _ellipse_frame(center, axes, angle):
    c = np.asarray(center)
    rot = np.array(
        [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
    )
    return c, np.asarray(axes), rot


def _inside_any_element(points: np.ndarray) -> np.ndarray:
    """Mask of points strictly inside a wing element (to be rejected)."""
    inside = np.zeros(len(points), dtype=bool)
    for center, axes, angle, _ in _ELEMENTS:
        c, ax, rot = _ellipse_frame(center, axes, angle)
        local = (points - c) @ rot  # rotate into the element frame
        inside |= ((local / ax) ** 2).sum(axis=1) < 1.0
    return inside


def _surface_band(rng: np.random.Generator, count: int) -> np.ndarray:
    """Points in geometrically-coarsening bands around the elements."""
    weights = np.array([w for *_, w in _ELEMENTS])
    element_of = rng.choice(len(_ELEMENTS), size=count, p=weights / weights.sum())
    out = np.empty((count, 2))
    for i, (center, axes, angle, _) in enumerate(_ELEMENTS):
        mask = element_of == i
        n = int(mask.sum())
        if n == 0:
            continue
        c, ax, rot = _ellipse_frame(center, axes, angle)
        theta = rng.uniform(0, 2 * np.pi, size=n)
        ring = np.column_stack([np.cos(theta) * ax[0], np.sin(theta) * ax[1]])
        normal = np.column_stack([np.cos(theta) * ax[1], np.sin(theta) * ax[0]])
        norms = np.linalg.norm(normal, axis=1, keepdims=True)
        normal = normal / np.where(norms > 0, norms, 1.0)
        # Wall-normal spacing: exponential near the wall with a heavy tail,
        # mimicking geometric mesh growth away from the surface.
        offset = rng.exponential(0.004, size=n) * np.exp(rng.exponential(0.9, size=n))
        pts = c + (ring + normal * offset[:, None]) @ rot.T
        out[mask] = pts
    return out


def _far_field(rng: np.random.Generator, count: int) -> np.ndarray:
    """Sparse outer mesh: radially exponential rings around the wing."""
    center = np.array([0.53, 0.5])
    theta = rng.uniform(0, 2 * np.pi, size=count)
    radius = 0.06 * np.exp(rng.exponential(0.75, size=count))
    pts = center + np.column_stack(
        [np.cos(theta) * radius, np.sin(theta) * radius * 0.8]
    )
    return pts


def airfoil_points(count: int, *, seed: int = 0) -> np.ndarray:
    """``(count, 2)`` mesh-node positions inside the unit square."""
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = np.random.default_rng(seed)
    points = np.empty((0, 2))
    while len(points) < count:
        need = count - len(points)
        n_band = int(np.ceil(need * 0.8)) + 16
        n_far = int(np.ceil(need * 0.2)) + 16
        batch = np.concatenate(
            [_surface_band(rng, n_band), _far_field(rng, n_far)]
        )
        ok = (
            ~_inside_any_element(batch)
            & (batch >= 0.0).all(axis=1)
            & (batch <= 1.0).all(axis=1)
        )
        points = np.concatenate([points, batch[ok]])
    out = points[:count]
    return out[rng.permutation(count)]


def airfoil_like(count: int = CFD_NODE_COUNT, *, seed: int = 0) -> RectArray:
    """A synthetic stand-in for the paper's CFD mesh, as degenerate rects."""
    return RectArray.from_points(airfoil_points(count, seed=seed))
