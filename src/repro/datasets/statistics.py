"""Dataset skew statistics.

DESIGN.md justifies each synthetic stand-in by the *skew properties* the
packing comparison is sensitive to.  This module makes those properties
measurable, so the claims are checked by tests rather than asserted in
prose:

* :func:`quadrat_counts` / :func:`morisita_index` — location skew.  The
  Morisita index is ~1 for uniform data, >> 1 for clustered data (the
  VLSI/CFD families), and mildly above 1 for the street network.
* :func:`size_spread` — size skew: the max/min area ratio the paper
  quotes ("the largest rectangle is roughly 40,000 times larger than the
  smallest one").
* :func:`thinness` — aspect statistics separating segment data (thin)
  from region data.
* :func:`dataset_card` — a one-stop summary dict used by the tests and
  handy for eyeballing new datasets.
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import GeometryError, RectArray

__all__ = [
    "quadrat_counts",
    "morisita_index",
    "size_spread",
    "thinness",
    "dataset_card",
]


def quadrat_counts(rects: RectArray, bins: int = 16,
                   bounds=None) -> np.ndarray:
    """``(bins, bins)`` histogram of rectangle centers.

    ``bounds`` (a :class:`~repro.core.geometry.Rect`) fixes the grid
    frame; default is the data MBR.  Note the frame matters: a tight
    cluster is *uniform within its own MBR*, so measuring absolute
    clustering of non-normalised data needs an explicit frame.
    """
    if rects.ndim != 2:
        raise GeometryError("quadrat analysis is 2-D")
    if bins < 2:
        raise GeometryError("bins must be >= 2")
    centers = rects.centers()
    frame = bounds if bounds is not None else rects.mbr()
    counts, _, _ = np.histogram2d(
        centers[:, 0], centers[:, 1], bins=bins,
        range=[[frame.lo[0], frame.hi[0]], [frame.lo[1], frame.hi[1]]],
    )
    return counts


def morisita_index(rects: RectArray, bins: int = 16, bounds=None) -> float:
    """Morisita's index of dispersion over a quadrat grid.

    ``I = Q * sum(n_i (n_i - 1)) / (N (N - 1))`` for Q quadrats holding
    ``n_i`` of N points.  1 = Poisson/uniform; substantially above 1 =
    clustered; below 1 = regular.
    """
    counts = quadrat_counts(rects, bins, bounds).ravel()
    n = counts.sum()
    if n < 2:
        raise GeometryError("need at least two rectangles")
    return float(len(counts) * (counts * (counts - 1)).sum()
                 / (n * (n - 1)))


def size_spread(rects: RectArray, *, quantile: float = 0.0) -> float:
    """Max/min area ratio (optionally between symmetric quantiles).

    ``quantile=0.01`` compares the 99th to the 1st percentile, robust to
    single outliers; 0 reproduces the paper's literal max/min quote.
    Degenerate (zero-area) rectangles are excluded.
    """
    areas = rects.areas()
    areas = areas[areas > 0]
    if areas.size < 2:
        return 1.0
    if quantile > 0:
        hi = float(np.quantile(areas, 1 - quantile))
        lo = float(np.quantile(areas, quantile))
    else:
        hi = float(areas.max())
        lo = float(areas.min())
    return hi / lo if lo > 0 else float("inf")


def thinness(rects: RectArray) -> float:
    """Median short-side / long-side ratio (0 = thin segments, 1 = squares).

    Degenerate rectangles (points) are reported as 1.0 — points have no
    meaningful aspect.
    """
    extents = rects.extents()
    long_side = extents.max(axis=1)
    short_side = extents.min(axis=1)
    ratios = np.where(long_side > 0, short_side / np.where(long_side > 0,
                                                           long_side, 1.0),
                      1.0)
    return float(np.median(ratios))


def dataset_card(rects: RectArray, *, bins: int = 16) -> dict[str, float]:
    """Summary statistics for a 2-D dataset (the DESIGN.md skew triple)."""
    counts = quadrat_counts(rects, bins)
    return {
        "count": float(len(rects)),
        "morisita": morisita_index(rects, bins),
        "empty_quadrat_fraction": float((counts == 0).mean()),
        "max_quadrat_share": float(counts.max() / max(counts.sum(), 1)),
        "size_spread": size_spread(rects),
        "size_spread_p99_p1": size_spread(rects, quantile=0.01),
        "thinness": thinness(rects),
        "total_area": rects.total_area(),
    }
