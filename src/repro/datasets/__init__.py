"""Dataset generators for the paper's four data families.

Real-data substitutions (TIGER/VLSI/CFD) are documented in DESIGN.md
section 3; generators are deterministic in their ``seed``.
"""

from .cfd import (
    CFD_NODE_COUNT,
    CFD_QUERY_WINDOW,
    CFD_SMALL_NODE_COUNT,
    airfoil_like,
    airfoil_points,
)
from .gis import LONG_BEACH_SEGMENT_COUNT, long_beach_like
from .io import load_rects, save_rects
from .normalize import normalize_points, normalize_rects
from .statistics import (
    dataset_card,
    morisita_index,
    quadrat_counts,
    size_spread,
    thinness,
)
from .tiger import read_rt1, write_rt1
from .synthetic import (
    PAPER_DENSITIES,
    PAPER_SIZES,
    uniform_points,
    uniform_squares,
)
from .vlsi import VLSI_RECT_COUNT, vlsi_like

__all__ = [
    "uniform_points",
    "uniform_squares",
    "PAPER_SIZES",
    "PAPER_DENSITIES",
    "long_beach_like",
    "LONG_BEACH_SEGMENT_COUNT",
    "vlsi_like",
    "VLSI_RECT_COUNT",
    "airfoil_like",
    "airfoil_points",
    "CFD_NODE_COUNT",
    "CFD_SMALL_NODE_COUNT",
    "CFD_QUERY_WINDOW",
    "normalize_rects",
    "dataset_card",
    "morisita_index",
    "quadrat_counts",
    "size_spread",
    "thinness",
    "read_rt1",
    "write_rt1",
    "normalize_points",
    "save_rects",
    "load_rects",
]
