"""Fault-tolerant sharded bulk loading.

The pipeline package parallelises the paper's General Algorithm across
worker processes without changing a single output byte: shards are
STR's own top-level slabs, workers replay the serial per-slab
recursion, and assembly reuses the serial upper-level packer.  Around
that determinism it adds the production machinery — staged inputs,
CRC-verified shard runs, an append-only checkpoint log, heartbeat
supervision with capped retries, typed :class:`PoisonShard` failures,
and ``resume`` that re-runs only what never checkpointed.

Entry points: :func:`parallel_bulk_load` (library) and
``python -m repro build`` (CLI).
"""

from .checkpoint import CheckpointError, CheckpointLog
from .orchestrator import (
    PipelineError,
    PipelineReport,
    PoisonShard,
    parallel_bulk_load,
)
from .plan import BuildPlan, ResumeMismatch, make_plan
from .staging import StagingDir, StagingError
from .worker import InjectedWorkerFault

__all__ = [
    "BuildPlan",
    "CheckpointError",
    "CheckpointLog",
    "InjectedWorkerFault",
    "ResumeMismatch",
    "PipelineError",
    "PipelineReport",
    "PoisonShard",
    "StagingDir",
    "StagingError",
    "make_plan",
    "parallel_bulk_load",
]
