"""Append-only checkpoint log for resumable parallel builds.

The orchestrator is the **single writer**: it appends one NDJSON record
per shard, and only after it has verified the shard's published run
files against the CRCs in the worker's ``done`` record.  Workers never
touch the log — they publish ``shard-*.done.json`` files and exit, so a
worker killed mid-write can at worst leave a ``*.tmp-<pid>`` sibling
that :meth:`~repro.pipeline.staging.StagingDir.sweep_tmp` clears.

Each line is a JSON object carrying its own CRC32C (over the canonical
form of the record minus the ``crc`` key).  On resume the log is read
line by line; a torn *tail* — the one partial line an append crushed by
SIGKILL can leave — is discarded silently, while corruption anywhere
*before* the tail means the file was damaged at rest and raises
:class:`CheckpointError` instead of silently dropping completed work.
"""

from __future__ import annotations

import json
import os

from .staging import StagingError, check_record_crc, record_crc

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_NAME",
    "CheckpointError",
    "CheckpointLog",
]

CHECKPOINT_FORMAT = "repro-build-checkpoint-v1"
CHECKPOINT_NAME = "checkpoint.ndjson"


class CheckpointError(StagingError):
    """Checkpoint log damaged somewhere other than its torn tail."""


class CheckpointLog:
    """One-writer append-only log of completed shards.

    ``records`` maps shard index to the latest verified record for that
    shard (appends are idempotent under retry: a shard re-completed
    after a crashed-before-fsync append simply wins with a newer line).
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self.records: dict[int, dict] = {}
        self.torn_tail = False
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "rb") as f:
                data = f.read()
        except FileNotFoundError:
            return
        lines = data.split(b"\n")
        # A complete append always ends with a newline, so the final
        # element is either empty (clean) or a torn tail (crash).
        body, tail = lines[:-1], lines[-1]
        for lineno, line in enumerate(body, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CheckpointError(
                    f"{self.path}:{lineno}: unparseable checkpoint record "
                    f"({exc})"
                ) from exc
            if record.get("format") != CHECKPOINT_FORMAT:
                raise CheckpointError(
                    f"{self.path}:{lineno}: unexpected record format "
                    f"{record.get('format')!r}"
                )
            if not check_record_crc(record):
                raise CheckpointError(
                    f"{self.path}:{lineno}: checkpoint record fails its CRC"
                )
            self.records[int(record["shard"])] = record
        if tail.strip():
            # Torn tail: the crash happened mid-append; that shard will
            # simply be re-run.  Tolerate a record that *parses* but
            # fails its CRC the same way — it is still just the tail.
            self.torn_tail = True

    def completed_shards(self) -> set[int]:
        """Shard indices with a verified completion record."""
        return set(self.records)

    def append(self, record: dict) -> dict:
        """Stamp, append and fsync one shard-completion record."""
        record = dict(record)
        record["format"] = CHECKPOINT_FORMAT
        record.pop("crc", None)
        record["crc"] = record_crc(record)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with open(self.path, "ab") as f:
            f.write(line.encode())
            f.flush()
            os.fsync(f.fileno())
        self.records[int(record["shard"])] = record
        return record
