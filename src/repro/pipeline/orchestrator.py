"""Fault-tolerant sharded bulk load: supervise, checkpoint, assemble.

:func:`parallel_bulk_load` is the multi-process twin of
:func:`repro.rtree.bulk.bulk_load` with three extra guarantees:

**Bit-identical output.**  Shards are the top-level STR slabs — a
function of the data, never of the worker count — and workers replay the
serial loader's per-slab recursion over the same staged float64 arrays.
Assembly writes every shard's pages in slab order through the ordinary
``store.allocate()`` sequence and reuses
:func:`~repro.rtree.bulk.pack_upper_levels` for the internal levels, so
a 7-worker build and a serial ``bulk_load`` produce the same bytes in
the same page ids.

**Crash tolerance.**  All intermediate state lives in a staging
directory under CRC-verified, atomically-published files; the
orchestrator appends one fsynced checkpoint record per shard *after*
verifying the worker's output.  Kill anything — worker or orchestrator,
any instant — and ``resume=True`` re-runs exactly the shards without a
verified checkpoint.  Workers that die or stop heartbeating are retried
up to ``max_attempts`` times; a shard that keeps failing raises a typed
:class:`PoisonShard` (staging kept, ``poison.json`` written) rather
than ever committing a partial tree.

**Observability.**  Every worker ships its own
:class:`~repro.obs.metrics.MetricsRegistry` home inside its done
record; the orchestrator merges them (checkpointed shards included, so
resumed builds keep the metrics of work done before the crash) and
returns the merged registry in the :class:`PipelineReport` for the run
manifest.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.geometry import GeometryError, RectArray
from ..core.packing.str_ import SortTileRecursive
from ..obs import runtime as obs
from ..obs.metrics import MetricsRegistry
from ..rtree.bulk import BulkLoadReport, pack_upper_levels
from ..rtree.node import RTreeError
from ..rtree.paged import PagedRTree
from ..storage.counters import IOStats
from ..storage.page import required_page_size
from ..storage.store import MemoryPageStore, PageStore
from .checkpoint import CHECKPOINT_NAME, CheckpointLog
from .plan import (
    BuildPlan,
    ResumeMismatch,
    input_fingerprint,
    load_plan,
    make_plan,
    stage_input,
    write_plan,
)
from .staging import (
    StagingDir,
    atomic_write_json,
    check_record_crc,
    file_crc32c,
)
from . import worker as shard_worker

__all__ = [
    "PipelineError",
    "PoisonShard",
    "PipelineReport",
    "parallel_bulk_load",
]


class PipelineError(RTreeError):
    """Raised for unusable pipeline configuration or corrupted staging."""


class PoisonShard(PipelineError):
    """A shard failed every allowed attempt.

    The staging directory is kept (healthy shards' checkpoints survive)
    and ``poison.json`` records the diagnosis; fixing the cause and
    re-running with ``resume=True`` only re-executes the poisoned shard.
    """

    def __init__(self, shard: int, attempts: int, reason: str,
                 staging_path: str):
        super().__init__(
            f"shard {shard} failed {attempts} attempt(s): {reason} "
            f"(staging kept at {staging_path}; fix and resume)"
        )
        self.shard = shard
        self.attempts = attempts
        self.reason = reason
        self.staging_path = staging_path


@dataclass(frozen=True)
class PipelineReport:
    """What the parallel build did (superset of the serial report)."""

    bulk: BulkLoadReport
    plan: BuildPlan
    workers: int
    #: Failed attempts per shard (shards absent never failed).
    retries: dict[int, int]
    #: Shards found already checkpointed by a resume.
    resumed_shards: tuple[int, ...]
    #: Merged per-shard worker registries + orchestrator counters.
    metrics: MetricsRegistry = field(compare=False)
    staging_path: str = ""


def _verify_shard_output(staging: StagingDir, shard: int,
                         plan: BuildPlan, record: dict | None
                         ) -> tuple[dict | None, str]:
    """Validate a done/checkpoint record against the published files.

    Returns ``(record, "")`` when the shard's output is provably
    complete, else ``(None, reason)``.
    """
    if record is None:
        return None, "no completion record"
    if not check_record_crc(record):
        return None, "completion record fails its CRC"
    if int(record.get("shard", -1)) != shard:
        return None, f"record names shard {record.get('shard')}"
    if int(record.get("fingerprint", -1)) != plan.fingerprint:
        return None, "record fingerprint does not match the plan"
    start, stop = plan.shard_ranges()[shard]
    if int(record.get("records", -1)) != stop - start:
        return None, (f"record count {record.get('records')} != slab "
                      f"size {stop - start}")
    if int(record.get("pages", -1)) != plan.shard_pages(shard):
        return None, (f"page count {record.get('pages')} != expected "
                      f"{plan.shard_pages(shard)}")
    for name, crc_key, bytes_key in (
        (shard_worker.run_name(shard), "run_crc", "run_bytes"),
        (shard_worker.mbrs_name(shard), "mbrs_crc", "mbrs_bytes"),
    ):
        path = staging.file(name)
        if not os.path.exists(path):
            return None, f"{name} missing"
        crc, size = file_crc32c(path)
        if crc != record.get(crc_key) or size != record.get(bytes_key):
            return None, f"{name} does not match its recorded CRC"
    return record, ""


def _load_done_record(staging: StagingDir, shard: int) -> dict | None:
    import json

    path = staging.file(shard_worker.done_name(shard))
    try:
        with open(path) as f:
            record = json.load(f)
    except (OSError, json.JSONDecodeError):
        return None
    if record.get("format") != shard_worker.DONE_FORMAT:
        return None
    return record


def _failure_reason(staging: StagingDir, shard: int, fallback: str) -> str:
    path = staging.file(shard_worker.error_name(shard))
    try:
        with open(path) as f:
            tail = f.read().strip().splitlines()
    except OSError:
        return fallback
    return f"{fallback}: {tail[-1]}" if tail else fallback


class _Supervisor:
    """Runs pending shards under process supervision with retries."""

    def __init__(self, staging: StagingDir, plan: BuildPlan,
                 checkpoint: CheckpointLog, *, workers: int,
                 heartbeat_s: float, deadline_s: float, max_attempts: int,
                 fault: dict | None, throttle_s: float, poll_s: float,
                 wall_clock: Callable[[], float] = time.time):
        # Injected wall clock: heartbeat files carry wall-clock mtimes,
        # so calibrating against the monotonic clock needs one wall
        # read — tests substitute a fake to drive staleness.
        self.wall_clock = wall_clock
        self.staging = staging
        self.plan = plan
        self.checkpoint = checkpoint
        self.workers = workers
        self.heartbeat_s = heartbeat_s
        self.deadline_s = deadline_s
        self.max_attempts = max_attempts
        self.fault = fault or {}
        self.throttle_s = throttle_s
        self.poll_s = poll_s
        self.retries: dict[int, int] = {}
        self.attempts: dict[int, int] = {}

    # -- shared bits ---------------------------------------------------------

    def _fault_for(self, shard: int) -> str | None:
        plan = self.fault.get(shard)
        if plan is None:
            return None
        attempt = self.attempts.get(shard, 0)
        return plan[attempt] if attempt < len(plan) else None

    def _record_success(self, shard: int, record: dict) -> None:
        self.checkpoint.append(record)
        obs.inc("pipeline.shards_checkpointed")

    def _record_failure(self, shard: int, reason: str,
                        pending: deque) -> None:
        self.attempts[shard] = self.attempts.get(shard, 0) + 1
        self.retries[shard] = self.attempts[shard]
        obs.inc("pipeline.shard_failures")
        if self.attempts[shard] >= self.max_attempts:
            diagnosis = {
                "shard": shard,
                "attempts": self.attempts[shard],
                "reason": reason,
                "slab": list(self.plan.shard_ranges()[shard]),
            }
            atomic_write_json(self.staging.file("poison.json"), diagnosis)
            self.staging.keep()
            raise PoisonShard(shard, self.attempts[shard], reason,
                              self.staging.path)
        pending.append(shard)

    # -- inline mode (workers == 0) ------------------------------------------

    def run_inline(self, pending_shards: list[int]) -> None:
        pending = deque(pending_shards)
        while pending:
            shard = pending.popleft()
            start, stop = self.plan.shard_ranges()[shard]
            try:
                record = shard_worker.run_shard(
                    self.staging.path, shard, start, stop,
                    capacity=self.plan.capacity,
                    page_size=self.plan.page_size,
                    ndim=self.plan.ndim,
                    fingerprint=self.plan.fingerprint,
                    attempt=self.attempts.get(shard, 0),
                    heartbeat_s=self.heartbeat_s,
                    fault=self._fault_for(shard),
                    throttle_s=self.throttle_s,
                    inline=True,
                )
            except shard_worker.InjectedWorkerFault as exc:
                self._record_failure(shard, str(exc), pending)
                continue
            record, reason = _verify_shard_output(
                self.staging, shard, self.plan, record)
            if record is None:
                self._record_failure(shard, reason, pending)
            else:
                self._record_success(shard, record)

    # -- subprocess mode -----------------------------------------------------

    def _launch(self, ctx: Any, shard: int) -> Any:
        start, stop = self.plan.shard_ranges()[shard]
        spec = {
            "staging_path": self.staging.path,
            "shard": shard,
            "start": start,
            "stop": stop,
            "capacity": self.plan.capacity,
            "page_size": self.plan.page_size,
            "ndim": self.plan.ndim,
            "fingerprint": self.plan.fingerprint,
            "attempt": self.attempts.get(shard, 0),
            "heartbeat_s": self.heartbeat_s,
            "fault": self._fault_for(shard),
            "throttle_s": self.throttle_s,
        }
        proc = ctx.Process(target=shard_worker._process_main, args=(spec,),
                           name=f"repro-shard-{shard}")
        proc.start()
        obs.inc("pipeline.workers_launched")
        return proc

    def _heartbeat_age(self, shard: int, started_at: float) -> float:
        try:
            mtime = os.path.getmtime(
                self.staging.file(shard_worker.heartbeat_name(shard)))
        except OSError:
            mtime = started_at
        return time.monotonic() - max(mtime - self._mtime_skew, started_at)

    def run_processes(self, pending_shards: list[int]) -> None:
        method = ("fork" if "fork" in multiprocessing.get_all_start_methods()
                  else "spawn")
        ctx = multiprocessing.get_context(method)
        # Heartbeats are file mtimes (wall clock); supervision runs on
        # the monotonic clock.  Calibrate the offset once.
        self._mtime_skew = self.wall_clock() - time.monotonic()
        pending = deque(pending_shards)
        running: dict[int, tuple] = {}
        try:
            while pending or running:
                while pending and len(running) < self.workers:
                    shard = pending.popleft()
                    running[shard] = (self._launch(ctx, shard),
                                      time.monotonic())
                time.sleep(self.poll_s)
                for shard, (proc, started_at) in list(running.items()):
                    if proc.is_alive():
                        if self._heartbeat_age(shard, started_at) \
                                > self.deadline_s:
                            proc.terminate()
                            proc.join(timeout=2.0)
                            if proc.is_alive():  # pragma: no cover
                                proc.kill()
                                proc.join()
                            del running[shard]
                            obs.inc("pipeline.workers_reaped")
                            self._record_failure(
                                shard,
                                f"heartbeat stale for >{self.deadline_s}s",
                                pending)
                        continue
                    proc.join()
                    del running[shard]
                    record, reason = _verify_shard_output(
                        self.staging, shard, self.plan,
                        _load_done_record(self.staging, shard))
                    if record is not None:
                        self._record_success(shard, record)
                    else:
                        self._record_failure(
                            shard,
                            _failure_reason(
                                self.staging, shard,
                                f"worker exit code {proc.exitcode}, "
                                f"{reason}"),
                            pending)
        finally:
            for shard, (proc, _) in running.items():
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
                    if proc.is_alive():  # pragma: no cover
                        proc.kill()
                        proc.join()


def _assemble(staging: StagingDir, plan: BuildPlan,
              checkpoint: CheckpointLog, store: PageStore
              ) -> tuple[PagedRTree, BulkLoadReport]:
    """Write checkpointed shard runs into the store and pack upward."""
    build_io = store.stats.snapshot()
    page_ids: list[int] = []
    mbr_los: list[np.ndarray] = []
    mbr_his: list[np.ndarray] = []
    with obs.span("pipeline.assemble", shards=plan.shard_count,
                  leaf_pages=plan.leaf_pages):
        for shard in range(plan.shard_count):
            record, reason = _verify_shard_output(
                staging, shard, plan, checkpoint.records.get(shard))
            if record is None:
                raise PipelineError(
                    f"cannot assemble: shard {shard} {reason}")
            with open(staging.file(shard_worker.run_name(shard)),
                      "rb") as f:
                blob = f.read()
            npages = int(record["pages"])
            for i in range(npages):
                page_id = store.allocate()
                store.write_page(
                    page_id,
                    blob[i * plan.page_size:(i + 1) * plan.page_size])
                page_ids.append(page_id)
            mbrs = np.load(staging.file(shard_worker.mbrs_name(shard)))
            mbr_los.append(mbrs[:, 0, :])
            mbr_his.append(mbrs[:, 1, :])
        mbr_rects = RectArray(np.concatenate(mbr_los),
                              np.concatenate(mbr_his), copy=False)
        root_page, height = pack_upper_levels(
            store, SortTileRecursive(), plan.capacity, mbr_rects,
            np.asarray(page_ids, dtype=np.int64),
        )
    tree = PagedRTree(store, root_page, height=height, ndim=plan.ndim,
                      capacity=plan.capacity, size=plan.count)
    # Same atomic cutover as the serial loader: a durable store's
    # superblock now names a complete tree, or never changed at all.
    tree.commit_meta()
    io_delta = IOStats(
        disk_reads=store.stats.disk_reads - build_io.disk_reads,
        disk_writes=store.stats.disk_writes - build_io.disk_writes,
    )
    report = BulkLoadReport(
        pages_written=io_delta.disk_writes,
        height=tree.height,
        leaf_pages=plan.leaf_pages,
        build_io=io_delta,
    )
    return tree, report


def parallel_bulk_load(
    rects: RectArray | None = None,
    *,
    data_ids: np.ndarray | None = None,
    capacity: int = 100,
    store: PageStore | None = None,
    staging_path: str | os.PathLike,
    workers: int = 2,
    resume: bool = False,
    heartbeat_s: float = 0.5,
    deadline_s: float = 30.0,
    max_attempts: int = 3,
    fault: dict | None = None,
    throttle_s: float = 0.0,
    keep_staging: bool = False,
    poll_s: float = 0.05,
) -> tuple[PagedRTree, PipelineReport]:
    """Bulk-load an R-tree with sharded workers and resumable checkpoints.

    Parameters mirror :func:`repro.rtree.bulk.bulk_load` plus:

    staging_path:
        Directory for staged input, shard runs and the checkpoint log.
        Survives any crash; removed only after a successful build
        (unless ``keep_staging``).
    workers:
        Concurrent worker processes; ``0`` runs shards inline in this
        process (fast, still checkpointed — the property tests' mode).
    resume:
        Re-open an existing staging directory: the plan is CRC-verified
        against ``rects`` (or trusted from staging when ``rects`` is
        ``None``), checkpointed shards are skipped, the rest re-run.
    heartbeat_s / deadline_s / max_attempts:
        Liveness cadence, staleness deadline, and per-shard attempt cap
        before :class:`PoisonShard`.
    fault / throttle_s:
        Test hooks: ``{shard: ["crash" | "hang", ...]}`` per attempt,
        and a per-shard sleep before publication.
    """
    if workers < 0:
        raise PipelineError("workers must be >= 0")
    if max_attempts < 1:
        raise PipelineError("max_attempts must be >= 1")
    if rects is None and not resume:
        raise PipelineError("a fresh build needs input rectangles")
    if rects is not None and len(rects) == 0:
        raise GeometryError("cannot bulk-load zero rectangles")
    if capacity < 2:
        raise RTreeError("capacity must be >= 2")

    # Never remove on error: any interruption — including exceptions —
    # must leave resumable state behind.  Success cleans up.
    staging = StagingDir(staging_path, remove_on_error=False,
                         remove_on_success=not keep_staging)
    with staging, obs.span("pipeline.build", workers=workers,
                           resume=resume):
        staging.sweep_tmp()
        if resume:
            plan = load_plan(staging)
            if plan.capacity != capacity:
                raise ResumeMismatch(
                    f"resume with capacity {capacity}, plan has "
                    f"{plan.capacity}")
            if store is None:
                if plan.page_size != required_page_size(capacity,
                                                        plan.ndim):
                    raise ResumeMismatch(
                        "resume without a store, but the plan was made "
                        f"for page size {plan.page_size}")
                store = MemoryPageStore(plan.page_size)
            elif store.page_size != plan.page_size:
                raise ResumeMismatch(
                    f"resume with page size {store.page_size}, plan has "
                    f"{plan.page_size}")
            if rects is not None:
                ids = (np.arange(len(rects), dtype=np.int64)
                       if data_ids is None
                       else np.asarray(data_ids, dtype=np.int64))
                if input_fingerprint(rects, ids, capacity=capacity,
                                     page_size=plan.page_size) \
                        != plan.fingerprint:
                    raise ResumeMismatch(
                        "resume input does not match the staged plan "
                        "(different data, ids, capacity or page size)")
        else:
            if staging.exists("plan.json"):
                raise PipelineError(
                    f"{staging.file('plan.json')} already exists; pass "
                    "resume=True to continue it or remove the staging "
                    "directory")
            if store is None:
                store = MemoryPageStore(required_page_size(capacity,
                                                           rects.ndim))
            if store.payload_size < required_page_size(capacity,
                                                       rects.ndim):
                raise RTreeError(
                    f"store payload size {store.payload_size} cannot "
                    f"hold {capacity} {rects.ndim}-d entries")
            ids = (np.arange(len(rects), dtype=np.int64)
                   if data_ids is None
                   else np.asarray(data_ids, dtype=np.int64))
            if ids.shape != (len(rects),):
                raise RTreeError(
                    f"data_ids shape {ids.shape} does not match "
                    f"{len(rects)} rects")
            with obs.span("pipeline.plan", size=len(rects)):
                plan = make_plan(rects, ids, capacity=capacity,
                                 page_size=store.page_size)
                # The one global computation: STR's stable x-sort.  Every
                # worker replays the remaining recursion on its own slab.
                xorder = np.argsort(rects.centers()[:, 0], kind="stable")
                inputs = stage_input(staging, plan, rects, ids, xorder)
                write_plan(staging, plan, inputs)

        checkpoint = CheckpointLog(staging.file(CHECKPOINT_NAME))
        resumed: list[int] = []
        pending: list[int] = []
        for shard in range(plan.shard_count):
            record, _ = _verify_shard_output(
                staging, shard, plan, checkpoint.records.get(shard))
            if record is not None:
                resumed.append(shard)
            else:
                pending.append(shard)
        obs.set_gauge("pipeline.shards", plan.shard_count)
        obs.set_gauge("pipeline.shards_resumed", len(resumed))

        supervisor = _Supervisor(
            staging, plan, checkpoint, workers=workers,
            heartbeat_s=heartbeat_s, deadline_s=deadline_s,
            max_attempts=max_attempts, fault=fault,
            throttle_s=throttle_s, poll_s=poll_s,
        )
        with obs.span("pipeline.shards", pending=len(pending),
                      workers=workers):
            if workers == 0:
                supervisor.run_inline(pending)
            else:
                supervisor.run_processes(pending)

        tree, bulk_report = _assemble(staging, plan, checkpoint, store)

        merged = MetricsRegistry()
        for shard in range(plan.shard_count):
            dump = checkpoint.records[shard].get("metrics")
            if dump:
                merged.merge(MetricsRegistry.from_jsonable(dump))
        merged.counter("pipeline.shard_retries").inc(
            sum(supervisor.retries.values()))
        merged.counter("pipeline.shards_resumed").inc(len(resumed))
        merged.gauge("pipeline.workers").set(workers)

        report = PipelineReport(
            bulk=bulk_report,
            plan=plan,
            workers=workers,
            retries=dict(supervisor.retries),
            resumed_shards=tuple(resumed),
            metrics=merged,
            staging_path=staging.path,
        )
        return tree, report
