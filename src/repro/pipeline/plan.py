"""Shard planning for the parallel STR bulk load.

STR's top level is embarrassingly parallel *by construction*: the paper
sorts all rectangles by the first center coordinate and cuts the sorted
sequence into ``S = ceil(P ** (1/k))`` consecutive slabs, each of which
is then ordered completely independently of the others (the recursion
never looks across a slab boundary).  The plan exploits exactly that
cut:

* one **shard = one top-level slab**, so the shard set is a function of
  the input alone — never of the worker count — which is what makes a
  2-worker and a 7-worker build byte-identical;
* every slab except possibly the last holds a whole number of leaf
  pages (slab width is ``n * ceil(P^((k-1)/k))``, a multiple of ``n``),
  so workers can encode finished leaf pages without ever sharing a page
  with a neighbour;
* the orchestrator computes only the cheap part (one stable argsort by
  center-x) and ships slab boundaries; workers do the per-slab
  recursive ordering and leaf encoding.

The plan is persisted to ``plan.json`` (CRC-covered, atomic) alongside
the staged input arrays, and re-verified on ``--resume``: a resumed
build against different data, capacity or page size is a
:class:`ResumeMismatch`, never a silently mixed tree.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..core.geometry import GeometryError, RectArray
from ..core.packing.str_ import str_slab_sizes
from ..storage.integrity import crc32c
from .staging import (
    StagingDir,
    StagingError,
    atomic_save_npy,
    atomic_write_json,
    check_record_crc,
    file_crc32c,
    record_crc,
)

__all__ = [
    "PLAN_FORMAT",
    "ResumeMismatch",
    "BuildPlan",
    "make_plan",
    "write_plan",
    "load_plan",
    "stage_input",
    "load_staged_input",
]

PLAN_FORMAT = "repro-build-plan-v1"

#: Staged input array files (all published atomically, CRC-recorded in
#: the plan).  ``xorder`` is the global stable argsort by center-x that
#: defines every shard's slab.
INPUT_LO = "input.lo.npy"
INPUT_HI = "input.hi.npy"
INPUT_IDS = "input.ids.npy"
INPUT_XORDER = "input.xorder.npy"
INPUT_FILES = (INPUT_LO, INPUT_HI, INPUT_IDS, INPUT_XORDER)


class ResumeMismatch(RuntimeError):
    """A ``--resume`` found staging state for a *different* build (other
    data, capacity, page size, or a corrupt plan/input file)."""


@dataclass(frozen=True)
class BuildPlan:
    """Everything a build (or its resume) must agree on."""

    count: int
    ndim: int
    capacity: int
    page_size: int
    #: CRC32C binding the plan to the exact input (coords + ids).
    fingerprint: int
    #: Top-level STR slab sizes, in slab order; one shard per slab.
    slab_sizes: tuple[int, ...]

    @property
    def shard_count(self) -> int:
        return len(self.slab_sizes)

    def shard_ranges(self) -> list[tuple[int, int]]:
        """``[start, stop)`` offsets of each shard in x-sorted order."""
        ranges = []
        offset = 0
        for size in self.slab_sizes:
            ranges.append((offset, offset + size))
            offset += size
        return ranges

    def shard_pages(self, shard: int) -> int:
        """Leaf pages shard ``shard`` will produce."""
        size = self.slab_sizes[shard]
        return -(-size // self.capacity)

    @property
    def leaf_pages(self) -> int:
        return sum(self.shard_pages(s) for s in range(self.shard_count))

    def as_dict(self) -> dict:
        """JSON-able form (the body of ``plan.json``)."""
        return {
            "format": PLAN_FORMAT,
            "count": self.count,
            "ndim": self.ndim,
            "capacity": self.capacity,
            "page_size": self.page_size,
            "fingerprint": self.fingerprint,
            "slab_sizes": list(self.slab_sizes),
        }


def input_fingerprint(rects: RectArray, ids: np.ndarray, *,
                      capacity: int, page_size: int) -> int:
    """CRC32C binding coordinates, ids and build parameters together."""
    header = (f"{len(rects)}:{rects.ndim}:{capacity}:{page_size}"
              .encode("ascii"))
    crc = crc32c(header)
    crc = crc32c(np.ascontiguousarray(rects.los).tobytes(), crc)
    crc = crc32c(np.ascontiguousarray(rects.his).tobytes(), crc)
    return crc32c(np.ascontiguousarray(ids, dtype=np.int64).tobytes(), crc)


def make_plan(rects: RectArray, ids: np.ndarray, *, capacity: int,
              page_size: int) -> BuildPlan:
    """Derive the shard plan for one input (pure; no files touched)."""
    if len(rects) == 0:
        raise GeometryError("cannot plan a build over zero rectangles")
    sizes = (str_slab_sizes(len(rects), capacity, rects.ndim)
             if rects.ndim > 1 else [len(rects)])
    return BuildPlan(
        count=len(rects),
        ndim=rects.ndim,
        capacity=capacity,
        page_size=page_size,
        fingerprint=input_fingerprint(rects, ids, capacity=capacity,
                                      page_size=page_size),
        slab_sizes=tuple(int(s) for s in sizes),
    )


def stage_input(staging: StagingDir, plan: BuildPlan, rects: RectArray,
                ids: np.ndarray, xorder: np.ndarray) -> dict:
    """Publish the input arrays into the staging dir; returns the CRC
    table recorded in ``plan.json`` (``{name: {"crc", "bytes"}}``)."""
    arrays = {
        INPUT_LO: np.ascontiguousarray(rects.los),
        INPUT_HI: np.ascontiguousarray(rects.his),
        INPUT_IDS: np.ascontiguousarray(ids, dtype=np.int64),
        INPUT_XORDER: np.ascontiguousarray(xorder, dtype=np.int64),
    }
    table = {}
    for name, array in arrays.items():
        path = staging.file(name)
        atomic_save_npy(path, array)
        crc, size = file_crc32c(path)
        table[name] = {"crc": crc, "bytes": size}
    return table


def write_plan(staging: StagingDir, plan: BuildPlan,
               inputs: dict) -> str:
    """Atomically publish ``plan.json`` (CRC-covered)."""
    record = plan.as_dict()
    record["inputs"] = inputs
    record["crc"] = record_crc(record)
    return atomic_write_json(staging.file("plan.json"), record)


def load_plan(staging: StagingDir, *, verify_inputs: bool = True
              ) -> BuildPlan:
    """Reload and verify a staged plan (for ``--resume``).

    Checks the plan record's CRC and, when ``verify_inputs``, re-CRCs
    every staged input file against the table the plan recorded —
    a torn or substituted input is a :class:`ResumeMismatch`.
    """
    path = staging.file("plan.json")
    try:
        with open(path) as f:
            record = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise ResumeMismatch(f"{path}: unreadable plan ({exc})") from exc
    if record.get("format") != PLAN_FORMAT:
        raise ResumeMismatch(
            f"{path}: not a {PLAN_FORMAT} file "
            f"(format={record.get('format')!r})"
        )
    if not check_record_crc(record):
        raise ResumeMismatch(f"{path}: plan record fails its CRC")
    plan = BuildPlan(
        count=int(record["count"]),
        ndim=int(record["ndim"]),
        capacity=int(record["capacity"]),
        page_size=int(record["page_size"]),
        fingerprint=int(record["fingerprint"]),
        slab_sizes=tuple(int(s) for s in record["slab_sizes"]),
    )
    if verify_inputs:
        inputs = record.get("inputs", {})
        for name in INPUT_FILES:
            entry = inputs.get(name)
            if entry is None:
                raise ResumeMismatch(f"{path}: plan lists no CRC for {name}")
            target = staging.file(name)
            if not os.path.exists(target):
                raise ResumeMismatch(f"{target}: staged input missing")
            crc, size = file_crc32c(target)
            if crc != entry["crc"] or size != entry["bytes"]:
                raise ResumeMismatch(
                    f"{target}: staged input does not match the plan "
                    f"(crc 0x{crc:08x} vs 0x{entry['crc']:08x})"
                )
    return plan


def load_staged_input(staging: StagingDir | str
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
    """Memory-map the staged ``(los, his, ids, xorder)`` arrays.

    Workers call this instead of receiving arrays over the process
    boundary: the staged files are the single source of truth, shared
    read-only by every worker and every resume.
    """
    base = staging.path if isinstance(staging, StagingDir) else staging
    out = []
    for name in INPUT_FILES:
        path = os.path.join(base, name)
        try:
            out.append(np.load(path, mmap_mode="r"))
        except (OSError, ValueError) as exc:
            raise StagingError(f"{path}: cannot map staged input "
                               f"({exc})") from exc
    return tuple(out)
