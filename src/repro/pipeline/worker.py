"""Per-shard worker: order one STR slab, encode its leaf pages, publish.

A worker's universe is one top-level STR slab.  It memory-maps the
staged input, replays exactly the per-slab recursion the serial loader
would have run on the same records (stable sorts over the same float64
centers — bit-identical permutation), encodes full leaf pages with the
ordinary page codec, and publishes three files atomically:

* ``shard-NNNN.run.bin`` — the concatenated encoded leaf pages, in
  final page order;
* ``shard-NNNN.mbrs.npy`` — the per-page MBRs (``(pages, 2, ndim)``),
  so the orchestrator can pack upper levels without decoding runs;
* ``shard-NNNN.done.json`` — the CRC-carrying completion record (page
  and record counts, run-file CRCs, the plan fingerprint, and the
  worker's serialized :class:`~repro.obs.metrics.MetricsRegistry`).

The done record is published *last*; the orchestrator treats a shard as
complete only when the done record validates **and** the run files
match its CRCs, so a worker killed at any instant leaves either nothing
or a fully verifiable result.  Liveness is a heartbeat file touched by
a daemon thread; a worker that stops heartbeating past the deadline is
terminated and retried by the supervisor.

Fault injection (for the crash tests and the CI kill matrix) is explicit
and typed: ``fault="crash"`` tears a half-written tmp file and calls
``os._exit``; ``fault="hang"`` silences the heartbeat and sleeps.  In
inline mode (``workers=0``) both raise :class:`InjectedWorkerFault`
instead, so in-process property tests can exercise the retry path
without killing the test runner.
"""

from __future__ import annotations

import os
import threading
import time
import traceback

import numpy as np

from ..core.geometry import RectArray
from ..core.packing.base import leaf_group_sizes
from ..core.packing.str_ import SortTileRecursive
from ..obs.metrics import MetricsRegistry
from ..storage.page import NodePage, encode_node
from .plan import load_staged_input
from .staging import (
    atomic_save_npy,
    atomic_write_bytes,
    atomic_write_json,
    file_crc32c,
    record_crc,
)

__all__ = [
    "DONE_FORMAT",
    "InjectedWorkerFault",
    "run_name",
    "mbrs_name",
    "done_name",
    "heartbeat_name",
    "error_name",
    "run_shard",
]

DONE_FORMAT = "repro-shard-done-v1"


class InjectedWorkerFault(RuntimeError):
    """An injected fault fired in inline mode (test-only control flow)."""


def run_name(shard: int) -> str:
    """Staging filename of a shard's concatenated leaf pages."""
    return f"shard-{shard:04d}.run.bin"


def mbrs_name(shard: int) -> str:
    """Staging filename of a shard's per-page MBR array."""
    return f"shard-{shard:04d}.mbrs.npy"


def done_name(shard: int) -> str:
    """Staging filename of a shard's completion record."""
    return f"shard-{shard:04d}.done.json"


def heartbeat_name(shard: int) -> str:
    """Staging filename of a shard worker's liveness heartbeat."""
    return f"shard-{shard:04d}.heartbeat"


def error_name(shard: int) -> str:
    """Staging filename of a failed worker's traceback."""
    return f"shard-{shard:04d}.error.txt"


class _Heartbeat(threading.Thread):
    """Touches a file on an interval; the supervisor watches its mtime."""

    def __init__(self, path: str, interval_s: float):
        super().__init__(name="shard-heartbeat", daemon=True)
        self.path = path
        self.interval_s = max(interval_s, 0.05)
        self._stop = threading.Event()

    def touch(self) -> None:
        with open(self.path, "a"):
            pass
        os.utime(self.path, None)

    def run(self) -> None:
        while not self._stop.is_set():
            try:
                self.touch()
            except OSError:  # pragma: no cover - staging dir vanished
                return
            self._stop.wait(self.interval_s)

    def stop(self) -> None:
        self._stop.set()


def _fire_fault(fault: str | None, staging_path: str, shard: int,
                heartbeat: _Heartbeat, payload: bytes, *,
                inline: bool) -> None:
    if not fault:
        return
    if inline:
        raise InjectedWorkerFault(f"shard {shard}: injected {fault!r}")
    if fault == "crash":
        # Tear a half-written tmp alongside the real target, then die
        # without cleanup — exactly the litter sweep_tmp must clear.
        torn = os.path.join(staging_path,
                            f"{run_name(shard)}.tmp-{os.getpid()}")
        with open(torn, "wb") as f:
            f.write(payload[: max(1, len(payload) // 2)])
        os._exit(3)
    if fault == "hang":
        heartbeat.stop()
        time.sleep(3600.0)
    raise InjectedWorkerFault(f"shard {shard}: unknown fault {fault!r}")


def run_shard(
    staging_path: str,
    shard: int,
    start: int,
    stop: int,
    *,
    capacity: int,
    page_size: int,
    ndim: int,
    fingerprint: int,
    attempt: int = 0,
    heartbeat_s: float = 1.0,
    fault: str | None = None,
    throttle_s: float = 0.0,
    inline: bool = False,
) -> dict:
    """Order, encode and publish one shard; returns the done record."""
    metrics = MetricsRegistry()
    heartbeat = _Heartbeat(os.path.join(staging_path, heartbeat_name(shard)),
                           heartbeat_s)
    heartbeat.touch()
    if not inline:
        heartbeat.start()
    try:
        los, his, ids, xorder = load_staged_input(staging_path)
        idx = np.asarray(xorder[start:stop], dtype=np.int64)

        t0 = time.perf_counter()
        slab_los = np.asarray(los[idx])
        slab_his = np.asarray(his[idx])
        # Same elementwise center computation as RectArray.centers() on
        # the full input — the recursion below therefore sees exactly
        # the float64 keys the serial loader sorted.
        centers = (slab_los + slab_his) / 2.0
        if ndim > 1:
            local = SortTileRecursive()._order_slab(
                centers, np.arange(len(idx), dtype=np.int64),
                dim=1, capacity=capacity,
            )
        else:
            local = np.arange(len(idx), dtype=np.int64)
        metrics.histogram("pipeline.shard.order_s").observe(
            time.perf_counter() - t0)

        ordered_rects = RectArray(slab_los[local], slab_his[local],
                                  copy=False)
        ordered_ids = np.asarray(ids[idx[local]], dtype=np.int64)

        t0 = time.perf_counter()
        sizes = leaf_group_sizes(len(ordered_rects), capacity)
        pages = bytearray()
        offset = 0
        for size in sizes:
            node = NodePage(
                level=0,
                children=ordered_ids[offset:offset + size],
                rects=ordered_rects[offset:offset + size],
            )
            pages += encode_node(node, page_size)
            offset += size
        mbrs = ordered_rects.group_mbrs(sizes)
        metrics.histogram("pipeline.shard.encode_s").observe(
            time.perf_counter() - t0)
        metrics.counter("pipeline.records").inc(len(ordered_rects))
        metrics.counter("pipeline.leaf_pages").inc(len(sizes))
        metrics.counter("pipeline.shards_completed").inc()

        if throttle_s > 0.0:
            # Deliberate slow-down so kill tests can aim SIGKILLs into a
            # known window between ordering and publication.
            time.sleep(throttle_s)
        _fire_fault(fault, staging_path, shard, heartbeat, bytes(pages),
                    inline=inline)

        run_path = atomic_write_bytes(
            os.path.join(staging_path, run_name(shard)), bytes(pages))
        mbrs_path = atomic_save_npy(
            os.path.join(staging_path, mbrs_name(shard)),
            np.stack([mbrs.los, mbrs.his], axis=1),
        )
        run_crc, run_bytes = file_crc32c(run_path)
        mbrs_crc, mbrs_bytes = file_crc32c(mbrs_path)
        record = {
            "format": DONE_FORMAT,
            "shard": shard,
            "attempt": attempt,
            "records": len(ordered_rects),
            "pages": len(sizes),
            "run_crc": run_crc,
            "run_bytes": run_bytes,
            "mbrs_crc": mbrs_crc,
            "mbrs_bytes": mbrs_bytes,
            "fingerprint": fingerprint,
            "metrics": metrics.to_jsonable(),
        }
        record["crc"] = record_crc(record)
        # Published last: its existence asserts the run files above are
        # complete, and its CRCs let the supervisor prove it.
        atomic_write_json(os.path.join(staging_path, done_name(shard)),
                          record)
        return record
    finally:
        heartbeat.stop()


def _process_main(spec: dict) -> None:
    """Subprocess entry point (module-level so ``spawn`` can pickle it)."""
    staging_path = spec["staging_path"]
    shard = spec["shard"]
    try:
        run_shard(
            staging_path, shard, spec["start"], spec["stop"],
            capacity=spec["capacity"], page_size=spec["page_size"],
            ndim=spec["ndim"], fingerprint=spec["fingerprint"],
            attempt=spec["attempt"], heartbeat_s=spec["heartbeat_s"],
            fault=spec.get("fault"), throttle_s=spec.get("throttle_s", 0.0),
        )
    except BaseException:
        try:
            atomic_write_bytes(
                os.path.join(staging_path, error_name(shard)),
                traceback.format_exc().encode(),
            )
        except OSError:  # pragma: no cover - staging dir vanished
            pass
        raise SystemExit(1)
