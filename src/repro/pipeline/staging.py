"""Staging directories and atomic file primitives for resumable builds.

Everything the parallel build pipeline persists before its final commit
lives in one *staging directory*: the staged input arrays, the shard
plan, per-shard leaf runs, heartbeat files and the checkpoint log.  The
rules that make a staging directory crash-safe are small and uniform:

* every durable file is written to a unique ``*.tmp-<pid>`` sibling and
  published with ``os.replace`` — readers never observe a half-written
  file, and two writers racing on the same logical file (an orphaned
  worker from a killed orchestrator vs. its replacement) both publish
  complete images;
* published files are verified by content CRC32C before they are
  trusted on resume;
* the directory itself is context-managed: a *clean exception* removes
  it (no litter after a failed in-process build), while a hard kill
  leaves it behind for ``--resume`` to pick up.  Callers that want the
  directory to survive a specific failure (the orchestrator keeps it on
  :class:`~repro.pipeline.PoisonShard` so the healthy shards' work is
  not thrown away) call :meth:`StagingDir.keep` first.

The same primitives back the external sorter's crash-clean spill runs
(:mod:`repro.core.packing.external`).
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Any

from ..storage.integrity import crc32c

__all__ = [
    "StagingError",
    "StagingDir",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_save_npy",
    "file_crc32c",
    "record_crc",
    "check_record_crc",
]


class StagingError(RuntimeError):
    """Raised for unusable staging directories or corrupt staged files."""


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> str:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename).

    The temporary name carries the writer's pid so two processes
    publishing the same logical file never tear each other's buffers;
    ``os.replace`` makes the last complete image win.  The fsync is
    unconditional: a rename of still-buffered bytes can publish a torn
    file after a crash, which is exactly what RL008 proves cannot
    happen here.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return path


def atomic_write_json(path: str | os.PathLike, payload: dict) -> str:
    """Atomically publish ``payload`` as pretty-printed JSON."""
    data = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
    return atomic_write_bytes(path, data)


def atomic_save_npy(path: str | os.PathLike, array: Any) -> str:
    """Atomically publish a numpy array as a ``.npy`` file."""
    import numpy as np

    path = os.fspath(path)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "wb") as f:
        np.save(f, array)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return path


def file_crc32c(path: str | os.PathLike, *, chunk_bytes: int = 1 << 20
                ) -> tuple[int, int]:
    """``(crc32c, size)`` of a file's full contents."""
    crc = 0
    size = 0
    with open(os.fspath(path), "rb") as f:
        while True:
            chunk = f.read(chunk_bytes)
            if not chunk:
                break
            crc = crc32c(chunk, crc)
            size += len(chunk)
    return crc, size


def record_crc(record: dict) -> int:
    """CRC32C over a JSON record's canonical form (its ``crc`` key, if
    present, is excluded — that is where this value goes)."""
    body = {k: v for k, v in record.items() if k != "crc"}
    return crc32c(json.dumps(body, sort_keys=True,
                             separators=(",", ":")).encode())


def check_record_crc(record: dict) -> bool:
    """Does the record's embedded ``crc`` match its contents?"""
    return isinstance(record.get("crc"), int) \
        and record["crc"] == record_crc(record)


class StagingDir:
    """A context-managed working directory for resumable pipelines.

    Parameters
    ----------
    path:
        Directory to create (parents included).  Reusing an existing
        directory is exactly how ``--resume`` works — the constructor
        never clears it.
    remove_on_error:
        Remove the directory when the ``with`` block exits on an
        exception (default).  A SIGKILL obviously skips this, which is
        the crash-survival property resume relies on.
    remove_on_success:
        Remove the directory on clean exit (default): a completed build
        has committed its output, so its scaffolding is garbage.
    """

    def __init__(self, path: str | os.PathLike, *,
                 remove_on_error: bool = True,
                 remove_on_success: bool = True):
        self.path = os.fspath(path)
        self.remove_on_error = remove_on_error
        self.remove_on_success = remove_on_success
        self._keep = False
        os.makedirs(self.path, exist_ok=True)
        if not os.path.isdir(self.path):  # pragma: no cover - race only
            raise StagingError(f"{self.path}: not a directory")

    def file(self, name: str) -> str:
        """Absolute path of ``name`` inside the staging directory."""
        return os.path.join(self.path, name)

    def exists(self, name: str) -> bool:
        """Does ``name`` exist inside the staging directory?"""
        return os.path.exists(self.file(name))

    def keep(self) -> None:
        """Survive the ``with`` exit regardless of outcome (resume will
        want this directory)."""
        self._keep = True

    def remove(self) -> None:
        """Delete the directory tree now (idempotent)."""
        shutil.rmtree(self.path, ignore_errors=True)

    def sweep_tmp(self) -> int:
        """Delete leftover ``*.tmp-*`` files (torn writes from a previous
        crashed process); returns how many were removed."""
        removed = 0
        for entry in os.listdir(self.path):
            if ".tmp-" in entry:
                try:
                    os.unlink(os.path.join(self.path, entry))
                    removed += 1
                except OSError:  # pragma: no cover - concurrent sweep
                    pass
        return removed

    def __enter__(self) -> "StagingDir":
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None, tb: object) -> None:
        if self._keep:
            return
        if exc_type is None:
            if self.remove_on_success:
                self.remove()
        elif self.remove_on_error:
            self.remove()
