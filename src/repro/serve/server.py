"""The resilient query server.

:class:`QueryServer` serves region/point/count queries from a persisted
:class:`~repro.rtree.paged.PagedRTree` to many concurrent clients over
the newline-JSON protocol, and stays *honestly* available while the
store misbehaves:

* every request carries a :class:`~repro.serve.deadline.Deadline`
  propagated into the paged search loop (cooperative cancellation
  between node visits; no success is ever written after its deadline);
* transient page faults are absorbed by the store's
  :class:`~repro.storage.faults.RetryPolicy`, behind a per-store
  :class:`~repro.storage.breaker.CircuitBreaker` that trips on sustained
  failures and fast-fails reads while open;
* reads that still fail are served *degraded*: the unreachable subtree
  is skipped, the response is flagged ``partial=true`` with an
  ``unreachable_subtrees`` count — a subset of the truth, never a
  fabrication — and deterministically-corrupt pages join the runtime
  quarantine so they stop feeding the breaker;
* an :class:`~repro.serve.admission.AdmissionController` bounds
  in-flight work and sheds excess load with typed ``Overloaded`` errors;
* ``healthz``/``readyz``/``stats`` report breaker state,
  journal-recovery status, rolling latency percentiles and the active
  tree generation;
* when started with ``allow_reload=True``, the ``reload`` admin op
  cuts over to a freshly built tree file with zero downtime: the
  candidate is fsck-verified and opened while the old generation keeps
  answering, then swapped in under the search lock (which drains any
  in-flight walk); rejections are typed ``ReloadRejected`` errors and
  never disturb the serving generation.

* started with ``ingest=IngestState(...)``, the server accepts
  ``insert``/``delete`` writes: each is fsync'd to the write-ahead log
  *before* it is acked (the response carries the assigned LSN), then
  applied to the in-memory delta layer under the search lock, so
  read-your-writes holds immediately; queries answer over
  ``packed ∪ delta − tombstones`` via
  :class:`~repro.ingest.overlay.OverlaySearcher` — exactly what a
  from-scratch rebuild would answer.  A bounded WAL sheds writes with
  typed ``IngestOverloaded`` errors before logging anything, and the
  ``merge`` admin op seals the active segment, re-packs the sealed ops
  into a fresh generation in the background (kill-resumable at every
  write boundary), and cuts over through the same zero-downtime swap
  ``reload`` uses.

* started with ``workers=N``, queries execute in a supervised pool of
  ``N`` crash-isolated worker *processes* (:mod:`repro.serve.pool`),
  each mmapping the generation file read-only; a crashed or hung
  worker is restarted with backoff, its in-flight requests are
  re-dispatched at most once (typed ``WorkerLost`` after that), a
  flapping pool degrades to in-process serving instead of
  crash-looping, and ``reload`` drains + remaps the pool with zero
  downtime.  ``scatter=True`` additionally fans each query out across
  the root's subtrees with per-shard degradation.

Concurrency model: asyncio handles sockets and admission; searches run
on a small thread pool under one lock (the shared file handle and
buffer pool are single-accessor) or on the worker-process pool, so
queueing, shedding and deadline expiry overlap real work.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter as TallyCounter
from concurrent.futures import ThreadPoolExecutor
from threading import Lock
from typing import TYPE_CHECKING, Callable, Iterable

from ..core.geometry import GeometryError, Rect
from ..ingest.overlay import OverlaySearcher
from ..ingest.state import IngestState
from ..ingest.wal import IngestError, WalOp
from ..obs import runtime as obs
from ..obs.slo import RollingWindow, SloTarget
from ..rtree.knn import knn_detailed
from ..rtree.paged import PagedRTree
from ..storage.breaker import CircuitBreaker
from ..storage.integrity import IntegrityError
from ..storage.page import PageFormatError
from ..storage.store import StoreError
from .admission import AdmissionController
from .deadline import Deadline
from .health import healthz_payload, readyz_payload, stats_payload
from .pool import PoolUnavailable, TreeSpec, WorkerPool
if TYPE_CHECKING:
    from ..ingest.merge import MergeReport

from .protocol import (
    PROTOCOL_VERSION,
    QUERY_OPS,
    WRITE_OPS,
    BadRequest,
    IngestOverloaded,
    MergeFailed,
    ReloadRejected,
    Request,
    Response,
    ServeError,
    decode_request,
    encode_response,
    rect_from_wire,
    rect_to_wire,
)

__all__ = ["QueryServer"]

#: Exceptions from the storage stack that map to the ``StoreUnavailable``
#: wire code when degraded reads could not absorb them.
_STORE_FAILURES = (StoreError, IntegrityError, PageFormatError, OSError)

#: Page failures that are the *page's* fault (vs. the device's): these
#: are deterministic, so the page joins the runtime quarantine.
_QUARANTINABLE = (IntegrityError, PageFormatError)


class QueryServer:
    """A multi-client asyncio query server over one paged R-tree."""

    def __init__(
        self,
        tree: PagedRTree,
        *,
        buffer_pages: int = 64,
        max_inflight: int = 8,
        max_queue: int = 16,
        default_deadline_s: float = 1.0,
        max_deadline_s: float = 30.0,
        breaker: CircuitBreaker | None = None,
        quarantine: Iterable[int] | None = None,
        slo: SloTarget | None = None,
        degraded: bool = True,
        clock: Callable[[], float] = time.monotonic,
        latency_window: int = 1024,
        search_workers: int = 2,
        allow_reload: bool = False,
        workers: int = 0,
        scatter: bool = False,
        pool_seed: int = 0,
        ingest: IngestState | None = None,
    ):
        self.tree = tree
        self.clock = clock
        self.default_deadline_s = default_deadline_s
        self.max_deadline_s = max_deadline_s
        self.degraded = degraded
        self.slo = slo
        self.allow_reload = allow_reload
        self.buffer_pages = buffer_pages
        self.generation = 1
        self.generation_path = getattr(tree.store, "path", None)
        self.reloads_total = 0

        # One breaker guards the store the searcher reads through; reuse
        # the store's own if it already has one, otherwise attach ours.
        if breaker is None:
            breaker = getattr(tree.store, "breaker", None)
        if breaker is None:
            breaker = CircuitBreaker(clock=clock)
        if getattr(tree.store, "breaker", None) is not breaker:
            tree.store.breaker = breaker
        self.breaker = breaker

        self.searcher = tree.searcher(buffer_pages)
        self.admission = AdmissionController(max_inflight, max_queue)
        self.latency = RollingWindow(latency_window)
        self.quarantine: set[int] = set(quarantine or ())
        self.quarantined_runtime = 0

        self.requests_total = 0
        self.partial_total = 0
        self.degraded_reads = 0
        self.error_counts: TallyCounter[str] = TallyCounter()
        self.session_count = 0
        self.started_at = clock()

        # The buffer pool and the store's file handle are single-accessor:
        # one lock serializes tree walks while asyncio keeps admission,
        # shedding and deadline expiry concurrent above them.
        self._search_lock = Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=search_workers, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self.address: tuple | None = None

        # Streaming ingest (enabled with ingest=IngestState; see
        # repro.ingest).  Writes are serialized single-flight: one
        # asyncio lock orders WAL appends, so LSNs ack in order.  The
        # worker pool cannot see the in-memory delta, so an ingest
        # server always answers in-process (workers is forced to 0 by
        # the CLI; _dispatch_query also guards it).
        self.ingest = ingest
        self._write_lock = asyncio.Lock()

        # Multi-process pool (enabled with workers >= 1; see serve.pool).
        self.workers = workers
        self.scatter_enabled = scatter
        self.pool_seed = pool_seed
        self.pool: WorkerPool | None = None
        self.pool_fallbacks = 0
        self.pool_start_error: str | None = None
        self.reload_draining = False
        self._scatter_roots: tuple[int, ...] = ()

    def stats_snapshot(self) -> dict:
        """The ``stats`` payload as a plain dict, callable off-protocol.

        Graceful shutdown files this into a run manifest so a serving
        session leaves the same lab-notebook trail as a benchmark run.
        """
        return stats_payload(self)

    # -- request handling --------------------------------------------------

    async def handle_request(self, req: Request) -> Response:
        """Execute one request, always returning a (possibly error)
        :class:`~repro.serve.protocol.Response`."""
        self.requests_total += 1
        obs.inc("serve.requests", op=req.op)
        try:
            if req.op == "ping":
                return Response(id=req.id, ok=True, op="ping",
                                data={"version": PROTOCOL_VERSION})
            if req.op == "healthz":
                return Response(id=req.id, ok=True, op="healthz",
                                data=healthz_payload(self))
            if req.op == "readyz":
                return Response(id=req.id, ok=True, op="readyz",
                                data=readyz_payload(self))
            if req.op == "stats":
                return Response(id=req.id, ok=True, op="stats",
                                data=stats_payload(self))
            if req.op == "reload":
                return await self._handle_reload(req)
            if req.op == "merge":
                return await self._handle_merge(req)
            if req.op in WRITE_OPS:
                return await self._handle_write(req)
            if req.op in QUERY_OPS:
                return await self._handle_query(req)
            raise BadRequest(f"unknown op {req.op!r}")
        except ServeError as exc:
            return self._error_response(req, exc.code, str(exc))
        except GeometryError as exc:
            return self._error_response(req, BadRequest.code, str(exc))
        except IngestError as exc:
            # The WAL refused or failed: nothing was acked, so report
            # the storage layer honestly rather than a generic 500.
            return self._error_response(
                req, "StoreUnavailable",
                f"{type(exc).__name__}: {exc}")
        except _STORE_FAILURES as exc:
            return self._error_response(
                req, "StoreUnavailable",
                f"{type(exc).__name__}: {exc}")

    async def _handle_query(self, req: Request) -> Response:
        start = self.clock()
        budget = (req.deadline_s if req.deadline_s is not None
                  else self.default_deadline_s)
        deadline = Deadline.after(min(budget, self.max_deadline_s),
                                  self.clock)
        payload = self._query_payload(req)

        await self.admission.acquire()
        try:
            # Re-check after any queue wait: a request that expired while
            # queued must not start a tree walk.
            deadline.check("queued request")
            result = await self._dispatch_query(payload, deadline)
        finally:
            self.admission.release()

        # The walk finished, but if its deadline passed meanwhile the
        # client has already moved on — never respond after the deadline.
        deadline.check("completed request")

        elapsed = self.clock() - start
        self.latency.observe(elapsed)
        obs.observe("query.latency_s", elapsed)
        if result["partial"]:
            self.partial_total += 1
            obs.inc("serve.partial_responses")

        resp = Response(
            id=req.id, ok=True, op=req.op,
            partial=bool(result["partial"]),
            unreachable_subtrees=int(result["unreachable"]),
            elapsed_s=elapsed,
            count=int(result["count"]),
        )
        if req.op != "count":
            resp.ids = [int(x) for x in result.get("ids", ())]
        if req.op == "knn":
            resp.distances = [float(d) for d
                              in result.get("distances", ())]
        return resp

    async def _dispatch_query(self, payload: dict,
                              deadline: Deadline) -> dict:
        """Pool first when it is serving this generation; in-process
        otherwise — pool unavailability costs latency, never answers.

        Ingest-enabled servers always answer in-process: pool workers
        mmap the packed file and cannot see the in-memory delta, so an
        answer from them would miss unmerged acked writes."""
        pool = self.pool
        if (self.ingest is None and pool is not None and pool.available
                and pool.generation == self.generation):
            dispatch = dict(payload,
                            budget_s=max(deadline.remaining(), 1e-3))
            try:
                if self.scatter_enabled and len(self._scatter_roots) > 1:
                    result = await pool.scatter(dispatch, deadline,
                                                self._scatter_roots)
                else:
                    result = await pool.execute(dispatch, deadline)
            except PoolUnavailable:
                self.pool_fallbacks += 1
                obs.inc("serve.pool.fallbacks")
            else:
                hurt = int(result.get("degraded_pages", 0))
                if hurt:
                    self.degraded_reads += hurt
                    obs.inc("serve.degraded_pages", hurt, fault="worker")
                return result
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._run_query_blocking, payload, deadline)

    # -- streaming ingest --------------------------------------------------

    async def _handle_write(self, req: Request) -> Response:
        """One durable write: shed → WAL fsync → delta apply → ack.

        The ack invariant: a success response exists *only after* the
        op's WAL record is fsync'd, and the response's ``lsn`` is the
        record's.  An error response means nothing durable changed
        (shedding happens before any append; an append that raises
        leaves at worst a torn tail the next open discards un-acked).
        """
        ingest = self.ingest
        if ingest is None:
            raise BadRequest(
                f"op {req.op!r} needs an ingest-enabled server (start "
                "it with --ingest)")
        if req.data_id is None:
            raise BadRequest(f"op {req.op!r} needs a data_id")
        rect: Rect | None = None
        if req.op == "insert":
            if req.rect is None:
                raise BadRequest("op 'insert' needs a rect "
                                 "[[lo...], [hi...]]")
            rect = rect_from_wire(req.rect)
            if rect.ndim != self.tree.ndim:
                raise BadRequest(
                    f"rect has {rect.ndim} dims, tree has "
                    f"{self.tree.ndim}")
        start = self.clock()
        async with self._write_lock:
            # Backpressure *before* the append: a shed write never
            # touches the log, so the error honestly means "not acked".
            if ingest.overloaded:
                ingest.writes_shed += 1
                obs.inc("ingest.writes_shed")
                raise IngestOverloaded(
                    f"write-ahead log holds {ingest.pending_bytes} "
                    f"unmerged bytes (bound {ingest.max_wal_bytes}); "
                    "merge before writing more")
            loop = asyncio.get_running_loop()
            walop = await loop.run_in_executor(
                self._executor, self._write_blocking, req.op,
                req.data_id, rect)
        elapsed = self.clock() - start
        obs.inc("ingest.writes", op=req.op)
        obs.observe("ingest.write_latency_s", elapsed)
        return Response(id=req.id, ok=True, op=req.op, elapsed_s=elapsed,
                        data={"lsn": walop.lsn,
                              "generation": self.generation})

    def _write_blocking(self, op: str, data_id: int,
                        rect: Rect | None) -> WalOp:
        """Append (fsync) then make visible; runs on the executor."""
        ingest = self.ingest
        assert ingest is not None
        walop = ingest.append(op, data_id, rect)
        # Visibility is a separate step under the search lock: readers
        # see each op atomically, and a crash between append and apply
        # is indistinguishable from a crash just after ack — replay
        # covers both.
        with self._search_lock:
            ingest.apply(walop)
        return walop

    async def _handle_merge(self, req: Request) -> Response:
        """Drain the sealed WAL into a new packed generation.

        Overlap-safe by construction: the seal happens under the write
        lock (no append races the segment roll) and the freeze under
        the search lock (no reader sees a half-frozen layer stack);
        the re-pack itself runs without any lock while queries keep
        answering over ``base ∪ frozen ∪ live``; the cutover reuses
        the reload swap.  A failure before the pointer commit leaves
        the old generation serving and raises typed ``MergeFailed``.
        """
        ingest = self.ingest
        if ingest is None:
            raise MergeFailed("this server has no ingest state (start "
                              "it with --ingest)")
        loop = asyncio.get_running_loop()
        async with self._write_lock:
            # Checked under the write lock: two concurrent merge
            # requests that both read `merging == False` before
            # suspending would otherwise both begin_merge (RL009).
            if ingest.merging:
                raise MergeFailed("a merge is already in flight")
            await loop.run_in_executor(self._executor,
                                       self._begin_merge_blocking)
        try:
            report = await loop.run_in_executor(
                self._executor, self._merge_blocking)
        except IngestError as exc:
            with self._search_lock:
                ingest.abort_merge()
            raise MergeFailed(str(exc)) from None
        if report is None:
            with self._search_lock:
                ingest.abort_merge()
            return Response(id=req.id, ok=True, op="merge",
                            data={"merged": False,
                                  "generation": self.generation})
        data = await loop.run_in_executor(
            self._executor, self._cutover_blocking, report)
        if self.pool is not None:
            data["pool"] = await self._remap_pool()
        return Response(id=req.id, ok=True, op="merge", data=data)

    def _begin_merge_blocking(self) -> None:
        ingest = self.ingest
        assert ingest is not None
        with self._search_lock:
            ingest.begin_merge()

    def _merge_blocking(self) -> MergeReport | None:
        from ..ingest.merge import merge_segments

        ingest = self.ingest
        assert ingest is not None
        return merge_segments(ingest.tree_path)

    def _cutover_blocking(self, report: MergeReport) -> dict:
        """Swap in the merged generation and drop the frozen layers.

        Reuses the reload path (fsck, open, swap under the search
        lock); the frozen-layer drop happens under the same lock right
        after the swap, so no query ever sees the new base *without*
        the frozen deltas — between pointer-commit and this swap the
        frozen upserts merely shadow identical base entries, which is
        invisible.
        """
        ingest = self.ingest
        assert ingest is not None
        data = self._reload_blocking(report.path)
        with self._search_lock:
            ingest.finish_merge(report.merged_seq)
        data["merged"] = True
        data["merge"] = {
            "ops_applied": report.ops_applied,
            "segments": report.segments_merged,
            "merged_lsn": report.merged_lsn,
            "size": report.size,
        }
        return data

    # -- generation reload -------------------------------------------------

    async def _handle_reload(self, req: Request) -> Response:
        if not self.allow_reload:
            raise ReloadRejected(
                "reloads are disabled on this server (start it with "
                "allow_reload / --allow-reload)")
        if not req.path:
            raise BadRequest("op 'reload' needs a path to the new tree "
                             "file")
        loop = asyncio.get_running_loop()
        data = await loop.run_in_executor(
            self._executor, self._reload_blocking, req.path)
        if self.pool is not None:
            data["pool"] = await self._remap_pool()
        return Response(id=req.id, ok=True, op="reload", data=data)

    async def _remap_pool(self) -> dict:
        """Drain the pool and cut every worker over to the (already
        swapped-in) new generation; in-process serving covers the drain
        window, so clients only ever see the generation counter move.

        Serialised under the write lock: a reload and a merge cutover
        finishing together would otherwise race their pool swaps —
        both read ``self.pool``, both await, and the loser publishes a
        pool mapped to the wrong generation (RL009's check-then-act).
        """
        async with self._write_lock:
            pool = self.pool
            assert pool is not None
            spec = TreeSpec.for_tree(self.tree,
                                     buffer_pages=self.buffer_pages,
                                     generation=self.generation)
            if spec is None:  # new generation not file-backed: retire
                await pool.aclose()
                self.pool = None
                self.pool_start_error = (
                    "reloaded tree is not file-backed; pool retired")
                return {"remapped": 0, "retired": True}
            self.reload_draining = True
            try:
                remapped = await pool.remap(spec)
            finally:
                self.reload_draining = False
            return {"remapped": remapped,
                    "workers_live": pool.workers_live}

    def _reload_blocking(self, path: str) -> dict:
        """Verify + open the candidate, then swap generations atomically.

        All the slow work (fsck pass, opening the store, priming the
        searcher) happens *before* the swap, while the old generation
        keeps answering queries; the swap itself only reassigns
        references under the search lock, which by construction drains
        any in-flight tree walk first.  Every failure raises
        :class:`ReloadRejected` with the old generation untouched.
        """
        from ..fsck import fsck as run_fsck
        from ..storage.store import FilePageStore

        try:
            with open(path, "rb") as f:
                durable = f.read(4) == b"RSUP"
        except OSError as exc:
            raise ReloadRejected(f"cannot read {path}: {exc}") from None
        if not durable:
            raise ReloadRejected(
                f"{path} has no superblock; reload serves only durable "
                "self-describing tree files")
        try:
            report = run_fsck(path)
        except Exception as exc:
            raise ReloadRejected(
                f"fsck of {path} failed: "
                f"{type(exc).__name__}: {exc}") from None
        if not report.clean:
            raise ReloadRejected(
                f"fsck found {len(set(report.bad_pages))} bad page(s) "
                f"in {path}; refusing to cut over")
        store = None
        try:
            store = FilePageStore.open_existing(path)
            tree = PagedRTree.from_store(store)
            searcher = tree.searcher(self.buffer_pages)
        except Exception as exc:
            # The candidate store must not outlive its rejection: a
            # leaked fd per failed reload adds up under a flapping
            # deployer, and the journal replay on the *next* attempt
            # assumes the previous holder released the file.
            if store is not None:
                try:
                    store.close()
                except _STORE_FAILURES:
                    obs.inc("serve.reload.close_errors")
            raise ReloadRejected(
                f"cannot open {path}: "
                f"{type(exc).__name__}: {exc}") from None
        # A new generation is a new device: it gets a fresh breaker and
        # an empty quarantine (old page ids mean nothing in this file).
        breaker = getattr(store, "breaker", None)
        if breaker is None:
            breaker = CircuitBreaker(clock=self.clock)
            store.breaker = breaker
        with self._search_lock:
            old_store = self.tree.store
            self.tree = tree
            self.searcher = searcher
            self.breaker = breaker
            self.quarantine = set()
            self.quarantined_runtime = 0
            self.generation += 1
            self.generation_path = path
            self.reloads_total += 1
            # Under the lock: the new store has no concurrent readers
            # yet, so the uncounted root-node peek is race-free.
            self._scatter_roots = self._subtree_roots()
        obs.inc("serve.reloads")
        if old_store is not store:
            try:
                old_store.close()
            except _STORE_FAILURES:  # pragma: no cover - best-effort release
                # The old generation is already unreachable; a failed
                # close only matters to operators, so count it rather
                # than let it abort an otherwise-committed reload.
                obs.inc("serve.reload.close_errors")
        return {
            "generation": self.generation,
            "path": path,
            "tree": {"size": len(tree), "height": tree.height,
                     "pages": tree.page_count},
            "fsck": {"clean": True},
        }

    def _run_query_blocking(self, payload: dict,
                            deadline: Deadline) -> dict:
        """In-process execution (no pool, or pool fallback).

        With ingest enabled, queries answer through an
        :class:`~repro.ingest.overlay.OverlaySearcher` composed fresh
        per query (a tuple of references — cheap), so every acked write
        up to this instant is visible."""
        with self._search_lock:
            if self.ingest is not None:
                overlay = OverlaySearcher(self.searcher,
                                          self.ingest.layers())
                if payload["op"] == "knn":
                    res = overlay.knn_detailed(
                        payload["point"], payload["k"],
                        check=deadline.check,
                        quarantined=self.quarantine,
                        degraded=self.degraded,
                        on_page_error=self._note_page_error,
                    )
                    return {
                        "ids": [int(i) for i, _ in res.neighbours],
                        "distances": [float(d)
                                      for _, d in res.neighbours],
                        "count": len(res.neighbours),
                        "partial": res.partial,
                        "unreachable": res.skipped_subtrees,
                    }
                oresult = overlay.search_detailed(
                    rect_from_wire(payload["rect"]),
                    check=deadline.check,
                    quarantined=self.quarantine,
                    degraded=self.degraded,
                    on_page_error=self._note_page_error,
                )
                return {
                    "ids": oresult.ids,
                    "count": len(oresult.ids),
                    "partial": oresult.partial,
                    "unreachable": oresult.skipped_subtrees,
                }
            if payload["op"] == "knn":
                res = knn_detailed(
                    self.searcher, payload["point"], payload["k"],
                    check=deadline.check,
                    quarantined=self.quarantine,
                    degraded=self.degraded,
                    on_page_error=self._note_page_error,
                )
                return {
                    "ids": [int(i) for i, _ in res.neighbours],
                    "distances": [float(d) for _, d in res.neighbours],
                    "count": len(res.neighbours),
                    "partial": res.partial,
                    "unreachable": res.skipped_subtrees,
                }
            result = self.searcher.search_detailed(
                rect_from_wire(payload["rect"]),
                check=deadline.check,
                quarantined=self.quarantine,
                degraded=self.degraded,
                on_page_error=self._note_page_error,
            )
            ids = sorted(int(x) for x in result.ids)
            return {
                "ids": ids,
                "count": len(ids),
                "partial": result.partial,
                "unreachable": result.skipped_subtrees,
            }

    def _query_payload(self, req: Request) -> dict:
        """Validate a query request into the worker-payload dict the
        pool and the in-process path both execute."""
        if req.op == "knn":
            point = req.point
            if not isinstance(point, (list, tuple)) or not point:
                raise BadRequest(
                    f"op 'knn' needs a point [x, y, ...], got {point!r}")
            try:
                coords = [float(x) for x in point]
            except (TypeError, ValueError) as exc:
                raise BadRequest(f"malformed point {point!r}: {exc}") \
                    from None
            if len(coords) != self.tree.ndim:
                raise BadRequest(
                    f"point has {len(coords)} dims, tree has "
                    f"{self.tree.ndim}")
            if req.k is None:
                raise BadRequest("op 'knn' needs k >= 1")
            return {"op": "knn", "point": coords, "k": int(req.k),
                    "degraded": self.degraded}
        rect = self._query_rect(req)
        return {"op": req.op, "rect": rect_to_wire(rect),
                "degraded": self.degraded}

    def _query_rect(self, req: Request) -> Rect:
        if req.op == "point":
            point = req.point
            if (not isinstance(point, (list, tuple)) or not point):
                raise BadRequest(
                    f"op 'point' needs a point [x, y, ...], got {point!r}")
            try:
                return Rect.from_point(tuple(float(x) for x in point))
            except (TypeError, ValueError) as exc:
                raise BadRequest(f"malformed point {point!r}: {exc}") \
                    from None
        if req.rect is None:
            raise BadRequest(f"op {req.op!r} needs a rect [[lo...], [hi...]]")
        return rect_from_wire(req.rect)

    def _note_page_error(self, page_id: int, exc: Exception) -> None:
        self.degraded_reads += 1
        obs.inc("serve.degraded_pages", fault=type(exc).__name__)
        if (isinstance(exc, _QUARANTINABLE)
                and page_id not in self.quarantine):
            self.quarantine.add(page_id)  # repro-lint: disable=RL011 -- on_page_error callback: every caller is a search already holding _search_lock
            self.quarantined_runtime += 1  # repro-lint: disable=RL011 -- same: runs under the caller's _search_lock
            obs.inc("serve.quarantined_pages")

    def _error_response(self, req: Request, code: str,
                        message: str) -> Response:
        self.error_counts[code] += 1
        obs.inc("serve.errors", code=code)
        return Response(id=req.id, ok=False, op=req.op,
                        error=code, message=message)

    # -- socket layer ------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple:
        """Bind and start accepting clients; returns ``(host, port)``."""
        await self._start_pool()
        self._server = await asyncio.start_server(
            self._serve_client, host, port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def _start_pool(self) -> None:
        """Bring up the worker-process pool, or record why we could not
        (serving then stays in-process — degraded latency, never down)."""
        with self._search_lock:
            self._scatter_roots = self._subtree_roots()
        if self.workers < 1 or self.pool is not None:
            return
        spec = TreeSpec.for_tree(self.tree,
                                 buffer_pages=self.buffer_pages,
                                 generation=self.generation)
        if spec is None:
            self.pool_start_error = (
                "tree store is not file-backed; worker processes cannot "
                "re-open it — serving in-process")
            obs.inc("serve.pool.start_failures")
            return
        pool = WorkerPool(spec, self.workers, seed=self.pool_seed)
        try:
            await pool.start()
        except PoolUnavailable as exc:
            self.pool_start_error = str(exc)
            obs.inc("serve.pool.start_failures")
            return
        self.pool = pool  # repro-lint: disable=RL009 -- start() runs once, before the server accepts clients; no second task exists yet
        self.pool_start_error = None

    def _subtree_roots(self) -> tuple[int, ...]:
        """Scatter shard roots: the root node's children (uncounted
        read); empty when the root is a leaf."""
        if not self.scatter_enabled or self.tree.height <= 1:
            return ()
        return tuple(int(c) for c in self.tree.root_node().children)

    async def serve_forever(self) -> None:
        """Block serving clients until cancelled (used by the CLI)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        self.session_count += 1
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    req = decode_request(line)
                except BadRequest as exc:
                    resp = self._error_response(
                        Request(op="", id=getattr(exc, "request_id", 0)),
                        exc.code, str(exc))
                    resp.op = None  # unknown; omitted on the wire
                else:
                    resp = await self.handle_request(req)
                writer.write(encode_response(resp))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self.session_count -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def aclose(self) -> None:
        """Stop accepting clients and release the search pools.

        Swap-then-close: each reference is detached *before* the first
        await, so a concurrent (or re-entrant) aclose never
        double-closes a pool the first call is still awaiting on —
        the check-then-act shape RL009 flags.
        """
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        pool, self.pool = self.pool, None
        if pool is not None:
            await pool.aclose()
        self._executor.shutdown(wait=True)
        if self.ingest is not None:
            self.ingest.close()

    async def __aenter__(self) -> "QueryServer":
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
