"""Admission control: bounded in-flight work plus a shed-on-full queue.

An overloaded server has exactly three honest options for a new request:
run it, queue it, or refuse it.  :class:`AdmissionController` implements
that triage with two watermarks:

* ``max_inflight`` — requests executing concurrently.  Below the limit,
  :meth:`acquire` admits immediately.
* ``max_queue`` — requests allowed to wait for a slot.  At the limit,
  :meth:`acquire` raises a typed
  :class:`~repro.serve.protocol.Overloaded` *immediately* — shedding load
  with a fast, explicit error instead of building an unbounded queue and
  collapsing under it.

Slots are handed off FIFO: :meth:`release` wakes the oldest waiter
directly (the slot transfers, in-flight count unchanged), so admission
order is arrival order and there is no thundering herd.
"""

from __future__ import annotations

import asyncio
from collections import deque

from .protocol import Overloaded

__all__ = ["AdmissionController"]


class AdmissionController:
    """Semaphore-with-a-bounded-queue for one asyncio event loop."""

    def __init__(self, max_inflight: int = 8, max_queue: int = 16):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._inflight = 0
        self._waiters: deque[asyncio.Future] = deque()
        self.admitted_total = 0
        self.shed_total = 0
        self.queued_peak = 0

    @property
    def inflight(self) -> int:
        """Requests currently holding a slot."""
        return self._inflight

    @property
    def queued(self) -> int:
        """Requests currently waiting for a slot."""
        return len(self._waiters)

    async def acquire(self) -> None:
        """Take a slot: run now, wait FIFO, or raise :class:`Overloaded`."""
        if self._inflight < self.max_inflight and not self._waiters:
            self._inflight += 1
            self.admitted_total += 1
            return
        if len(self._waiters) >= self.max_queue:
            self.shed_total += 1
            raise Overloaded(
                f"server overloaded: {self._inflight} in flight and "
                f"{len(self._waiters)} queued (queue limit {self.max_queue})"
            )
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append(fut)
        self.queued_peak = max(self.queued_peak, len(self._waiters))
        try:
            await fut
        except asyncio.CancelledError:
            if fut.cancelled() or not fut.done():
                # Never granted: withdraw from the queue.
                try:
                    self._waiters.remove(fut)
                except ValueError:
                    pass
            else:
                # Granted concurrently with the cancellation: the slot is
                # ours and unusable, so hand it on.
                self.release()
            raise
        self.admitted_total += 1

    def release(self) -> None:
        """Return a slot, handing it to the oldest live waiter if any."""
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done():
                fut.set_result(None)  # slot transfers; in-flight unchanged
                return
        if self._inflight <= 0:
            raise RuntimeError("release() without a matching acquire()")
        self._inflight -= 1

    def snapshot(self) -> dict:
        """JSON-able state for health endpoints."""
        return {
            "inflight": self._inflight,
            "queued": len(self._waiters),
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "queued_peak": self.queued_peak,
        }
