"""Request deadlines: absolute expiry points with an injectable clock.

Every query carries a :class:`Deadline` from the moment it is parsed.  The
deadline is *propagated into the paged search loop*: the searcher calls
:meth:`Deadline.check` between node visits, so an expired request abandons
its tree walk cooperatively instead of finishing useless work — and the
server re-checks after queueing and before responding, guaranteeing no
success response is ever written after its deadline.

The clock is injectable (``time.monotonic`` by default) so tests drive
expiry deterministically with a fake clock.
"""

from __future__ import annotations

import time
from typing import Callable

from .protocol import DeadlineExceeded

__all__ = ["Deadline"]


class Deadline:
    """An absolute point on ``clock`` by which a request must finish."""

    __slots__ = ("expires_at", "clock")

    def __init__(self, expires_at: float,
                 clock: Callable[[], float] = time.monotonic):
        self.expires_at = expires_at
        self.clock = clock

    @classmethod
    def after(cls, budget_s: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``budget_s`` seconds from now."""
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be > 0, got {budget_s}")
        return cls(clock() + budget_s, clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - self.clock()

    def expired(self) -> bool:
        """Has the deadline passed?"""
        return self.remaining() <= 0.0

    def check(self, what: str = "request") -> None:
        """Raise :class:`~repro.serve.protocol.DeadlineExceeded` if expired.

        Bound as the searcher's ``check`` hook, this is the cooperative
        cancellation point between node visits.
        """
        remaining = self.remaining()
        if remaining <= 0.0:
            raise DeadlineExceeded(
                f"{what} deadline exceeded by {-remaining:.6f}s"
            )

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.6f}s)"
