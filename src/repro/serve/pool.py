"""Supervised worker-process pool: crash-isolated query execution.

One wedged or segfaulting worker must never take the serving process —
or a correct answer — with it.  :class:`WorkerPool` runs queries in
``N`` child processes, each of which opens the *same* generation page
file read-only through :class:`~repro.storage.mmap_store.MmapPageStore`,
so the OS page cache holds one copy of every hot page no matter how many
workers serve it, and no worker can scribble on the tree no matter how
it dies.

The contract is the server's, extended across process boundaries: every
response is **exact**, **explicitly partial** (a subset of the truth,
flagged), or a **typed error** — never silently wrong.

* A worker death with requests in flight re-dispatches each of them to a
  live sibling **at most once**; a request that loses its worker twice
  fails with the typed :class:`~repro.serve.protocol.WorkerLost` (these
  are read-only queries, so the retry is always safe and never observed
  a partial execution).
* A request that exceeds its deadline plus a grace period on a worker is
  evidence the worker is *wedged* (healthy workers cancel cooperatively
  between node visits, well inside the grace): the supervisor kills the
  worker and the request fails ``DeadlineExceeded`` — late answers are
  never written.
* Dead workers restart under a seeded exponential
  :class:`~repro.serve.supervisor.RestartBackoff`; a
  :class:`~repro.serve.supervisor.FlapDetector` watching the death rate
  trips the pool into **degraded** mode instead of crash-looping, after
  which :meth:`WorkerPool.execute` raises :class:`PoolUnavailable` and
  the server falls back to in-process serving — slower, but correct and
  alive.
* :meth:`WorkerPool.remap` extends zero-downtime reload to the pool:
  the pool drains (in-flight requests finish; new ones fall back
  in-process against the *new* generation), every worker re-opens the
  new generation file, and the pool rejoins — clients never see the
  cutover, only the ``generation`` counter moving.
* :meth:`WorkerPool.scatter` fans one query out across the root's
  subtrees with per-shard deadlines (the multi-disk
  :class:`~repro.storage.striped.StripedPageStore` layout's
  shared-nothing future-work section, served for real): a shard whose
  worker dies twice degrades *that shard only* — the merged response
  comes back ``partial=true`` with the lost subtrees counted in
  ``unreachable_subtrees``.

Everything a child process touches lives at module top level
(:func:`worker_main`, :class:`TreeSpec`) and is picklable, so the pool
works identically under ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from ..core.geometry import GeometryError
from ..obs import runtime as obs
from ..storage.store import StoreError
from .deadline import Deadline
from .protocol import (
    ERROR_TYPES,
    BadRequest,
    DeadlineExceeded,
    ServeError,
    WorkerLost,
    rect_from_wire,
)
from .supervisor import FlapDetector, RestartBackoff, WorkerState

__all__ = ["TreeSpec", "WorkerPool", "PoolUnavailable", "worker_main"]


class PoolUnavailable(Exception):
    """The pool cannot take this request (not started, draining for a
    reload, flap-tripped into degraded mode, or no live workers).

    Deliberately *not* a :class:`~repro.serve.protocol.ServeError`: it
    never reaches the wire.  The server catches it and serves the
    request in-process instead — pool unavailability degrades latency,
    not correctness or availability.
    """


# -- worker-side ----------------------------------------------------------


@dataclass(frozen=True)
class TreeSpec:
    """Everything a worker process needs to open one tree generation.

    Plain data (picklable under ``spawn``): file paths — several paths
    mean a round-robin stripe recomposed with
    :class:`~repro.storage.striped.StripedPageStore` — plus the tree
    header, since a worker must never trust an unverified file to
    describe itself beyond what the superblock already commits.
    """

    paths: tuple[str, ...]
    page_size: int | None
    meta: dict  # root_page / height / ndim / capacity / size
    buffer_pages: int
    generation: int
    verify: bool = True

    @classmethod
    def for_tree(cls, tree: Any, *, buffer_pages: int,
                 generation: int) -> "TreeSpec | None":
        """Build a spec for a live server tree, or ``None`` when the
        tree is not file-backed (memory stores cannot be re-opened by
        another process)."""
        paths = _backing_paths(tree.store)
        if paths is None:
            return None
        meta = {
            "root_page": tree.root_page,
            "height": tree.height,
            "ndim": tree.ndim,
            "capacity": tree.capacity,
            "size": len(tree),
        }
        return cls(paths=tuple(paths), page_size=tree.store.page_size,
                   meta=meta, buffer_pages=buffer_pages,
                   generation=generation)


def _backing_paths(store: Any) -> list[str] | None:
    """File path(s) behind a (possibly wrapped) store, else ``None``."""
    seen: set[int] = set()
    while store is not None and id(store) not in seen:
        seen.add(id(store))
        disk_paths = getattr(store, "disk_paths", None)
        if callable(disk_paths):
            return disk_paths()
        path = getattr(store, "path", None)
        if path is not None:
            return [str(path)]
        store = getattr(store, "inner", None)
    return None


def _open_spec(spec: TreeSpec) -> tuple[Any, Any]:
    """(searcher, store) for one generation, opened read-only via mmap."""
    from ..rtree.paged import PagedRTree
    from ..storage.mmap_store import MmapPageStore
    from ..storage.striped import StripedPageStore

    if len(spec.paths) == 1:
        store: Any = MmapPageStore(spec.paths[0], spec.page_size,
                                   verify=spec.verify)
    else:
        disks = [MmapPageStore(p, spec.page_size, verify=spec.verify)
                 for p in spec.paths]
        store = StripedPageStore(disks)
    meta = spec.meta
    tree = PagedRTree(store, int(meta["root_page"]),
                      height=int(meta["height"]), ndim=int(meta["ndim"]),
                      capacity=int(meta["capacity"]),
                      size=int(meta["size"]))
    return tree.searcher(spec.buffer_pages), store


def _run_query(searcher: Any, payload: dict,
               quarantine: set[int]) -> dict:
    """Execute one query payload against a worker-local searcher."""
    from ..rtree.knn import knn_detailed

    op = payload["op"]
    deadline = Deadline.after(float(payload["budget_s"]))
    degraded = bool(payload.get("degraded", True))
    degraded_pages = 0

    def note(page_id: int, exc: Exception) -> None:
        nonlocal degraded_pages
        degraded_pages += 1
        if type(exc).__name__ in ("IntegrityError", "ChecksumError",
                                  "PageFormatError"):
            quarantine.add(page_id)

    if op == "knn":
        point = payload["point"]
        res = knn_detailed(searcher, [float(x) for x in point],
                           int(payload["k"]), check=deadline.check,
                           quarantined=quarantine, degraded=degraded,
                           on_page_error=note,
                           root_page=payload.get("root_page"))
        return {
            "ids": [int(i) for i, _ in res.neighbours],
            "distances": [float(d) for _, d in res.neighbours],
            "count": len(res.neighbours),
            "partial": res.partial,
            "unreachable": res.skipped_subtrees,
            "degraded_pages": degraded_pages,
        }
    rect = rect_from_wire(payload["rect"])
    result = searcher.search_detailed(
        rect, check=deadline.check, quarantined=quarantine,
        degraded=degraded, on_page_error=note,
        root_page=payload.get("root_page"),
    )
    ids = sorted(int(x) for x in result.ids)
    out = {
        "count": len(ids),
        "partial": result.partial,
        "unreachable": result.skipped_subtrees,
        "degraded_pages": degraded_pages,
    }
    if op != "count":
        out["ids"] = ids
    return out


def worker_main(conn: Any, spec: TreeSpec) -> None:
    """Child-process entry point: serve query messages until told to stop.

    Protocol (tuples over the duplex pipe)::

        parent -> ("search", req_id, payload) | ("remap", spec) | ("stop",)
        child  -> ("ready", pid, generation)
                | ("result", req_id, result) | ("error", req_id, code, msg)
                | ("remapped", generation) | ("remap_failed", message)

    A query failure answers a typed error and the worker lives on; only
    a genuine crash (signal, unhandled corruption of the process itself)
    drops the pipe, which is exactly the signal the supervisor watches.
    """
    searcher, store = _open_spec(spec)
    quarantine: set[int] = set()
    conn.send(("ready", os.getpid(), spec.generation))
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "remap":
                new_spec = msg[1]
                try:
                    new_searcher, new_store = _open_spec(new_spec)
                except Exception as exc:
                    conn.send(("remap_failed",
                               f"{type(exc).__name__}: {exc}"))
                    continue
                old_store = store
                searcher, store, spec = new_searcher, new_store, new_spec
                quarantine = set()
                try:
                    old_store.close()
                except (StoreError, OSError):
                    # Releasing the dead generation is best-effort; the
                    # new one is already serving.
                    pass
                conn.send(("remapped", new_spec.generation))
                continue
            if kind == "search":
                req_id, payload = msg[1], msg[2]
                try:
                    result = _run_query(searcher, payload, quarantine)
                except ServeError as exc:
                    conn.send(("error", req_id, exc.code, str(exc)))
                except GeometryError as exc:
                    conn.send(("error", req_id, BadRequest.code, str(exc)))
                except Exception as exc:
                    # Absorb per-request failures as typed errors so one
                    # malformed request cannot kill a healthy worker.
                    conn.send(("error", req_id, "StoreUnavailable",
                               f"{type(exc).__name__}: {exc}"))
                else:
                    conn.send(("result", req_id, result))
    finally:
        try:
            store.close()
        except (StoreError, OSError):
            pass  # process is exiting anyway
        conn.close()


# -- parent-side ----------------------------------------------------------


class _Inflight:
    """One dispatched request, from send until its future resolves."""

    __slots__ = ("req_id", "payload", "future", "worker", "attempts")

    def __init__(self, req_id: int, payload: dict,
                 future: "asyncio.Future[dict]", worker: int) -> None:
        self.req_id = req_id
        self.payload = payload
        self.future = future
        self.worker = worker
        self.attempts = 0


class _Worker:
    """Parent-side bookkeeping for one child process."""

    __slots__ = ("index", "proc", "conn", "reader", "state", "generation",
                 "backoff", "remap_future", "pid", "restarts")

    def __init__(self, index: int, backoff: RestartBackoff) -> None:
        self.index = index
        self.proc: Any = None
        self.conn: Any = None
        self.reader: threading.Thread | None = None
        self.state = WorkerState.STOPPED
        self.generation = 0
        self.backoff = backoff
        self.remap_future: "asyncio.Future[int] | None" = None
        self.pid: int | None = None
        self.restarts = 0

    @property
    def live(self) -> bool:
        return self.state == WorkerState.READY


class WorkerPool:
    """Supervised pool of crash-isolated query worker processes."""

    def __init__(
        self,
        spec: TreeSpec,
        size: int,
        *,
        grace_s: float = 1.0,
        probation_s: float = 2.0,
        start_timeout_s: float = 15.0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        flap_threshold: int = 6,
        flap_window_s: float = 30.0,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.spec = spec
        self.size = size
        self.grace_s = grace_s
        self.probation_s = probation_s
        self.start_timeout_s = start_timeout_s
        self.clock = clock
        self.flap = FlapDetector(flap_threshold, flap_window_s)
        self._workers = [
            _Worker(i, RestartBackoff(backoff_base_s, 2.0, backoff_max_s,
                                      seed=seed + i))
            for i in range(size)
        ]
        self._inflight: dict[int, _Inflight] = {}
        self._req_ids: Iterator[int] = itertools.count(1)
        self._rr = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        self._started = False
        self._closing = False
        self._draining = False
        self.restarts_total = 0
        self.requeues_total = 0
        self.worker_lost_total = 0
        self.hung_kills_total = 0
        self.last_restart_reason: str | None = None
        self._state_waiters: list[asyncio.Future[None]] = []

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> int:
        """Spawn all workers; returns how many became ready in time.

        Workers that miss the start timeout are left to the supervisor
        (they either turn up late or die and restart); a pool where
        *none* come up raises :class:`PoolUnavailable` so the caller
        can fall back to in-process serving with a clear reason.
        """
        self._loop = asyncio.get_running_loop()
        self._started = True
        for worker in self._workers:
            self._spawn(worker)
        deadline = Deadline.after(self.start_timeout_s, self.clock)
        while not deadline.expired():
            if self.workers_live == self.size:
                break
            await self._state_changed(deadline.remaining())
        live = self.workers_live
        if live == 0:
            await self.aclose()
            raise PoolUnavailable(
                f"no worker became ready within {self.start_timeout_s}s")
        self._set_gauges()
        return live

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main, args=(child_conn, self.spec),
            name=f"repro-serve-worker-{worker.index}", daemon=True)
        proc.start()
        child_conn.close()
        worker.proc = proc
        worker.conn = parent_conn
        worker.state = WorkerState.STARTING
        worker.generation = 0
        worker.pid = proc.pid
        reader = threading.Thread(
            target=self._reader, args=(worker.index, parent_conn, proc),
            name=f"repro-pool-reader-{worker.index}", daemon=True)
        worker.reader = reader
        reader.start()

    def _reader(self, index: int, conn: Any, proc: Any) -> None:
        """Per-worker pipe reader (thread): forward into the event loop."""
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if not self._post(self._on_message, index, msg):
                return
        proc.join(timeout=5.0)
        self._post(self._on_worker_exit, index, proc)

    def _post(self, fn: Callable[..., None], *args: Any) -> bool:
        loop = self._loop
        if loop is None or loop.is_closed():
            return False
        try:
            loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            return False  # loop shut down mid-call
        return True

    async def aclose(self) -> None:
        """Stop every worker and fail whatever is still in flight."""
        if self._closing:
            return
        self._closing = True
        for worker in self._workers:
            if worker.conn is not None:
                try:
                    worker.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass  # already dead is fine here
        for rec in list(self._inflight.values()):
            if not rec.future.done():
                rec.future.set_exception(
                    PoolUnavailable("pool is shutting down"))
        self._inflight.clear()
        await asyncio.get_running_loop().run_in_executor(
            None, self._join_all)
        for worker in self._workers:
            if worker.conn is not None:
                worker.conn.close()
                worker.conn = None
            worker.state = WorkerState.STOPPED
        self._wake_state_waiters()
        self._set_gauges()

    def _join_all(self) -> None:
        for worker in self._workers:
            proc = worker.proc
            if proc is None:
                continue
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)

    # -- supervision -------------------------------------------------------

    def _on_message(self, index: int, msg: tuple) -> None:
        worker = self._workers[index]
        kind = msg[0]
        if kind == "ready":
            worker.state = WorkerState.READY
            worker.generation = int(msg[2])
            self._wake_state_waiters()
            self._set_gauges()
            if self._loop is not None:
                pid = worker.pid
                self._loop.call_later(self.probation_s,
                                      self._end_probation, index, pid)
            return
        if kind == "result" or kind == "error":
            rec = self._inflight.pop(int(msg[1]), None)
            if rec is None or rec.future.done():
                return  # late answer for a timed-out request: drop it
            if kind == "result":
                rec.future.set_result(msg[2])
            else:
                exc_type = ERROR_TYPES.get(msg[2], ServeError)
                rec.future.set_exception(exc_type(msg[3]))
            return
        if kind == "remapped":
            worker.generation = int(msg[1])
            if worker.remap_future is not None \
                    and not worker.remap_future.done():
                worker.remap_future.set_result(worker.generation)
            return
        if kind == "remap_failed":
            if worker.remap_future is not None \
                    and not worker.remap_future.done():
                worker.remap_future.set_exception(
                    PoolUnavailable(f"worker {index} remap failed: "
                                    f"{msg[1]}"))
            return

    def _end_probation(self, index: int, pid: int | None) -> None:
        worker = self._workers[index]
        if worker.live and worker.pid == pid:
            worker.backoff.reset()

    def _on_worker_exit(self, index: int, proc: Any) -> None:
        """The reader saw EOF and the process is (nearly) gone."""
        worker = self._workers[index]
        if worker.proc is not proc:
            return  # stale event from a previous incarnation
        was_stopping = self._closing
        worker.state = WorkerState.STOPPED
        exitcode = proc.exitcode
        if worker.remap_future is not None and not worker.remap_future.done():
            worker.remap_future.set_exception(
                PoolUnavailable(f"worker {index} died during remap"))
        self._wake_state_waiters()
        if was_stopping:
            self._set_gauges()
            return
        obs.inc("serve.pool.worker_deaths")
        self.last_restart_reason = (
            f"worker {index} (pid {worker.pid}) exited with code "
            f"{exitcode}")
        self._redispatch_from(index)
        now = self.clock()
        if self.flap.record(now):
            self._degrade(now)
            return
        worker.state = WorkerState.RESTARTING
        delay = worker.backoff.next_delay()
        if self._loop is not None:
            self._loop.call_later(delay, self._restart, index, proc)
        self._set_gauges()

    def _restart(self, index: int, old_proc: Any) -> None:
        worker = self._workers[index]
        if self._closing or self.flap.tripped:
            return
        if worker.proc is not old_proc:
            return  # already respawned
        worker.restarts += 1
        self.restarts_total += 1
        obs.inc("serve.pool.restarts")
        self._spawn(worker)

    def _redispatch_from(self, index: int) -> None:
        """At-most-once re-dispatch of a dead worker's in-flight work."""
        lost = [rec for rec in self._inflight.values()
                if rec.worker == index]
        for rec in lost:
            if rec.future.done():
                self._inflight.pop(rec.req_id, None)
                continue
            target = self._pick() if rec.attempts == 0 else None
            if target is None:
                self._inflight.pop(rec.req_id, None)
                if rec.attempts > 0:
                    self.worker_lost_total += 1
                    obs.inc("serve.pool.worker_lost")
                    rec.future.set_exception(WorkerLost(
                        f"worker died executing request {rec.req_id} "
                        f"after one re-dispatch; not retrying again"))
                else:
                    rec.future.set_exception(PoolUnavailable(
                        "worker died and no live sibling can take the "
                        "request"))
                continue
            rec.attempts += 1
            rec.worker = target.index
            self.requeues_total += 1
            obs.inc("serve.pool.requeues")
            try:
                target.conn.send(("search", rec.req_id, rec.payload))
            except (OSError, BrokenPipeError):
                # The sibling is dying too; its own exit event will
                # finish the job (and the attempt budget is now spent).
                continue

    def _degrade(self, now: float) -> None:
        """Flap circuit tripped: stop restarting, fall back in-process."""
        obs.inc("serve.pool.degraded")
        self.last_restart_reason = (
            f"{self.flap.in_window(now)} worker deaths in "
            f"{self.flap.window_s}s — pool degraded to in-process serving")
        for rec in list(self._inflight.values()):
            if not rec.future.done():
                rec.future.set_exception(
                    PoolUnavailable("pool degraded (flapping workers)"))
        self._inflight.clear()
        for worker in self._workers:
            if worker.conn is not None and worker.live:
                try:
                    worker.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass  # dying anyway
        self._set_gauges()

    # -- dispatch ----------------------------------------------------------

    @property
    def workers_live(self) -> int:
        return sum(1 for w in self._workers if w.live)

    @property
    def degraded(self) -> bool:
        return self.flap.tripped

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def generation(self) -> int:
        return self.spec.generation

    @property
    def available(self) -> bool:
        return (self._started and not self._closing and not self._draining
                and not self.flap.tripped and self.workers_live > 0)

    def _pick(self) -> _Worker | None:
        """Next live worker, round-robin; ``None`` when none is live."""
        for offset in range(len(self._workers)):
            worker = self._workers[(self._rr + offset)
                                   % len(self._workers)]
            if worker.live:
                self._rr = (self._rr + offset + 1) % len(self._workers)
                return worker
        return None

    async def execute(self, payload: dict, deadline: Deadline) -> dict:
        """Run one query payload on a worker; the full crash contract.

        Returns the worker's result dict, or raises a typed
        :class:`~repro.serve.protocol.ServeError`
        (``DeadlineExceeded`` / ``WorkerLost`` / ...) or
        :class:`PoolUnavailable` when the pool cannot serve at all.
        """
        if not self.available:
            raise PoolUnavailable(self._unavailable_reason())
        worker = self._pick()
        if worker is None:
            raise PoolUnavailable("no live workers")
        if self._loop is None:
            raise PoolUnavailable("pool not started")
        req_id = next(self._req_ids)
        future: "asyncio.Future[dict]" = self._loop.create_future()
        rec = _Inflight(req_id, payload, future, worker.index)
        self._inflight[req_id] = rec
        try:
            worker.conn.send(("search", req_id, payload))
        except (OSError, BrokenPipeError):
            # Death raced the dispatch; the exit handler re-dispatches.
            pass
        timeout = max(deadline.remaining(), 0.0) + self.grace_s
        try:
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            # A healthy worker answers DeadlineExceeded itself well
            # inside the grace; silence past deadline+grace means the
            # worker is wedged.  Kill it — its other in-flight requests
            # get the at-most-once re-dispatch.
            self._inflight.pop(req_id, None)
            if not future.done():
                future.cancel()
            self._kill_hung(rec.worker)
            raise DeadlineExceeded(
                f"request deadline exceeded and worker silent for "
                f"{self.grace_s}s grace (worker killed)") from None

    def _unavailable_reason(self) -> str:
        if not self._started or self._closing:
            return "pool is not running"
        if self._draining:
            return "pool is draining for a generation reload"
        if self.flap.tripped:
            return "pool degraded after flapping workers"
        return "no live workers"

    def _kill_hung(self, index: int) -> None:
        worker = self._workers[index]
        proc = worker.proc
        if proc is None or not proc.is_alive():
            return
        self.hung_kills_total += 1
        obs.inc("serve.pool.hung_kills")
        self.last_restart_reason = (
            f"worker {index} (pid {worker.pid}) killed: unresponsive "
            f"past deadline grace")
        proc.kill()  # reader sees EOF -> normal death path

    async def scatter(self, payload: dict, deadline: Deadline,
                      roots: Sequence[int]) -> dict:
        """Fan one query out across subtree roots; merge with honesty.

        Each subtree is an independent request with the full remaining
        deadline; a subtree whose worker is lost (twice) or whose shard
        is unreachable degrades to ``partial=true`` with that subtree
        counted — the merged result under-reports, never fabricates.
        ``DeadlineExceeded`` and :class:`PoolUnavailable` stay fatal:
        the former because late answers are worthless, the latter so
        the server's in-process fallback can still produce a *complete*
        answer.
        """
        if not roots:
            return await self.execute(payload, deadline)
        tasks = [
            asyncio.ensure_future(
                self.execute(dict(payload, root_page=int(root)), deadline))
            for root in roots
        ]
        outcomes = await asyncio.gather(*tasks, return_exceptions=True)
        merged_ids: list[int] = []
        pairs: list[tuple[float, int]] = []
        count = 0
        partial = False
        unreachable = 0
        degraded_pages = 0
        for outcome in outcomes:
            if isinstance(outcome, (DeadlineExceeded, PoolUnavailable)):
                raise outcome
            if isinstance(outcome, BaseException):
                # WorkerLost (or another typed shard failure): that
                # subtree is unreachable, the rest of the answer stands.
                partial = True
                unreachable += 1
                obs.inc("serve.pool.scatter_shard_lost")
                continue
            partial = partial or bool(outcome.get("partial"))
            unreachable += int(outcome.get("unreachable", 0))
            degraded_pages += int(outcome.get("degraded_pages", 0))
            count += int(outcome.get("count", 0))
            if payload["op"] == "knn":
                pairs.extend(zip(outcome.get("distances", ()),
                                 outcome.get("ids", ())))
            elif "ids" in outcome:
                merged_ids.extend(outcome["ids"])
        out: dict[str, Any] = {
            "partial": partial,
            "unreachable": unreachable,
            "degraded_pages": degraded_pages,
        }
        if payload["op"] == "knn":
            pairs.sort()
            top = pairs[:int(payload["k"])]
            out["ids"] = [int(i) for _, i in top]
            out["distances"] = [float(d) for d, _ in top]
            out["count"] = len(top)
        else:
            merged_ids.sort()
            out["count"] = count
            if payload["op"] != "count":
                out["ids"] = merged_ids
        return out

    # -- generation reload -------------------------------------------------

    async def remap(self, spec: TreeSpec) -> int:
        """Graceful drain + cut every worker over to a new generation.

        While draining, :meth:`execute` raises :class:`PoolUnavailable`
        and the server answers in-process against the new generation —
        zero downtime, just briefly single-process.  Returns how many
        workers serve the new generation; workers that die mid-remap
        restart straight into it (``self.spec`` is swapped first).
        """
        self._draining = True
        obs.inc("serve.pool.remaps")
        try:
            pending = [rec.future for rec in self._inflight.values()]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self.spec = spec  # restarts from here on open the new gen
            acks: list[asyncio.Future[int]] = []
            if self._loop is None:
                raise PoolUnavailable("pool not started")
            for worker in self._workers:
                if not worker.live or worker.conn is None:
                    continue
                worker.remap_future = self._loop.create_future()
                acks.append(worker.remap_future)
                try:
                    worker.conn.send(("remap", spec))
                except (OSError, BrokenPipeError):
                    worker.remap_future.set_exception(
                        PoolUnavailable("worker pipe closed mid-remap"))
            results = await asyncio.gather(*acks, return_exceptions=True)
            remapped = sum(1 for r in results
                           if isinstance(r, int) and r == spec.generation)
            self._set_gauges()
            return remapped
        finally:
            self._draining = False
            for worker in self._workers:
                worker.remap_future = None

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict:
        """Health-payload view of the pool (JSON-able)."""
        return {
            "workers_total": self.size,
            "workers_live": self.workers_live,
            "degraded": self.degraded,
            "draining": self._draining,
            "generation": self.generation,
            "restarts_total": self.restarts_total,
            "requeues_total": self.requeues_total,
            "worker_lost_total": self.worker_lost_total,
            "hung_kills_total": self.hung_kills_total,
            "deaths_in_window": self.flap.in_window(self.clock()),
            "last_restart_reason": self.last_restart_reason,
            "workers": [
                {"index": w.index, "state": w.state, "pid": w.pid,
                 "generation": w.generation, "restarts": w.restarts}
                for w in self._workers
            ],
        }

    def _set_gauges(self) -> None:
        obs.set_gauge("serve.pool.workers_live", float(self.workers_live))
        obs.set_gauge("serve.pool.workers_total", float(self.size))
        obs.set_gauge("serve.pool.degraded",
                      1.0 if self.degraded else 0.0)

    async def _state_changed(self, timeout: float) -> None:
        """Wait (bounded) for any worker state transition."""
        if self._loop is None or timeout <= 0:
            return
        waiter: asyncio.Future[None] = self._loop.create_future()
        self._state_waiters.append(waiter)
        try:
            await asyncio.wait_for(waiter, timeout)
        except asyncio.TimeoutError:
            pass  # bounded wait; the caller re-checks state
        finally:
            if waiter in self._state_waiters:
                self._state_waiters.remove(waiter)

    def _wake_state_waiters(self) -> None:
        waiters, self._state_waiters = self._state_waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)
