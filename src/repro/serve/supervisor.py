"""Supervision policy for the multi-process worker pool.

Three small, deterministic machines — kept free of any asyncio or
multiprocessing so they are trivially unit-testable with a fake clock —
that :class:`~repro.serve.pool.WorkerPool` composes into its supervisor:

* :class:`RestartBackoff` — how long to wait before restarting a dead
  worker.  Exponential with a cap, plus seeded full jitter so a pool of
  supervisors restarting against the same poisoned input do not
  stampede in lockstep; a healthy stretch resets the schedule.
* :class:`FlapDetector` — a sliding-window circuit: when worker deaths
  within ``window_s`` reach ``threshold``, something systemic is wrong
  (poisoned generation file, OOM killer, bad deploy) and restarting
  harder will not fix it.  The pool then *degrades* to in-process
  serving instead of crash-looping.
* :class:`WorkerState` — the per-worker lifecycle vocabulary shared by
  the pool, its health payloads and the tests.

The same machinery exists at build time in
:mod:`repro.pipeline.orchestrator` for shard workers; serving gets its
own copy because the policies differ where it matters: a build retries a
shard a bounded number of times and then poisons it, while a serving
pool must keep *trying* forever — but stop *thrashing* — because the
process outlives any single failure.
"""

from __future__ import annotations

from collections import deque
from random import Random

__all__ = [
    "RestartBackoff",
    "FlapDetector",
    "WorkerState",
]


class WorkerState:
    """Lifecycle states a pool worker moves through (wire-stable names)."""

    STARTING = "starting"
    READY = "ready"
    RESTARTING = "restarting"
    STOPPED = "stopped"


class RestartBackoff:
    """Exponential restart backoff with a cap and seeded full jitter.

    ``next_delay()`` returns the pause before the next restart attempt:
    0 for the first death (a one-off crash should not cost latency),
    then ``base_s * multiplier**n`` capped at ``max_s``, each drawn
    uniformly from ``[delay/2, delay]`` (half jitter keeps the schedule
    meaningfully exponential while decorrelating restarts).  The draw
    comes from a private ``Random(seed)``, so a seeded supervisor's
    schedule is reproducible.  ``reset()`` is called after a worker
    survives its probation period.
    """

    def __init__(self, base_s: float = 0.05, multiplier: float = 2.0,
                 max_s: float = 2.0, seed: int = 0) -> None:
        if base_s < 0 or max_s < 0 or multiplier < 1.0:
            raise ValueError(
                f"backoff needs base_s >= 0, max_s >= 0, multiplier >= 1; "
                f"got {base_s}, {max_s}, {multiplier}")
        self.base_s = base_s
        self.multiplier = multiplier
        self.max_s = max_s
        self._rng = Random(seed)
        self._deaths = 0

    @property
    def deaths(self) -> int:
        """Consecutive deaths since the last :meth:`reset`."""
        return self._deaths

    def next_delay(self) -> float:
        """The pause before the next restart (advances the schedule)."""
        n = self._deaths
        self._deaths += 1
        if n == 0:
            return 0.0
        nominal = min(self.base_s * (self.multiplier ** (n - 1)),
                      self.max_s)
        if nominal <= 0.0:
            return 0.0
        return self._rng.uniform(nominal / 2.0, nominal)

    def reset(self) -> None:
        """A worker survived probation: forget the death streak."""
        self._deaths = 0


class FlapDetector:
    """Sliding-window flap circuit over worker-death events.

    ``record(now)`` logs one death at clock time ``now`` and returns
    whether the circuit is now tripped: ``threshold`` or more deaths
    inside the trailing ``window_s`` seconds.  The circuit is *sticky*
    — once tripped it stays tripped until :meth:`reset` — because a
    pool that has fallen back to in-process serving should only rejoin
    multi-process mode through an explicit operator action (restart or
    reload), not by silently oscillating.
    """

    def __init__(self, threshold: int = 5, window_s: float = 30.0) -> None:
        if threshold < 1 or window_s <= 0:
            raise ValueError(
                f"flap detector needs threshold >= 1 and window_s > 0; "
                f"got {threshold}, {window_s}")
        self.threshold = threshold
        self.window_s = window_s
        self._events: deque[float] = deque()
        self._tripped = False

    @property
    def tripped(self) -> bool:
        return self._tripped

    def in_window(self, now: float) -> int:
        """Deaths recorded within the trailing window as of ``now``."""
        cutoff = now - self.window_s
        while self._events and self._events[0] <= cutoff:
            self._events.popleft()
        return len(self._events)

    def record(self, now: float) -> bool:
        """Log one death at ``now``; returns the (possibly new) tripped
        state."""
        if self._tripped:
            return True
        self._events.append(now)
        if self.in_window(now) >= self.threshold:
            self._tripped = True
        return self._tripped

    def reset(self) -> None:
        """Operator action (pool restart / reload): close the circuit."""
        self._events.clear()
        self._tripped = False
