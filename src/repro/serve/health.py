"""Health and readiness payloads for the query server.

Three views, all JSON-able and all built from live server state:

* ``healthz`` — liveness + everything an operator wants on one screen:
  breaker state, admission counters, journal-recovery status, quarantine
  size, rolling latency percentiles, per-error-code counts.
* ``readyz`` — the load-balancer answer.  A server is *ready* when its
  tree is attached, the circuit breaker is not open, and it is not
  draining its worker pool for a generation reload; an open breaker
  means new traffic would be served heavily degraded, so the server asks
  to be drained while still answering in-flight clients.
* ``stats`` — the fuller numeric dump (health + per-store I/O counters).

Ingest-enabled servers additionally report an ``ingest`` block: WAL
depth and bound (the backpressure signal), live/frozen delta sizes,
merge state and write counters in ``healthz``; a condensed
``{overloaded, merging, wal_pending_bytes}`` view in ``readyz`` —
informational only, since merges cut over with zero downtime and WAL
backpressure sheds writes without touching read readiness.

Servers running a multi-process pool additionally report a ``pool``
block (``workers_live``/``workers_total``, per-worker state, restart and
requeue counters, the flap-circuit state and the last restart reason),
so an operator can see a crash-looping worker before it becomes an
availability problem.

The helpers duck-type the store so wrapped stores (fault injection,
striping) report the innermost real device's recovery/corruption counters.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..obs.slo import SloTarget

__all__ = [
    "store_health",
    "healthz_payload",
    "readyz_payload",
    "stats_payload",
]


def _store_chain(store: Any) -> Iterator[Any]:
    """The store and every ``inner`` store beneath it (wrappers first)."""
    seen = set()
    while store is not None and id(store) not in seen:
        seen.add(id(store))
        yield store
        store = getattr(store, "inner", None)


def store_health(store: Any) -> dict:
    """Durability/recovery counters summed over the wrapper chain."""
    chain = list(_store_chain(store))
    out = {
        "page_count": store.page_count,
        "page_size": store.page_size,
        "path": next((s.path for s in chain
                      if getattr(s, "path", None) is not None), None),
        "checksum_failures": sum(getattr(s, "checksum_failures", 0)
                                 for s in chain),
        "recoveries": sum(getattr(s, "recoveries", 0) for s in chain),
        "recovered_pages": sum(getattr(s, "recovered_pages", 0)
                               for s in chain),
        "retry_count": sum(getattr(s, "retry_count", 0) for s in chain),
    }
    out["journal_recovered"] = out["recoveries"] > 0
    return out


def _pool_block(server: Any) -> dict | None:
    """The worker-pool health block, or ``None`` for in-process servers."""
    pool = getattr(server, "pool", None)
    if pool is not None:
        block = pool.snapshot()
        block["enabled"] = True
        block["fallbacks"] = getattr(server, "pool_fallbacks", 0)
        return block
    if getattr(server, "workers", 0):
        return {
            "enabled": False,
            "workers_total": server.workers,
            "workers_live": 0,
            "reason": getattr(server, "pool_start_error", None),
        }
    return None


def _ingest_block(server: Any) -> dict | None:
    """The full ingest snapshot, or ``None`` for read-only servers."""
    ingest = getattr(server, "ingest", None)
    if ingest is None:
        return None
    block = ingest.snapshot()
    block["enabled"] = True
    return block


def _latency_block(server: Any) -> dict:
    latency = server.latency.summary()
    slo: SloTarget | None = server.slo
    block = {"latency_s": latency}
    if slo is not None:
        block["slo"] = slo.evaluate(server.latency).as_dict()
    return block


def healthz_payload(server: Any) -> dict:
    """Liveness + operational snapshot (always ``ok`` while answering)."""
    payload = {
        "ok": True,
        "uptime_s": server.clock() - server.started_at,
        "tree": {
            "size": len(server.tree),
            "height": server.tree.height,
            "pages": server.tree.page_count,
        },
        "breaker": server.breaker.snapshot(),
        "admission": server.admission.snapshot(),
        "requests_total": server.requests_total,
        "responses_partial": server.partial_total,
        "errors": dict(server.error_counts),
        "degraded_reads": server.degraded_reads,
        "quarantine": {
            "pages": len(server.quarantine),
            "added_at_runtime": server.quarantined_runtime,
        },
        "store": store_health(server.tree.store),
        "sessions": server.session_count,
        "generation": {
            "active": server.generation,
            "path": server.generation_path,
            "reloads": server.reloads_total,
            "reload_enabled": server.allow_reload,
        },
    }
    pool = _pool_block(server)
    if pool is not None:
        payload["pool"] = pool
    ingest = _ingest_block(server)
    if ingest is not None:
        payload["ingest"] = ingest
    payload.update(_latency_block(server))
    return payload


def readyz_payload(server: Any) -> dict:
    """Readiness: drain while the breaker is open or a reload is
    draining the worker pool, serve otherwise."""
    breaker = server.breaker.snapshot()
    store = store_health(server.tree.store)
    pool = getattr(server, "pool", None)
    draining = bool(getattr(server, "reload_draining", False)
                    or (pool is not None and pool.draining))
    payload = {
        "ready": breaker["state"] != "open" and not draining,
        "breaker": breaker,
        "journal": {
            "recovered": store["journal_recovered"],
            "recoveries": store["recoveries"],
            "recovered_pages": store["recovered_pages"],
        },
    }
    pool_block = _pool_block(server)
    if pool_block is not None:
        payload["pool"] = {
            "enabled": pool_block["enabled"],
            "workers_live": pool_block["workers_live"],
            "workers_total": pool_block["workers_total"],
            "degraded": pool_block.get("degraded", False),
            "draining": draining,
            "last_restart_reason":
                pool_block.get("last_restart_reason"),
        }
    ingest = getattr(server, "ingest", None)
    if ingest is not None:
        # A merge never drains readiness (cutover is zero-downtime) and
        # WAL backpressure sheds only writes, so reads stay ready; the
        # block is informational for the balancer's write routing.
        payload["ingest"] = {
            "enabled": True,
            "overloaded": ingest.overloaded,
            "merging": ingest.merging,
            "wal_pending_bytes": ingest.pending_bytes,
        }
    payload.update(_latency_block(server))
    if not payload["ready"]:
        payload["reason"] = ("reload drain in progress" if draining
                             else "circuit breaker is open")
    return payload


def stats_payload(server: Any) -> dict:
    """The full numeric dump: healthz plus readiness and shed/trip detail."""
    payload = healthz_payload(server)
    pool = getattr(server, "pool", None)
    draining = bool(getattr(server, "reload_draining", False)
                    or (pool is not None and pool.draining))
    payload["ready"] = (server.breaker.snapshot()["state"] != "open"
                        and not draining)
    return payload
