"""Asyncio client for the query server's newline-JSON protocol.

A :class:`QueryClient` speaks one request/response pair at a time over
one connection (an internal lock serializes concurrent callers); open
several clients for parallel load, as the chaos tests do::

    async with await QueryClient.connect(host, port) as client:
        resp = await client.search(rect, deadline_s=0.25)
        if resp.ok:
            ids = resp.ids          # sorted; subset-of-truth if partial
        else:
            resp.raise_for_error()  # typed: DeadlineExceeded, Overloaded...
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from ..core.geometry import Rect
from .protocol import (
    Request,
    Response,
    ServeError,
    decode_response,
    encode_request,
    rect_to_wire,
)

__all__ = ["QueryClient"]


class QueryClient:
    """One connection to a :class:`~repro.serve.server.QueryServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "QueryClient":
        """Open a connection to a running server."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, req: Request) -> Response:
        """Send one request and await its matching response.

        Returns the :class:`~repro.serve.protocol.Response` whether or
        not it carries an error — call
        :meth:`~repro.serve.protocol.Response.raise_for_error` to turn
        typed wire errors back into exceptions.
        """
        async with self._lock:
            if req.id == 0:
                self._next_id += 1
                req.id = self._next_id
            self._writer.write(encode_request(req))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ServeError("server closed the connection")
        resp = decode_response(line)
        if resp.id != req.id:
            raise ServeError(
                f"response id {resp.id} does not match request id {req.id}")
        return resp

    # -- convenience wrappers ---------------------------------------------

    async def search(self, rect: Rect | Sequence,
                     deadline_s: float | None = None) -> Response:
        """Region query: ids of all rectangles intersecting ``rect``."""
        wire = rect_to_wire(rect) if isinstance(rect, Rect) else rect
        return await self.request(
            Request(op="search", rect=wire, deadline_s=deadline_s))

    async def point(self, point: Sequence[float],
                    deadline_s: float | None = None) -> Response:
        """Point query: ids of all rectangles containing ``point``."""
        return await self.request(
            Request(op="point", point=list(point), deadline_s=deadline_s))

    async def count(self, rect: Rect | Sequence,
                    deadline_s: float | None = None) -> Response:
        """Match count only (no id list on the wire)."""
        wire = rect_to_wire(rect) if isinstance(rect, Rect) else rect
        return await self.request(
            Request(op="count", rect=wire, deadline_s=deadline_s))

    async def healthz(self) -> dict:
        """The server's liveness/operational snapshot."""
        resp = await self.request(Request(op="healthz"))
        return resp.raise_for_error().data

    async def readyz(self) -> dict:
        """The server's readiness payload (``ready`` may be false)."""
        resp = await self.request(Request(op="readyz"))
        return resp.raise_for_error().data

    async def stats(self) -> dict:
        """The full numeric stats dump."""
        resp = await self.request(Request(op="stats"))
        return resp.raise_for_error().data

    async def reload(self, path: str) -> dict:
        """Ask the server to cut over to the tree file at ``path``.

        Returns the new generation info; typed ``ReloadRejected`` when
        the server refuses (reloads disabled, file unreadable, fsck
        failed) — the old generation keeps serving in that case.
        """
        resp = await self.request(Request(op="reload", path=path))
        return resp.raise_for_error().data

    async def ping(self) -> dict:
        """Round-trip liveness check; returns the protocol version."""
        resp = await self.request(Request(op="ping"))
        return resp.raise_for_error().data

    async def aclose(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "QueryClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()
