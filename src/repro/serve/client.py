"""Asyncio client for the query server's newline-JSON protocol.

A :class:`QueryClient` speaks one request/response pair at a time over
one connection (an internal lock serializes concurrent callers); open
several clients for parallel load, as the chaos tests do::

    async with await QueryClient.connect(host, port) as client:
        resp = await client.search(rect, deadline_s=0.25)
        if resp.ok:
            ids = resp.ids          # sorted; subset-of-truth if partial
        else:
            resp.raise_for_error()  # typed: DeadlineExceeded, Overloaded...

Pass ``reconnect=RetryPolicy(...)`` to survive server restarts: a
dropped connection is re-dialled with the policy's bounded, seeded
full-jitter backoff (the same :class:`~repro.storage.faults.RetryPolicy`
the storage layer uses, so a fleet of clients reconnecting to a
restarted server does not stampede it in lockstep), and the in-flight
request is retransmitted **once** — safe for every query op because they
are read-only, and safe for ``insert``/``delete`` because writes are
last-writer-wins upserts by unique id (re-sending one is idempotent).
A ``reload`` or ``merge`` is never auto-retried across a reconnect: the
cutover may already have committed, and re-sending it would advance the
generation twice.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Sequence

from ..core.geometry import Rect
from .protocol import (
    Request,
    Response,
    ServeError,
    decode_response,
    encode_request,
    rect_to_wire,
)

if TYPE_CHECKING:
    from ..storage.faults import RetryPolicy

__all__ = ["QueryClient"]


class QueryClient:
    """One connection to a :class:`~repro.serve.server.QueryServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 host: str | None = None, port: int | None = None,
                 reconnect: "RetryPolicy | None" = None):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self._next_id = 0
        self._host = host
        self._port = port
        self._reconnect = reconnect
        #: Successful re-dials since :meth:`connect`.
        self.reconnects_total = 0

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      reconnect: "RetryPolicy | None" = None
                      ) -> "QueryClient":
        """Open a connection to a running server.

        ``reconnect`` enables transparent re-dial-and-retry on dropped
        connections (see the module docstring for its semantics).
        """
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, host=host, port=port,
                   reconnect=reconnect)

    async def request(self, req: Request) -> Response:
        """Send one request and await its matching response.

        Returns the :class:`~repro.serve.protocol.Response` whether or
        not it carries an error — call
        :meth:`~repro.serve.protocol.Response.raise_for_error` to turn
        typed wire errors back into exceptions.
        """
        async with self._lock:
            if req.id == 0:
                self._next_id += 1
                req.id = self._next_id
            line = await self._send_once(req)
            if not line and self._reconnect is not None:
                await self._redial()
                if req.op in ("reload", "merge"):
                    raise ServeError(
                        f"connection lost during {req.op!r}; reconnected "
                        "but not auto-retrying a generation cutover — "
                        "check the server's generation before re-sending")
                line = await self._send_once(req)
            if not line:
                raise ServeError("server closed the connection")
        resp = decode_response(line)
        if resp.id != req.id:
            raise ServeError(
                f"response id {resp.id} does not match request id {req.id}")
        return resp

    async def _send_once(self, req: Request) -> bytes:
        """One write + readline; a dead connection reads as ``b""``."""
        try:
            self._writer.write(encode_request(req))
            await self._writer.drain()
            return await self._reader.readline()
        except (ConnectionResetError, BrokenPipeError, OSError):
            return b""

    async def _redial(self) -> None:
        """Reconnect with the policy's seeded full-jitter schedule."""
        policy = self._reconnect
        if policy is None or self._host is None or self._port is None:
            raise ServeError("server closed the connection")
        last_exc: OSError | None = None
        # Try immediately, then once per backoff delay in the schedule.
        attempts = [0.0]
        attempts.extend(policy.delays())
        for delay in attempts:
            if delay > 0:
                await asyncio.sleep(delay)
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self._host, self._port)
            except OSError as exc:
                last_exc = exc
                continue
            self.reconnects_total += 1
            return
        raise ServeError(
            f"reconnect to {self._host}:{self._port} failed after "
            f"{len(attempts)} attempts: {last_exc}")

    # -- convenience wrappers ---------------------------------------------

    async def search(self, rect: Rect | Sequence,
                     deadline_s: float | None = None) -> Response:
        """Region query: ids of all rectangles intersecting ``rect``."""
        wire = rect_to_wire(rect) if isinstance(rect, Rect) else rect
        return await self.request(
            Request(op="search", rect=wire, deadline_s=deadline_s))

    async def point(self, point: Sequence[float],
                    deadline_s: float | None = None) -> Response:
        """Point query: ids of all rectangles containing ``point``."""
        return await self.request(
            Request(op="point", point=list(point), deadline_s=deadline_s))

    async def count(self, rect: Rect | Sequence,
                    deadline_s: float | None = None) -> Response:
        """Match count only (no id list on the wire)."""
        wire = rect_to_wire(rect) if isinstance(rect, Rect) else rect
        return await self.request(
            Request(op="count", rect=wire, deadline_s=deadline_s))

    async def knn(self, point: Sequence[float], k: int,
                  deadline_s: float | None = None) -> Response:
        """k nearest neighbours of ``point``: ``ids`` in non-decreasing
        distance order with a parallel ``distances`` list."""
        return await self.request(
            Request(op="knn", point=list(point), k=k,
                    deadline_s=deadline_s))

    async def insert(self, data_id: int, rect: Rect | Sequence,
                     deadline_s: float | None = None) -> Response:
        """Durably upsert ``data_id`` to ``rect`` (last-writer-wins).

        A success response means the write is fsync'd in the server's
        WAL and visible to every subsequent query; ``data["lsn"]`` is
        its log sequence number.  Typed ``IngestOverloaded`` means the
        write was shed *before* anything was logged."""
        wire = rect_to_wire(rect) if isinstance(rect, Rect) else rect
        return await self.request(
            Request(op="insert", data_id=int(data_id), rect=wire,
                    deadline_s=deadline_s))

    async def delete(self, data_id: int,
                     deadline_s: float | None = None) -> Response:
        """Durably delete ``data_id`` (idempotent; deleting an absent
        id still acks — the tombstone is what is durable)."""
        return await self.request(
            Request(op="delete", data_id=int(data_id),
                    deadline_s=deadline_s))

    async def merge(self) -> dict:
        """Drain the server's sealed WAL into a fresh packed generation
        and cut over (zero downtime).  Returns the merge/cutover info;
        typed ``MergeFailed`` when the re-pack failed with the old
        generation still serving."""
        resp = await self.request(Request(op="merge"))
        return resp.raise_for_error().data

    async def healthz(self) -> dict:
        """The server's liveness/operational snapshot."""
        resp = await self.request(Request(op="healthz"))
        return resp.raise_for_error().data

    async def readyz(self) -> dict:
        """The server's readiness payload (``ready`` may be false)."""
        resp = await self.request(Request(op="readyz"))
        return resp.raise_for_error().data

    async def stats(self) -> dict:
        """The full numeric stats dump."""
        resp = await self.request(Request(op="stats"))
        return resp.raise_for_error().data

    async def reload(self, path: str) -> dict:
        """Ask the server to cut over to the tree file at ``path``.

        Returns the new generation info; typed ``ReloadRejected`` when
        the server refuses (reloads disabled, file unreadable, fsck
        failed) — the old generation keeps serving in that case.
        """
        resp = await self.request(Request(op="reload", path=path))
        return resp.raise_for_error().data

    async def ping(self) -> dict:
        """Round-trip liveness check; returns the protocol version."""
        resp = await self.request(Request(op="ping"))
        return resp.raise_for_error().data

    async def aclose(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "QueryClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
