"""Resilient query serving over the durable page store.

The experiment pipeline builds and measures trees in one process; this
package keeps a packed tree *queryable* for many clients while the
storage underneath misbehaves.  The contract, in one line: every
response is **exact**, **explicitly partial**, or a **typed error** —
never silently wrong.

* :mod:`~repro.serve.protocol` — newline-JSON wire format and the typed
  error taxonomy (``BadRequest``, ``DeadlineExceeded``, ``Overloaded``,
  ``IngestOverloaded``, ``StoreUnavailable``, ``ReloadRejected``,
  ``MergeFailed``, ``WorkerLost``);
* :mod:`~repro.serve.deadline` — per-request deadlines with an
  injectable clock, propagated into the paged search loop as a
  cooperative cancellation hook;
* :mod:`~repro.serve.admission` — bounded in-flight work plus a
  shed-on-full FIFO queue;
* :mod:`~repro.serve.server` — :class:`QueryServer`: asyncio sockets,
  circuit-breaker-guarded reads, degraded (``partial=true``) responses,
  runtime page quarantine, health endpoints, and zero-downtime
  generation cutover via the ``reload`` admin op;
* :mod:`~repro.serve.client` — :class:`QueryClient` for tests, tools
  and the chaos soak, with opt-in seeded reconnect-with-backoff;
* :mod:`~repro.serve.health` — ``healthz``/``readyz``/``stats`` payload
  builders;
* :mod:`~repro.serve.pool` + :mod:`~repro.serve.supervisor` —
  :class:`WorkerPool`: supervised, crash-isolated worker processes
  sharing generation files read-only via ``mmap``, with at-most-once
  re-dispatch, exponential-backoff restarts, flap-detection degradation
  and scatter-gather subtree fan-out.

Servers started with an :class:`~repro.ingest.state.IngestState` also
accept durable ``insert``/``delete`` writes (acked after WAL fsync,
served as packed ∪ delta − tombstones) and the ``merge`` admin op —
see :mod:`repro.ingest` and ``docs/ingest.md``.

Start one from a durable tree file with ``python -m repro serve
tree.pages``; see ``docs/serving.md`` for the protocol and failure
semantics.
"""

from .admission import AdmissionController
from .client import QueryClient
from .deadline import Deadline
from .health import healthz_payload, readyz_payload, stats_payload, store_health
from .pool import PoolUnavailable, TreeSpec, WorkerPool
from .protocol import (
    ADMIN_OPS,
    ERROR_TYPES,
    OPS,
    PROTOCOL_VERSION,
    QUERY_OPS,
    WRITE_OPS,
    BadRequest,
    DeadlineExceeded,
    IngestOverloaded,
    MergeFailed,
    Overloaded,
    ReloadRejected,
    Request,
    Response,
    ServeError,
    StoreUnavailable,
    WorkerLost,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    rect_from_wire,
    rect_to_wire,
)
from .server import QueryServer
from .supervisor import FlapDetector, RestartBackoff, WorkerState

__all__ = [
    # protocol
    "PROTOCOL_VERSION",
    "QUERY_OPS",
    "WRITE_OPS",
    "ADMIN_OPS",
    "OPS",
    "ServeError",
    "BadRequest",
    "DeadlineExceeded",
    "Overloaded",
    "IngestOverloaded",
    "StoreUnavailable",
    "ReloadRejected",
    "MergeFailed",
    "WorkerLost",
    "ERROR_TYPES",
    "Request",
    "Response",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "rect_from_wire",
    "rect_to_wire",
    # components
    "Deadline",
    "AdmissionController",
    "QueryServer",
    "QueryClient",
    # multi-process pool
    "WorkerPool",
    "TreeSpec",
    "PoolUnavailable",
    "RestartBackoff",
    "FlapDetector",
    "WorkerState",
    # health
    "healthz_payload",
    "readyz_payload",
    "stats_payload",
    "store_health",
]
