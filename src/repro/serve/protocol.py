"""Wire protocol for the query server: newline-delimited JSON.

One request per line, one response per line, matched by ``id``.  The
format is deliberately boring — any language can speak it with a socket
and a JSON library — and every failure mode is a *typed* error code, so a
client can always tell "no answer yet" from "no answer ever" from "partial
answer":

Request::

    {"id": 7, "op": "search", "rect": [[0.1, 0.1], [0.4, 0.2]],
     "deadline_s": 0.25}

Response::

    {"id": 7, "ok": true, "op": "search", "ids": [3, 17], "partial": false,
     "unreachable_subtrees": 0, "elapsed_s": 0.0012}

Error response::

    {"id": 7, "ok": false, "op": "search", "error": "DeadlineExceeded",
     "message": "..."}

Operations: ``search`` (region query), ``point`` (point query), ``count``
(match count only), ``knn`` (``point`` + ``k``; ``ids`` come back in
non-decreasing distance order with a parallel ``distances`` list),
``healthz`` / ``readyz`` / ``stats`` (health payloads in ``data``),
``ping``, and the admin op ``reload`` (``path`` names a freshly built
durable tree file; the server fsck-verifies it and swaps generations
atomically — rejections come back as the typed ``ReloadRejected`` error
and the old generation keeps serving).

Servers started with streaming ingest additionally accept the write ops
``insert`` (``data_id`` + ``rect``, last-writer-wins upsert) and
``delete`` (``data_id``), acked only after the op is fsync'd to the
write-ahead log — the success ``data`` carries the assigned ``lsn`` —
plus the admin op ``merge``, which drains the sealed WAL into a fresh
packed generation and cuts over with zero downtime.  When the un-merged
WAL exceeds its bound the server sheds writes with the typed
``IngestOverloaded`` error *before* logging anything (reads are never
shed); a failed merge comes back as ``MergeFailed`` with the old
generation still serving.

``partial=true`` marks a degraded read: some subtrees were unreachable
(corrupt, quarantined, behind an open circuit breaker, or lost with a
crashed pool worker mid-scatter) and were skipped, so ``ids`` is a
subset of the true answer — degraded responses under-report, they never
fabricate.  ``unreachable_subtrees`` counts the skipped subtrees.

``WorkerLost`` is the multi-process pool's honesty error: the worker
executing the request died, the at-most-once re-dispatch was already
spent, and the server refuses to guess — the client retries or gives
up, but is never handed a silently wrong answer.
"""

from __future__ import annotations

import json
from typing import Any
from dataclasses import asdict, dataclass

from ..core.geometry import GeometryError, Rect

__all__ = [
    "PROTOCOL_VERSION",
    "QUERY_OPS",
    "WRITE_OPS",
    "OPS",
    "ServeError",
    "BadRequest",
    "DeadlineExceeded",
    "Overloaded",
    "IngestOverloaded",
    "StoreUnavailable",
    "ReloadRejected",
    "MergeFailed",
    "WorkerLost",
    "ERROR_TYPES",
    "Request",
    "Response",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "rect_from_wire",
    "rect_to_wire",
]

PROTOCOL_VERSION = 1

#: Operations that run a tree walk (deadline + admission controlled).
QUERY_OPS = ("search", "point", "count", "knn")
#: Write operations (ingest-enabled servers only; acked after WAL fsync).
WRITE_OPS = ("insert", "delete")
#: Administrative operations (no tree walk; ``reload`` swaps generations,
#: ``merge`` drains the WAL into a new generation).
ADMIN_OPS = ("healthz", "readyz", "stats", "ping", "reload", "merge")
#: All operations the server understands.
OPS = QUERY_OPS + WRITE_OPS + ADMIN_OPS


class ServeError(Exception):
    """Base of every typed serving error; ``code`` is the wire name."""

    code = "Internal"


class BadRequest(ServeError):
    """The request line could not be parsed or validated."""

    code = "BadRequest"


class DeadlineExceeded(ServeError):
    """The request's deadline passed before a result could be returned."""

    code = "DeadlineExceeded"


class Overloaded(ServeError):
    """Admission control shed the request instead of queueing it."""

    code = "Overloaded"


class IngestOverloaded(ServeError):
    """The un-merged write-ahead log reached its byte bound, so this
    write was shed *before anything was logged* — nothing was acked and
    nothing durable changed.  Run (or wait for) a merge and retry."""

    code = "IngestOverloaded"


class StoreUnavailable(ServeError):
    """The page store failed (I/O error, corruption, open breaker) and
    degraded reads were not allowed to absorb it."""

    code = "StoreUnavailable"


class ReloadRejected(ServeError):
    """A ``reload`` was refused — reloads are disabled, the candidate
    file is unreadable or fails fsck — and the serving generation is
    unchanged."""

    code = "ReloadRejected"


class MergeFailed(ServeError):
    """A ``merge`` admin op failed before its cutover committed.  The
    old generation keeps serving, the WAL keeps its sealed segments,
    and no acked write was lost — retrying the merge is always safe."""

    code = "MergeFailed"


class WorkerLost(ServeError):
    """The pool worker executing this request died (crash or hang) and
    the at-most-once re-dispatch budget was already spent.  The query
    ran zero or one complete times — never partially answered — so
    retrying is always safe for these read-only operations."""

    code = "WorkerLost"


#: Wire code -> exception class (for clients raising typed errors).
ERROR_TYPES: dict[str, type[ServeError]] = {
    cls.code: cls
    for cls in (ServeError, BadRequest, DeadlineExceeded, Overloaded,
                IngestOverloaded, StoreUnavailable, ReloadRejected,
                MergeFailed, WorkerLost)
}


def rect_to_wire(rect: Rect) -> list:
    """``Rect`` -> ``[[lo...], [hi...]]``."""
    return [list(map(float, rect.lo)), list(map(float, rect.hi))]


def rect_from_wire(value: Any) -> Rect:
    """``[[lo...], [hi...]]`` -> ``Rect`` (raises :class:`BadRequest`)."""
    if (not isinstance(value, (list, tuple)) or len(value) != 2
            or not all(isinstance(side, (list, tuple)) for side in value)
            or len(value[0]) != len(value[1]) or not value[0]):
        raise BadRequest(f"rect must be [[lo...], [hi...]], got {value!r}")
    try:
        return Rect(tuple(float(x) for x in value[0]),
                    tuple(float(x) for x in value[1]))
    except (TypeError, ValueError, GeometryError) as exc:
        raise BadRequest(f"malformed rect {value!r}: {exc}") from None


@dataclass
class Request:
    """One client request (see the module docstring for the wire form)."""

    op: str
    id: int = 0
    rect: list | None = None
    point: list | None = None
    #: Relative deadline budget in seconds; the server clamps it to its
    #: ``max_deadline_s`` and applies its default when omitted.
    deadline_s: float | None = None
    #: ``knn`` only: how many neighbours to return.
    k: int | None = None
    #: ``reload`` only: filesystem path of the candidate tree file.
    path: str | None = None
    #: ``insert``/``delete`` only: the record's unique integer id.
    data_id: int | None = None


@dataclass
class Response:
    """One server response; ``ok=False`` carries a typed ``error`` code."""

    id: int
    ok: bool
    op: str = ""
    ids: list[int] | None = None
    #: ``knn`` only: distances parallel to ``ids`` (non-decreasing).
    distances: list[float] | None = None
    count: int | None = None
    partial: bool = False
    unreachable_subtrees: int = 0
    error: str | None = None
    message: str | None = None
    data: dict | None = None
    elapsed_s: float | None = None

    def raise_for_error(self) -> "Response":
        """Return self when ``ok``; raise the typed exception otherwise."""
        if self.ok:
            return self
        exc_type = ERROR_TYPES.get(self.error or "", ServeError)
        raise exc_type(self.message or self.error or "request failed")


def _encode(payload: dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def encode_request(req: Request) -> bytes:
    """Request -> one JSON line (``None`` fields omitted)."""
    payload = {k: v for k, v in asdict(req).items() if v is not None}
    return _encode(payload)


def decode_request(line: bytes | str) -> Request:
    """One JSON line -> validated Request (raises :class:`BadRequest`).

    A raisable :class:`BadRequest` keeps the offending request ``id`` in
    ``.request_id`` when one could be parsed, so the error response still
    correlates.
    """
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise _bad_request(f"request is not valid JSON: {exc}", 0) from None
    if not isinstance(payload, dict):
        raise _bad_request(f"request must be a JSON object, got "
                           f"{type(payload).__name__}", 0)
    req_id = payload.get("id", 0)
    if not isinstance(req_id, int) or isinstance(req_id, bool):
        raise _bad_request(f"id must be an integer, got {req_id!r}", 0)
    op = payload.get("op")
    if op not in OPS:
        raise _bad_request(f"unknown op {op!r}; expected one of {OPS}",
                           req_id)
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        if (not isinstance(deadline_s, (int, float))
                or isinstance(deadline_s, bool) or deadline_s <= 0):
            raise _bad_request(
                f"deadline_s must be a positive number, got {deadline_s!r}",
                req_id)
        deadline_s = float(deadline_s)
    k = payload.get("k")
    if k is not None:
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise _bad_request(f"k must be a positive integer, got {k!r}",
                               req_id)
    path = payload.get("path")
    if path is not None and not isinstance(path, str):
        raise _bad_request(f"path must be a string, got {path!r}", req_id)
    data_id = payload.get("data_id")
    if data_id is not None:
        if not isinstance(data_id, int) or isinstance(data_id, bool):
            raise _bad_request(
                f"data_id must be an integer, got {data_id!r}", req_id)
    unknown = set(payload) - {"id", "op", "rect", "point", "deadline_s",
                              "k", "path", "data_id"}
    if unknown:
        raise _bad_request(f"unknown request fields {sorted(unknown)}",
                           req_id)
    return Request(op=op, id=req_id, rect=payload.get("rect"),
                   point=payload.get("point"), deadline_s=deadline_s,
                   k=k, path=path, data_id=data_id)


def _bad_request(message: str, req_id: int) -> BadRequest:
    exc = BadRequest(message)
    exc.request_id = req_id
    return exc


def encode_response(resp: Response) -> bytes:
    """Response -> one JSON line (``None`` fields omitted)."""
    payload = {k: v for k, v in asdict(resp).items() if v is not None}
    return _encode(payload)


def decode_response(line: bytes | str) -> Response:
    """One JSON line -> Response (raises :class:`ServeError` on garbage)."""
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeError(f"response is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ServeError(f"malformed response line: {line!r}")
    known = {f for f in Response.__dataclass_fields__}
    return Response(**{k: v for k, v in payload.items() if k in known})
