"""Query overlay: packed base ∪ delta layers − tombstones.

The serving contract of the ingest path in one line: a query answered
through the overlay returns **exactly** what a from-scratch packed
build of the current logical set would return.  The composition rule
is last-writer-wins by layer order: the packed base is layer 0, frozen
deltas (mid-merge snapshots) come next, and the live delta is last —
an id mentioned by a later layer (upserted *or* tombstoned) shadows
every earlier layer's answer for that id.

Window and point queries run the base search through the full serving
hook set (deadlines, quarantine, degraded reads) and union in each
layer's R*-tree hits, dropping shadowed ids.  kNN over-fetches from
the base (``k`` plus the total shadowed-id count bounds how many base
neighbours can be invalidated), brute-forces the small deltas with the
same vectorized MINDIST the paged walk uses, and merges by
``(distance, id)`` — a total order, so overlay kNN is deterministic
even under distance ties.

Degradation composes honestly: ``partial`` / ``skipped_subtrees`` come
from the base walk (deltas are in-memory and never degrade), so a
partial overlay answer under-reports exactly like a partial base
answer — it never fabricates.
"""

from __future__ import annotations

from typing import Callable, Container, Sequence

from ..core.geometry import Rect
from ..rtree.knn import KnnResult, knn_detailed
from ..rtree.paged import PagedSearcher
from .delta import DeltaTree

__all__ = ["OverlayResult", "OverlaySearcher"]


class OverlayResult:
    """Outcome of one overlay window/point query.

    ``ids`` is sorted ascending.  ``partial``/``skipped_subtrees``
    mirror :class:`~repro.rtree.paged.SearchResult` and describe the
    base-tree walk only.
    """

    __slots__ = ("ids", "partial", "skipped_subtrees")

    def __init__(self, ids: list[int], partial: bool,
                 skipped_subtrees: int):
        self.ids = ids
        self.partial = partial
        self.skipped_subtrees = skipped_subtrees


class OverlaySearcher:
    """Compose a packed-tree searcher with ordered delta layers."""

    def __init__(self, searcher: PagedSearcher,
                 layers: Sequence[DeltaTree] = ()):
        self.searcher = searcher
        self.layers = tuple(layers)

    def _shadowed(self) -> set[int]:
        """Ids overridden by any layer (hidden from the base answer)."""
        out: set[int] = set()
        for layer in self.layers:
            out |= layer.overridden
        return out

    def _shadowed_above(self, index: int) -> set[int]:
        """Ids overridden by layers *after* ``index``."""
        out: set[int] = set()
        for layer in self.layers[index + 1:]:
            out |= layer.overridden
        return out

    # -- window / point ----------------------------------------------------

    def search_detailed(
        self,
        query: Rect,
        *,
        check: Callable[[], None] | None = None,
        quarantined: Container[int] | None = None,
        degraded: bool = False,
        on_page_error: Callable[[int, Exception], None] | None = None,
    ) -> OverlayResult:
        """Window query over base ∪ layers − tombstones (sorted ids)."""
        base = self.searcher.search_detailed(
            query, check=check, quarantined=quarantined,
            degraded=degraded, on_page_error=on_page_error)
        shadowed = self._shadowed()
        out = {int(i) for i in base.ids if int(i) not in shadowed}
        for index, layer in enumerate(self.layers):
            hidden = self._shadowed_above(index)
            for data_id in layer.search(query):
                if data_id not in hidden:
                    out.add(int(data_id))
        return OverlayResult(sorted(out), base.partial,
                             base.skipped_subtrees)

    def point_detailed(
        self,
        point: Sequence[float],
        *,
        check: Callable[[], None] | None = None,
        quarantined: Container[int] | None = None,
        degraded: bool = False,
        on_page_error: Callable[[int, Exception], None] | None = None,
    ) -> OverlayResult:
        """Point query (degenerate-window) through the overlay."""
        return self.search_detailed(
            Rect.from_point(tuple(float(c) for c in point)),
            check=check, quarantined=quarantined, degraded=degraded,
            on_page_error=on_page_error)

    # -- kNN ---------------------------------------------------------------

    def knn_detailed(
        self,
        point: Sequence[float],
        k: int,
        *,
        check: Callable[[], None] | None = None,
        quarantined: Container[int] | None = None,
        degraded: bool = False,
        on_page_error: Callable[[int, Exception], None] | None = None,
    ) -> KnnResult:
        """k nearest neighbours over the overlay.

        Neighbours come back ordered by ``(distance, id)`` — the same
        answer, in the same order, a rebuilt packed tree would produce
        once its heap-order ties are normalised the same way.
        """
        shadowed = self._shadowed()
        base = knn_detailed(
            self.searcher, point, k + len(shadowed),
            check=check, quarantined=quarantined, degraded=degraded,
            on_page_error=on_page_error)
        merged: list[tuple[float, int]] = [
            (float(dist), int(data_id))
            for data_id, dist in base.neighbours
            if int(data_id) not in shadowed
        ]
        for index, layer in enumerate(self.layers):
            hidden = self._shadowed_above(index)
            for data_id, dist in layer.knn_candidates(point,
                                                      exclude=hidden):
                merged.append((dist, data_id))
        merged.sort()
        neighbours = [(data_id, dist) for dist, data_id in merged[:k]]
        return KnnResult(neighbours, base.partial,
                         base.skipped_subtrees)
