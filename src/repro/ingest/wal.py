"""Write-ahead log for the streaming-ingest path.

Every ``insert``/``delete`` the server acks is first appended — and
fsynced — to one of these logs, so an acked write survives any crash.
The format deliberately reuses the repo's two proven durability idioms:

* each record is one NDJSON line carrying its own CRC32C over the
  canonical record body (:func:`repro.pipeline.staging.record_crc`),
  exactly like the build pipeline's checkpoint log;
* on open, a *torn tail* — the one partial line a SIGKILL mid-append
  can leave — is silently discarded (it was never acked) and physically
  truncated away, while corruption anywhere **before** the tail means
  the file was damaged at rest and raises :class:`WalCorrupt` instead
  of silently dropping acknowledged writes.

The log is a directory (``<tree>.ingest/``) of numbered *segments*.
Appends go to the highest-numbered segment; a merge first *seals* the
active segment by appending a ``seal`` record (recording the op count
and final LSN, fsynced before any new segment is created), and then
consumes only sealed segments — the invariant "every segment except
the highest is sealed" is checked on open and by ``repro fsck``.

Determinism note: nothing in this module reads a clock or an RNG —
replaying the same segment bytes always reconstructs the same ops in
the same order, which is what makes the background merge reproducible
(and SIGKILL-resumable) from the sealed bytes alone.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import BinaryIO, Iterator, Sequence

import json

from ..core.geometry import GeometryError, Rect
from ..pipeline.staging import check_record_crc, record_crc
from ..storage.faults import CrashPlan
from ..storage.store import SimulatedCrash

__all__ = [
    "WAL_FORMAT",
    "IngestError",
    "WalCorrupt",
    "WalOp",
    "WalSegment",
    "WriteAheadLog",
    "ingest_dir",
    "segment_name",
    "segment_seq",
]

#: Format tag stamped into every WAL record.
WAL_FORMAT = "repro-ingest-wal-v1"

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"

#: Ops a WAL record may carry (``seal`` is internal to the format).
_DATA_OPS = ("insert", "delete")


class IngestError(RuntimeError):
    """Base error for the streaming-ingest subsystem."""


class WalCorrupt(IngestError):
    """A WAL segment is damaged somewhere other than its torn tail —
    acknowledged writes may be missing, so nothing is silently dropped."""


def ingest_dir(tree_path: str | os.PathLike[str]) -> str:
    """The ingest sidecar directory for a tree file (``<path>.ingest``)."""
    return f"{os.fspath(tree_path)}.ingest"


def segment_name(seq: int) -> str:
    """Filename of WAL segment ``seq`` (1-based, zero-padded)."""
    return f"{_SEGMENT_PREFIX}{seq:08d}{_SEGMENT_SUFFIX}"


def segment_seq(name: str) -> int | None:
    """Parse a segment filename back to its sequence number."""
    if (not name.startswith(_SEGMENT_PREFIX)
            or not name.endswith(_SEGMENT_SUFFIX)):
        return None
    middle = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    if not middle.isdigit():
        return None
    return int(middle)


@dataclass(frozen=True)
class WalOp:
    """One logical write: an upsert of ``data_id`` to ``rect``, or a
    delete of ``data_id`` (``rect is None``).

    Semantics are *last-writer-wins by LSN* over unique integer ids:
    replaying a prefix twice reaches the same state as replaying it
    once, which is what makes merge recovery idempotent.
    """

    lsn: int
    op: str
    data_id: int
    rect: Rect | None

    def to_record(self) -> dict[str, object]:
        """The JSON body of this op (without format/crc stamps)."""
        record: dict[str, object] = {
            "lsn": self.lsn, "op": self.op, "id": self.data_id,
        }
        if self.rect is not None:
            record["rect"] = [list(self.rect.lo), list(self.rect.hi)]
        return record


def _op_from_record(record: dict[str, object], where: str) -> WalOp:
    op = record.get("op")
    if op not in _DATA_OPS:
        raise WalCorrupt(f"{where}: unknown WAL op {op!r}")
    lsn = record.get("lsn")
    data_id = record.get("id")
    if not isinstance(lsn, int) or isinstance(lsn, bool) or lsn < 1:
        raise WalCorrupt(f"{where}: bad lsn {lsn!r}")
    if not isinstance(data_id, int) or isinstance(data_id, bool):
        raise WalCorrupt(f"{where}: bad data id {data_id!r}")
    rect: Rect | None = None
    if op == "insert":
        wire = record.get("rect")
        if (not isinstance(wire, list) or len(wire) != 2
                or not all(isinstance(side, list) for side in wire)):
            raise WalCorrupt(f"{where}: insert without a valid rect")
        try:
            rect = Rect(tuple(float(x) for x in wire[0]),
                        tuple(float(x) for x in wire[1]))
        except (TypeError, ValueError, GeometryError) as exc:
            raise WalCorrupt(f"{where}: malformed rect: {exc}") from exc
    return WalOp(lsn=int(lsn), op=str(op), data_id=int(data_id), rect=rect)


class WalSegment:
    """One parsed WAL segment file.

    ``sealed`` means a verified seal record closes the segment (its op
    count and final LSN were checked against the records before it).
    ``torn`` means a partial final line was discarded — only legal on
    the unsealed (active) segment.  ``valid_bytes`` is the offset just
    past the last intact record, i.e. where a writer must truncate
    before appending again.
    """

    __slots__ = ("path", "seq", "ops", "sealed", "torn", "valid_bytes",
                 "size_bytes")

    def __init__(self, path: str, seq: int, ops: list[WalOp], *,
                 sealed: bool, torn: bool, valid_bytes: int,
                 size_bytes: int):
        self.path = path
        self.seq = seq
        self.ops = ops
        self.sealed = sealed
        self.torn = torn
        self.valid_bytes = valid_bytes
        self.size_bytes = size_bytes

    @property
    def last_lsn(self) -> int:
        """LSN of the final op (0 for an empty segment)."""
        return self.ops[-1].lsn if self.ops else 0

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "WalSegment":
        """Parse one segment file; raises :class:`WalCorrupt` for any
        damage that is not a discardable torn tail."""
        path = os.fspath(path)
        seq = segment_seq(os.path.basename(path))
        if seq is None:
            raise WalCorrupt(f"{path}: not a WAL segment filename")
        with open(path, "rb") as f:
            data = f.read()
        lines = data.split(b"\n")
        body, tail = lines[:-1], lines[-1]

        ops: list[WalOp] = []
        sealed = False
        offset = 0
        for lineno, line in enumerate(body, 1):
            where = f"{path}:{lineno}"
            if not line.strip():
                offset += len(line) + 1
                continue
            if sealed:
                raise WalCorrupt(f"{where}: record after the seal — a "
                                 f"sealed segment must never grow")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WalCorrupt(
                    f"{where}: unparseable WAL record ({exc})") from exc
            if not isinstance(record, dict):
                raise WalCorrupt(f"{where}: WAL record is not an object")
            if record.get("format") != WAL_FORMAT:
                raise WalCorrupt(
                    f"{where}: unexpected record format "
                    f"{record.get('format')!r}")
            if not check_record_crc(record):
                raise WalCorrupt(f"{where}: WAL record fails its CRC")
            if record.get("op") == "seal":
                count = record.get("count")
                last = record.get("last_lsn")
                if count != len(ops) or last != (
                        ops[-1].lsn if ops else 0):
                    raise WalCorrupt(
                        f"{where}: seal record claims {count} op(s) "
                        f"ending at lsn {last}, segment holds "
                        f"{len(ops)} ending at "
                        f"{ops[-1].lsn if ops else 0}")
                sealed = True
            else:
                op = _op_from_record(record, where)
                if ops and op.lsn <= ops[-1].lsn:
                    raise WalCorrupt(
                        f"{where}: lsn {op.lsn} not after {ops[-1].lsn}")
                ops.append(op)
            offset += len(line) + 1

        torn = bool(tail.strip())
        if torn and sealed:
            raise WalCorrupt(
                f"{path}: trailing bytes after the seal record")
        return cls(path, seq, ops, sealed=sealed, torn=torn,
                   valid_bytes=offset, size_bytes=len(data))


def _encode_record(body: dict[str, object]) -> bytes:
    record = dict(body)
    record["format"] = WAL_FORMAT
    record.pop("crc", None)
    record["crc"] = record_crc(record)
    return (json.dumps(record, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


class WriteAheadLog:
    """Appender/reader over the segment directory.

    Parameters
    ----------
    dir_path:
        The ingest sidecar directory (created if absent).
    start_after_seq:
        Segments with ``seq <= start_after_seq`` were already merged
        into the current packed generation; they are ignored (and may
        be deleted by the caller's cleanup sweep).
    min_lsn:
        LSNs already consumed by merged generations; newly assigned
        LSNs always exceed both this and anything found on disk.
    crash_plan:
        Optional :class:`~repro.storage.faults.CrashPlan` applied to
        every physical append (testing only) — the kill-at-every-write
        matrix runs through this exactly like the page store's.
    """

    def __init__(self, dir_path: str | os.PathLike[str], *,
                 start_after_seq: int = 0, min_lsn: int = 0,
                 crash_plan: CrashPlan | None = None):
        self.dir_path = os.fspath(dir_path)
        self._crash_plan = crash_plan
        self._crashed = False
        self._file: BinaryIO | None = None
        os.makedirs(self.dir_path, exist_ok=True)

        self.segments: list[WalSegment] = []
        seqs: list[tuple[int, str]] = []
        for name in os.listdir(self.dir_path):
            seq = segment_seq(name)
            if seq is not None and seq > start_after_seq:
                seqs.append((seq, os.path.join(self.dir_path, name)))
        for seq, path in sorted(seqs):
            self.segments.append(WalSegment.load(path))
        for segment in self.segments[:-1]:
            if not segment.sealed:
                raise WalCorrupt(
                    f"{segment.path}: unsealed segment below the active "
                    f"one — the seal protocol was violated")

        self._last_lsn = max(
            [min_lsn] + [s.last_lsn for s in self.segments])
        if self.segments and not self.segments[-1].sealed:
            active = self.segments[-1]
            if active.torn:
                # The torn bytes were never acked; cut them off so the
                # next append starts on a clean line boundary.
                with open(active.path, "r+b") as f:
                    f.truncate(active.valid_bytes)
                    f.flush()
                    os.fsync(f.fileno())
                active.size_bytes = active.valid_bytes
                active.torn = False
            self._next_seq = active.seq + 1
        else:
            self._next_seq = (self.segments[-1].seq + 1 if self.segments
                              else start_after_seq + 1)

    # -- accessors ---------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """Highest LSN assigned (acked) so far."""
        return self._last_lsn

    @property
    def active_segment(self) -> WalSegment | None:
        """The unsealed segment appends go to, if one exists."""
        if self.segments and not self.segments[-1].sealed:
            return self.segments[-1]
        return None

    @property
    def pending_bytes(self) -> int:
        """Bytes across all unmerged segments (backpressure signal)."""
        return sum(s.size_bytes for s in self.segments)

    @property
    def pending_ops(self) -> int:
        """Ops across all unmerged segments."""
        return sum(len(s.ops) for s in self.segments)

    def sealed_segments(self) -> list[WalSegment]:
        """Sealed, unmerged segments in sequence order."""
        return [s for s in self.segments if s.sealed]

    def iter_ops(self) -> Iterator[WalOp]:
        """Every unmerged op across all segments, in LSN order."""
        for segment in self.segments:
            yield from segment.ops

    # -- appending ---------------------------------------------------------

    def _physical_append(self, f: BinaryIO, line: bytes) -> None:
        """One fsynced append, optionally crashed by the test plan."""
        crash = False
        if self._crash_plan is not None:
            line, crash = self._crash_plan.next_write(line)
        f.write(line)
        f.flush()
        os.fsync(f.fileno())
        if crash:
            self._crashed = True
            raise SimulatedCrash(
                f"simulated crash after WAL write "
                f"{self._crash_plan.writes_seen if self._crash_plan else 0}")

    def _active_file(self) -> BinaryIO:
        if self._file is not None:
            return self._file
        active = self.active_segment
        if active is None:
            path = os.path.join(self.dir_path,
                                segment_name(self._next_seq))
            active = WalSegment(path, self._next_seq, [], sealed=False,
                                torn=False, valid_bytes=0, size_bytes=0)
            self._next_seq += 1
            self.segments.append(active)
        self._file = open(active.path, "ab")
        return self._file

    def _check_usable(self) -> None:
        if self._crashed:
            raise IngestError(
                "write-ahead log crashed; reopen it before appending")

    def append(self, op: str, data_id: int, rect: Rect | None) -> WalOp:
        """Append one op, fsync it, and return it with its LSN.

        When this returns, the op is durable — this is the server's
        ack point.  A raised exception means the op was *not* acked
        (at worst it left a torn tail the next open discards).
        """
        self._check_usable()
        if op not in _DATA_OPS:
            raise IngestError(f"unknown WAL op {op!r}")
        if op == "insert" and rect is None:
            raise IngestError("insert needs a rect")
        if op == "delete":
            rect = None
        walop = WalOp(lsn=self._last_lsn + 1, op=op,
                      data_id=int(data_id), rect=rect)
        line = _encode_record(walop.to_record())
        f = self._active_file()
        self._physical_append(f, line)
        active = self.segments[-1]
        active.ops.append(walop)
        active.size_bytes += len(line)
        active.valid_bytes = active.size_bytes
        self._last_lsn = walop.lsn
        return walop

    def seal_active(self) -> WalSegment | None:
        """Seal the active segment (fsynced) so a merge may consume it.

        Returns the sealed segment, or ``None`` when there is nothing
        to seal.  The seal record lands *before* any new segment file
        exists, which is what keeps "only the highest segment may be
        unsealed" an on-disk invariant.
        """
        self._check_usable()
        active = self.active_segment
        if active is None or not active.ops:
            return None
        line = _encode_record({
            "op": "seal", "count": len(active.ops),
            "last_lsn": active.last_lsn,
        })
        f = self._active_file()
        try:
            self._physical_append(f, line)
        finally:
            if self._crashed and self._file is not None:
                self._file.close()
                self._file = None
        active.size_bytes += len(line)
        active.valid_bytes = active.size_bytes
        active.sealed = True
        f.close()
        self._file = None
        return active

    # -- merge bookkeeping -------------------------------------------------

    def forget_through(self, seq: int) -> int:
        """Drop (and delete) segments with ``seq <=`` the given value —
        they were merged into a committed generation.  Idempotent."""
        dropped = 0
        kept: list[WalSegment] = []
        for segment in self.segments:
            if segment.seq <= seq:
                try:
                    os.unlink(segment.path)
                except FileNotFoundError:
                    pass
                dropped += 1
            else:
                kept.append(segment)
        self.segments = kept
        return dropped

    def close(self) -> None:
        """Release the active segment's file handle."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
