"""Serving-side ingest state: the WAL, the delta layers, and the
book-keeping that ties acks, backpressure, and merge cutover together.

One :class:`IngestState` belongs to one server process.  Its lifecycle:

* :meth:`IngestState.open` resolves the current packed generation,
  sweeps crash leftovers, opens the WAL past the drained prefix, and
  replays every pending op into a fresh live delta — after which the
  overlay answers exactly as it did before the restart.
* Writes go through :meth:`append` (fsync'd WAL append — the ack
  point) then :meth:`apply` (delta mutation, done under the server's
  search lock so readers see each op atomically).
* :meth:`begin_merge` seals the active segment and freezes the live
  delta; queries keep overlaying ``frozen + live`` while the merge
  re-packs in the background, so cutover needs no write or read stall
  beyond one pointer swap.
* :meth:`finish_merge` drops the frozen layers (their ops are now in
  the packed base) and forgets the drained segments.

Thread-safety: all mutation happens either on the event loop or inside
the server's single-flight write executor under ``_write_lock``; this
class adds no locking of its own.
"""

from __future__ import annotations

import os

from ..core.geometry import Rect
from ..obs import runtime as obs
from ..storage.faults import CrashPlan
from .delta import DeltaTree
from .merge import resolve_current, sweep_drained
from .wal import WalOp, WriteAheadLog, ingest_dir

__all__ = ["IngestState", "DEFAULT_WAL_LIMIT"]

#: Default bound on un-merged WAL bytes before writes shed (64 MiB).
DEFAULT_WAL_LIMIT = 64 << 20


class IngestState:
    """Everything the server needs to accept writes durably."""

    def __init__(self, tree_path: str, wal: WriteAheadLog, *,
                 ndim: int, max_wal_bytes: int = DEFAULT_WAL_LIMIT,
                 delta_capacity: int = 16):
        self.tree_path = tree_path
        self.wal = wal
        self.ndim = ndim
        self.max_wal_bytes = max_wal_bytes
        self.delta_capacity = delta_capacity
        self.live = DeltaTree(ndim, capacity=delta_capacity)
        self._frozen: list[DeltaTree] = []
        self.merging = False
        self.writes_acked = 0
        self.writes_shed = 0
        self.merges_total = 0

    @classmethod
    def open(cls, tree_path: str | os.PathLike[str], *, ndim: int,
             max_wal_bytes: int = DEFAULT_WAL_LIMIT,
             delta_capacity: int = 16,
             crash_plan: CrashPlan | None = None
             ) -> tuple["IngestState", str]:
        """Recover ingest state from disk.

        Returns ``(state, base_path)`` where ``base_path`` is the
        packed generation the overlay should serve under the replayed
        delta.  Replay is exact: the WAL constructor discards a torn
        tail, and every surviving (i.e. previously acked) op lands in
        the live delta in LSN order.
        """
        tree_path = os.fspath(tree_path)
        base_path, pointer = resolve_current(tree_path)
        sweep_drained(tree_path)
        wal = WriteAheadLog(
            ingest_dir(tree_path),
            start_after_seq=pointer.merged_seq if pointer else 0,
            min_lsn=pointer.merged_lsn if pointer else 0,
            crash_plan=crash_plan,
        )
        state = cls(tree_path, wal, ndim=ndim,
                    max_wal_bytes=max_wal_bytes,
                    delta_capacity=delta_capacity)
        replayed = state.live.apply_many(wal.iter_ops())
        if replayed:
            obs.inc("ingest.replayed_ops", replayed)
        return state, base_path

    # -- write path --------------------------------------------------------

    @property
    def pending_bytes(self) -> int:
        """Bytes of WAL not yet drained by a merge."""
        return self.wal.pending_bytes

    @property
    def overloaded(self) -> bool:
        """True when the un-merged WAL exceeds its bound; the server
        sheds writes (before appending anything) until a merge drains
        it.  Reads are never shed."""
        return self.wal.pending_bytes >= self.max_wal_bytes

    def append(self, op: str, data_id: int,
               rect: Rect | None = None) -> WalOp:
        """Durably log one op.  When this returns, the record is
        fsync'd — the caller may ack."""
        walop = self.wal.append(op, data_id, rect)
        self.writes_acked += 1
        return walop

    def apply(self, walop: WalOp) -> None:
        """Make a logged op visible to queries (live delta upsert or
        tombstone).  Call under the search lock."""
        self.live.apply(walop)

    # -- merge lifecycle ---------------------------------------------------

    def layers(self) -> tuple[DeltaTree, ...]:
        """Overlay layers, oldest first (frozen snapshots, then live)."""
        return (*self._frozen, self.live)

    def begin_merge(self) -> None:
        """Seal the active WAL segment and freeze the live delta.

        After this, new writes land in a new segment and a new live
        delta; the sealed prefix is exactly what the background merge
        will drain.  Call under the search lock so readers never see a
        half-frozen layer stack.
        """
        self.wal.seal_active()
        self._frozen.append(self.live)
        self.live = DeltaTree(self.ndim, capacity=self.delta_capacity)
        self.merging = True

    def finish_merge(self, merged_seq: int) -> None:
        """Drop the frozen layers and forget drained segments after the
        new generation is live.  Call under the search lock (the base
        searcher swap and the layer drop must be one atomic step from a
        reader's point of view)."""
        self._frozen.clear()
        self.merging = False
        self.merges_total += 1
        self.wal.forget_through(merged_seq)

    def abort_merge(self) -> None:
        """A merge attempt failed before cutover: fold the frozen
        layers back under the live delta so the layer stack stays
        minimal.  The sealed segments remain on disk; the next merge
        retries them.  Call under the search lock."""
        if self._frozen:
            # Replay the live delta's ops *over* the oldest frozen
            # layer: frozen layers are older, so fold newer into older.
            merged = self._frozen[0]
            for layer in (*self._frozen[1:], self.live):
                for data_id in sorted(layer.overridden):
                    rect = layer.get(data_id)
                    if rect is not None:
                        merged.insert(data_id, rect)
                    else:
                        merged.delete(data_id)
            self._frozen.clear()
            self.live = merged
        self.merging = False

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Health/monitoring view (served by healthz)."""
        active = self.wal.active_segment
        return {
            "wal": {
                "dir": self.wal.dir_path,
                "last_lsn": self.wal.last_lsn,
                "pending_bytes": self.wal.pending_bytes,
                "pending_ops": self.wal.pending_ops,
                "max_bytes": self.max_wal_bytes,
                "active_seq": active.seq if active else None,
                "sealed_segments": len(self.wal.sealed_segments()),
            },
            "delta": {
                "live": len(self.live),
                "live_tombstones": self.live.tombstone_count,
                "frozen_layers": len(self._frozen),
                "frozen": sum(len(f) for f in self._frozen),
            },
            "merge": {
                "merging": self.merging,
                "merges_total": self.merges_total,
            },
            "writes": {
                "acked": self.writes_acked,
                "shed": self.writes_shed,
            },
            "overloaded": self.overloaded,
        }

    def close(self) -> None:
        """Release the WAL's active-segment file handle."""
        self.wal.close()
