"""In-memory dynamic delta layer over a packed base tree.

A :class:`DeltaTree` holds the writes that arrived since the last
re-pack: an R*-tree (the repo's best dynamic variant) indexes the
*live* delta rectangles for window queries, a dict maps each live id
to its rectangle (the logical model is ``unique int id -> rect`` with
last-writer-wins upserts), and a tombstone set records deletes so the
overlay can subtract them from base-tree answers.

The structure is deliberately tiny and rebuildable: every op in it is
also in the fsynced WAL, so a crash loses nothing — the delta is
replayed from the segments on open (via the bulk
:meth:`DeltaTree.insert_many` fast path, which converts the whole
geometry buffer once instead of allocating per op).

Op counters land in the ``ingest.*`` metrics namespace; none of them
move on error paths (RL003 counter purity applies to this package).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.geometry import GeometryError, Rect, RectArray
from ..obs import runtime as obs
from ..rtree.knn import _min_dists
from ..rtree.rstar import RStarTree
from .wal import IngestError, WalOp

__all__ = ["DeltaTree"]


class DeltaTree:
    """The mutable overlay layer: live upserts plus tombstones.

    Parameters
    ----------
    ndim:
        Dimensionality of the indexed rectangles (must match the
        packed base tree).
    capacity:
        Node capacity of the internal R*-tree.  Deltas are small by
        design (the merge drains them), so a modest fan-out keeps
        restructuring cheap.
    """

    def __init__(self, ndim: int, *, capacity: int = 16):
        if ndim < 1:
            raise GeometryError("ndim must be >= 1")
        self.ndim = ndim
        self._tree = RStarTree(ndim=ndim, capacity=capacity)
        self._rects: dict[int, Rect] = {}
        self._tombstones: set[int] = set()
        #: Ids whose base-tree answer this layer overrides (live upsert
        #: or tombstone).  Grows monotonically until the layer is
        #: dropped at merge cutover.
        self._overridden: set[int] = set()
        self._arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None \
            = None

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        """Number of live (upserted, not-deleted) entries."""
        return len(self._rects)

    @property
    def tombstone_count(self) -> int:
        return len(self._tombstones)

    @property
    def overridden(self) -> set[int]:
        """Ids this layer shadows in any layer below it (base included)."""
        return self._overridden

    def get(self, data_id: int) -> Rect | None:
        """The live rectangle for ``data_id``, if this layer holds one."""
        return self._rects.get(data_id)

    def is_tombstoned(self, data_id: int) -> bool:
        """True when this layer carries a delete marker for ``data_id``."""
        return data_id in self._tombstones

    def items(self) -> Iterator[tuple[int, Rect]]:
        """All live ``(id, rect)`` pairs (no particular order)."""
        return iter(self._rects.items())

    # -- mutation ----------------------------------------------------------

    def insert(self, data_id: int, rect: Rect) -> None:
        """Upsert ``data_id`` to ``rect`` (replaces any prior mapping)."""
        if rect.ndim != self.ndim:
            raise GeometryError(
                f"rect has {rect.ndim} dims, delta has {self.ndim}")
        data_id = int(data_id)
        old = self._rects.pop(data_id, None)
        if old is not None:
            self._tree.delete(old, data_id)
        self._tree.insert(rect, data_id)
        self._rects[data_id] = rect
        self._tombstones.discard(data_id)
        self._overridden.add(data_id)
        self._arrays = None
        obs.inc("ingest.delta_ops", op="insert")

    def insert_many(self, rects: RectArray,
                    data_ids: Sequence[int]) -> None:
        """Bulk upsert from one shared geometry buffer.

        The fast path (all ids new to this layer) converts the whole
        ``RectArray`` once — one vectorized validation already done by
        the array, one ``tolist`` pass — instead of building numpy
        views and :class:`Rect` wrappers per op; WAL replay on open
        runs through here.
        """
        ids = [int(i) for i in data_ids]
        if len(ids) != len(rects):
            raise IngestError(
                f"{len(ids)} ids for {len(rects)} rects")
        if rects.ndim != self.ndim:
            raise GeometryError(
                f"rects have {rects.ndim} dims, delta has {self.ndim}")
        if (len(set(ids)) == len(ids)
                and not any(i in self._rects for i in ids)):
            pairs = self._tree.insert_many(rects, ids)
            for data_id, rect in pairs:
                self._rects[data_id] = rect
                self._tombstones.discard(data_id)
                self._overridden.add(data_id)
            obs.inc("ingest.delta_ops", len(ids), op="insert")
        else:
            # Duplicate or re-upserted ids: order matters, take the
            # one-op path which handles replacement (and counts).
            for data_id, rect in zip(ids, rects):
                self.insert(data_id, rect)
        self._arrays = None

    def delete(self, data_id: int) -> bool:
        """Tombstone ``data_id``; returns True when this layer itself
        held a live entry for it (base-only ids still tombstone)."""
        data_id = int(data_id)
        old = self._rects.pop(data_id, None)
        if old is not None:
            self._tree.delete(old, data_id)
            self._arrays = None
        self._tombstones.add(data_id)
        self._overridden.add(data_id)
        obs.inc("ingest.delta_ops", op="delete")
        return old is not None

    def apply(self, op: WalOp) -> None:
        """Apply one WAL op (the replay/write entry point)."""
        if op.op == "insert":
            if op.rect is None:
                raise IngestError(f"lsn {op.lsn}: insert without rect")
            self.insert(op.data_id, op.rect)
        elif op.op == "delete":
            self.delete(op.data_id)
        else:
            raise IngestError(f"lsn {op.lsn}: unknown op {op.op!r}")

    def apply_many(self, ops: Iterable[WalOp]) -> int:
        """Replay a stream of ops, batching runs of fresh inserts
        through :meth:`insert_many`; returns how many ops applied."""
        batch_ids: list[int] = []
        batch_rects: list[Rect] = []
        applied = 0

        def flush() -> None:
            if not batch_ids:
                return
            self.insert_many(RectArray.from_rects(batch_rects),
                             batch_ids)
            batch_ids.clear()
            batch_rects.clear()

        for op in ops:
            if (op.op == "insert" and op.rect is not None
                    and op.data_id not in self._rects
                    and op.data_id not in batch_ids):
                batch_ids.append(op.data_id)
                batch_rects.append(op.rect)
            else:
                flush()
                self.apply(op)
            applied += 1
        flush()
        return applied

    # -- queries -----------------------------------------------------------

    def search(self, query: Rect) -> list[int]:
        """Live delta ids intersecting ``query``."""
        return self._tree.search(query)

    def _id_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(ids, los, his)`` arrays over the live entries (cached)."""
        if self._arrays is None:
            n = len(self._rects)
            ids = np.empty(n, dtype=np.int64)
            los = np.empty((n, self.ndim), dtype=np.float64)
            his = np.empty((n, self.ndim), dtype=np.float64)
            for i, (data_id, rect) in enumerate(self._rects.items()):
                ids[i] = data_id
                los[i] = rect.lo
                his[i] = rect.hi
            self._arrays = (ids, los, his)
        return self._arrays

    def knn_candidates(self, point: Sequence[float],
                       exclude: set[int] | frozenset[int] | None = None
                       ) -> list[tuple[int, float]]:
        """``(id, distance)`` for every live entry (minus ``exclude``),
        by vectorized MINDIST — the delta is small, so brute force beats
        maintaining a second spatial index for nearest-neighbour."""
        ids, los, his = self._id_arrays()
        if len(ids) == 0:
            return []
        q = np.asarray([float(c) for c in point], dtype=np.float64)
        if q.shape != (self.ndim,):
            raise GeometryError(
                f"point has {q.shape[0]} dims, delta has {self.ndim}")
        dists = _min_dists(los, his, q)
        out: list[tuple[int, float]] = []
        for data_id, dist in zip(ids.tolist(), dists.tolist()):
            if exclude is None or data_id not in exclude:
                out.append((int(data_id), float(dist)))
        return out
