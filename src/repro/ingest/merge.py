"""Background merge: drain sealed WAL segments into a fresh packed
generation, resumable after SIGKILL at every write boundary.

The merge is a pure function of bytes already durable on disk — the
current packed generation plus the *sealed* WAL segments.  It never
reads the active segment, never appends to the WAL, and never consults
a clock or an RNG (the RL007 lint rule pins the first two, RL001 the
third), so re-running it after any crash reproduces the identical
output file byte for byte.

Recovery protocol, in write order:

1. The new generation is built at a deterministic path
   (``gen-<n>.rt``) through the same durable
   :class:`~repro.storage.store.FilePageStore` + ``commit_meta`` path
   as every other build; a leftover partial file from a killed attempt
   is deleted and rebuilt from scratch — restart-idempotent because
   nothing references the file until step 2.
2. The **commit point** is one atomic publication
   (:func:`~repro.pipeline.staging.atomic_write_bytes`) of the
   generation pointer (``generation.json``), which names the new file
   *and* the highest merged segment/LSN in a single CRC-stamped
   record.  Before the rename the old generation is current and every
   sealed segment is still pending; after it the new generation is
   current and those segments are logically gone.  There is no state
   in between, so an op is never lost and never applied twice: ops are
   last-writer-wins upserts and the pointer moves base and
   drained-segment set together.
3. Cleanup (deleting drained segments and superseded ``gen-*`` files)
   is best-effort after the commit; a crash here leaves garbage that
   the next open or merge sweeps, never wrong answers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..core.geometry import RectArray
from ..core.packing import SortTileRecursive
from ..obs import runtime as obs
from ..pipeline.staging import atomic_write_bytes, check_record_crc, \
    record_crc
from ..rtree.bulk import bulk_load
from ..rtree.paged import PagedRTree
from ..storage.faults import CrashPlan
from ..storage.integrity import TRAILER_SIZE
from ..storage.journal import journal_path
from ..storage.page import required_page_size
from ..storage.store import FilePageStore, SimulatedCrash
from .wal import IngestError, WalSegment, ingest_dir, segment_seq

__all__ = [
    "POINTER_FORMAT",
    "POINTER_NAME",
    "GenerationPointer",
    "MergeReport",
    "generation_path",
    "read_pointer",
    "resolve_current",
    "sweep_drained",
    "merge_segments",
]

#: Format tag of the generation pointer document.
POINTER_FORMAT = "repro-ingest-generation-v1"
#: Filename of the pointer inside the ingest directory.
POINTER_NAME = "generation.json"


@dataclass(frozen=True)
class GenerationPointer:
    """The committed ``(packed generation, drained WAL prefix)`` pair."""

    generation: int
    path: str
    merged_seq: int
    merged_lsn: int


@dataclass(frozen=True)
class MergeReport:
    """What one completed merge did."""

    generation: int
    path: str
    ops_applied: int
    segments_merged: int
    merged_seq: int
    merged_lsn: int
    size: int


def generation_path(dir_path: str, generation: int) -> str:
    """Deterministic on-disk name of packed generation ``generation``."""
    return os.path.join(dir_path, f"gen-{generation:06d}.rt")


def read_pointer(dir_path: str) -> GenerationPointer | None:
    """Load the committed generation pointer, or ``None`` when no merge
    has ever committed.  A present-but-damaged pointer raises
    :class:`~repro.ingest.wal.IngestError` — guessing a base would
    silently double- or un-apply ops."""
    path = os.path.join(dir_path, POINTER_NAME)
    try:
        with open(path, "rb") as f:
            payload = json.load(f)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        raise IngestError(f"{path}: unreadable generation pointer "
                          f"({exc})") from exc
    if (not isinstance(payload, dict)
            or payload.get("format") != POINTER_FORMAT):
        raise IngestError(f"{path}: not a {POINTER_FORMAT} document")
    if not check_record_crc(payload):
        raise IngestError(f"{path}: generation pointer fails its CRC")
    try:
        return GenerationPointer(
            generation=int(payload["generation"]),
            path=str(payload["path"]),
            merged_seq=int(payload["merged_seq"]),
            merged_lsn=int(payload["merged_lsn"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise IngestError(f"{path}: malformed generation pointer "
                          f"({exc})") from exc


def _write_pointer(dir_path: str, pointer: GenerationPointer, *,
                   crash_plan: CrashPlan | None = None) -> None:
    """Atomically publish the pointer — the merge's commit point."""
    record: dict[str, object] = {
        "format": POINTER_FORMAT,
        "generation": pointer.generation,
        "path": pointer.path,
        "merged_seq": pointer.merged_seq,
        "merged_lsn": pointer.merged_lsn,
    }
    record["crc"] = record_crc(record)
    data = (json.dumps(record, indent=2, sort_keys=True) + "\n").encode()
    path = os.path.join(dir_path, POINTER_NAME)
    if crash_plan is not None:
        landed, crash = crash_plan.next_write(data)
        if crash:
            # Model a kill mid-publication: the torn image lands on the
            # *temporary* sibling only — the rename never happens, so
            # the committed pointer is untouched.
            with open(f"{path}.tmp-{os.getpid()}", "wb") as f:
                f.write(landed)
            raise SimulatedCrash("simulated crash writing the "
                                 "generation pointer")
    atomic_write_bytes(path, data)


def resolve_current(tree_path: str | os.PathLike[str]
                    ) -> tuple[str, GenerationPointer | None]:
    """The packed file currently serving ``tree_path``'s logical set.

    Returns ``(path, pointer)`` — the original file when no merge has
    committed, otherwise the pointer's generation file.
    """
    tree_path = os.fspath(tree_path)
    pointer = read_pointer(ingest_dir(tree_path))
    if pointer is None:
        return tree_path, None
    if not os.path.exists(pointer.path):
        raise IngestError(
            f"generation pointer names missing file {pointer.path}")
    return pointer.path, pointer


def sweep_drained(tree_path: str | os.PathLike[str]) -> int:
    """Delete leftovers a crash-after-commit can strand: drained WAL
    segments, superseded generation files, and torn ``*.tmp-*``
    siblings.  Idempotent; returns how many files were removed."""
    tree_path = os.fspath(tree_path)
    dir_path = ingest_dir(tree_path)
    if not os.path.isdir(dir_path):
        return 0
    pointer = read_pointer(dir_path)
    current = pointer.path if pointer is not None else None
    removed = 0
    for name in os.listdir(dir_path):
        full = os.path.join(dir_path, name)
        seq = segment_seq(name)
        stale = False
        if seq is not None:
            stale = pointer is not None and seq <= pointer.merged_seq
        elif ".tmp-" in name:
            stale = True
        elif name.startswith("gen-"):
            keep = {current, f"{current}.journal" if current else None}
            stale = full not in keep
        if stale:
            try:
                os.unlink(full)
                removed += 1
            except OSError:
                # Cleanup is advisory; the next sweep retries.
                continue
    return removed


def _read_base(path: str) -> tuple[dict[int, tuple[tuple[float, ...],
                                                   tuple[float, ...]]],
                                   int, int]:
    """The base generation's logical set as ``{id: (lo, hi)}``, plus
    its ``(ndim, capacity)``."""
    store = FilePageStore.open_existing(path)
    try:
        tree = PagedRTree.from_store(store)
        entries: dict[int, tuple[tuple[float, ...],
                                 tuple[float, ...]]] = {}
        for _, node in tree.iter_level(0):
            los = node.rects.los
            his = node.rects.his
            for i, data_id in enumerate(node.children):
                entries[int(data_id)] = (tuple(los[i]), tuple(his[i]))
        return entries, tree.ndim, tree.capacity
    finally:
        store.close()


def merge_segments(tree_path: str | os.PathLike[str], *,
                   capacity: int | None = None,
                   crash_plan: CrashPlan | None = None
                   ) -> MergeReport | None:
    """Drain every sealed, unmerged WAL segment into a new packed
    generation and commit the cutover.

    Returns ``None`` when there is nothing sealed to merge.  Safe to
    re-run after a kill at any point: either the pointer still names
    the old generation (the build restarts from the same sealed bytes)
    or it names the new one (the segments are already logically
    drained and only cleanup remains).
    """
    tree_path = os.fspath(tree_path)
    dir_path = ingest_dir(tree_path)
    base_path, pointer = resolve_current(tree_path)
    merged_seq = pointer.merged_seq if pointer is not None else 0
    generation = pointer.generation if pointer is not None else 1

    segments: list[WalSegment] = []
    if os.path.isdir(dir_path):
        found: list[tuple[int, str]] = []
        for name in os.listdir(dir_path):
            seq = segment_seq(name)
            if seq is not None and seq > merged_seq:
                found.append((seq, os.path.join(dir_path, name)))
        for _, seg_path in sorted(found):
            segment = WalSegment.load(seg_path)
            if segment.sealed:
                segments.append(segment)
            else:
                break  # the active segment (highest) is never consumed
    if not segments:
        sweep_drained(tree_path)
        return None

    with obs.span("ingest.merge", segments=len(segments)):
        entries, ndim, base_capacity = _read_base(base_path)
        if capacity is None:
            capacity = base_capacity
        ops_applied = 0
        for segment in segments:
            for op in segment.ops:
                if op.op == "insert" and op.rect is not None:
                    entries[op.data_id] = (op.rect.lo, op.rect.hi)
                else:
                    entries.pop(op.data_id, None)
                ops_applied += 1
        if not entries:
            raise IngestError(
                "merge would produce an empty tree; the packed format "
                "cannot represent zero records — keep at least one "
                "record or rebuild from scratch instead")

        ids = np.array(sorted(entries), dtype=np.int64)
        los = np.array([entries[int(i)][0] for i in ids],
                       dtype=np.float64)
        his = np.array([entries[int(i)][1] for i in ids],
                       dtype=np.float64)
        rects = RectArray(los, his, copy=False)

        new_generation = generation + 1
        out_path = generation_path(dir_path, new_generation)
        # A killed previous attempt may have left a partial file (and
        # journal); the rebuild is deterministic, so delete and redo.
        for leftover in (out_path, journal_path(out_path)):
            try:
                os.unlink(leftover)
            except FileNotFoundError:
                pass
        page_size = required_page_size(capacity, ndim) + TRAILER_SIZE
        store = FilePageStore(out_path, page_size, checksums=True,
                              journal=True, crash_plan=crash_plan)
        try:
            tree, _ = bulk_load(rects, SortTileRecursive(),
                                data_ids=ids, capacity=capacity,
                                store=store)
        finally:
            store.close()
        size = len(tree)

        last = segments[-1]
        new_pointer = GenerationPointer(
            generation=new_generation,
            path=out_path,
            merged_seq=last.seq,
            merged_lsn=last.last_lsn,
        )
        _write_pointer(dir_path, new_pointer, crash_plan=crash_plan)
        obs.inc("ingest.merges")
        obs.inc("ingest.merged_ops", ops_applied)

    sweep_drained(tree_path)
    return MergeReport(
        generation=new_generation,
        path=out_path,
        ops_applied=ops_applied,
        segments_merged=len(segments),
        merged_seq=last.seq,
        merged_lsn=last.last_lsn,
        size=size,
    )
