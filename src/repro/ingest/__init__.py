"""Crash-safe streaming ingest: WAL-backed delta tree, packed∪delta
overlay queries, and kill-resumable background re-pack.

The packed trees this repo builds (the paper's STR packing) are
read-only by construction.  This package adds writes without giving
that up: every ``insert``/``delete`` is fsync'd to a write-ahead log
before it is acknowledged (:mod:`~repro.ingest.wal`), applied to a
small in-memory delta layer (:mod:`~repro.ingest.delta`), served as
``packed ∪ delta − tombstones`` (:mod:`~repro.ingest.overlay`), and
eventually re-packed into a fresh generation by a background merge
that survives SIGKILL at every write boundary
(:mod:`~repro.ingest.merge`).  :mod:`~repro.ingest.state` ties the
pieces to the query server.  See ``docs/ingest.md``.
"""

from .delta import DeltaTree
from .merge import (
    GenerationPointer,
    MergeReport,
    generation_path,
    merge_segments,
    read_pointer,
    resolve_current,
    sweep_drained,
)
from .overlay import OverlayResult, OverlaySearcher
from .state import DEFAULT_WAL_LIMIT, IngestState
from .wal import (
    WAL_FORMAT,
    IngestError,
    WalCorrupt,
    WalOp,
    WalSegment,
    WriteAheadLog,
    ingest_dir,
    segment_name,
    segment_seq,
)

__all__ = [
    "DEFAULT_WAL_LIMIT",
    "DeltaTree",
    "GenerationPointer",
    "IngestError",
    "IngestState",
    "MergeReport",
    "OverlayResult",
    "OverlaySearcher",
    "WAL_FORMAT",
    "WalCorrupt",
    "WalOp",
    "WalSegment",
    "WriteAheadLog",
    "generation_path",
    "ingest_dir",
    "merge_segments",
    "read_pointer",
    "resolve_current",
    "segment_name",
    "segment_seq",
    "sweep_drained",
]
