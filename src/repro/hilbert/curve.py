"""Hilbert space-filling curve encoding/decoding.

The Hilbert Sort packing algorithm (Kamel & Faloutsos 1993, the paper's
strongest baseline) orders rectangle centers by their position along the
Hilbert curve.  This module implements the curve itself:

* :func:`hilbert_index` / :func:`hilbert_point` — vectorized n-dimensional
  encode/decode using Skilling's transpose algorithm (J. Skilling,
  "Programming the Hilbert curve", AIP Conf. Proc. 707, 2004).  This is the
  modern formulation of the "sense and rotation tables" the paper cites
  from [6]: both walk the quadrant-refinement hierarchy bit by bit.
* :func:`xy2d` / :func:`d2xy` — the classic scalar 2-D formulation, kept as
  an independently-derived reference used by the test-suite to cross-check
  the vectorized implementation.

Grid coordinates are unsigned integers in ``[0, 2**order)``; the index is an
integer in ``[0, 2**(order*ndim))``.  Indices are returned as ``uint64``
whenever ``order * ndim <= 63`` (always true for the paper's 2-D workloads)
and as Python ints otherwise.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "HilbertError",
    "MAX_UINT64_BITS",
    "hilbert_index",
    "hilbert_point",
    "xy2d",
    "d2xy",
]

MAX_UINT64_BITS = 63


class HilbertError(ValueError):
    """Raised for out-of-range orders or coordinates."""


def _validate(order: int, ndim: int) -> None:
    if ndim < 1:
        raise HilbertError(f"ndim must be >= 1, got {ndim}")
    if order < 1:
        raise HilbertError(f"order must be >= 1, got {order}")
    if order > 62:
        raise HilbertError(f"order {order} exceeds 62-bit coordinate limit")


def _coords_to_transpose(coords: np.ndarray, order: int) -> np.ndarray:
    """Skilling's AxestoTranspose, vectorized over points.

    ``coords`` is ``(n, ndim)`` uint64; returns the transposed Hilbert
    representation with the same shape.  Mutates a copy only.
    """
    x = coords.astype(np.uint64, copy=True)
    n, ndim = x.shape
    m = np.uint64(1) << np.uint64(order - 1)

    # Inverse undo of the excess work in TransposetoAxes.
    q = m
    while q > np.uint64(1):
        p = q - np.uint64(1)
        for i in range(ndim):
            hit = (x[:, i] & q).astype(bool)
            # Where bit set: invert low bits of x[0]; else swap low bits.
            x[hit, 0] ^= p
            t = (x[:, 0] ^ x[:, i]) & p
            t[hit] = np.uint64(0)
            x[:, 0] ^= t
            x[:, i] ^= t
        q >>= np.uint64(1)

    # Gray encode.
    for i in range(1, ndim):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(n, dtype=np.uint64)
    q = m
    while q > np.uint64(1):
        hit = (x[:, ndim - 1] & q).astype(bool)
        t[hit] ^= q - np.uint64(1)
        q >>= np.uint64(1)
    x ^= t[:, None]
    return x


def _transpose_to_coords(x: np.ndarray, order: int) -> np.ndarray:
    """Skilling's TransposetoAxes, vectorized over points."""
    x = x.astype(np.uint64, copy=True)
    n, ndim = x.shape
    m = np.uint64(2) << np.uint64(order - 1)

    # Gray decode by H ^ (H/2).
    t = x[:, ndim - 1] >> np.uint64(1)
    for i in range(ndim - 1, 0, -1):
        x[:, i] ^= x[:, i - 1]
    x[:, 0] ^= t

    # Undo excess work.
    q = np.uint64(2)
    while q != m:
        p = q - np.uint64(1)
        for i in range(ndim - 1, -1, -1):
            hit = (x[:, i] & q).astype(bool)
            x[hit, 0] ^= p
            t2 = (x[:, 0] ^ x[:, i]) & p
            t2[hit] = np.uint64(0)
            x[:, 0] ^= t2
            x[:, i] ^= t2
        q <<= np.uint64(1)
    return x


def _interleave(transpose: np.ndarray, order: int) -> np.ndarray:
    """Pack the transposed form into scalar indices (MSB-first interleave).

    Bit ``b`` (from the top) of dimension ``i`` lands at index-bit position
    ``(order-1-b) * ndim + (ndim-1-i)`` — i.e. dimension 0 contributes the
    most significant bit within each level, exactly Skilling's convention.
    """
    n, ndim = transpose.shape
    out = np.zeros(n, dtype=np.uint64)
    for b in range(order):
        src = np.uint64(order - 1 - b)
        for i in range(ndim):
            bit = (transpose[:, i] >> src) & np.uint64(1)
            dst = np.uint64((order - 1 - b) * ndim + (ndim - 1 - i))
            out |= bit << dst
    return out


def _deinterleave(index: np.ndarray, order: int, ndim: int) -> np.ndarray:
    """Inverse of :func:`_interleave`."""
    n = index.shape[0]
    out = np.zeros((n, ndim), dtype=np.uint64)
    for b in range(order):
        for i in range(ndim):
            src = np.uint64((order - 1 - b) * ndim + (ndim - 1 - i))
            bit = (index >> src) & np.uint64(1)
            out[:, i] |= bit << np.uint64(order - 1 - b)
    return out


def hilbert_index(coords: np.ndarray, order: int, *, ndim: int | None = None) -> np.ndarray:
    """Hilbert index of integer grid coordinates.

    Parameters
    ----------
    coords:
        ``(n, ndim)`` array of non-negative integers ``< 2**order``.
    order:
        Bits of resolution per dimension.

    Returns
    -------
    ``(n,)`` uint64 array of curve positions.  Requires
    ``order * ndim <= 63`` so indices fit in uint64; the float-key helpers in
    :mod:`repro.hilbert.float_key` choose orders accordingly.
    """
    pts = np.asarray(coords)
    if pts.ndim == 1:
        pts = pts[None, :]
    if pts.ndim != 2:
        raise HilbertError("coords must be (n, ndim)")
    k = pts.shape[1] if ndim is None else ndim
    if pts.shape[1] != k:
        raise HilbertError(f"coords have {pts.shape[1]} dims, expected {k}")
    _validate(order, k)
    if order * k > MAX_UINT64_BITS:
        raise HilbertError(
            f"order {order} x ndim {k} = {order * k} bits exceeds uint64; "
            f"reduce order to <= {MAX_UINT64_BITS // k}"
        )
    if np.issubdtype(pts.dtype, np.floating):
        raise HilbertError("coords must be integers (use float_key helpers)")
    pts_u = pts.astype(np.uint64)
    limit = np.uint64(1) << np.uint64(order)
    if (pts_u >= limit).any() or (np.asarray(pts) < 0).any():
        raise HilbertError(f"coordinates must lie in [0, 2**{order})")
    transpose = _coords_to_transpose(pts_u, order)
    return _interleave(transpose, order)


def hilbert_point(index: np.ndarray, order: int, ndim: int) -> np.ndarray:
    """Inverse of :func:`hilbert_index`: grid coordinates for curve positions."""
    _validate(order, ndim)
    if order * ndim > MAX_UINT64_BITS:
        raise HilbertError("order * ndim exceeds uint64 capacity")
    idx = np.asarray(index, dtype=np.uint64)
    scalar = idx.ndim == 0
    idx = np.atleast_1d(idx)
    limit_bits = order * ndim
    if limit_bits < 64 and (idx >= (np.uint64(1) << np.uint64(limit_bits))).any():
        raise HilbertError(f"index out of range for order={order}, ndim={ndim}")
    transpose = _deinterleave(idx, order, ndim)
    coords = _transpose_to_coords(transpose, order)
    return coords[0] if scalar else coords


# ---------------------------------------------------------------------------
# Scalar 2-D reference implementation (independent derivation, used by tests)
# ---------------------------------------------------------------------------


def _rot(n: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    """Rotate/flip a quadrant appropriately (classic 2-D helper)."""
    if ry == 0:
        if rx == 1:
            x = n - 1 - x
            y = n - 1 - y
        x, y = y, x
    return x, y


def xy2d(order: int, x: int, y: int) -> int:
    """Scalar 2-D Hilbert index of grid cell ``(x, y)``.

    The textbook iterative formulation; O(order) per call.  Exists to
    cross-validate :func:`hilbert_index` — production code should use the
    vectorized variant.
    """
    _validate(order, 2)
    n = 1 << order
    if not (0 <= x < n and 0 <= y < n):
        raise HilbertError(f"({x}, {y}) outside [0, {n})^2")
    d = 0
    s = n // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rot(s, x, y, rx, ry)
        s //= 2
    return d


def d2xy(order: int, d: int) -> tuple[int, int]:
    """Scalar inverse of :func:`xy2d`."""
    _validate(order, 2)
    n = 1 << order
    if not (0 <= d < n * n):
        raise HilbertError(f"index {d} outside [0, {n * n})")
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rot(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y
