"""Hilbert keys for floating-point coordinates.

The paper's Hilbert Sort description only covers integer coordinates and
sketches how to extend the method to floats: view each float as its
(exponent, mantissa) bit pattern on a conceptual grid of
``2**(2**sizeof(exp) + sizeof(mantissa))`` cells and compare center points
bit-by-bit until they fall in different sub-quadrants.

Operationally this is equivalent to snapping every center point onto a
sufficiently fine integer grid and comparing the resulting integer Hilbert
indices: two points compare equal only when they share a grid cell, i.e.
when discrimination would have needed more bits than the grid provides.
We implement exactly that, with the grid resolution (``order`` bits per
dimension) as an explicit parameter.  The default of 16 bits resolves
~65k cells per axis — far below any meaningful coordinate difference in the
paper's unit-square datasets, so the truncation never changes an ordering
decision in practice (and the test-suite checks order-stability between 16
and 24 bits on representative data).
"""

from __future__ import annotations

import numpy as np

from ..core.geometry import GeometryError, Rect
from .curve import MAX_UINT64_BITS, HilbertError, hilbert_index

__all__ = [
    "DEFAULT_ORDER",
    "max_order_for_ndim",
    "snap_to_grid",
    "float_hilbert_keys",
]

DEFAULT_ORDER = 16


def max_order_for_ndim(ndim: int) -> int:
    """Largest grid order whose Hilbert index still fits in uint64."""
    if ndim < 1:
        raise HilbertError("ndim must be >= 1")
    return min(62, MAX_UINT64_BITS // ndim)


def snap_to_grid(points: np.ndarray, bounds: Rect, order: int) -> np.ndarray:
    """Map float points in ``bounds`` onto the ``2**order`` integer grid.

    Points are scaled so ``bounds`` spans the full grid; values on the upper
    boundary land in the last cell (the grid is half-open per cell but the
    data MBR is closed).  Points outside ``bounds`` are clamped — callers
    normally pass the dataset MBR so nothing clamps, but query-time use with
    stale bounds degrades gracefully instead of raising.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise GeometryError("points must be (n, k)")
    if pts.shape[1] != bounds.ndim:
        raise GeometryError(
            f"points have {pts.shape[1]} dims, bounds {bounds.ndim}"
        )
    cells = np.uint64(1) << np.uint64(order)
    lo = np.asarray(bounds.lo)
    span = np.asarray(bounds.extents, dtype=np.float64)
    # Degenerate axes (all data on a line) map to cell 0.
    safe_span = np.where(span > 0.0, span, 1.0)
    scaled = (pts - lo) / safe_span
    scaled = np.clip(scaled, 0.0, 1.0)
    grid = np.floor(scaled * float(cells)).astype(np.uint64)
    return np.minimum(grid, cells - np.uint64(1))


def float_hilbert_keys(
    points: np.ndarray, bounds: Rect, *, order: int = DEFAULT_ORDER
) -> np.ndarray:
    """Hilbert sort keys for float points.

    Returns a ``(n,)`` uint64 array; sorting by it realises the paper's
    Hilbert Sort ordering.  ``order`` is capped automatically so the key
    fits in 64 bits for the given dimensionality.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise GeometryError("points must be (n, k)")
    ndim = pts.shape[1]
    capped = min(order, max_order_for_ndim(ndim))
    if capped < 1:
        raise HilbertError(f"no valid order for ndim={ndim}")
    grid = snap_to_grid(pts, bounds, capped)
    return hilbert_index(grid, capped)
