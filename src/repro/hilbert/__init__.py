"""Hilbert space-filling curve substrate for Hilbert Sort packing."""

from .curve import d2xy, hilbert_index, hilbert_point, xy2d
from .float_key import DEFAULT_ORDER, float_hilbert_keys, snap_to_grid

__all__ = [
    "hilbert_index",
    "hilbert_point",
    "xy2d",
    "d2xy",
    "float_hilbert_keys",
    "snap_to_grid",
    "DEFAULT_ORDER",
]
