"""Spans: timed, nested phases of a build or query run.

A span is one timed region — ``str.sort`` over dimension 0, writing one
tree level, replaying one query batch.  Spans nest (the tracer keeps a
stack), record both wall-clock and CPU time, and serialise to JSONL for
offline analysis.  :func:`phase_of` maps the span taxonomy onto the
coarse sort/tile/pack/query phases the timing-breakdown tables report.

The tracer is deliberately not thread-safe: one tracer per worker, merge
the finished span lists afterwards (same rule as the metrics registry).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "phase_of",
    "PHASES",
    "write_spans_jsonl",
    "read_spans_jsonl",
]


#: Coarse phase of each span-name prefix/suffix; see docs/observability.md.
#: ``read``/``decode``/``walk`` split the query path three ways — raw page
#: I/O, page-to-node decoding, and the in-memory tree walk — so the
#: self-time tables answer the ROADMAP's "decode vs walk" question.
PHASES = ("sort", "tile", "pack", "read", "decode", "walk", "query",
          "other")

#: Exact span-name -> phase assignments (checked before the rules below).
_PHASE_EXACT = {
    "hs.key": "sort",
    "extsort.spill": "sort",
    "extsort.merge": "sort",
    "bulk.load": "pack",
    "bulk.build": "pack",
    "bulk.external_load": "pack",
    "bulk.write_level": "pack",
    "pack.order": "pack",
    "query.page_read": "read",
    "query.page_decode": "decode",
    "query.node_walk": "walk",
}


def phase_of(name: str) -> str:
    """Coarse phase (one of :data:`PHASES`) of a span name."""
    exact = _PHASE_EXACT.get(name)
    if exact is not None:
        return exact
    if name.endswith(".sort"):
        return "sort"
    if name.endswith(".tile"):
        return "tile"
    if name.startswith("query."):
        return "query"
    return "other"


@dataclass
class Span:
    """One finished (or in-flight) timed region."""

    name: str
    labels: dict[str, object] = field(default_factory=dict)
    #: Start/end on the wall clock (``time.perf_counter`` seconds).
    start: float = 0.0
    end: float | None = None
    #: Start/end on the process CPU clock (``time.process_time`` seconds).
    cpu_start: float = 0.0
    cpu_end: float | None = None
    #: Nesting depth at start (0 = top level).
    depth: int = 0
    #: Name of the enclosing span, if any.
    parent: str | None = None
    #: Start-order sequence number within the tracer.
    index: int = 0

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def cpu_time(self) -> float:
        """Process CPU seconds (0.0 while still open)."""
        return 0.0 if self.cpu_end is None else self.cpu_end - self.cpu_start

    @property
    def phase(self) -> str:
        return phase_of(self.name)

    def as_dict(self) -> dict:
        """JSON-able record (the JSONL trace line)."""
        return {
            "name": self.name,
            "phase": self.phase,
            "labels": dict(self.labels),
            "start": self.start,
            "duration_s": self.duration,
            "cpu_s": self.cpu_time,
            "depth": self.depth,
            "parent": self.parent,
            "index": self.index,
        }


class Tracer:
    """Collects spans; hand out timed regions with :meth:`span`.

    Finished spans are kept in completion order; ``index`` preserves the
    start order for reconstruction.  The tracer never prints — export is
    :meth:`to_jsonl`, aggregation is :meth:`summary`.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_index = 0

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[Span]:
        """Time a region; nests under whatever span is currently open."""
        parent = self._stack[-1] if self._stack else None
        record = Span(
            name=name,
            labels=labels,
            depth=len(self._stack),
            parent=parent.name if parent is not None else None,
            index=self._next_index,
        )
        self._next_index += 1
        self._stack.append(record)
        record.cpu_start = time.process_time()
        record.start = time.perf_counter()
        try:
            yield record
        finally:
            record.end = time.perf_counter()
            record.cpu_end = time.process_time()
            self._stack.pop()
            self.spans.append(record)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 when idle)."""
        return len(self._stack)

    def summary(self) -> dict[str, dict[str, float]]:
        """Aggregate finished spans by name.

        Returns ``{name: {count, wall_s, cpu_s, phase}}`` — the input to
        :func:`repro.experiments.report.timing_breakdown_table`.  Wall
        time sums *self* time would require subtracting children; since
        the breakdown tables group by phase (where nesting rarely crosses
        phases), plain sums per name are reported and nested names are
        kept distinct.
        """
        agg: dict[str, dict[str, float]] = {}
        for s in self.spans:
            slot = agg.setdefault(
                s.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0,
                         "phase": s.phase}
            )
            slot["count"] += 1
            slot["wall_s"] += s.duration
            slot["cpu_s"] += s.cpu_time
        return agg

    def self_times(self) -> dict[int, tuple[float, float]]:
        """Per-span ``(wall, cpu)`` *self* time, keyed by span index.

        Self time is the span's duration minus the durations of its
        direct children, so summing self times over any partition of the
        spans never double-counts nested regions.
        """
        # Rebuild direct parentage from depth + start order: the parent
        # of a span is the most recent earlier-started span with smaller
        # depth (completion order does not matter).
        ordered = sorted(self.spans, key=lambda s: s.index)
        child_wall: dict[int, float] = {}
        child_cpu: dict[int, float] = {}
        stack: list[Span] = []
        for s in ordered:
            while stack and stack[-1].depth >= s.depth:
                stack.pop()
            if stack:
                parent = stack[-1]
                child_wall[parent.index] = (
                    child_wall.get(parent.index, 0.0) + s.duration
                )
                child_cpu[parent.index] = (
                    child_cpu.get(parent.index, 0.0) + s.cpu_time
                )
            stack.append(s)
        return {
            s.index: (
                max(0.0, s.duration - child_wall.get(s.index, 0.0)),
                max(0.0, s.cpu_time - child_cpu.get(s.index, 0.0)),
            )
            for s in ordered
        }

    def phase_summary(self) -> dict[str, dict[str, float]]:
        """Aggregate *self* time by coarse phase.

        Because each span contributes only the time not covered by its
        children, the phase totals sum exactly to the traced wall time:
        ``sort`` is the time actually inside argsorts, ``pack`` the page
        writing plus packing overhead, ``query`` the search loops.
        """
        selfs = self.self_times()
        agg: dict[str, dict[str, float]] = {}
        for s in self.spans:
            wall, cpu = selfs[s.index]
            slot = agg.setdefault(
                s.phase, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            slot["count"] += 1
            slot["wall_s"] += wall
            slot["cpu_s"] += cpu
        return agg

    # -- lifecycle / export --------------------------------------------------

    def clear(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        self.spans.clear()

    def to_jsonl(self, path_or_file: str | os.PathLike | IO[str]) -> int:
        """Write one JSON object per finished span; returns span count."""
        return write_spans_jsonl(self.spans, path_or_file)


def write_spans_jsonl(spans: Iterable[Span],
                      path_or_file: str | os.PathLike | IO[str]) -> int:
    """Serialise spans as JSONL (one compact object per line)."""
    def _dump(f: IO[str]) -> int:
        n = 0
        for s in spans:
            f.write(json.dumps(s.as_dict(), sort_keys=True))
            f.write("\n")
            n += 1
        return n

    if hasattr(path_or_file, "write"):
        return _dump(path_or_file)  # type: ignore[arg-type]
    with open(os.fspath(path_or_file), "w") as f:  # type: ignore[arg-type]
        return _dump(f)


def read_spans_jsonl(path: str | os.PathLike) -> list[dict]:
    """Load a JSONL trace back as a list of span dicts."""
    out = []
    with open(os.fspath(path)) as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
