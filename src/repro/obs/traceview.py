"""Trace visualisation: span JSONL -> Chrome trace / flamegraph.

A span trace (``*.trace.jsonl``, one JSON object per finished span as
written by :func:`repro.obs.spans.write_spans_jsonl`) is exact but
unreadable at scale.  This module converts it into the two standard
visual formats, with no dependencies beyond the standard library:

* **Chrome trace-event JSON** (``repro report <run> --chrome-trace``):
  a ``{"traceEvents": [...]}`` document of complete (``"ph": "X"``)
  events that loads directly in ``chrome://tracing`` / Perfetto.
  Timestamps are microseconds relative to the earliest span start, so
  the viewer opens at t=0; nesting is positional (a child's interval
  lies inside its parent's), which is exactly how the viewers stack
  events on one thread track.
* **Collapsed-stack ("folded") format** (``--flamegraph``): one line
  per unique span path — ``root;child;leaf <self-µs>`` — consumable by
  ``flamegraph.pl``, speedscope, or any FlameGraph-compatible tool.
  Values are *self* time, so the flame widths never double-count
  nested spans (same rule as :meth:`repro.obs.spans.Tracer.self_times`).

Both converters consume plain span dicts (the JSONL schema), so they
work offline on any stored run without reconstructing ``Span`` objects.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Mapping, Sequence

from .spans import Span

__all__ = [
    "chrome_trace_events",
    "chrome_trace_doc",
    "write_chrome_trace",
    "folded_stacks",
    "write_folded",
    "concat_span_dicts",
]

#: JSON keys every span record must carry for conversion.
_REQUIRED_KEYS = ("name", "start", "duration_s")


def _check_span(record: Mapping[str, Any]) -> None:
    for key in _REQUIRED_KEYS:
        if key not in record:
            raise ValueError(
                f"span record missing {key!r}: {dict(record)!r}"
            )


def concat_span_dicts(groups: Iterable[Sequence[Span]]
                      ) -> list[dict[str, Any]]:
    """Span dicts from several tracers as one coherent stream.

    Each tracer numbers its spans from zero; concatenating raw dumps
    would collide indices and break stack reconstruction.  Re-basing
    every group's ``index`` past the previous group's keeps the
    (index, depth) invariants of a single tracer — valid because the
    groups ran sequentially on one clock, as the bench suite does.
    """
    out: list[dict[str, Any]] = []
    base = 0
    for group in groups:
        top = base
        for span in sorted(group, key=lambda s: s.index):
            record = span.as_dict()
            record["index"] = base + span.index
            top = max(top, record["index"])
            out.append(record)
        base = top + 1
    return out


def chrome_trace_events(spans: Iterable[Mapping[str, Any]]
                        ) -> list[dict[str, Any]]:
    """Spans as Chrome complete (``"ph": "X"``) trace events.

    Events are sorted by timestamp (ties broken longest-first so
    parents precede their children), with ``ts``/``dur`` in integer
    microseconds relative to the earliest span start.  The span's
    coarse phase becomes the event category and its labels (plus CPU
    time) land in ``args``.
    """
    records = list(spans)
    for record in records:
        _check_span(record)
    if not records:
        return []
    t0 = min(float(r["start"]) for r in records)
    events: list[dict[str, Any]] = []
    for r in records:
        args: dict[str, Any] = dict(r.get("labels") or {})
        if "cpu_s" in r:
            args["cpu_s"] = r["cpu_s"]
        events.append({
            "name": str(r["name"]),
            "cat": str(r.get("phase", "other")),
            "ph": "X",
            "ts": round((float(r["start"]) - t0) * 1e6),
            "dur": round(float(r["duration_s"]) * 1e6),
            "pid": 1,
            "tid": 1,
            "args": args,
        })
    events.sort(key=lambda e: (e["ts"], -e["dur"]))
    return events


def chrome_trace_doc(spans: Iterable[Mapping[str, Any]]
                     ) -> dict[str, Any]:
    """The full ``chrome://tracing`` JSON document for a span list."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(spans: Iterable[Mapping[str, Any]],
                       path: str | os.PathLike[str]) -> str:
    """Write the Chrome trace JSON for ``spans``; returns the path."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        json.dump(chrome_trace_doc(spans), f, indent=1, sort_keys=True)
        f.write("\n")
    return path


def _ordered(records: list[Mapping[str, Any]]
             ) -> list[Mapping[str, Any]]:
    """Records in start order (``index`` when present, else ``start``)."""
    if all("index" in r for r in records):
        return sorted(records, key=lambda r: int(r["index"]))
    return sorted(records, key=lambda r: float(r["start"]))


def folded_stacks(spans: Iterable[Mapping[str, Any]]) -> dict[str, int]:
    """Collapsed stacks: ``"a;b;c" -> self-time`` in integer microseconds.

    Direct parentage is rebuilt the same way the tracer does — the
    parent of a span is the most recent earlier-started span with
    smaller ``depth`` — and each path accumulates the wall time its
    spans did *not* spend in children, so the totals over all lines sum
    to the traced wall time (clamped at zero against clock jitter).
    """
    records = [r for r in (list(spans)) if r.get("duration_s") is not None]
    for record in records:
        _check_span(record)
    ordered = _ordered(records)
    child_time: dict[int, float] = {}
    paths: dict[int, str] = {}
    # Stack of (position-in-ordered, depth) for open ancestor spans.
    stack: list[tuple[int, int]] = []
    for pos, r in enumerate(ordered):
        depth = int(r.get("depth", 0))
        while stack and stack[-1][1] >= depth:
            stack.pop()
        name = str(r["name"])
        if stack:
            parent_pos = stack[-1][0]
            child_time[parent_pos] = (
                child_time.get(parent_pos, 0.0) + float(r["duration_s"])
            )
            paths[pos] = f"{paths[parent_pos]};{name}"
        else:
            paths[pos] = name
        stack.append((pos, depth))
    out: dict[str, int] = {}
    for pos, r in enumerate(ordered):
        self_s = float(r["duration_s"]) - child_time.get(pos, 0.0)
        out[paths[pos]] = out.get(paths[pos], 0) + max(
            0, round(self_s * 1e6)
        )
    return out


def write_folded(spans: Iterable[Mapping[str, Any]],
                 path: str | os.PathLike[str]) -> str:
    """Write collapsed-stack lines for ``spans``; returns the path."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        for stack_path, micros in sorted(folded_stacks(spans).items()):
            f.write(f"{stack_path} {micros}\n")
    return path
