"""Ambient telemetry context: one switch, one tracer, one registry.

Instrumented code never imports a concrete tracer; it calls the
module-level helpers here::

    from ..obs import runtime as obs

    with obs.span("str.sort", dim=0):
        ...
    obs.observe("query.accesses", delta, algorithm="STR")

When telemetry is **disabled** (the default) every helper is a cheap
no-op — ``span`` returns a shared null context manager and the metric
helpers return immediately — so instrumentation can live on warm paths
without perturbing the paper's measurements.  The regression test
``tests/test_obs_integration.py`` pins that property: Table 2 numbers
are bit-identical with telemetry on and off, because instrumentation
only ever *reads* the experiment state.

Enable telemetry for a region with :func:`telemetry`::

    with obs.telemetry() as (tracer, registry):
        table = synthetic_tables.table2(config)
    tracer.summary()          # phase timings
    registry.snapshot()       # metric dump

or globally with :func:`enable`/:func:`disable` (the CLI's
``--trace-out`` path).  Nested :func:`telemetry` blocks stack: the inner
block's tracer/registry apply inside, the outer pair is restored on
exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import ContextManager, Iterator, Protocol

from .metrics import MetricsRegistry
from .spans import Span, Tracer


class SupportsAsDict(Protocol):
    """Duck type of ``IOStats`` (a name this module must never import:
    the dependency arrow points storage -> obs, enforced by RL003)."""

    def as_dict(self) -> dict[str, int]:
        """Plain ``{field: count}`` dict of the counters."""
        ...


__all__ = [
    "enable",
    "disable",
    "enabled",
    "telemetry",
    "tracer",
    "registry",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "record_iostats",
]


class _NullSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()

# The ambient stack: (tracer, registry) pairs; empty = disabled.
_stack: list[tuple[Tracer, MetricsRegistry]] = []


def enable(trace: Tracer | None = None,
           metrics: MetricsRegistry | None = None
           ) -> tuple[Tracer, MetricsRegistry]:
    """Turn telemetry on; returns the active ``(tracer, registry)``."""
    pair = (trace if trace is not None else Tracer(),
            metrics if metrics is not None else MetricsRegistry())
    _stack.append(pair)
    return pair


def disable() -> None:
    """Pop the most recent :func:`enable`; no-op when already disabled."""
    if _stack:
        _stack.pop()


def enabled() -> bool:
    """Is any telemetry context active?"""
    return bool(_stack)


@contextmanager
def telemetry(trace: Tracer | None = None,
              metrics: MetricsRegistry | None = None
              ) -> Iterator[tuple[Tracer, MetricsRegistry]]:
    """Enable telemetry for a ``with`` block, restoring state on exit."""
    pair = enable(trace, metrics)
    try:
        yield pair
    finally:
        # Pop *this* pair even if the block enabled/disabled unevenly.
        if pair in _stack:
            while _stack and _stack[-1] is not pair:
                _stack.pop()
            _stack.pop()


def tracer() -> Tracer | None:
    """The active tracer, or ``None`` when disabled."""
    return _stack[-1][0] if _stack else None


def registry() -> MetricsRegistry | None:
    """The active metrics registry, or ``None`` when disabled."""
    return _stack[-1][1] if _stack else None


def span(name: str, **labels: object) -> ContextManager[Span | None]:
    """A timed region under the active tracer; no-op when disabled."""
    if not _stack:
        return _NULL_SPAN
    return _stack[-1][0].span(name, **labels)


def inc(name: str, amount: int = 1, **labels: object) -> None:
    """Increment a counter in the active registry; no-op when disabled."""
    if _stack:
        _stack[-1][1].counter(name, **labels).inc(amount)


def observe(name: str, value: float, **labels: object) -> None:
    """Observe into a histogram in the active registry; no-op when off."""
    if _stack:
        _stack[-1][1].histogram(name, **labels).observe(value)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge in the active registry; no-op when disabled."""
    if _stack:
        _stack[-1][1].gauge(name, **labels).set(value)


def record_iostats(stats: SupportsAsDict, prefix: str,
                   **labels: object) -> None:
    """Fold an :class:`~repro.storage.counters.IOStats` total into the
    active registry as ``<prefix>.<field>`` counters.

    Components keep their own private ``IOStats`` on the hot path (so
    per-searcher accounting stays isolated and the measured counts are
    untouched); at batch boundaries the totals are added here.  No-op
    when telemetry is disabled.
    """
    if not _stack:
        return
    reg = _stack[-1][1]
    for field_name, value in stats.as_dict().items():
        reg.counter(f"{prefix}.{field_name}", **labels).inc(value)
