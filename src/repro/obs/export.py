"""File export helpers for telemetry artefacts.

Span JSONL serialisation itself lives next to the span type
(:func:`repro.obs.spans.write_spans_jsonl`); this module adds the
registry/metrics writers and the path conventions the CLI uses so that
``profile`` runs land in predictable places under ``results/runs/``.
"""

from __future__ import annotations

import json
import os

from .manifest import DEFAULT_RUN_DIR, RunManifest
from .metrics import MetricsRegistry
from .spans import Tracer

__all__ = [
    "RUN_EXTENSIONS",
    "write_metrics_json",
    "write_trace_jsonl",
    "default_trace_path",
    "default_metrics_path",
    "unique_run_stem",
]

#: Extensions a run may produce; a stem is free only if all are free.
#: ``.chrome.json``/``.folded`` are the trace-visualisation exports and
#: ``.bench.json`` the benchmark document — reserving them here means a
#: run's artefacts can never be torn across two stems.
RUN_EXTENSIONS = (".json", ".trace.jsonl", ".metrics.json",
                  ".chrome.json", ".folded", ".bench.json")

#: Backwards-compatible alias (pre-report-CLI name).
_RUN_EXTENSIONS = RUN_EXTENSIONS


def unique_run_stem(manifest: RunManifest,
                    out_dir: str | os.PathLike = DEFAULT_RUN_DIR) -> str:
    """A file stem no existing run artefact in ``out_dir`` uses.

    Two runs of the same experiment within one second share
    :meth:`RunManifest.file_stem`; suffixing the *stem* (rather than each
    file independently) keeps a run's manifest, trace and metrics files
    together under one name.
    """
    out_dir = os.fspath(out_dir)
    base = manifest.file_stem()
    stem, n = base, 0
    while any(os.path.exists(os.path.join(out_dir, stem + ext))
              for ext in _RUN_EXTENSIONS):
        n += 1
        stem = f"{base}-{n}"
    return stem


def write_metrics_json(registry: MetricsRegistry,
                       path: str | os.PathLike) -> str:
    """Dump a registry snapshot as pretty-printed JSON; returns the path."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        json.dump(registry.snapshot(), f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def write_trace_jsonl(tracer: Tracer, path: str | os.PathLike) -> str:
    """Write the tracer's finished spans as JSONL; returns the path."""
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tracer.to_jsonl(path)
    return path


def default_trace_path(manifest: RunManifest,
                       out_dir: str | os.PathLike = DEFAULT_RUN_DIR) -> str:
    """``<out_dir>/<experiment>-<stamp>.trace.jsonl`` for this run."""
    return os.path.join(os.fspath(out_dir),
                        f"{manifest.file_stem()}.trace.jsonl")


def default_metrics_path(manifest: RunManifest,
                         out_dir: str | os.PathLike = DEFAULT_RUN_DIR
                         ) -> str:
    """``<out_dir>/<experiment>-<stamp>.metrics.json`` for this run."""
    return os.path.join(os.fspath(out_dir),
                        f"{manifest.file_stem()}.metrics.json")
