"""Unified observability: spans, metrics, and run manifests.

The paper's whole argument is carried by one observable — mean disk
accesses per query through an LRU buffer — and this package makes that
(and everything around it: where build time goes, what the buffer pool
did, how long each phase ran) first-class:

* :mod:`~repro.obs.spans` — nested timed regions with wall/CPU clocks
  and JSONL export (``str.sort``, ``bulk.write_level``, ``query.batch``);
* :mod:`~repro.obs.metrics` — a registry of named counters, gauges and
  histograms that backs :class:`~repro.storage.counters.IOStats` and
  absorbs buffer-pool and per-query statistics;
* :mod:`~repro.obs.runtime` — the ambient on/off switch: instrumented
  code calls ``obs.span(...)``/``obs.observe(...)`` and pays ~nothing
  while telemetry is disabled (the default);
* :mod:`~repro.obs.manifest` — one JSON record per experiment run
  (config, git SHA, timings, metric snapshot) under ``results/runs/``;
* :mod:`~repro.obs.export` — file writers and path conventions;
* :mod:`~repro.obs.traceview` — span JSONL to Chrome trace-event JSON
  and collapsed-stack flamegraph conversion (``repro report``).

Quick use::

    from repro import obs

    with obs.telemetry() as (tracer, registry):
        tree, report = bulk_load(rects, SortTileRecursive())
    print(tracer.phase_summary())

Telemetry never changes what is measured: counters of record (disk
accesses) are kept by the components themselves and only *copied* into
the registry at batch boundaries.  See ``docs/observability.md``.
"""

from .manifest import (
    DEFAULT_RUN_DIR,
    MANIFEST_FORMAT,
    RunManifest,
    git_sha,
    load_manifest,
    write_manifest,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    percentile,
)
from .slo import RollingWindow, SloReport, SloTarget
from .runtime import (
    disable,
    enable,
    enabled,
    inc,
    observe,
    record_iostats,
    registry,
    set_gauge,
    span,
    telemetry,
    tracer,
)
from .spans import (
    PHASES,
    Span,
    Tracer,
    phase_of,
    read_spans_jsonl,
    write_spans_jsonl,
)
from .export import (
    RUN_EXTENSIONS,
    default_metrics_path,
    default_trace_path,
    unique_run_stem,
    write_metrics_json,
    write_trace_jsonl,
)
from .traceview import (
    chrome_trace_doc,
    chrome_trace_events,
    concat_span_dicts,
    folded_stacks,
    write_chrome_trace,
    write_folded,
)

__all__ = [
    # spans
    "Span",
    "Tracer",
    "phase_of",
    "PHASES",
    "write_spans_jsonl",
    "read_spans_jsonl",
    # metrics
    "MetricsError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    # slo
    "RollingWindow",
    "SloTarget",
    "SloReport",
    # runtime
    "enable",
    "disable",
    "enabled",
    "telemetry",
    "tracer",
    "registry",
    "span",
    "inc",
    "observe",
    "set_gauge",
    "record_iostats",
    # manifests
    "MANIFEST_FORMAT",
    "DEFAULT_RUN_DIR",
    "RunManifest",
    "git_sha",
    "write_manifest",
    "load_manifest",
    # export
    "RUN_EXTENSIONS",
    "write_metrics_json",
    "write_trace_jsonl",
    "default_trace_path",
    "default_metrics_path",
    "unique_run_stem",
    # trace visualisation
    "chrome_trace_events",
    "chrome_trace_doc",
    "write_chrome_trace",
    "folded_stacks",
    "write_folded",
    "concat_span_dicts",
]
