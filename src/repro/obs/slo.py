"""Latency SLO helpers: rolling percentile windows and targets.

The serving layer promises a latency objective over the ``query.latency_s``
distribution.  Two small pieces make that checkable at runtime:

* :class:`RollingWindow` — a bounded window of the most recent
  observations.  Unlike :class:`~repro.obs.metrics.Histogram` (which keeps
  every sample of a finite experiment), a long-lived server needs *rolling*
  p50/p99 that reflect recent traffic, not its entire uptime.
* :class:`SloTarget` — declarative thresholds (``p50_s``/``p99_s``)
  evaluated against any sample source; the result is a JSON-able
  :class:`SloReport` that health endpoints embed verbatim.

Both are import-light and thread-friendly: ``deque.append`` is atomic, so
executor threads observe without locks and readers snapshot consistently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from .metrics import percentile

__all__ = ["RollingWindow", "SloTarget", "SloReport"]


class RollingWindow:
    """The most recent ``maxlen`` observations of a streaming quantity."""

    def __init__(self, maxlen: int = 1024) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._values: deque[float] = deque(maxlen=maxlen)
        self.total_observed = 0

    def observe(self, value: float) -> None:
        """Record one sample (the oldest falls out when the window is full)."""
        self._values.append(float(value))
        self.total_observed += 1

    def __len__(self) -> int:
        return len(self._values)

    def values(self) -> list[float]:
        """A consistent copy of the current window."""
        return list(self._values)

    def percentile(self, q: float) -> float:
        """Exact q-th percentile of the window; NaN when empty."""
        return percentile(self.values(), q)

    def summary(self) -> dict:
        """JSON-able rolling summary (count/window/p50/p99/max)."""
        values = self.values()
        out: dict = {
            "total_observed": self.total_observed,
            "window": len(values),
        }
        if values:
            out["p50"] = percentile(values, 50.0)
            out["p99"] = percentile(values, 99.0)
            out["max"] = max(values)
        return out


@dataclass(frozen=True)
class SloReport:
    """Outcome of checking one :class:`SloTarget` against samples."""

    ok: bool
    count: int
    p50: float
    p99: float
    violations: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        """JSON-able form (embedded in health payloads)."""
        return {
            "ok": self.ok,
            "count": self.count,
            "p50": self.p50,
            "p99": self.p99,
            "violations": list(self.violations),
        }


@dataclass(frozen=True)
class SloTarget:
    """Latency objective: percentile thresholds in seconds (None = unset)."""

    p50_s: float | None = None
    p99_s: float | None = None

    def evaluate(self, samples: "RollingWindow | Sequence[float] | Iterable[float]"
                 ) -> SloReport:
        """Check the target against a window, histogram, or sample list.

        An empty sample set is vacuously ``ok`` (the server just started);
        percentiles are NaN in that case.
        """
        if isinstance(samples, RollingWindow):
            values = samples.values()
        elif hasattr(samples, "values") and not isinstance(samples, (list, tuple)):
            # A metrics Histogram: .values is the raw sample list.
            raw = samples.values
            values = list(raw() if callable(raw) else raw)
        else:
            values = list(samples)
        p50 = percentile(values, 50.0)
        p99 = percentile(values, 99.0)
        violations = []
        if values:
            if self.p50_s is not None and p50 > self.p50_s:
                violations.append(
                    f"p50 {p50:.6f}s exceeds target {self.p50_s:.6f}s"
                )
            if self.p99_s is not None and p99 > self.p99_s:
                violations.append(
                    f"p99 {p99:.6f}s exceeds target {self.p99_s:.6f}s"
                )
        return SloReport(ok=not violations, count=len(values),
                        p50=p50, p99=p99, violations=tuple(violations))
