"""Run manifests: one JSON record per experiment invocation.

A manifest captures everything needed to interpret (and re-run) one
experiment: the experiment name, the resolved configuration, the git
revision of the code, wall-clock duration, the tracer's per-span and
per-phase timing summaries, and a full metrics-registry snapshot.  The
CLI drops them under ``results/runs/`` so a directory of manifests *is*
the lab notebook — ``experiments/report.py`` renders them back into
timing tables, and future dashboards can diff them across commits.

Schema (``format`` = ``repro-run-manifest-v1``)::

    {
      "format":      "repro-run-manifest-v1",
      "experiment":  "table2",
      "created_utc": "2026-08-06T12:00:00+00:00",
      "git_sha":     "abc123..."  | null,
      "argv":        ["profile", "table2", "--quick"],
      "config":      {...ExperimentConfig fields...},
      "duration_s":  12.3,
      "spans":       {name: {count, wall_s, cpu_s, phase}},
      "phases":      {phase: {count, wall_s, cpu_s}},
      "metrics":     {name: [{kind, labels, value}]},
      "outputs":     {"trace_jsonl": "path" | null, ...},
      "extra":       {...free-form...}
    }
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .metrics import MetricsRegistry
    from .spans import Tracer

__all__ = [
    "MANIFEST_FORMAT",
    "DEFAULT_RUN_DIR",
    "RunManifest",
    "git_sha",
    "write_manifest",
    "load_manifest",
]

MANIFEST_FORMAT = "repro-run-manifest-v1"

#: Where the CLI writes manifests unless told otherwise.
DEFAULT_RUN_DIR = os.path.join("results", "runs")


def git_sha(cwd: str | os.PathLike | None = None) -> str | None:
    """The current git commit SHA, or ``None`` outside a repo / no git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.fspath(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _config_dict(config: object) -> dict:
    """An ExperimentConfig (or any dataclass/dict) as a JSON-able dict.

    Normalised through a JSON round trip so the in-memory manifest equals
    the manifest reloaded from disk (tuples become lists, etc.).
    """
    if config is None:
        return {}
    if isinstance(config, dict):
        out = dict(config)
    elif dataclasses.is_dataclass(config):
        out = dataclasses.asdict(config)
    else:
        out = {"repr": repr(config)}
    return json.loads(json.dumps(out))


@dataclass
class RunManifest:
    """The machine-readable record of one experiment invocation."""

    experiment: str
    created_utc: str = ""
    git_sha: str | None = None
    argv: list[str] = field(default_factory=list)
    config: dict = field(default_factory=dict)
    duration_s: float = 0.0
    spans: dict = field(default_factory=dict)
    phases: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    outputs: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.created_utc:
            self.created_utc = datetime.now(timezone.utc).isoformat()

    @classmethod
    def collect(cls, experiment: str, *, config: object = None,
                argv: list[str] | None = None, duration_s: float = 0.0,
                tracer: "Tracer | None" = None,
                registry: "MetricsRegistry | None" = None,
                outputs: dict | None = None,
                extra: dict | None = None) -> "RunManifest":
        """Assemble a manifest from live telemetry objects."""
        return cls(
            experiment=experiment,
            git_sha=git_sha(),
            argv=list(argv) if argv else [],
            config=_config_dict(config),
            duration_s=float(duration_s),
            spans=tracer.summary() if tracer is not None else {},
            phases=tracer.phase_summary() if tracer is not None else {},
            metrics=registry.snapshot() if registry is not None else {},
            outputs=dict(outputs) if outputs else {},
            extra=dict(extra) if extra else {},
        )

    def as_dict(self) -> dict:
        """The manifest as a JSON-able dict, ``format`` key included."""
        out = {"format": MANIFEST_FORMAT}
        out.update(dataclasses.asdict(self))
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        if data.get("format") != MANIFEST_FORMAT:
            raise ValueError(
                f"not a {MANIFEST_FORMAT} record "
                f"(format={data.get('format')!r})"
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})

    def file_stem(self) -> str:
        """``<experiment>-<UTC timestamp>`` (filesystem-safe)."""
        stamp = (self.created_utc.replace(":", "").replace("-", "")
                 .split(".")[0].split("+")[0])
        return f"{self.experiment}-{stamp}"


def write_manifest(manifest: RunManifest,
                   out_dir: str | os.PathLike = DEFAULT_RUN_DIR, *,
                   stem: str | None = None) -> str:
    """Write ``<out_dir>/<experiment>-<stamp>.json``; returns the path.

    The directory is created on demand; a name collision (two runs in
    the same second) gets a numeric suffix rather than clobbering.
    Callers that write sibling artefacts (trace, metrics) pass a
    pre-reserved ``stem`` so every file of one run shares a name — see
    :func:`repro.obs.export.unique_run_stem`.
    """
    out_dir = os.fspath(out_dir)
    os.makedirs(out_dir, exist_ok=True)
    stem = stem if stem is not None else manifest.file_stem()
    path = os.path.join(out_dir, f"{stem}.json")
    n = 1
    while os.path.exists(path):
        path = os.path.join(out_dir, f"{stem}-{n}.json")
        n += 1
    with open(path, "w") as f:
        json.dump(manifest.as_dict(), f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def load_manifest(path: str | os.PathLike) -> RunManifest:
    """Read a manifest JSON back into a :class:`RunManifest`."""
    with open(os.fspath(path)) as f:
        return RunManifest.from_dict(json.load(f))
