"""Metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` is the single sink every component reports
into — the buffer pool's hit/miss/eviction counts, the page stores' read
and write traffic (via the :class:`~repro.storage.counters.IOStats`
façade, which is backed by counters from a registry), per-query latency
and access histograms, and tree-shape gauges.  Experiments snapshot the
registry into run manifests; parallel or per-shard registries fold back
together with :meth:`MetricsRegistry.merge`.

Design rules
------------
* A metric is identified by ``(name, labels)``; asking for the same pair
  twice returns the *same* object, so call sites never need to cache.
* Metric names are dotted paths (``io.disk_reads``, ``query.latency_s``)
  — the taxonomy lives in ``docs/observability.md``.
* Snapshots are plain JSON-able dicts; no export library is required.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence, TypeVar, Union

#: Any concrete instrument (they share the name/labels/kind shape but
#: no base class — __slots__ classes stay lean on the hot path).
Metric = Union["Counter", "Gauge", "Histogram"]

_M = TypeVar("_M", "Counter", "Gauge", "Histogram")

__all__ = [
    "MetricsError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Exact q-th percentile of ``values`` (linear interpolation).

    NaN when ``values`` is empty; shared by :class:`Histogram` and the
    rolling-window SLO helpers in :mod:`repro.obs.slo`.
    """
    if not values:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise MetricsError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

#: A labels mapping frozen into a hashable, order-insensitive key.
LabelKey = tuple[tuple[str, object], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted(labels.items()))


class MetricsError(RuntimeError):
    """Raised on metric type conflicts or malformed names."""


class Counter:
    """A monotonically increasing count (resettable between runs)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, object]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (negative increments are rejected)."""
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r}: negative increment {amount}"
            )
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def snapshot_value(self) -> int:
        """The current count."""
        return self.value

    def merge_from(self, other: "Counter") -> None:
        """Add the other counter's count into this one."""
        self.value += other.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.labels!r}, value={self.value})"


class Gauge:
    """A point-in-time value (tree height, pages, buffer capacity...)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, object]) -> None:
        self.name = name
        self.labels = labels
        self.value: float | int | None = None

    def set(self, value: float | int) -> None:
        """Record the current value."""
        self.value = value

    def reset(self) -> None:
        """Forget the value (back to never-set)."""
        self.value = None

    def snapshot_value(self) -> float | int | None:
        """The last value set, or ``None`` if never set."""
        return self.value

    def merge_from(self, other: "Gauge") -> None:
        """Take the other gauge's value when it has one."""
        # Last writer wins; a never-set gauge does not clobber a set one.
        if other.value is not None:
            self.value = other.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.labels!r}, value={self.value})"


class Histogram:
    """A distribution of observed values.

    Raw observations are kept (experiment scale is thousands of samples,
    not billions), so any percentile is exact and merging two histograms
    is concatenation.  Snapshots report the summary statistics only.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "values")

    #: Percentiles included in every snapshot.
    SNAPSHOT_PERCENTILES = (50.0, 90.0, 99.0)

    def __init__(self, name: str, labels: dict[str, object]) -> None:
        self.name = name
        self.labels = labels
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.values.append(float(value))

    def reset(self) -> None:
        """Drop all samples."""
        self.values = []

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Exact sum of all samples."""
        return math.fsum(self.values)

    @property
    def mean(self) -> float:
        """Sample mean; NaN when empty."""
        if not self.values:
            return float("nan")
        return self.total / len(self.values)

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (linear interpolation); NaN when empty."""
        return percentile(self.values, q)

    def snapshot_value(self) -> dict[str, float | int]:
        """Summary stats (count/sum/mean/min/max/p50/p90/p99)."""
        if not self.values:
            return {"count": 0}
        summary: dict[str, float | int] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": min(self.values),
            "max": max(self.values),
        }
        for q in self.SNAPSHOT_PERCENTILES:
            summary[f"p{q:g}"] = self.percentile(q)
        return summary

    def merge_from(self, other: "Histogram") -> None:
        """Concatenate the other histogram's samples into this one."""
        self.values.extend(other.values)

    def __repr__(self) -> str:
        return (f"Histogram({self.name!r}, {self.labels!r}, "
                f"count={self.count})")


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """Get-or-create home for every metric of one run (or one component).

    The registry is deliberately tiny: components ask for a metric by
    name + labels, increment/observe it, and the experiment layer calls
    :meth:`snapshot` once at the end.  Two registries (e.g. per parallel
    shard) combine with :meth:`merge`.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Metric] = {}

    # -- get-or-create -------------------------------------------------------

    def _get(self, cls: type[_M], name: str,
             labels: dict[str, object]) -> _M:
        if not name:
            raise MetricsError("metric name must be non-empty")
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise MetricsError(
                f"metric {name!r}{labels!r} already registered as "
                f"{metric.kind}, requested as {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        return self._get(Histogram, name, labels)

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator:
        return iter(self._metrics.values())

    def names(self) -> list[str]:
        """Sorted distinct metric names."""
        return sorted({name for name, _ in self._metrics})

    def get(self, name: str, **labels: object) -> "Metric | None":
        """The existing metric for ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Zero every registered metric (the metrics stay registered)."""
        for metric in self._metrics.values():
            metric.reset()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Counters add, gauges take the other side's value when set,
        histograms concatenate observations.  Type conflicts raise.
        """
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                mine = self._get(type(metric), metric.name, metric.labels)
            elif type(mine) is not type(metric):
                raise MetricsError(
                    f"cannot merge {metric.kind} into {mine.kind} "
                    f"for {metric.name!r}"
                )
            mine.merge_from(metric)

    def snapshot(self) -> dict:
        """JSON-able dump: ``{name: [{labels, kind, value}, ...]}``.

        Metrics with no labels collapse their list entry's ``labels`` to
        ``{}``; the list is sorted by label key so snapshots are stable.
        """
        out: dict[str, list[dict]] = {}
        for (name, _), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            out.setdefault(name, []).append({
                "kind": metric.kind,
                "labels": dict(metric.labels),
                "value": metric.snapshot_value(),
            })
        return out

    def as_dict(self) -> dict:
        """Alias for :meth:`snapshot` (the manifest writer's spelling)."""
        return self.snapshot()

    # -- cross-process transport ---------------------------------------------

    def to_jsonable(self) -> list[dict]:
        """Lossless JSON-able dump, unlike :meth:`snapshot` which
        summarises histograms.

        Used to ship a per-shard registry across a process boundary
        (worker ``done`` records) so the orchestrator can :meth:`merge`
        it with full fidelity — merged percentiles stay exact because
        the raw histogram samples travel too.
        """
        out = []
        for (name, _), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            entry: dict = {"name": name, "kind": metric.kind,
                           "labels": dict(metric.labels)}
            if metric.kind == "histogram":
                entry["values"] = list(metric.values)
            else:
                entry["value"] = metric.snapshot_value()
            out.append(entry)
        return out

    @classmethod
    def from_jsonable(cls, dump: list[dict]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_jsonable` output."""
        registry = cls()
        for entry in dump:
            try:
                kind = _KINDS[entry["kind"]]
                metric = registry._get(kind, entry["name"],
                                       dict(entry["labels"]))
                if kind is Histogram:
                    metric.values.extend(float(v) for v in entry["values"])
                elif kind is Counter:
                    metric.value = int(entry["value"])
                elif entry["value"] is not None:
                    metric.value = entry["value"]
            except (KeyError, TypeError, ValueError) as exc:
                raise MetricsError(
                    f"malformed metrics dump entry {entry!r}: {exc}"
                ) from exc
        return registry
