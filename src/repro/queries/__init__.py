"""Query workload generators (paper Section 3 / Section 4.4)."""

from .workloads import (
    PAPER_QUERY_COUNT,
    REGION_SIDE_1PCT,
    REGION_SIDE_9PCT,
    QueryWorkload,
    point_queries,
    region_queries,
    workload_for,
)

__all__ = [
    "QueryWorkload",
    "point_queries",
    "region_queries",
    "workload_for",
    "PAPER_QUERY_COUNT",
    "REGION_SIDE_1PCT",
    "REGION_SIDE_9PCT",
]
