"""Query workloads exactly as Section 3 (and 4.4) of the paper defines.

Point queries
    Uniformly distributed points in the query window (the unit square for
    synthetic/GIS/VLSI; the (0.48, 0.48)-(0.6, 0.6) box for CFD).

Region queries
    The lower-left corner is uniform in the window; the upper-right corner
    adds a fixed side ``e`` to both coordinates (``e = 0.1`` for queries
    covering 1% of the unit square, ``0.3`` for 9%) and any coordinate
    exceeding the window's upper bound is *clamped* — so queries near the
    top/right edges are smaller, exactly as the paper specifies.

Every experiment in the paper runs 2,000 queries; that default lives in
:data:`PAPER_QUERY_COUNT`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.geometry import Rect, RectArray, unit_square

__all__ = [
    "PAPER_QUERY_COUNT",
    "REGION_SIDE_1PCT",
    "REGION_SIDE_9PCT",
    "QueryWorkload",
    "point_queries",
    "region_queries",
    "workload_for",
]

#: Queries per experiment in the paper.
PAPER_QUERY_COUNT = 2_000

#: Region query side lengths: 1% and 9% of the unit square.
REGION_SIDE_1PCT = 0.1
REGION_SIDE_9PCT = 0.3


@dataclass(frozen=True)
class QueryWorkload:
    """An immutable batch of rectangle queries.

    ``kind`` is a human-readable label used in reports ("point",
    "region 1%", ...).  Iterating yields :class:`Rect` queries.
    """

    kind: str
    rects: RectArray

    def __len__(self) -> int:
        return len(self.rects)

    def __iter__(self) -> Iterator[Rect]:
        return iter(self.rects)

    @property
    def window_area(self) -> float:
        """Mean query area (diagnostic; clamping shrinks edge queries)."""
        return float(self.rects.areas().mean())


def point_queries(count: int = PAPER_QUERY_COUNT, *, seed: int = 1,
                  window: Rect | None = None) -> QueryWorkload:
    """Uniform point queries in ``window`` (default: unit square)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    win = window if window is not None else unit_square()
    rng = np.random.default_rng(seed)
    lo = np.asarray(win.lo)
    span = np.asarray(win.extents)
    pts = lo + rng.random((count, win.ndim)) * span
    return QueryWorkload(kind="point", rects=RectArray(pts, pts))


def region_queries(side: float, count: int = PAPER_QUERY_COUNT, *,
                   seed: int = 2, window: Rect | None = None,
                   kind: str | None = None) -> QueryWorkload:
    """Square region queries of side ``side``, clamped to ``window``.

    With the default unit-square window, ``side=0.1`` reproduces the
    paper's 1%-of-space queries and ``side=0.3`` the 9% ones.  For the CFD
    experiments pass the restricted window and the reduced sides (0.01 /
    0.03); clamping then truncates at the window bound (0.6), as in
    Section 4.4.
    """
    if side <= 0:
        raise ValueError("side must be > 0")
    if count < 1:
        raise ValueError("count must be >= 1")
    win = window if window is not None else unit_square()
    rng = np.random.default_rng(seed)
    lo_bound = np.asarray(win.lo)
    hi_bound = np.asarray(win.hi)
    span = np.asarray(win.extents)
    lower = lo_bound + rng.random((count, win.ndim)) * span
    upper = np.minimum(lower + side, hi_bound)
    label = kind if kind is not None else f"region side={side:g}"
    return QueryWorkload(kind=label, rects=RectArray(lower, upper))


def workload_for(name: str, *, count: int = PAPER_QUERY_COUNT, seed: int = 1,
                 window: Rect | None = None) -> QueryWorkload:
    """Paper workloads by name: ``point``, ``region1`` (1%), ``region9`` (9%).

    For a restricted window the region sides scale with the window extent
    so "1%"/"9%" keep their meaning relative to the window — this
    reproduces the paper's CFD setup, where sides 0.01/0.03 in a 0.12-wide
    window "roughly correspond to the 1% and 9% of the data region used in
    the other experiments".
    """
    win = window if window is not None else unit_square()
    scale = min(win.extents)
    key = name.strip().lower()
    if key == "point":
        return point_queries(count, seed=seed, window=win)
    if key in ("region1", "1%", "region-1pct"):
        return region_queries(REGION_SIDE_1PCT * scale, count, seed=seed,
                              window=win, kind="region 1%")
    if key in ("region9", "9%", "region-9pct"):
        return region_queries(REGION_SIDE_9PCT * scale, count, seed=seed,
                              window=win, kind="region 9%")
    raise ValueError(
        f"unknown workload {name!r}; choose point / region1 / region9"
    )
