"""Command-line interface: regenerate any paper table or figure.

Examples
--------
Run the quick profile of Table 2::

    python -m repro table2 --quick

Paper-exact Table 5 with CSV output::

    python -m repro table5 --csv > table5.csv

Emit the Figure 2-4 SVG plots into a directory::

    python -m repro fig234 --out-dir figures/

Profile an experiment — phase timing breakdown, JSONL span trace and a
run manifest under ``results/runs/``::

    python -m repro profile table2 --quick

Any experiment can also emit telemetry without the breakdown table::

    python -m repro table5 --trace-out t5.trace.jsonl --metrics-out t5.json

Build a durable tree across worker processes, survive a ``kill -9``::

    python -m repro build tree.rt --size 1000000 --workers 8
    python -m repro build tree.rt --size 1000000 --workers 8 --resume

Check a file offline, then serve it with live generation reloads::

    python -m repro fsck tree.rt
    python -m repro serve tree.rt --allow-reload

Statically check the determinism/durability/async contracts::

    python -m repro lint
    python -m repro lint src/repro/serve --format json

Run the pinned performance suite and diff against the committed
baseline (see ``docs/benchmarking.md``)::

    python -m repro bench --quick --out /tmp/bench.json
    python -m repro report --diff BENCH_linux-x86_64.json /tmp/bench.json

Re-render stored runs, export traces, enforce retention::

    python -m repro report
    python -m repro report bench-20260807T104411
    python -m repro report bench-20260807T104411 --chrome-trace out.json
    python -m repro report bench-20260807T104411 --flamegraph out.folded
    python -m repro report --prune --keep 20

List everything available::

    python -m repro list
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable

from . import obs
from .experiments import cfd_tables, gis_tables, synthetic_tables, vlsi_tables
from .experiments.config import DEFAULT_CONFIG, ExperimentConfig
from .experiments.report import Series, Table, timing_breakdown_table

__all__ = ["main", "EXPERIMENTS"]


def _series_table(name: str, series: list[Series]) -> Table:
    """Render figure series as a three-column table for the terminal."""
    table = Table(title=name, columns=("series", "x", "y"))
    for line in series:
        for label, x, y in line.as_table_rows():
            table.add_row(label, x, y)
    return table


# name -> (callable(config) -> Table | list[Series] | dict[str, str], help)
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "table1": (synthetic_tables.table1,
               "percent of R-tree held by buffer (synthetic)"),
    "table2": (synthetic_tables.table2,
               "disk accesses, synthetic data, buffer=10"),
    "table3": (synthetic_tables.table3,
               "disk accesses, synthetic data, buffer=250"),
    "table4": (synthetic_tables.table4,
               "areas and perimeters, synthetic data"),
    "table5": (gis_tables.table5,
               "disk accesses, Long Beach data, buffer sweep"),
    "table6": (gis_tables.table6, "areas and perimeters, Long Beach data"),
    "table7": (vlsi_tables.table7, "disk accesses, VLSI data, buffer sweep"),
    "table8": (vlsi_tables.table8, "areas and perimeters, VLSI data"),
    "table9": (cfd_tables.table9, "disk accesses, CFD data, buffer sweep"),
    "table10": (cfd_tables.table10, "areas and perimeters, CFD data"),
    "fig7": (synthetic_tables.figure7,
             "accesses vs size, point queries, buffer 10"),
    "fig8": (synthetic_tables.figure8,
             "accesses vs size, point queries, buffer 250"),
    "fig9": (synthetic_tables.figure9,
             "accesses vs size, 1% region queries, buffer 10"),
    "fig10": (gis_tables.figure10,
              "accesses vs buffer, point queries, Long Beach"),
    "fig11": (vlsi_tables.figure11,
              "accesses vs buffer, point/region queries, VLSI"),
    "fig12": (cfd_tables.figure12,
              "accesses vs buffer, point queries, CFD"),
    "fig234": (gis_tables.figures_2_3_4,
               "leaf MBR SVG plots, Long Beach, NX/HS/STR"),
    "fig56": (lambda config: cfd_tables.figures_5_6(seed=config.seed),
              "CFD dataset scatter SVGs (full + center zoom)"),
    "ext-warmup": (lambda config: _ext_warmup(config),
                   "extension: LRU warm-up transient curve"),
    "ext-parallel": (lambda config: _ext_parallel(config),
                     "extension: parallel shared-nothing declustering"),
    "ext-dynamic": (lambda config: _ext_dynamic(config),
                    "extension: packed vs Guttman vs R* builds"),
    "ext-costmodel": (lambda config: _ext_costmodel(config),
                      "extension: area/perimeter cost model validation"),
}


def _ext_warmup(config: ExperimentConfig):
    from .datasets import uniform_points
    from .experiments.extensions import warmup_curve
    from .queries import point_queries
    from .rtree.bulk import bulk_load
    from .core.packing.registry import make_algorithm

    points = uniform_points(max(config.sizes), seed=config.seed)
    tree, _ = bulk_load(points, make_algorithm("STR"),
                        capacity=config.capacity)
    workload = point_queries(config.query_count,
                             seed=config.workload_seed("warmup"))
    return [warmup_curve(tree, workload, buffer_pages=100)]


def _ext_parallel(config: ExperimentConfig):
    from .datasets import uniform_points
    from .experiments.extensions import parallel_speedup_table

    points = uniform_points(min(50_000, max(config.sizes)),
                            seed=config.seed)
    return parallel_speedup_table(points, capacity=config.capacity,
                                  query_count=min(config.query_count, 500))


def _ext_dynamic(config: ExperimentConfig):
    from .datasets import uniform_points
    from .experiments.extensions import packed_vs_dynamic_table

    points = uniform_points(min(5_000, max(config.sizes)),
                            seed=config.seed).centers()
    return packed_vs_dynamic_table(points,
                                   query_count=min(config.query_count, 300))


def _ext_costmodel(config: ExperimentConfig):
    from .datasets import uniform_points
    from .experiments.extensions import cost_model_table

    points = uniform_points(min(50_000, max(config.sizes)),
                            seed=config.seed)
    return cost_model_table(points,
                            query_count=min(config.query_count, 400))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="str-repro",
        description=("Reproduce tables/figures from 'STR: A Simple and "
                     "Efficient Algorithm for R-Tree Packing' (ICDE 1997)"),
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["list", "all",
                                                       "profile", "fsck",
                                                       "serve", "build",
                                                       "lint", "bench",
                                                       "report"],
                        help="which table/figure to regenerate, "
                             "'profile <experiment>' for a telemetered run, "
                             "'fsck <tree-file>' to check a page file, "
                             "'serve <tree-file>' to serve queries from it, "
                             "'build <tree-file>' for a parallel, "
                             "resumable bulk load into a durable file, "
                             "'lint [path]' to check the invariant "
                             "contracts statically, "
                             "'bench' to run the pinned performance suite, "
                             "or 'report [run]' to re-render, diff or "
                             "prune stored runs")
    parser.add_argument("target", nargs="?", default=None,
                        help="experiment to profile (with 'profile'), "
                             "tree file (with 'fsck' / 'serve' / 'build'), "
                             "path to check (with 'lint'; default src), "
                             "or run stem / manifest path (with 'report')")
    parser.add_argument("--meta", default=None, metavar="PATH",
                        help="fsck/serve: tree meta sidecar for plain "
                             "page files")
    parser.add_argument("--page-size", type=int, default=None,
                        help="fsck/serve: page size for plain page files "
                             "without a sidecar")
    parser.add_argument("--quarantine", default=None, metavar="PATH",
                        help="fsck: write bad page ids here as a "
                             "quarantine file; serve: load one and skip "
                             "those subtrees (responses become partial)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="serve: interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=9736,
                        help="serve: TCP port (default 9736; 0 = ephemeral)")
    parser.add_argument("--buffer-pages", type=int, default=64,
                        help="serve: buffer-pool size in pages (default 64)")
    parser.add_argument("--max-inflight", type=int, default=8,
                        help="serve: concurrent queries before queueing "
                             "(default 8)")
    parser.add_argument("--max-queue", type=int, default=16,
                        help="serve: queued queries before shedding with "
                             "Overloaded (default 16)")
    parser.add_argument("--deadline-s", type=float, default=1.0,
                        help="serve: default per-query deadline in seconds "
                             "(default 1.0)")
    parser.add_argument("--allow-reload", action="store_true",
                        help="serve: accept 'reload' admin requests that "
                             "fsck-verify a new tree file and cut over to "
                             "it with zero downtime")
    parser.add_argument("--scatter", action="store_true",
                        help="serve: with --workers, fan each query out "
                             "across the root's subtrees (per-shard "
                             "degradation: a lost shard yields "
                             "partial=true, never a wrong answer)")
    parser.add_argument("--ingest", action="store_true",
                        help="serve: accept durable insert/delete writes "
                             "(fsync'd WAL in <tree-file>.ingest/, acked "
                             "before visible, packed-union-delta queries) "
                             "and the 'merge' admin op that re-packs the "
                             "WAL into a new generation with zero "
                             "downtime")
    parser.add_argument("--wal-limit-bytes", type=int, default=None,
                        help="serve: with --ingest, un-merged WAL bytes "
                             "before writes shed with IngestOverloaded "
                             "(default 64 MiB)")
    parser.add_argument("--size", type=int, default=100_000,
                        help="build: number of uniform points to load "
                             "(default 100000; deterministic in --seed)")
    parser.add_argument("--capacity", type=int, default=100,
                        help="build: entries per node (default 100)")
    parser.add_argument("--workers", type=int, default=None,
                        help="build: worker processes; 0 runs shards "
                             "inline (default 2). serve/bench: "
                             "crash-isolated query worker processes "
                             "sharing the tree read-only via mmap; 0 "
                             "serves in-process (default 0)")
    parser.add_argument("--staging", default=None, metavar="DIR",
                        help="build: staging directory for shard runs and "
                             "checkpoints (default: <tree-file>.staging)")
    parser.add_argument("--resume", action="store_true",
                        help="build: resume from an existing staging "
                             "directory, re-running only shards without a "
                             "verified checkpoint")
    parser.add_argument("--keep-staging", action="store_true",
                        help="build: keep the staging directory after a "
                             "successful build (debugging/CI artifacts)")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="build: attempts per shard before the build "
                             "fails with a typed PoisonShard (default 3)")
    parser.add_argument("--worker-deadline-s", type=float, default=30.0,
                        help="build: heartbeat staleness deadline before a "
                             "worker is declared hung (default 30)")
    parser.add_argument("--throttle-s", type=float, default=0.0,
                        help=argparse.SUPPRESS)  # test hook: slow shards
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="lint_format",
                        help="lint: findings as an aligned text report "
                             "(default) or a JSON document")
    parser.add_argument("--rules", default=None, metavar="RL00X[,RL00Y]",
                        help="lint: run only these rule ids (comma-"
                             "separated) — lets CI bisect a slow or "
                             "noisy rule")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="lint: baseline file of grandfathered "
                             "findings (default: lint-baseline.json if "
                             "present; the committed one is empty and "
                             "stays empty)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="lint: rewrite the baseline file to accept "
                             "every current finding, then exit 0")
    parser.add_argument("--manifest", action="store_true",
                        help="lint: record the findings as a run manifest "
                             f"under {obs.DEFAULT_RUN_DIR} so lint results "
                             "live beside benchmark runs")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="bench: write the bench document here "
                             "(default: BENCH_<host-class>.json)")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME", dest="scenarios",
                        help="bench: run only this scenario (repeatable; "
                             "'build' is always included)")
    parser.add_argument("--diff", nargs=2, default=None,
                        metavar=("A", "B"),
                        help="report: delta table between two bench "
                             "documents or two run manifests; exits 1 on "
                             "tolerance-band crossings")
    parser.add_argument("--chrome-trace", default=None, metavar="PATH",
                        dest="chrome_trace",
                        help="report: convert the run's span trace to "
                             "Chrome trace-event JSON (load in "
                             "chrome://tracing or Perfetto)")
    parser.add_argument("--flamegraph", default=None, metavar="PATH",
                        help="report: convert the run's span trace to "
                             "collapsed-stack format (pipe to "
                             "flamegraph.pl)")
    parser.add_argument("--prune", action="store_true",
                        help="report: delete the oldest run stems beyond "
                             "--keep (whole runs at a time, every sibling "
                             "artefact together)")
    parser.add_argument("--keep", type=int, default=20,
                        help="report --prune: run stems to retain "
                             "(default 20)")
    parser.add_argument("--quick", action="store_true",
                        help="small fast profile (same shapes, smaller "
                             "cells); bench: the CI-sized suite profile")
    parser.add_argument("--queries", type=int, default=None,
                        help="override queries per cell (paper: 2000)")
    parser.add_argument("--seed", type=int, default=0,
                        help="master RNG seed")
    parser.add_argument("--csv", action="store_true",
                        help="emit CSV instead of an aligned table")
    parser.add_argument("--svg", action="store_true",
                        help="render figure series as an SVG line chart "
                             "(figures only; requires --out-dir)")
    parser.add_argument("--out-dir", default=None,
                        help="write output files (SVGs, .txt tables) here")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a JSONL span trace here "
                             "(enables telemetry)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write a metrics-registry JSON snapshot here "
                             "(enables telemetry)")
    parser.add_argument("--run-dir", default=None, metavar="DIR",
                        help="directory for run manifests/traces "
                             f"(default: {obs.DEFAULT_RUN_DIR})")
    parser.add_argument("--no-manifest", action="store_true",
                        help="suppress the run-manifest JSON")
    return parser


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.quick() if args.quick else DEFAULT_CONFIG
    overrides = {"seed": args.seed}
    if args.queries is not None:
        overrides["query_count"] = args.queries
    return config.scaled(**overrides)


def _emit(name: str, result, args: argparse.Namespace) -> None:
    if isinstance(result, dict):  # SVG bundles
        out_dir = args.out_dir if args.out_dir is not None else "."
        os.makedirs(out_dir, exist_ok=True)
        for key, svg in result.items():
            path = os.path.join(out_dir, f"{name}_{key}.svg")
            with open(path, "w") as f:
                f.write(svg)
            print(f"wrote {path}")
        return
    if isinstance(result, list) and args.svg:
        from .viz.linechart import line_chart_svg

        out_dir = args.out_dir if args.out_dir is not None else "."
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"{name}.svg")
        with open(path, "w") as f:
            f.write(line_chart_svg(result, title=name,
                                   x_label="x", y_label="disk accesses"))
        print(f"wrote {path}")
        return
    table = (_series_table(name, result) if isinstance(result, list)
             else result)
    text = table.to_csv() if args.csv else table.render()
    if args.out_dir is not None:
        os.makedirs(args.out_dir, exist_ok=True)
        ext = "csv" if args.csv else "txt"
        path = os.path.join(args.out_dir, f"{name}.{ext}")
        with open(path, "w") as f:
            f.write(text)
        print(f"wrote {path}")
    else:
        print(text)


def _emit_telemetry(name: str, tracer, registry, config, args,
                    argv: list[str], duration_s: float,
                    profile_mode: bool) -> None:
    """Profile-mode breakdown table + trace/metrics/manifest files."""
    if profile_mode:
        print(timing_breakdown_table(
            tracer, title=f"Phase timing breakdown: {name}"
        ).render())

    run_dir = args.run_dir if args.run_dir is not None else obs.DEFAULT_RUN_DIR
    manifest = obs.RunManifest.collect(
        name, config=config, argv=argv, duration_s=duration_s,
        tracer=tracer, registry=registry,
    )
    # One collision-free stem for all of this run's files, so same-second
    # runs never overwrite each other's trace.
    stem = obs.unique_run_stem(manifest, run_dir)
    trace_path = (args.trace_out if args.trace_out is not None
                  else os.path.join(run_dir, f"{stem}.trace.jsonl"))
    manifest.outputs["trace_jsonl"] = obs.write_trace_jsonl(
        tracer, trace_path
    )
    print(f"wrote {trace_path}")
    if args.metrics_out is not None:
        manifest.outputs["metrics_json"] = obs.write_metrics_json(
            registry, args.metrics_out
        )
        print(f"wrote {args.metrics_out}")
    if not args.no_manifest:
        manifest_path = obs.write_manifest(manifest, run_dir, stem=stem)
        print(f"wrote {manifest_path}")


def _run_fsck(args: argparse.Namespace, argv: list[str]) -> int:
    """``repro fsck <tree-file>``: check the file, print the report, and
    record it as a run manifest (the lab-notebook trail CI archives)."""
    from .fsck import fsck, write_quarantine

    start = time.time()
    report = fsck(args.target, meta_path=args.meta,
                  page_size=args.page_size)
    print(report.render())
    if args.quarantine is not None:
        # Even a clean check writes the (empty) file, so `fsck` then
        # `serve --quarantine` composes unconditionally.
        path = write_quarantine(report, args.quarantine)
        print(f"wrote {path} ({len(set(report.bad_pages))} quarantined "
              f"page(s))")
    if not args.no_manifest:
        run_dir = (args.run_dir if args.run_dir is not None
                   else obs.DEFAULT_RUN_DIR)
        manifest = obs.RunManifest.collect(
            "fsck", argv=argv, duration_s=time.time() - start,
            extra={"fsck": report.as_dict()},
        )
        path = obs.write_manifest(manifest, run_dir)
        print(f"wrote {path}")
    return 0 if report.clean else 1


def _open_tree(args: argparse.Namespace, parser: argparse.ArgumentParser):
    """Reattach the tree at ``args.target`` (durable or sidecar-described)."""
    from .rtree.paged import PagedRTree
    from .storage.store import FilePageStore

    with open(args.target, "rb") as f:
        durable = f.read(4)[:4] == b"RSUP"
    if durable:
        store = FilePageStore.open_existing(args.target)
        return PagedRTree.from_store(store)
    if args.meta is None:
        parser.error(f"{args.target} has no superblock — pass the tree "
                     f"meta sidecar with --meta")
    page_size = args.page_size
    if page_size is None:
        import json as _json
        with open(args.meta) as f:
            page_size = int(_json.load(f)["page_size"])
    store = FilePageStore(args.target, page_size)
    return PagedRTree.open(store, args.meta)


def _run_serve(args: argparse.Namespace, parser: argparse.ArgumentParser,
               argv: list[str]) -> int:
    """``repro serve <tree-file>``: serve queries until interrupted.

    A graceful shutdown (SIGINT) snapshots the server's ``stats``
    payload into a run manifest under the run directory, so every
    serving session leaves the same lab-notebook record as a benchmark
    or lint run.
    """
    import asyncio

    from .fsck import read_quarantine
    from .serve import QueryServer

    start = time.time()
    ingest_state = None
    if args.ingest:
        # A committed merge may have moved the serving generation into
        # the sidecar directory; serve that file, not the original.
        from .ingest import DEFAULT_WAL_LIMIT, IngestState, resolve_current

        current, _pointer = resolve_current(args.target)
        opened = argparse.Namespace(**vars(args))
        opened.target = current
        tree = _open_tree(opened, parser)
        ingest_state, _base = IngestState.open(
            args.target, ndim=tree.ndim,
            max_wal_bytes=(args.wal_limit_bytes
                           if args.wal_limit_bytes is not None
                           else DEFAULT_WAL_LIMIT))
    else:
        tree = _open_tree(args, parser)
    quarantine = None
    if args.quarantine is not None:
        quarantine = read_quarantine(args.quarantine)
    workers = args.workers if args.workers is not None else 0
    if args.ingest and workers:
        # Pool workers mmap the packed file and cannot see the delta;
        # an ingest server answers in-process so reads never miss
        # unmerged acked writes.
        print("--ingest serves in-process; ignoring --workers",
              file=sys.stderr)
        workers = 0
    server = QueryServer(
        tree,
        buffer_pages=args.buffer_pages,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        default_deadline_s=args.deadline_s,
        quarantine=quarantine,
        allow_reload=args.allow_reload,
        workers=workers,
        scatter=args.scatter,
        ingest=ingest_state,
    )

    async def _serve() -> None:
        host, port = await server.start(args.host, args.port)
        pool_note = ""
        if workers:
            if server.pool is not None:
                pool_note = (f", {server.pool.workers_live}/{workers} "
                             f"worker process(es)"
                             + (", scatter" if args.scatter else ""))
            else:
                pool_note = (f", in-process fallback "
                             f"({server.pool_start_error})")
        ingest_note = ""
        if ingest_state is not None:
            ingest_note = (f", ingest on (wal lsn "
                           f"{ingest_state.wal.last_lsn}, "
                           f"{len(ingest_state.live)} live delta "
                           f"record(s))")
        print(f"serving {args.target} on {host}:{port} "
              f"({len(tree)} records, height {tree.height}, "
              f"{len(server.quarantine)} quarantined page(s)"
              f"{pool_note}{ingest_note})",
              flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    if not args.no_manifest:
        run_dir = (args.run_dir if args.run_dir is not None
                   else obs.DEFAULT_RUN_DIR)
        manifest = obs.RunManifest.collect(
            "serve", argv=argv, duration_s=time.time() - start,
            extra={"serve": server.stats_snapshot()},
        )
        path = obs.write_manifest(manifest, run_dir)
        print(f"wrote {path}", file=sys.stderr)
    return 0


def _run_lint(args: argparse.Namespace, argv: list[str]) -> int:
    """``repro lint [path]``: statically check the invariant contracts.

    Exit codes: 0 clean (every finding suppressed or baselined, and no
    baseline drift), 1 new findings or stale baseline entries, 2 usage
    errors.  ``--manifest`` files the report as a run manifest so a
    directory of runs shows lint verdicts beside benchmark numbers.
    """
    from .lint import Baseline, DEFAULT_BASELINE, LintEngine
    from .lint.engine import all_rules

    start = time.time()
    paths = [args.target if args.target is not None else "src"]
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    baseline = (Baseline.load(baseline_path) if baseline_path
                else Baseline())
    rules = None
    if args.rules:
        wanted = {part.strip().upper() for part in args.rules.split(",")
                  if part.strip()}
        by_id = {rule.id: rule for rule in all_rules()}
        unknown = sorted(wanted - by_id.keys())
        if unknown:
            print(f"repro lint: unknown rule id(s): "
                  f"{', '.join(unknown)} (known: "
                  f"{', '.join(sorted(by_id))})", file=sys.stderr)
            return 2
        rules = [by_id[rule_id] for rule_id in sorted(wanted)]
    engine = LintEngine(rules, baseline=baseline)
    report = engine.run(paths)

    if args.write_baseline:
        out = (args.baseline if args.baseline is not None
               else DEFAULT_BASELINE)
        all_found = report.findings + report.baselined
        stale = len(report.stale_baseline)
        path = Baseline.from_findings(all_found).write(out)
        print(f"wrote {path} ({len(all_found)} finding(s) baselined, "
              f"{stale} stale key(s) pruned)")
        return 0

    if args.lint_format == "json":
        print(report.to_json())
    else:
        print(report.render())
    if args.manifest:
        run_dir = (args.run_dir if args.run_dir is not None
                   else obs.DEFAULT_RUN_DIR)
        manifest = obs.RunManifest.collect(
            "lint", argv=argv, duration_s=time.time() - start,
            extra={"lint": report.as_dict()},
        )
        path = obs.write_manifest(manifest, run_dir)
        print(f"wrote {path}")
    return 0 if report.clean and not report.stale_baseline else 1


def _run_build(args: argparse.Namespace, argv: list[str]) -> int:
    """``repro build <tree-file>``: parallel, resumable bulk load.

    Deterministic in ``--size``/``--seed``/``--capacity``: any worker
    count (and any number of kill/resume cycles) produces the same
    durable file as a serial ``bulk_load`` of the same input.  Exit
    codes: 0 built, 2 a shard was poisoned (staging kept for resume).
    """
    from .datasets import uniform_points
    from .pipeline import PoisonShard, parallel_bulk_load
    from .storage.integrity import TRAILER_SIZE
    from .storage.journal import journal_path
    from .storage.page import required_page_size
    from .storage.store import FilePageStore

    start = time.time()
    # --workers is shared with serve/bench; the build default is 2.
    if args.workers is None:
        args.workers = 2
    points = uniform_points(args.size, seed=args.seed)
    page_size = required_page_size(args.capacity, points.ndim) + TRAILER_SIZE
    staging = (args.staging if args.staging is not None
               else f"{args.target}.staging")
    # The output file is written only during final assembly; a leftover
    # (possibly partial) file from an earlier run is dead weight.  Its
    # journal sidecar goes with it — a stale journal must never be
    # replayed into the fresh store.
    for stale in (args.target, journal_path(args.target)):
        if os.path.exists(stale):
            os.remove(stale)
    store = FilePageStore(args.target, page_size, checksums=True,
                          journal=True)
    try:
        tree, report = parallel_bulk_load(
            points,
            capacity=args.capacity,
            store=store,
            staging_path=staging,
            workers=args.workers,
            resume=args.resume,
            deadline_s=args.worker_deadline_s,
            max_attempts=args.max_attempts,
            throttle_s=args.throttle_s,
            keep_staging=args.keep_staging,
        )
    except PoisonShard as exc:
        print(f"build failed: {exc}", file=sys.stderr)
        store.close()
        return 2
    print(f"built {args.target}: {args.size} records, "
          f"height {tree.height}, {report.bulk.pages_written} pages "
          f"written, {report.plan.shard_count} shards, "
          f"workers={args.workers}"
          + (f", resumed {len(report.resumed_shards)} shard(s)"
             if report.resumed_shards else "")
          + (f", retries {dict(report.retries)}" if report.retries else ""))
    store.close()
    if not args.no_manifest:
        run_dir = (args.run_dir if args.run_dir is not None
                   else obs.DEFAULT_RUN_DIR)
        manifest = obs.RunManifest.collect(
            "build", argv=argv, duration_s=time.time() - start,
            registry=report.metrics,
            extra={"build": {
                "target": args.target,
                "plan": report.plan.as_dict(),
                "workers": args.workers,
                "resumed_shards": list(report.resumed_shards),
                "retries": dict(report.retries),
                "height": report.bulk.height,
                "pages_written": report.bulk.pages_written,
            }},
        )
        path = obs.write_manifest(manifest, run_dir)
        print(f"wrote {path}")
    return 0


def _run_bench_cmd(args: argparse.Namespace, argv: list[str]) -> int:
    """``repro bench``: run the pinned suite, write the bench document.

    ``--quick`` selects the CI-sized profile (the committed baseline is
    quick-profile so the ``bench-smoke`` diff is like-for-like);
    the default is the full paper-scale suite.  Exit code 0 unless a
    scenario raises.
    """
    from dataclasses import replace

    from .bench import BenchConfig, run_bench

    config = BenchConfig.quick() if args.quick else BenchConfig.full()
    if args.seed:
        config = replace(config, seed=args.seed)
    doc, written = run_bench(
        config,
        out_path=args.out,
        run_dir=args.run_dir,
        write_run_files=not args.no_manifest,
        argv=argv,
        scenario_names=args.scenarios,
        serve_workers=args.workers if args.workers is not None else 0,
        progress=lambda line: print(line, file=sys.stderr, flush=True),
    )
    for key in sorted(written):
        print(f"wrote {written[key]}")
    table = Table(
        title=f"bench [{doc['profile']}] on {doc['host_class']}",
        columns=("scenario", "ops", "qps", "p50 ms", "p99 ms",
                 "pages", "decode s", "walk s"),
    )
    for name, sc in doc["scenarios"].items():
        table.add_row(
            name, sc["ops"], round(sc["queries_per_s"], 1),
            round(sc["latency_s"]["p50"] * 1e3, 3),
            round(sc["latency_s"]["p99"] * 1e3, 3),
            sc["io"]["pages_read"],
            round(sc["self_time_s"]["decode"], 4),
            round(sc["self_time_s"]["walk"], 4),
        )
    print(table.render())
    return 0


def _run_report(args: argparse.Namespace,
                parser: argparse.ArgumentParser) -> int:
    """``repro report``: the read side of the lab notebook.

    With no target: list runs.  With a run stem or manifest path:
    re-render it (``--chrome-trace``/``--flamegraph`` additionally
    export its span trace).  ``--diff A B`` compares two stored
    documents and exits 1 on tolerance-band crossings.  ``--prune
    --keep N`` enforces retention.
    """
    from .bench import (
        diff_tables,
        list_runs_table,
        prune_runs,
        render_manifest_text,
        resolve_run_manifest,
    )

    run_dir = (args.run_dir if args.run_dir is not None
               else obs.DEFAULT_RUN_DIR)

    if args.diff is not None:
        table, crossings = diff_tables(*args.diff)
        print(table.render())
        for crossing in crossings:
            print(f"CROSSED: {crossing}", file=sys.stderr)
        return 1 if crossings else 0

    if args.prune:
        removed = prune_runs(run_dir, keep=args.keep)
        for path in removed:
            print(f"removed {path}")
        print(f"{len(removed)} file(s) removed, "
              f"{args.keep} newest run stem(s) kept")
        return 0

    if args.target is None:
        print(list_runs_table(run_dir).render())
        return 0

    try:
        manifest_path = resolve_run_manifest(run_dir, args.target)
    except FileNotFoundError as exc:
        parser.error(str(exc))
    manifest = obs.load_manifest(manifest_path)
    print(render_manifest_text(manifest))

    if args.chrome_trace is not None or args.flamegraph is not None:
        trace_path = (manifest.outputs or {}).get("trace_jsonl")
        if not trace_path or not os.path.isfile(trace_path):
            # Fall back to the sibling artefact next to the manifest.
            sibling = manifest_path[: -len(".json")] + ".trace.jsonl"
            trace_path = sibling if os.path.isfile(sibling) else None
        if trace_path is None:
            parser.error(f"{manifest_path} has no span trace to export "
                         "(run was recorded without --trace-out or its "
                         ".trace.jsonl was pruned)")
        spans = obs.read_spans_jsonl(trace_path)
        if args.chrome_trace is not None:
            path = obs.write_chrome_trace(spans, args.chrome_trace)
            print(f"wrote {path}")
        if args.flamegraph is not None:
            path = obs.write_folded(spans, args.flamegraph)
            print(f"wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:10s} {EXPERIMENTS[name][1]}")
        return 0
    if args.experiment == "fsck":
        if args.target is None:
            parser.error("fsck needs a tree file to check")
        return _run_fsck(args, raw_argv)
    if args.experiment == "serve":
        if args.target is None:
            parser.error("serve needs a tree file to serve")
        return _run_serve(args, parser, raw_argv)
    if args.experiment == "build":
        if args.target is None:
            parser.error("build needs an output tree file")
        return _run_build(args, raw_argv)
    if args.experiment == "lint":
        return _run_lint(args, raw_argv)
    if args.experiment == "bench":
        if args.target is not None:
            parser.error("bench takes no positional target; use "
                         "--scenario NAME to filter the suite")
        return _run_bench_cmd(args, raw_argv)
    if args.experiment == "report":
        return _run_report(args, parser)

    profile_mode = args.experiment == "profile"
    if profile_mode:
        if args.target not in EXPERIMENTS:
            parser.error(
                f"profile needs an experiment to run, one of "
                f"{', '.join(sorted(EXPERIMENTS))}"
            )
        names = [args.target]
    elif args.target is not None:
        parser.error("a second positional argument is only valid with "
                     "'profile', 'fsck', 'serve', 'build', 'lint' or "
                     "'report'")
    else:
        names = (sorted(EXPERIMENTS) if args.experiment == "all"
                 else [args.experiment])

    if args.trace_out == "":
        parser.error("--trace-out requires a file path")
    if args.metrics_out == "":
        parser.error("--metrics-out requires a file path")
    telemetry_on = (profile_mode or args.trace_out is not None
                    or args.metrics_out is not None)
    config = _config_from(args)
    for name in names:
        runner, _ = EXPERIMENTS[name]
        start = time.time()
        if telemetry_on:
            with obs.telemetry() as (tracer, registry):
                result = runner(config)
            duration = time.time() - start
            _emit(name, result, args)
            _emit_telemetry(name, tracer, registry, config, args,
                            raw_argv, duration, profile_mode)
        else:
            result = runner(config)
            _emit(name, result, args)
        print(f"[{name}: {time.time() - start:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
