"""RL004 exception-discipline: failures are typed, never swallowed.

PRs 2-4 built a typed error taxonomy (``StoreError`` and subclasses,
``ServeError``/``Overloaded``/``StoreUnavailable``, ``PoisonShard``,
``ResumeMismatch``) precisely so callers can tell "retry this" from
"refuse and keep the old generation".  A bare ``except:`` or a
silently-passed ``except Exception:`` erases that information — in the
durability and serving packages it can turn a torn page or a dead
store into a silent wrong answer.

Flagged, in ``storage/``, ``serve/`` and ``pipeline/``:

* bare ``except:`` (catches ``KeyboardInterrupt``/``SystemExit`` too,
  which breaks the kill matrix's process supervision);
* ``except Exception:`` / ``except BaseException:`` whose body only
  ``pass``es (a swallow — either narrow the type, re-raise one of the
  typed taxonomy, or *record* the event so operators can see it);
* ``raise Exception(...)`` / ``raise BaseException(...)`` — public
  failure paths raise the typed taxonomy, not the root classes.

Catching a *narrow* exception and passing (``except OSError: pass``
around best-effort cleanup) stays legal: the type documents intent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register

__all__ = ["ExceptionDiscipline"]

BROAD = ("Exception", "BaseException")


def _names_broad(annotation: ast.AST | None) -> bool:
    """Does this except clause name Exception/BaseException?"""
    if annotation is None:
        return False
    nodes = (annotation.elts if isinstance(annotation, ast.Tuple)
             else [annotation])
    return any(isinstance(n, ast.Name) and n.id in BROAD for n in nodes)


def _swallows(body: list[ast.stmt]) -> bool:
    """True if the handler body does nothing (pass / docstring / ...)."""
    return all(
        isinstance(stmt, ast.Pass)
        or (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant))
        for stmt in body
    )


@register
class ExceptionDiscipline(Rule):
    id = "RL004"
    name = "exception-discipline"
    invariant = ("durability/serving/pipeline code never swallows broad "
                 "exceptions and raises only the typed taxonomy")
    path_fragments = ("repro/storage/", "repro/serve/", "repro/pipeline/",
                      "repro/ingest/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield self.finding(
                        ctx, node,
                        "bare except: catches SystemExit/KeyboardInterrupt "
                        "and breaks supervision; name the exception type",
                    )
                elif _names_broad(node.type) and _swallows(node.body):
                    yield self.finding(
                        ctx, node,
                        "except Exception with a pass body swallows the "
                        "typed error taxonomy; narrow the type, re-raise, "
                        "or record the failure",
                    )
            elif (isinstance(node, ast.Raise)
                    and isinstance(node.exc, ast.Call)
                    and isinstance(node.exc.func, ast.Name)
                    and node.exc.func.id in BROAD):
                yield self.finding(
                    ctx, node,
                    f"raise {node.exc.func.id}(...) bypasses the typed "
                    f"error taxonomy; raise a StoreError/ServeError/"
                    f"pipeline subclass instead",
                )
