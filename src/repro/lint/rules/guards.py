"""Guarded-state annotation maps for the flow-sensitive rules.

RL009 (await-point atomicity) and RL011 (lock discipline) need to know
which attributes a module's concurrency protocol actually protects —
that is a *design* fact, not something inferable from the code.  This
module is the one place it is written down.  Adding an attribute to a
server (or a new mutating entry point on ``IngestState``) means adding
it here, at which point the linter machine-checks every touch point.

Keys are path fragments matched by containment against the
repo-relative file path, same as ``Rule.path_fragments``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AWAIT_GUARDS", "AwaitGuard", "LOCK_GUARDS", "LockGuard"]


@dataclass(frozen=True)
class AwaitGuard:
    """RL009: state that must not straddle a suspension point.

    ``attrs`` are ``self.<attr>`` reads/writes that form check-then-act
    pairs; ``mutators`` maps method names that *act on* one of those
    attributes (``ingest.begin_merge()`` mutates ingest state as
    surely as ``self.ingest = x`` does) to the attribute they act on.
    """

    attrs: frozenset[str]
    mutators: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class LockGuard:
    """RL011: attributes touched only inside ``with <lock>:``.

    ``lock`` is the unparsed context expression of the guarding lock;
    ``attrs`` are ``self.<attr>`` targets whose writes (and container
    mutations) require it; ``mutators`` maps lock-required method
    names to the ``self.<owner>`` attribute they are called on.
    """

    lock: str
    attrs: frozenset[str]
    mutators: dict[str, str] = field(default_factory=dict)


#: RL009 — per-file guarded state for await-atomicity checking.
AWAIT_GUARDS: dict[str, AwaitGuard] = {
    "repro/serve/server.py": AwaitGuard(
        attrs=frozenset({
            "pool", "ingest", "tree", "searcher", "generation",
            "breaker", "quarantine",
        }),
        # Initiation acts only: begin_merge/apply/write decide to
        # mutate based on previously read state, so a stale read is a
        # lost-update or double-begin.  finish_merge/abort_merge are
        # deliberately absent — they are ordered by the merge they
        # conclude, not by a pre-await read.
        mutators={
            "apply": "ingest",
            "begin_merge": "ingest",
            "_begin_merge_blocking": "ingest",
            "_write_blocking": "ingest",
        },
    ),
    "repro/serve/pool.py": AwaitGuard(
        attrs=frozenset({
            "spec", "_workers", "_inflight", "_draining", "_closing",
            "_started",
        }),
    ),
}

#: RL011 — per-file lock-guarded attributes.
LOCK_GUARDS: dict[str, LockGuard] = {
    "repro/serve/server.py": LockGuard(
        lock="self._search_lock",
        attrs=frozenset({
            "tree", "searcher", "breaker", "quarantine",
            "quarantined_runtime", "generation", "generation_path",
            "reloads_total", "_scatter_roots",
        }),
        # IngestState's merge lifecycle documents "call under the
        # search lock": readers must never see a half-frozen layer
        # stack or a searcher/layer mismatch.
        mutators={
            "apply": "ingest",
            "begin_merge": "ingest",
            "finish_merge": "ingest",
            "abort_merge": "ingest",
            "layers": "ingest",
        },
    ),
}
