"""RL011 lock-discipline: guarded attributes are touched only inside
the ``with`` region of their declared lock.

The server's swap protocol (searcher swap on reload, frozen-layer drop
on merge cutover) is documented as "under the search lock" in half a
dozen docstrings; this rule makes the documentation enforceable.  The
annotation map (:data:`repro.lint.rules.guards.LOCK_GUARDS`) declares
which attributes each file's lock guards and which methods on owned
objects require it; each CFG node carries its stack of enclosing
``with`` regions, so the check is a containment test — no dataflow
needed, but very much flow-*scoped*: the same statement is fine inside
``with self._search_lock:`` and a finding outside it.

Flagged, outside the declared lock's region: assignments (plain,
annotated, augmented) to a guarded ``self.<attr>``; mutating container
calls on one (``self.quarantine.add(…)``); and calls to declared
lock-required methods on the owning attribute
(``self.ingest.begin_merge()``).  ``__init__``/``__new__`` are exempt —
no concurrent reader exists during construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..cfg import CFGNode, walk_exprs
from ..engine import FileContext, Finding, Rule, register
from .guards import LOCK_GUARDS, LockGuard

__all__ = ["LockDiscipline"]

#: Mutating methods on guarded container attributes.
CONTAINER_MUTATORS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "update",
})

EXEMPT_FUNCTIONS = ("__init__", "__new__")


@register
class LockDiscipline(Rule):
    id = "RL011"
    name = "lock-discipline"
    invariant = ("declared guarded-by attributes are only mutated "
                 "inside the corresponding `with lock:` region")
    path_fragments = ("repro/serve/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        guard = None
        for frag, g in LOCK_GUARDS.items():
            if frag in ctx.path:
                guard = g
        if guard is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name not in EXEMPT_FUNCTIONS:
                yield from self._check_function(ctx, node, guard)

    def _check_function(self, ctx: FileContext,
                        func: ast.FunctionDef | ast.AsyncFunctionDef,
                        guard: LockGuard) -> Iterator[Finding]:
        cfg = ctx.cfg(func)
        for node in cfg.nodes:
            if node.kind != "stmt" or node.stmt is None:
                continue
            if self._holds_lock(node, guard):
                continue
            yield from self._touches(ctx, node.stmt, func, guard)

    def _holds_lock(self, node: CFGNode, guard: LockGuard) -> bool:
        return any(guard.lock in region.context_names
                   for region in node.with_stack)

    def _touches(self, ctx: FileContext, stmt: ast.stmt,
                 func: ast.FunctionDef | ast.AsyncFunctionDef,
                 guard: LockGuard) -> Iterator[Finding]:
        # assignments to self.<guarded>
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
            for t in list(targets):
                if isinstance(t, (ast.Tuple, ast.List)):
                    targets.extend(t.elts)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            attr = self._guarded_attr(target, guard)
            if attr is not None:
                yield self.finding(
                    ctx, target,
                    f"writes guarded attribute {attr!r} outside "
                    f"`with {guard.lock}:` in {func.name!r}")
        for node in walk_exprs(stmt):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            base = node.func.value
            method = node.func.attr
            # container mutation: self.<guarded>.add(...)
            if method in CONTAINER_MUTATORS:
                attr = self._guarded_attr(base, guard)
                if attr is not None:
                    yield self.finding(
                        ctx, node,
                        f"mutates guarded container {attr!r} "
                        f"({method}) outside `with {guard.lock}:` "
                        f"in {func.name!r}")
            # declared lock-required method on its owner:
            # self.ingest.begin_merge()
            if method in guard.mutators:
                owner = guard.mutators[method]
                if isinstance(base, ast.Attribute) \
                        and base.attr == owner \
                        and isinstance(base.value, ast.Name) \
                        and base.value.id == "self":
                    yield self.finding(
                        ctx, node,
                        f"calls lock-required {owner}.{method}() "
                        f"outside `with {guard.lock}:` in "
                        f"{func.name!r}")

    def _guarded_attr(self, node: ast.expr,
                      guard: LockGuard) -> str | None:
        if isinstance(node, ast.Attribute) and node.attr in guard.attrs \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr
        return None
