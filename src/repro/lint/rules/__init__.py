"""Project-specific lint rules.

Importing this package registers every rule with the engine's registry
(:func:`repro.lint.engine.register` runs at class-definition time).
Each module guards one invariant a previous PR introduced; see
``docs/static-analysis.md`` for the rule-by-rule contract.
"""

from __future__ import annotations

from . import (  # noqa: F401  (registration side effects)
    rl001_wallclock,
    rl002_atomic,
    rl003_counters,
    rl004_exceptions,
    rl005_async,
    rl006_pickle,
    rl007_sealed_wal,
    rl008_durability,
    rl009_await,
    rl010_resources,
    rl011_locks,
)

__all__ = [
    "rl001_wallclock",
    "rl002_atomic",
    "rl003_counters",
    "rl004_exceptions",
    "rl005_async",
    "rl006_pickle",
    "rl007_sealed_wal",
    "rl008_durability",
    "rl009_await",
    "rl010_resources",
    "rl011_locks",
]
