"""RL007 sealed-wal-determinism: the merge reads only sealed bytes.

The streaming-ingest merge (:mod:`repro.ingest.merge`) is
kill-resumable *because* it is a pure function of bytes that stop
changing: the committed packed generation plus the **sealed** WAL
segments.  Re-running it after a SIGKILL must rebuild the identical
generation file, and the generation pointer must atomically name both
the new file and the drained segment prefix.  That all collapses if the
merge ever touches the *active* (still-growing) segment or mutates the
log it is draining.

Flagged, in ``repro/ingest/merge.py`` only:

* importing or referencing :class:`~repro.ingest.wal.WriteAheadLog` —
  the appender owns the active segment; the merge parses sealed
  segment files via :class:`~repro.ingest.wal.WalSegment` instead;
* ``open(..., "w"/"a"/"+")`` on anything but a ``*.tmp-*`` sibling —
  the merge writes through the page store and the atomic staging
  helpers, never raw writable handles (the one exception is the
  crash-injection path parking a torn pointer image on a temporary
  sibling that nothing references);
* calls to ``.seal_active(...)`` or ``.truncate(...)`` — sealing is
  the *server's* half of the protocol (under its write lock) and
  truncation is recovery's; the merge does neither.

``list.append`` and friends stay legal — only the log-mutating method
names above are banned, not generic container ops.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register

__all__ = ["SealedWalDeterminism"]

#: Attribute/method calls that mutate a write-ahead log.
BANNED_METHODS = frozenset({"seal_active", "truncate"})

#: Mode characters that make an ``open`` writable.
WRITABLE = ("w", "a", "+", "x")


def _writable_open_mode(node: ast.Call) -> str | None:
    """The literal mode string when this is a writable ``open`` call."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if (isinstance(mode, ast.Constant) and isinstance(mode.value, str)
            and any(ch in mode.value for ch in WRITABLE)):
        return mode.value
    return None


def _opens_tmp_sibling(node: ast.Call) -> bool:
    """Is the opened path visibly a ``*.tmp-*`` sibling (an f-string or
    literal containing ``.tmp-``)?  Those are unreferenced scratch
    files; everything else writable is a violation."""
    if not node.args:
        return False
    target = node.args[0]
    parts: list[str] = []
    if isinstance(target, ast.Constant) and isinstance(target.value, str):
        parts.append(target.value)
    elif isinstance(target, ast.JoinedStr):
        parts.extend(v.value for v in target.values
                     if isinstance(v, ast.Constant)
                     and isinstance(v.value, str))
    return any(".tmp-" in part for part in parts)


@register
class SealedWalDeterminism(Rule):
    id = "RL007"
    name = "sealed-wal-determinism"
    invariant = ("the background merge consumes only sealed WAL bytes "
                 "and never appends, seals, or truncates the log")
    path_fragments = ("repro/ingest/merge.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name == "WriteAheadLog":
                        yield self.finding(
                            ctx, node,
                            "merge.py imports WriteAheadLog; the merge "
                            "reads sealed segments via WalSegment.load "
                            "and must never hold the appender",
                        )
            elif (isinstance(node, ast.Name)
                    and node.id == "WriteAheadLog"):
                yield self.finding(
                    ctx, node,
                    "merge.py references WriteAheadLog; draining code "
                    "must not be able to mutate the log it drains",
                )
            elif isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in BANNED_METHODS):
                    yield self.finding(
                        ctx, node,
                        f".{node.func.attr}() in merge.py; sealing and "
                        f"truncation belong to the server/recovery, the "
                        f"merge only reads sealed bytes",
                    )
                elif (isinstance(node.func, ast.Name)
                        and node.func.id == "open"):
                    mode = _writable_open_mode(node)
                    if mode is not None and not _opens_tmp_sibling(node):
                        yield self.finding(
                            ctx, node,
                            f"open(..., {mode!r}) in merge.py; the merge "
                            f"writes only through the page store and "
                            f"the atomic staging helpers",
                        )
