"""RL009 await-atomicity: no suspension point between a read and a
dependent write of guarded serving state.

An ``async def`` body is atomic *between* awaits — that is the whole
concurrency model of the serving layer.  The moment a coroutine reads
``self.pool``, awaits something, and then writes ``self.pool`` (or
calls ``ingest.begin_merge()``), another task may have swapped the
pool or begun a merge during the suspension: the classic
check-then-act race, invisible to tests because it needs two tasks
interleaved at exactly that await.

The guarded attributes per file live in
:data:`repro.lint.rules.guards.AWAIT_GUARDS` — a design annotation,
not an inference.  The analysis walks each coroutine's CFG with a
per-attribute state: CLEAN, READ (read since the last write), or
STALE (read, then suspended).  An await inside ``async with <lock>:``
does not stale-ify (holding the lock across the suspension is the
sanctioned way to make a multi-await section atomic — the write
executor does exactly this); note the lock *acquisition* await itself
still stales earlier reads, which is correct — state read before the
lock is untrusted inside it.

Flagged: a write to a STALE attribute, a guarded-mutator call (see
the annotation map) whose subject attribute is STALE, and an
``await`` *inside* an augmented assignment of a guarded attribute
(``self.x += await f()`` is a read-suspend-write in one statement).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..cfg import CFGNode, stmt_awaits, walk_exprs
from ..dataflow import merge_dicts, run_forward
from ..engine import FileContext, Finding, Rule, register
from .guards import AWAIT_GUARDS, AwaitGuard

__all__ = ["AwaitAtomicity"]

CLEAN, READ, STALE = 0, 1, 2

State = dict[str, int]


def _attr_of(node: ast.expr, guard: AwaitGuard,
             aliases: set[str]) -> str | None:
    """The guarded attribute ``node`` denotes, for ``self.<attr>``."""
    if isinstance(node, ast.Attribute) and node.attr in guard.attrs \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


def _local_aliases(func: ast.AST, guard: AwaitGuard) -> dict[str, str]:
    """Locals bound (anywhere) to a guarded attribute: ``pool =
    self.pool`` makes later ``pool.…`` touches count against ``pool``.
    Flow-insensitive on purpose — an alias is a read that stays live."""
    out: dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Attribute) \
                and isinstance(node.value.value, ast.Name) \
                and node.value.value.id == "self" \
                and node.value.attr in guard.attrs:
            out[node.targets[0].id] = node.value.attr
    return out


@register
class AwaitAtomicity(Rule):
    id = "RL009"
    name = "await-atomicity"
    invariant = ("no await between a read and a dependent write of "
                 "guarded serving state (check-then-act across a "
                 "suspension point)")
    path_fragments = ("repro/serve/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        guard = None
        for frag, g in AWAIT_GUARDS.items():
            if frag in ctx.path:
                guard = g
        if guard is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(ctx, node, guard)

    def _check_coroutine(self, ctx: FileContext,
                         func: ast.AsyncFunctionDef,
                         guard: AwaitGuard) -> Iterator[Finding]:
        cfg = ctx.cfg(func)
        aliases = _local_aliases(func, guard)
        findings: dict[tuple[int, str], Finding] = {}

        def reads(stmt: ast.stmt) -> set[str]:
            out = set()
            for node in walk_exprs(stmt):
                attr = _attr_of(node, guard, set(aliases))
                if attr is not None and isinstance(node.ctx, ast.Load):
                    out.add(attr)
                if isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Load) \
                        and node.id in aliases:
                    out.add(aliases[node.id])
            return out

        def writes(stmt: ast.stmt) -> set[str]:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            out = set()
            for target in targets:
                attr = _attr_of(target, guard, set(aliases))
                if attr is not None:
                    out.add(attr)
            return out

        def mutator_acts(stmt: ast.stmt) -> Iterator[tuple[str, ast.AST]]:
            """Guarded-mutator *references*: ``self.ingest.begin_merge(…)``,
            ``ingest.apply(…)`` on an alias, and
            ``run_in_executor(None, self._begin_merge_blocking)`` —
            a reference counts, so executor dispatch is seen too."""
            for node in walk_exprs(stmt):
                if not (isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Load)
                        and node.attr in guard.mutators):
                    continue
                base = node.value
                owner = guard.mutators[node.attr]
                if _attr_of(base, guard, set(aliases)) == owner:
                    yield owner, node
                elif isinstance(base, ast.Name) \
                        and aliases.get(base.id) == owner:
                    yield owner, node
                elif isinstance(base, ast.Name) and base.id == "self":
                    yield owner, node

        def under_async_lock(node: CFGNode) -> bool:
            return any(region.is_async and
                       any("lock" in name.lower()
                           for name in region.context_names)
                       for region in node.with_stack)

        def transfer(node: CFGNode, state: State) -> State:
            stmt = node.stmt
            if stmt is None or node.kind not in ("stmt",):
                return state
            out = dict(state)
            for attr in reads(stmt):
                out[attr] = READ
            for attr, call in mutator_acts(stmt):
                if out.get(attr, CLEAN) == STALE:
                    findings[(getattr(call, "lineno", 0), attr)] = \
                        self.finding(
                            ctx, call,
                            f"acts on {attr!r} state read before an "
                            f"await in {func.name!r}; re-check after "
                            f"the suspension or hold the lock across "
                            f"it")
                out[attr] = READ
            if stmt_awaits(stmt) and not under_async_lock(node):
                for attr, val in out.items():
                    if val == READ:
                        out[attr] = STALE
            written = writes(stmt)
            for attr in written:
                if isinstance(stmt, ast.AugAssign):
                    # the read and write are one statement: atomic
                    # unless the statement itself suspends.
                    if stmt_awaits(stmt):
                        findings[(stmt.lineno, attr)] = self.finding(
                            ctx, stmt,
                            f"augmented assignment of guarded "
                            f"{attr!r} awaits mid-statement in "
                            f"{func.name!r}")
                elif state.get(attr, CLEAN) == STALE \
                        or out.get(attr, CLEAN) == STALE:
                    findings[(stmt.lineno, attr)] = self.finding(
                        ctx, stmt,
                        f"writes {attr!r} from state read before an "
                        f"await in {func.name!r} (check-then-act "
                        f"across a suspension point); re-check after "
                        f"the await or hold the lock across it")
                out[attr] = CLEAN
            return out

        run_forward(cfg, init={}, transfer=transfer,
                    merge=lambda a, b: merge_dicts(a, b, max, CLEAN))
        yield from findings.values()
