"""RL003 counter-purity: observability can watch I/O but never touch it.

PR 1's contract is that telemetry is *provably non-perturbing*: the
paper's ``mean_accesses`` figures are bit-identical with tracing on or
off.  Two structural properties keep that true:

1. the dependency arrow points one way — ``repro.storage.counters``
   builds ``IOStats`` on top of ``repro.obs.metrics``, so nothing in
   ``repro.obs`` may import from ``repro.storage`` (or name
   ``IOStats`` at all); and
2. error-handling paths never move *access* counters — a retried read
   or an absorbed decode failure must not bump ``disk_reads`` twice,
   so no increment of an ``IOStats`` field or an ``io.*`` metric
   (``stats.disk_reads += 1``, ``obs.inc("io.disk_reads")``,
   ``registry.counter("io.x").inc()``) may sit inside an ``except``
   handler in ``rtree/`` or ``storage/``.

*Failure* counters are the explicit exception: bumping
``storage.checksum_failures`` or ``storage.retries`` inside a handler
is exactly what those metrics are for, and they are not part of the
paper's access-count protocol.

Flagged accordingly: storage imports / ``IOStats`` references inside
``repro/obs/``; access-counter mutations inside ``except`` bodies in
the search/storage packages.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register, resolve_call_name

__all__ = ["CounterPurity"]

#: The IOStats fields (mirrored, not imported: importing storage from a
#: lint rule that polices storage imports would be a fine irony).
IO_FIELDS = frozenset(
    {"disk_reads", "disk_writes", "buffer_hits", "buffer_misses",
     "evictions"}
)

#: Method names that mutate metric instruments.
MUTATOR_METHODS = frozenset({"inc", "observe"})

#: Metric-name prefix of the access counters backing ``IOStats``.
IO_METRIC_PREFIX = "io."


def _io_metric_name(node: ast.Call) -> str | None:
    """The ``io.*`` metric name this call addresses, if any."""
    if (node.args and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.startswith(IO_METRIC_PREFIX)):
        return node.args[0].value
    return None


def _imports_storage(node: ast.Import | ast.ImportFrom) -> str | None:
    """The offending module path if this import reaches into storage."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name.startswith("repro.storage"):
                return alias.name
        return None
    module = "." * node.level + (node.module or "")
    if module.startswith("repro.storage") or ".storage" in module:
        return module
    for alias in node.names:
        if alias.name == "storage" and node.level:
            return f"{module}.{alias.name}"
        if alias.name == "IOStats":
            return f"{module}.{alias.name}"
    return None


@register
class CounterPurity(Rule):
    id = "RL003"
    name = "counter-purity"
    invariant = ("repro.obs never imports repro.storage, and access "
                 "counters never move inside except handlers")
    path_fragments = ("repro/obs/", "repro/rtree/", "repro/storage/",
                      "repro/ingest/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "repro/obs/" in ctx.path:
            yield from self._check_obs(ctx)
        else:
            yield from self._check_handlers(ctx)

    def _check_obs(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                offender = _imports_storage(node)
                if offender is not None:
                    yield self.finding(
                        ctx, node,
                        f"repro.obs imports {offender}; the dependency "
                        f"arrow is storage -> obs, never back "
                        f"(telemetry must stay non-perturbing)",
                    )

    def _check_handlers(self, ctx: FileContext) -> Iterator[Finding]:
        for handler in ast.walk(ctx.tree):
            if not isinstance(handler, ast.ExceptHandler):
                continue
            for stmt in handler.body:
                for node in ast.walk(stmt):
                    mutation = self._counter_mutation(node, ctx)
                    if mutation is not None:
                        yield self.finding(
                            ctx, node,
                            f"{mutation} inside an except handler; error "
                            f"paths must never move access counters "
                            f"(retries would double-count the paper's "
                            f"disk-access figures)",
                        )

    def _counter_mutation(self, node: ast.AST,
                          ctx: FileContext) -> str | None:
        if (isinstance(node, ast.AugAssign)
                and isinstance(node.target, ast.Attribute)
                and node.target.attr in IO_FIELDS):
            return f"increment of .{node.target.attr}"
        if not isinstance(node, ast.Call):
            return None
        name = resolve_call_name(node.func, ctx.aliases)
        if name is not None and (name.endswith("obs.inc")
                                 or name.endswith("obs.observe")):
            metric = _io_metric_name(node)
            if metric is not None:
                return f"call to {name.lstrip('.')}({metric!r})"
            return None
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS):
            # registry.counter("io.x").inc() — the access-counter name
            # lives on the instrument-lookup call one hop down; a bare
            # .inc() on an IOStats field attribute counts too.
            receiver = node.func.value
            if isinstance(receiver, ast.Call):
                metric = _io_metric_name(receiver)
                if metric is not None:
                    return (f"metric .{node.func.attr}() call on "
                            f"{metric!r}")
            if (isinstance(receiver, ast.Attribute)
                    and receiver.attr in IO_FIELDS):
                return (f"metric .{node.func.attr}() call on "
                        f".{receiver.attr}")
        return None
